#!/usr/bin/env bash
# Workspace CI gate: formatting, lints (warnings are errors), and the
# full test suite. Run from the repository root.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (deny warnings + pedantic cast/float lints) =="
cargo clippy --workspace --all-targets -- -D warnings \
    -D clippy::cast_possible_truncation \
    -D clippy::cast_sign_loss \
    -D clippy::float_cmp

echo "== cargo test =="
cargo test -q

echo "== test-count guard =="
# The suite must never silently shrink (a deleted [[test]] stanza or a
# dropped module compiles fine and loses coverage without failing CI).
# Raise the floor when tests are added; never lower it casually.
test_floor=906
test_count=$(cargo test -q --workspace -- --list 2>/dev/null | grep -c ': test$')
echo "   ${test_count} tests (floor ${test_floor})"
if [ "${test_count}" -lt "${test_floor}" ]; then
    echo "test suite shrank: ${test_count} < floor ${test_floor}" >&2
    exit 1
fi

echo "== qz lint-src: workspace determinism lint =="
# No nondeterminism hazards (hash iteration, wall-clock reads, thread
# identity, parallel reductions) outside the reviewed lint-allow.txt
# entries anywhere under crates/*/src.
cargo run -q --bin qz -- lint-src

echo "== qz check: preset sweep (deny warnings) =="
# Every shipped preset on both devices must be error- and warning-free,
# except the intentional MSP430 QZ011 regime (see EXPERIMENTS.md).
cargo run -q --bin qz -- check --deny-warnings --allow QZ011

echo "== qz verify: envelope proofs + a caught refutation =="
# The abstract interpreter must PROVE both properties (no stall, no
# overflow) for the full preset sweep on the Quiet scene —
# --deny-unproven turns any UNKNOWN or REFUTED verdict into a CI
# failure. Conversely, on the Crowded scene even Quetzal overflows
# under the envelope's floor corner (crowded scenes discard frames by
# design), so verify must exit nonzero there AND print a runnable
# single-line repro — the directed-search contract, end to end.
cargo run -q --bin qz -- verify --env quiet --events 12 \
    --deny-unproven > /dev/null
if verify_out=$(cargo run -q --bin qz -- verify --system QZ --device apollo4 \
    --env crowded --events 40 2>/dev/null); then
    echo "verify failed to refute the crowded overflow" >&2
    exit 1
fi
grep -q "REFUTED" <<< "${verify_out}"
grep -q "repro: qz run .* --solar floor" <<< "${verify_out}"

echo "== qz fleet: smoke run + thread-count determinism =="
# A small fleet must complete, and the JSON report must be byte-identical
# at 1 and 2 worker threads (the qz-fleet determinism contract).
fleet_dir=$(mktemp -d)
trap 'rm -rf "${fleet_dir}"' EXIT
cargo run -q --bin qz -- fleet --devices 6 --events 10 --threads 1 \
    --json "${fleet_dir}/t1.json" > /dev/null
cargo run -q --bin qz -- fleet --devices 6 --events 10 --threads 2 \
    --json "${fleet_dir}/t2.json" > /dev/null
cmp "${fleet_dir}/t1.json" "${fleet_dir}/t2.json"

echo "== qz fleet: cross-scheduler byte-identity at 64 devices =="
# The event-horizon scheduler is a pure optimization of the epoch-barrier
# reference: the same fixed-seed fleet must produce byte-identical JSON
# under both (the randomized in-depth proof is tests/fleet_determinism.rs;
# this is the end-to-end CLI smoke).
cargo run -q --bin qz -- fleet --devices 64 --events 6 --threads 2 \
    --scheduler epoch-barrier --json "${fleet_dir}/s_eb.json" > /dev/null
cargo run -q --bin qz -- fleet --devices 64 --events 6 --threads 2 \
    --scheduler event-horizon --json "${fleet_dir}/s_eh.json" > /dev/null
cmp "${fleet_dir}/s_eb.json" "${fleet_dir}/s_eh.json"

echo "== qz fleet: 10k-device event-horizon smoke + determinism =="
# A large sharded fleet must complete under the event-horizon scheduler
# (64 gateways, 30 s capture period keep the QZ050/QZ080 preflight
# clean) and its JSON must stay byte-identical across worker counts.
cargo run -q --bin qz -- fleet --devices 10000 --gateways 64 \
    --capture-period 30 --scheduler event-horizon --events 3 \
    --threads 1 --json "${fleet_dir}/big1.json" > /dev/null
cargo run -q --bin qz -- fleet --devices 10000 --gateways 64 \
    --capture-period 30 --scheduler event-horizon --events 3 \
    --threads 2 --json "${fleet_dir}/big2.json" > /dev/null
cmp "${fleet_dir}/big1.json" "${fleet_dir}/big2.json"

echo "== engine equivalence: tick vs fast-forward reports =="
# The fast-forward engine must be observably identical to the per-tick
# reference loop: the same fixed-seed fleet run under both engines must
# produce byte-identical JSON reports (the in-depth randomized proof is
# tests/engine_equivalence.rs; this is the end-to-end CLI smoke).
cargo run -q --bin qz -- fleet --devices 6 --events 10 --threads 1 \
    --engine tick --json "${fleet_dir}/e_tick.json" > /dev/null
cargo run -q --bin qz -- fleet --devices 6 --events 10 --threads 1 \
    --engine fast-forward --json "${fleet_dir}/e_fast.json" > /dev/null
cmp "${fleet_dir}/e_tick.json" "${fleet_dir}/e_fast.json"

echo "== throughput benches + qz bench --check baseline gate =="
# Each bench appends one record to its results/BENCH_*.json trajectory
# (both engines, metrics asserted identical before any speedup is
# reported), then `qz bench --check` compares the newest record of
# every trajectory against results/BENCH_baseline.json and exits
# nonzero on regression. Floors (Quiet >= 3x, Crowded >= 3x, Burst >=
# 1.1x, fleet >= 1x) sit well under quiet-machine numbers to absorb
# shared-runner noise: with the batched busy-tick kernel the bench box
# records Crowded around 7-10x and Quiet around 19-20x. Burst runs
# 2 s storms / 10 s lulls under the `smoke` fault preset, where the
# adversary consults every tick on both engines by design, so its
# speedup is structurally modest. The
# fault_campaigns bench gates snapshot-mode campaigns at >= 2x over
# replay-from-zero (reports asserted byte-identical first). The
# fleet_throughput bench additionally gates the event-horizon scheduler
# at >= 5x over the epoch-barrier reference on a 10k-device fleet with
# 50 ms back-pressure epochs (FleetEH10000), and records an
# event-horizon-only 100k-device scale probe.
cargo bench -q -p qz-bench --bench sim_throughput
cargo bench -q -p qz-bench --bench fleet_throughput
cargo bench -q -p qz-bench --bench fault_campaigns
cargo run -q --bin qz -- bench --check

echo "== qz profile: smoke on Quiet and Crowded =="
# The profiler must come back with a horizon-cause ranking and a phase
# table on both a sparse and a dense scene (and must not disturb the
# run — the byte-identity proof is tests/profiler_invisibility.rs).
for env in quiet crowded; do
    cargo run -q --bin qz -- profile --env "${env}" --events 40 \
        > "${fleet_dir}/profile_${env}.txt"
    grep -q "^rank cause" "${fleet_dir}/profile_${env}.txt"
    grep -q "^phase " "${fleet_dir}/profile_${env}.txt"
    grep -q "^wall clock:" "${fleet_dir}/profile_${env}.txt"
done

echo "== qz profile: flight-recorder dump smoke =="
# A profiled run with the flight ring armed must write a postmortem
# JSON that self-describes (schema + repro command).
cargo run -q --bin qz -- profile --env crowded --events 20 \
    --flight "${fleet_dir}/flight.json" > /dev/null
grep -q '"schema":"qz-flight/v1"' "${fleet_dir}/flight.json"
grep -q '"repro":"qz profile' "${fleet_dir}/flight.json"

echo "== qz fault: smoke campaign + thread-count determinism =="
# A fixed-seed smoke campaign must hold all four differential-oracle
# invariants (exit 0) and its JSON report must be byte-identical at 1
# and 2 worker threads (the qz-fault determinism contract).
cargo run -q --bin qz -- fault --preset smoke --events 4 --campaigns 4 \
    --seed 0xC1C1 --threads 1 --json "${fleet_dir}/f1.json" > /dev/null
cargo run -q --bin qz -- fault --preset smoke --events 4 --campaigns 4 \
    --seed 0xC1C1 --threads 2 --json "${fleet_dir}/f2.json" > /dev/null
cmp "${fleet_dir}/f1.json" "${fleet_dir}/f2.json"

echo "== qz branch: identity-fork self-check =="
# With no fork flags, `qz branch` forks a run from a mid-run snapshot
# under UNCHANGED tweaks — the resumed suffix must reproduce the base
# decision stream exactly, or the snapshot contract is broken. This is
# the save→restore→resume byte-identity proof end-to-end through the
# CLI (the randomized in-depth version is tests/snapshot_equivalence.rs).
branch_out=$(cargo run -q --bin qz -- branch --events 10 --at 60)
grep -q "identity fork (self-check)" <<< "${branch_out}"
grep -q "no divergence" <<< "${branch_out}"

echo "== qz run: snapshot ring is invisible and deterministic =="
# Driving a run through the rollback-history ring must not perturb the
# simulation (same metrics as a plain run of the same seeds) and must
# be byte-identical across reruns.
cargo run -q --bin qz -- run --events 10 > "${fleet_dir}/plain.txt"
cargo run -q --bin qz -- run --events 10 --snapshot-ring 8 --snapshot-stride 30 \
    > "${fleet_dir}/ring1.txt" 2> /dev/null
cargo run -q --bin qz -- run --events 10 --snapshot-ring 8 --snapshot-stride 30 \
    > "${fleet_dir}/ring2.txt" 2> /dev/null
cmp "${fleet_dir}/ring1.txt" "${fleet_dir}/ring2.txt"
grep -q "rollback point(s) held" "${fleet_dir}/ring1.txt"
diff <(grep -E "interesting:|reports:|device:" "${fleet_dir}/plain.txt") \
     <(grep -E "interesting:|reports:|device:" "${fleet_dir}/ring1.txt")

echo "== qz bisect: exact first-divergence + runnable repro =="
# Binary-searching a heavy campaign against its fault-free twin must
# land on the exact first divergent millisecond (pinned — the linear
# lockstep-scan validation is in qz-fault's tests) and print a repro
# line in `qz fault` vocabulary.
bisect_out=$(cargo run -q --bin qz -- bisect --preset heavy --events 4 \
    --inject-at 15 --stride 5 --ring 16)
grep -q "first diverges from its fault-free twin at t=15001ms" <<< "${bisect_out}"
grep -q "repro: qz fault .* --campaigns 1 --inject-at 15" <<< "${bisect_out}"

echo "== examples (each front-ends its config through qz-check) =="
for example in quickstart smart_camera wildlife_monitor custom_policy hw_ratio_module; do
    echo "-- example: ${example}"
    cargo run -q --example "${example}" > /dev/null
done

echo "CI OK"
