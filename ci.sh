#!/usr/bin/env bash
# Workspace CI gate: formatting, lints (warnings are errors), and the
# full test suite. Run from the repository root.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo test =="
cargo test -q

echo "CI OK"
