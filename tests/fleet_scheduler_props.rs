//! Property tests for the event-horizon fleet scheduler (ISSUE
//! satellite): the coordinator's queue discipline, the park invariant
//! the run loop leans on, airtime conservation under shard hashing,
//! and mid-run save/restore round-trips.

use proptest::prelude::*;
use qz_app::{apollo4, build_simulation, SimTweaks};
use qz_baselines::BaselineKind;
use qz_fleet::{run_fleet, EventHorizonScheduler, Executor, FleetConfig, FleetSchedulerKind};
use qz_sim::{Metrics, UplinkConfig, UplinkPort};
use qz_traces::{EnvironmentKind, SensingEnvironment};
use qz_types::{SimDuration, SimTime};

/// Carrier-sense attempts so far: every sense resolves to exactly one
/// of grant, busy backoff, or duty deferral.
fn sense_count(m: &Metrics) -> u64 {
    m.tx_grants + m.tx_busy_backoffs + m.tx_duty_deferrals
}

fn any_env_kind() -> impl Strategy<Value = EnvironmentKind> {
    prop_oneof![
        Just(EnvironmentKind::MoreCrowded),
        Just(EnvironmentKind::Crowded),
        Just(EnvironmentKind::LessCrowded),
        Just(EnvironmentKind::Short),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Queue discipline: batch epochs strictly increase, each batch is
    /// exactly the set of devices due at its epoch in ascending device
    /// order, every parked device surfaces exactly once, and nothing
    /// surfaces before the epoch it was parked for.
    #[test]
    fn pop_batches_are_exactly_the_due_sets_in_order(
        dues in proptest::collection::vec(0u64..50_000, 1..64),
    ) {
        let n = dues.len();
        let mut s = EventHorizonScheduler::new(n, 1, 1000, 100);
        let mut parked_epoch = vec![0u64; n];
        for (d, &due) in dues.iter().enumerate() {
            parked_epoch[d] = s.park(d, due, 0.0, 0);
        }
        let mut seen = vec![false; n];
        let mut last_epoch = None;
        while let Some((epoch, batch)) = s.pop_batch() {
            if let Some(prev) = last_epoch {
                prop_assert!(epoch > prev, "batch epochs strictly increase");
            }
            last_epoch = Some(epoch);
            let due_set: Vec<usize> = (0..n).filter(|&d| parked_epoch[d] == epoch).collect();
            prop_assert_eq!(&batch, &due_set, "wake set must be exactly the due set");
            for d in batch {
                prop_assert!(!seen[d], "each device surfaces once");
                seen[d] = true;
            }
        }
        prop_assert!(seen.iter().all(|&b| b), "the queue drains every parked device");
    }

    /// The park invariant the run loop depends on: between a device's
    /// current position and the *start* of the epoch its
    /// `next_uplink_due` bound lands in, no carrier sense ever fires —
    /// so a parked device can skip coordination for that whole span and
    /// the stale busy probability it carries is never read.
    #[test]
    fn parked_spans_are_sense_free(
        env_kind in any_env_kind(),
        seed in 0u64..300,
        events in 4usize..8,
    ) {
        let env = SensingEnvironment::generate(env_kind, events, seed);
        let tweaks = SimTweaks { seed: seed ^ 0x9E37, ..SimTweaks::default() };
        let mut sim = build_simulation(BaselineKind::Quetzal, &apollo4(), &env, &tweaks);
        sim.set_uplink(UplinkPort::new(UplinkConfig::default(), seed ^ 0x79B9));
        let epoch_ms = 1000u64;
        while let Some(due) = sim.next_uplink_due() {
            let epoch_start = SimTime::from_millis((due.as_millis() / epoch_ms) * epoch_ms);
            let before = sense_count(sim.metrics());
            sim.step_until(epoch_start);
            prop_assert_eq!(
                sense_count(sim.metrics()), before,
                "a sense fired inside a parked span (bound {:?})", due
            );
            sim.step_until(epoch_start + SimDuration::from_millis(epoch_ms));
            if sim.is_done() {
                break;
            }
        }
    }

    /// Shard hashing conserves airtime at every level: per-shard stats
    /// sum to the fleet channel, which equals the sum of per-device
    /// time-on-air, for any gateway count and seed.
    #[test]
    fn airtime_is_conserved_under_shard_hashing(
        fleet_seed in 0u64..200,
        gateways in 1usize..5,
        devices in 2usize..8,
    ) {
        let cfg = FleetConfig {
            devices,
            events: 5,
            fleet_seed,
            gateways,
            scheduler: FleetSchedulerKind::EventHorizon,
            ..FleetConfig::default()
        };
        let report = run_fleet(&cfg, Executor::new(2)).expect("fleet runs");
        prop_assert_eq!(report.shards.len(), gateways);
        let shard_air: u64 = report.shards.iter().map(|s| s.airtime_slots).sum();
        prop_assert_eq!(shard_air, report.channel.airtime_slots);
        let shard_tx: u64 = report.shards.iter().map(|s| s.total_tx).sum();
        prop_assert_eq!(shard_tx, report.channel.total_tx);
        let per_device: u64 = report
            .devices
            .iter()
            .map(|d| d.metrics.tx_airtime.as_millis() / report.channel.slot_ms)
            .sum();
        prop_assert_eq!(report.channel.airtime_slots, per_device);
    }

    /// Mid-run save/restore: cut the coordinator at a random point in a
    /// park/pop/reduce interleaving; the restored copy's entire future
    /// matches the original's, batch for batch and load for load.
    #[test]
    fn save_restore_round_trips_mid_run(
        dues in proptest::collection::vec(0u64..10_000, 4..32),
        pops_before in 0usize..4,
        airtime in 0u64..100,
    ) {
        let n = dues.len();
        let mut s = EventHorizonScheduler::new(n, 2, 1000, 100);
        for (d, &due) in dues.iter().enumerate() {
            if d % 5 == 4 {
                s.retire(d, 0.0, 0);
            } else {
                s.park(d, due, 0.0, 0);
            }
        }
        for _ in 0..pops_before {
            if let Some((epoch, batch)) = s.pop_batch() {
                s.note_shard_reduced(0, epoch, airtime);
                for d in batch {
                    s.mark_loaded(d, epoch);
                    s.park(d, (epoch + 1) * 1000 + 1, 0.0, 0);
                }
            }
        }
        let snap = s.save_state();
        let mut r = EventHorizonScheduler::new(n, 2, 1000, 100);
        r.restore_state(&snap);
        prop_assert_eq!(&r.save_state(), &snap, "restore then save is the identity");
        loop {
            let (a, b) = (s.pop_batch(), r.pop_batch());
            prop_assert_eq!(&a, &b, "restored future diverged");
            let Some((epoch, batch)) = a else { break };
            for &d in &batch {
                prop_assert_eq!(s.wake_load(epoch, d, 0), r.wake_load(epoch, d, 0));
                prop_assert_eq!(s.wake_load(epoch, d, 1), r.wake_load(epoch, d, 1));
            }
        }
    }
}
