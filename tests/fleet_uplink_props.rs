//! Property-based invariants of the shared-uplink model:
//!
//! - **Airtime conservation** — the gateway's slot accounting balances:
//!   clean + collision + idle slots cover the horizon, and the summed
//!   per-device airtime equals the channel's airtime total.
//! - **Duty budgets are never exceeded** — no accounting window grants
//!   more slots than `duty_cycle × window`, for arbitrary request
//!   streams and busy probabilities.

use proptest::prelude::*;
use qz_fleet::{run_fleet, Executor, FleetConfig};
use qz_sim::{TxDecision, UplinkConfig, UplinkPort};
use qz_types::{SimDuration, SimTime};

fn any_uplink() -> impl Strategy<Value = UplinkConfig> {
    (
        1u64..=4,   // slot, ×50 ms
        5u64..=100, // duty cycle, percent
        2u64..=10,  // duty window, ×slot×10
        1u64..=8,   // backoff base, ×100 ms
        0u32..=8,   // backoff doubling cap
    )
        .prop_map(|(slot, duty, window, base, max_exp)| {
            let slot = SimDuration::from_millis(slot * 50);
            UplinkConfig {
                slot,
                duty_cycle: duty as f64 / 100.0,
                duty_window: slot * (window * 10),
                backoff_base: SimDuration::from_millis(base * 100),
                backoff_max_exp: max_exp,
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// End-to-end conservation over a real (small) fleet run.
    #[test]
    fn fleet_channel_accounting_balances(
        devices in 2usize..6,
        events in 4usize..8,
        fleet_seed in 0u64..500,
    ) {
        let cfg = FleetConfig { devices, events, fleet_seed, ..FleetConfig::default() };
        let report = run_fleet(&cfg, Executor::new(2)).expect("fleet runs");
        let c = &report.channel;

        // The horizon decomposes exactly into clean, collision, and
        // idle slots (idle is defined by subtraction; the assert pins
        // that the subtraction never saturated).
        prop_assert!(c.clean_slots + c.collision_slots <= c.horizon_slots);
        prop_assert_eq!(c.clean_slots + c.collision_slots + c.idle_slots(), c.horizon_slots);

        // Summed per-device airtime equals the channel's total, and
        // occupied slots never exceed airtime (collisions collapse
        // overlapping airtime into shared slots).
        let per_device: u64 = report.devices.iter()
            .map(|d| d.metrics.tx_airtime.as_millis() / c.slot_ms)
            .sum();
        prop_assert_eq!(c.airtime_slots, per_device);
        prop_assert!(c.clean_slots + c.collision_slots <= c.airtime_slots);

        // Transmission accounting: grants across devices equal the
        // channel's total; losses are a subset.
        let grants: u64 = report.devices.iter().map(|d| d.metrics.tx_grants).sum();
        prop_assert_eq!(c.total_tx, grants);
        prop_assert!(c.collided_tx <= c.total_tx);
    }

    /// Drive a lone port with an arbitrary request stream and verify
    /// that no duty window ever grants more than its allowance.
    #[test]
    fn duty_budget_is_never_exceeded(
        cfg in any_uplink(),
        seed in 0u64..1000,
        p_busy in 0.0f64..0.9,
        steps in (1u64..=40).prop_map(|n| n),
        latency_ms in 50u64..1000,
    ) {
        let mut port = UplinkPort::new(cfg.clone(), seed);
        port.set_busy_probability(p_busy);
        let window_ms = cfg.duty_window.as_millis();
        let allowance = cfg.allowance_slots();
        let latency = SimDuration::from_millis(latency_ms);

        let mut granted_per_window = std::collections::BTreeMap::new();
        let mut granted_airtime = SimDuration::ZERO;
        let mut t = SimTime::ZERO;
        for _ in 0..steps {
            match port.sense(t, latency) {
                TxDecision::Grant { airtime } => {
                    granted_airtime += airtime;
                    *granted_per_window.entry(t.as_millis() / window_ms).or_insert(0u64)
                        += cfg.slots_for(latency);
                    t += airtime;
                }
                TxDecision::Busy(wait) | TxDecision::DutyCapped(wait) => {
                    prop_assert!(!wait.is_zero(), "refusals must advance time");
                    t += wait;
                }
            }
        }

        for (window, used) in &granted_per_window {
            prop_assert!(
                *used <= allowance,
                "window {window} granted {used} of {allowance} slots"
            );
        }
        // The port's own airtime ledger agrees with the decisions.
        prop_assert_eq!(port.total_airtime(), granted_airtime);
        // And with its transmission log.
        let log_slots: u64 = port.drain_log().iter().map(|r| r.slots).sum();
        prop_assert_eq!(log_slots, granted_airtime.as_millis() / cfg.slot.as_millis());
    }
}
