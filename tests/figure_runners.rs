//! Smoke tests for every figure runner: each must produce the expected
//! row structure on a small workload (the full-scale outputs are
//! recorded in EXPERIMENTS.md).

use qz_bench::figures;

const SMALL: usize = 30;

#[test]
fn fig02_rows() {
    let rows = figures::fig02_capture_rate(SMALL);
    assert_eq!(rows.len(), 10);
    // Slower capture sees fewer frames.
    assert!(rows[9].metrics.frames_total < rows[0].metrics.frames_total);
}

#[test]
fn fig03_rows() {
    let rows = figures::fig03_naive(SMALL);
    let systems: Vec<&str> = rows.iter().map(|r| r.system.as_str()).collect();
    assert_eq!(systems.len(), 6);
    assert!(systems.contains(&"Ideal"));
    assert!(systems.contains(&"QZ"));
    assert!(systems.iter().any(|s| s.starts_with("PZ")));
}

#[test]
fn fig08_rows() {
    let rows = figures::fig08_hardware(SMALL);
    assert_eq!(rows.len(), 4);
    assert!(rows
        .iter()
        .any(|r| r.environment == "Crowded" && r.system == "QZ"));
    assert!(rows
        .iter()
        .any(|r| r.environment == "LessCrowded" && r.system == "NA"));
}

#[test]
fn fig09_fig10_fig11_fig12_cover_three_environments() {
    for rows in [
        figures::fig09_vs_nonadaptive(SMALL),
        figures::fig10_vs_prior(SMALL),
        figures::fig11_thresholds(SMALL),
        figures::fig12_schedulers(SMALL),
    ] {
        assert_eq!(rows.len(), 4 * 3);
        for env in ["MoreCrowded", "Crowded", "LessCrowded"] {
            assert_eq!(
                rows.iter().filter(|r| r.environment == env).count(),
                4,
                "{env}"
            );
        }
    }
}

#[test]
fn fig11_sweep_is_monotone_in_threshold_labels() {
    let rows = figures::fig11_sweep(SMALL);
    assert_eq!(rows.len(), 12);
    assert_eq!(rows.last().unwrap().environment, "dynamic");
}

#[test]
fn fig13_covers_all_systems() {
    let rows = figures::fig13_msp430(SMALL);
    assert_eq!(rows.len(), 10);
    assert!(rows.iter().all(|r| r.environment == "Short"));
}

#[test]
fn fig14_sweeps_three_parameters() {
    let rows = figures::fig14_params(SMALL);
    assert_eq!(
        rows.iter()
            .filter(|r| r.environment.starts_with("cells="))
            .count(),
        5
    );
    assert_eq!(
        rows.iter()
            .filter(|r| r.environment.starts_with("arrival-window="))
            .count(),
        7
    );
    assert_eq!(
        rows.iter()
            .filter(|r| r.environment.starts_with("task-window="))
            .count(),
        6
    );
}

#[test]
fn ablation_rows() {
    let rows = figures::ablations(SMALL);
    let systems: Vec<&str> = rows.iter().map(|r| r.system.as_str()).collect();
    assert_eq!(
        systems,
        vec![
            "QZ",
            "QZ-noPID",
            "QZ-noSticky",
            "QZ-HW",
            "QZ+jitter",
            "QZ-VAR90+jitter",
            "QZ-EWMA"
        ]
    );
}

#[test]
fn same_environment_across_systems() {
    // Every system within a figure must see the identical event trace:
    // the interesting-input totals must agree per environment.
    let rows = figures::fig09_vs_nonadaptive(SMALL);
    for env in ["MoreCrowded", "Crowded", "LessCrowded"] {
        let totals: Vec<u64> = rows
            .iter()
            .filter(|r| r.environment == env)
            .map(|r| r.metrics.interesting_total)
            .collect();
        assert!(totals.windows(2).all(|w| w[0] == w[1]), "{env}: {totals:?}");
    }
}
