//! Pins the flight-recorder postmortem format: a fixed seeded run's
//! decision-event stream, folded through `FlightRecorder::from_events`,
//! must render exactly the committed golden dump. The dump is what a
//! human (or `qz fault --postmortem`) reads after a crash, so its
//! schema, field names, digest log, and event ring are all contract.
//!
//! A failure is either a simulation behaviour change (the golden
//! regression suite will fail too — re-baseline both consciously) or a
//! format change in `qz-prof` (re-baseline this file alone; bump
//! `FLIGHT_SCHEMA` if the shape changed incompatibly).
//!
//! Regenerate with:
//! `cargo test -p qz-bench --test flight_recorder_dump -- --nocapture`
//! (the failing assertion prints the new dump).

use qz_app::{apollo4, simulate_traced, SimTweaks};
use qz_baselines::BaselineKind;
use qz_prof::{FlightMeta, FlightRecorder, DEFAULT_RING_CAPACITY};
use qz_traces::{EnvironmentKind, SensingEnvironment};

const SEED: u64 = 424_242;

fn recorded_dump() -> String {
    let profile = apollo4();
    let env = SensingEnvironment::generate(EnvironmentKind::Crowded, 12, SEED);
    let (_, events) = simulate_traced(
        BaselineKind::Quetzal,
        &profile,
        &env,
        &SimTweaks {
            seed: SEED,
            ..SimTweaks::default()
        },
    );
    assert!(
        events.len() > DEFAULT_RING_CAPACITY,
        "run too small to exercise ring eviction ({} events)",
        events.len()
    );
    let meta = FlightMeta {
        source: "flight_recorder_dump test".into(),
        repro: "qz run --system QZ --device apollo4 --env crowded --events 12 --seed 424242".into(),
    };
    FlightRecorder::from_events(meta, &events, DEFAULT_RING_CAPACITY).to_json()
}

#[test]
fn flight_dump_matches_golden() {
    let got = recorded_dump();
    let want = include_str!("golden/flight_dump.json");
    assert_eq!(
        got,
        want.trim_end(),
        "flight dump drifted — re-baseline tests/golden/flight_dump.json if intentional:\n{got}"
    );
}

/// The dump must survive a round of ring eviction: `ring_dropped`
/// reflects the overflow and the ring holds exactly the newest
/// `DEFAULT_RING_CAPACITY` events.
#[test]
fn dump_reports_ring_eviction() {
    let dump = recorded_dump();
    let dropped: u64 = dump
        .split("\"ring_dropped\":")
        .nth(1)
        .and_then(|rest| rest.split(',').next())
        .and_then(|n| n.parse().ok())
        .expect("ring_dropped field present");
    assert!(dropped > 0, "expected the fixed run to overflow the ring");
}

/// A panic annotation threads through verbatim (this is the string the
/// armed panic hook writes into a crash dump).
#[test]
fn panic_note_renders_in_dump() {
    let meta = FlightMeta {
        source: "unit".into(),
        repro: "qz profile --events 1".into(),
    };
    let rec = FlightRecorder::new(meta, 4);
    let dump = rec.to_json_with_panic(Some("index out of bounds: 99"));
    assert!(
        dump.contains("\"panic\":\"index out of bounds: 99\""),
        "panic note missing from dump: {dump}"
    );
}
