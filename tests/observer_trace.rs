//! Observability integration tests: replaying the Fig. 8 configuration
//! with a recording observer must capture, in the event log, every
//! decision the `Metrics` totals count — and installing an observer
//! (no-op or recording) must not perturb the simulation at all.

use proptest::prelude::*;
use qz_app::{apollo4, simulate, simulate_traced, SimTweaks};
use qz_baselines::BaselineKind;
use qz_obs::{Event, EventKind, MetricsObserver};
use qz_traces::{EnvironmentKind, SensingEnvironment};

/// The Fig. 8 hardware-experiment configuration (paper §6.4), scaled to
/// a test-friendly event count: QZ on the Crowded environment with the
/// standard experiment seed and Table 1 tweaks.
fn fig08_env(events: usize) -> SensingEnvironment {
    SensingEnvironment::generate(EnvironmentKind::Crowded, events, qz_bench::EVENT_SEED)
}

fn count(events: &[Event], name: &str) -> u64 {
    events.iter().filter(|e| e.kind.name() == name).count() as u64
}

#[test]
fn fig08_replay_event_log_matches_metrics() {
    let env = fig08_env(60);
    let tweaks = SimTweaks::default();
    let (m, log) = simulate_traced(BaselineKind::Quetzal, &apollo4(), &env, &tweaks);

    assert!(m.ibo_discards > 0, "Fig. 8 config should exercise IBO");
    assert_eq!(
        count(&log, "ibo_discard"),
        m.ibo_discards,
        "every IBO discard counted in Metrics appears in the event log"
    );
    assert_eq!(count(&log, "buffer_admit"), m.stored);
    assert_eq!(count(&log, "power_failure"), m.power_failures);
    assert_eq!(count(&log, "restore"), m.restores);
    assert_eq!(count(&log, "job_start"), m.total_jobs());

    // Every scheduler pick pairs with exactly one IBO decision, and the
    // whole decision sequence is reconstructible: the event-derived
    // registry agrees with the simulator's own totals.
    assert_eq!(count(&log, "scheduler_pick"), count(&log, "ibo_decision"));
    let registry = MetricsObserver::from_events(&log);
    assert_eq!(registry.counter("ibo_discards"), m.ibo_discards);
    assert_eq!(registry.counter("jobs_started"), m.total_jobs());

    // Each pick carries its candidate ranking with exactly one winner,
    // and each IBO decision's chosen option is consistent with its
    // option walk — the properties `qz trace` rendering relies on.
    for event in &log {
        match &event.kind {
            EventKind::SchedulerPick { candidates, .. } => {
                assert_eq!(candidates.iter().filter(|c| c.selected).count(), 1);
            }
            EventKind::IboDecision {
                chosen_option,
                options,
                ..
            } => {
                assert!(options.iter().any(|o| o.option == *chosen_option));
            }
            _ => {}
        }
    }
}

#[test]
fn fig08_replay_traced_metrics_match_untraced() {
    let env = fig08_env(60);
    let tweaks = SimTweaks::default();
    let baseline = simulate(BaselineKind::Quetzal, &apollo4(), &env, &tweaks);
    let (traced, _) = simulate_traced(BaselineKind::Quetzal, &apollo4(), &env, &tweaks);
    assert_eq!(baseline, traced, "recording observer perturbed the run");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Installing an observer never changes results: for arbitrary
    /// seeds and event counts, a traced run is bit-identical to the
    /// plain run (the no-op default path and the recording path share
    /// every emission site, so this pins both).
    #[test]
    fn observer_is_invisible_to_results(seed in 0u64..1_000, events in 10usize..40) {
        let env = SensingEnvironment::generate(EnvironmentKind::MoreCrowded, events, seed);
        let tweaks = SimTweaks { seed, ..SimTweaks::default() };
        let plain = simulate(BaselineKind::Quetzal, &apollo4(), &env, &tweaks);
        let (traced, log) = simulate_traced(BaselineKind::Quetzal, &apollo4(), &env, &tweaks);
        prop_assert_eq!(plain, traced);
        prop_assert_eq!(count(&log, "ibo_discard"), traced.ibo_discards);
    }
}
