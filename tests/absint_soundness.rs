//! Soundness of the `qz-absint` abstract interpreter against the
//! simulator, pinned both ways:
//!
//! - **Containment**: every concrete trajectory — realized solar trace
//!   and both envelope corner traces, under both stepping engines —
//!   stays inside the abstract energy/occupancy boxes at every capture
//!   boundary the interpreter recorded.
//! - **Verdict fidelity**: every REFUTED verdict carries a concrete
//!   counterexample that actually overflows/stalls when simulated, and
//!   every PROVEN config simulates clean across the corpus.

use proptest::prelude::*;
use qz_absint::{
    decide, interpret, AbsModel, AbsRun, ConcreteObservation, HarvestEnvelope, Property, SolarMode,
    Verdict,
};
use qz_app::{apollo4, experiment_configs, msp430fr5994, DeviceProfile, SimTweaks};
use qz_baselines::{build_runtime, BaselineKind};
use qz_sim::{CheckpointPolicy, EngineKind, Simulation};
use qz_traces::{EnvironmentKind, SensingEnvironment, SolarTrace};
use qz_types::{Farads, SimDuration};

/// Envelope segment length used throughout (the `qz verify` default).
const SEGMENT_SECS: u64 = 60;

/// Presets exercised by the proptest corpus (the full sweep is covered
/// by the deterministic fidelity test below).
const PRESETS: [BaselineKind; 13] = [
    BaselineKind::Quetzal,
    BaselineKind::QuetzalHw,
    BaselineKind::NoAdapt,
    BaselineKind::AlwaysDegrade,
    BaselineKind::CatNap,
    BaselineKind::FixedThreshold(0.25),
    BaselineKind::FixedThreshold(0.50),
    BaselineKind::FixedThreshold(0.75),
    BaselineKind::PowerThreshold(qz_types::Watts(0.030)),
    BaselineKind::AvgSe2e,
    BaselineKind::QuetzalVar(0.9),
    BaselineKind::FcfsIbo,
    BaselineKind::LcfsIbo,
];

const ENVS: [EnvironmentKind; 5] = [
    EnvironmentKind::MoreCrowded,
    EnvironmentKind::Crowded,
    EnvironmentKind::LessCrowded,
    EnvironmentKind::Short,
    EnvironmentKind::Quiet,
];

fn build_sim<'a>(
    kind: BaselineKind,
    profile: &DeviceProfile,
    env: &'a SensingEnvironment,
    tweaks: &SimTweaks,
) -> Simulation<'a> {
    let (app, qcfg, cfg) = experiment_configs(kind, profile, tweaks);
    let runtime = build_runtime(kind, app.spec.clone(), qcfg).expect("valid runtime");
    Simulation::new(cfg, env, runtime, app.entry, app.behaviors, app.routes)
        .expect("valid pipeline binding")
}

fn solar_for(mode: SolarMode, envelope: &HarvestEnvelope, realized: &SolarTrace) -> SolarTrace {
    match mode {
        SolarMode::Trace => realized.clone(),
        SolarMode::Floor => envelope.floor_trace(),
        SolarMode::Ceil => envelope.ceil_trace(),
    }
}

/// Interprets one configuration and returns the pieces a check needs.
fn abstract_run(
    kind: BaselineKind,
    profile: &DeviceProfile,
    env: &SensingEnvironment,
    tweaks: &SimTweaks,
) -> (AbsModel, HarvestEnvelope, AbsRun) {
    let (app, _qcfg, cfg) = experiment_configs(kind, profile, tweaks);
    let model = AbsModel::new(&app.spec, &cfg.device, &cfg.power);
    let envelope = HarvestEnvelope::from_trace(env.solar(), SEGMENT_SECS);
    let run = interpret(&model, &envelope, env.events(), cfg.drain.as_millis());
    (model, envelope, run)
}

/// Core containment check: walk one concrete simulation through every
/// recorded window boundary and assert the boxes hold.
#[allow(clippy::too_many_arguments)]
fn assert_contained(
    kind: BaselineKind,
    profile: &DeviceProfile,
    env_kind: EnvironmentKind,
    env: &SensingEnvironment,
    tweaks: &SimTweaks,
    envelope: &HarvestEnvelope,
    run: &AbsRun,
    mode: SolarMode,
) {
    let solar = solar_for(mode, envelope, env.solar());
    let env_m = SensingEnvironment::with_parts(env_kind, env.events().clone(), solar);
    let mut sim = build_sim(kind, profile, &env_m, tweaks);
    for w in &run.windows {
        let alive = sim.step_until(w.t);
        if sim.time() < w.t {
            assert!(!alive, "step_until stopped early while alive");
            break;
        }
        let e_mj = sim.stored_energy().value() * 1e3;
        assert!(
            w.e.contains_mj(e_mj),
            "{kind:?}/{}/{env_kind:?}/{mode:?} t={}ms: energy {e_mj:.4} mJ outside \
             [{:.4}, {:.4}]",
            profile.name,
            w.t.as_millis(),
            w.e.lo_mj(),
            w.e.hi_mj(),
        );
        assert!(
            w.occ.contains(sim.occupancy()),
            "{kind:?}/{}/{env_kind:?}/{mode:?} t={}ms: occupancy {} outside \
             [{:.3}, {:.3}]",
            profile.name,
            w.t.as_millis(),
            sim.occupancy(),
            w.occ.lo,
            w.occ.hi,
        );
    }
}

fn containment_case(
    kind: BaselineKind,
    profile: &DeviceProfile,
    env_kind: EnvironmentKind,
    events: usize,
    seed: u64,
    engine: EngineKind,
) {
    let tweaks = SimTweaks {
        seed,
        engine,
        drain: SimDuration::from_secs(90),
        ..SimTweaks::default()
    };
    let env = SensingEnvironment::generate(env_kind, events, seed);
    let (_model, envelope, run) = abstract_run(kind, profile, &env, &tweaks);
    for mode in [SolarMode::Trace, SolarMode::Floor, SolarMode::Ceil] {
        assert_contained(
            kind, profile, env_kind, &env, &tweaks, &envelope, &run, mode,
        );
    }
}

proptest! {
    // Each case steps three full simulations; keep the count modest.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Containment across presets, devices, environments, seeds and
    /// both stepping engines.
    #[test]
    fn concrete_trajectories_stay_inside_the_boxes(
        preset in 0usize..PRESETS.len(),
        device in 0usize..2,
        env in 0usize..ENVS.len(),
        events in 2usize..8,
        seed in 1u64..1_000_000,
        fast in any::<bool>(),
    ) {
        let profile = if device == 0 { apollo4() } else { msp430fr5994() };
        let engine = if fast { EngineKind::FastForward } else { EngineKind::Tick };
        containment_case(PRESETS[preset], &profile, ENVS[env], events, seed, engine);
    }

    /// Containment must hold for hostile device knobs too: tiny
    /// capacitors, non-JIT checkpointing, small buffers.
    #[test]
    fn containment_survives_hostile_knobs(
        preset in 0usize..PRESETS.len(),
        cap_mf in 1u32..40,
        buffer in 1usize..6,
        policy in 0usize..3,
        seed in 1u64..1_000_000,
    ) {
        let tweaks = SimTweaks {
            seed,
            supercap_capacitance: Some(Farads(f64::from(cap_mf) * 1e-3)),
            buffer_capacity: buffer,
            checkpoint_policy: match policy {
                0 => CheckpointPolicy::JustInTime,
                1 => CheckpointPolicy::TaskBoundary,
                _ => CheckpointPolicy::Periodic { interval: SimDuration::from_millis(100) },
            },
            drain: SimDuration::from_secs(60),
            ..SimTweaks::default()
        };
        let profile = apollo4();
        let env = SensingEnvironment::generate(EnvironmentKind::Short, 4, seed);
        let (_model, envelope, run) = abstract_run(PRESETS[preset], &profile, &env, &tweaks);
        for mode in [SolarMode::Trace, SolarMode::Floor, SolarMode::Ceil] {
            assert_contained(
                PRESETS[preset], &profile, EnvironmentKind::Short, &env, &tweaks,
                &envelope, &run, mode,
            );
        }
    }
}

/// Runs the full concrete simulation for one solar mode and digests it.
fn observe(
    kind: BaselineKind,
    profile: &DeviceProfile,
    env_kind: EnvironmentKind,
    env: &SensingEnvironment,
    tweaks: &SimTweaks,
    envelope: &HarvestEnvelope,
    mode: SolarMode,
) -> ConcreteObservation {
    let solar = solar_for(mode, envelope, env.solar());
    let env_m = SensingEnvironment::with_parts(env_kind, env.events().clone(), solar);
    let metrics = build_sim(kind, profile, &env_m, tweaks).run();
    ConcreteObservation::from_metrics(&metrics)
}

/// Decides both properties for one configuration, with the directed
/// search wired to real simulations.
fn verdicts(
    kind: BaselineKind,
    profile: &DeviceProfile,
    env_kind: EnvironmentKind,
    events: usize,
    tweaks: &SimTweaks,
) -> (Verdict, Verdict, SensingEnvironment, HarvestEnvelope) {
    let env = SensingEnvironment::generate(env_kind, events, tweaks.seed);
    let (_model, envelope, run) = abstract_run(kind, profile, &env, tweaks);
    let overflow = decide(&run, Property::Overflow, |mode| {
        Some(observe(
            kind, profile, env_kind, &env, tweaks, &envelope, mode,
        ))
    });
    let stall = decide(&run, Property::Stall, |mode| {
        Some(observe(
            kind, profile, env_kind, &env, tweaks, &envelope, mode,
        ))
    });
    (overflow, stall, env, envelope)
}

/// PROVEN must mean clean: whatever the verdict engine proves, the
/// realized trace and both envelope corners must uphold.
fn assert_proven_faithful(
    kind: BaselineKind,
    profile: &DeviceProfile,
    env_kind: EnvironmentKind,
    env: &SensingEnvironment,
    tweaks: &SimTweaks,
    envelope: &HarvestEnvelope,
    prop: Property,
) {
    for mode in [SolarMode::Trace, SolarMode::Floor, SolarMode::Ceil] {
        let obs = observe(kind, profile, env_kind, env, tweaks, envelope, mode);
        assert!(
            !obs.witnesses(prop),
            "{kind:?}/{}/{env_kind:?}: PROVEN {} violated under {mode:?}: {obs:?}",
            profile.name,
            prop.token(),
        );
    }
}

/// Verdict fidelity over the full preset sweep on the default config:
/// both devices, a quiet and a busy environment. REFUTED never appears
/// without its concrete witness (by construction of `decide`, but the
/// assertion keeps it pinned), and PROVEN configs simulate clean.
#[test]
fn verdicts_are_faithful_across_the_preset_sweep() {
    let tweaks = SimTweaks {
        seed: 0xA11CE,
        drain: SimDuration::from_secs(120),
        ..SimTweaks::default()
    };
    for profile in [apollo4(), msp430fr5994()] {
        for kind in PRESETS {
            for env_kind in [EnvironmentKind::Quiet, EnvironmentKind::Short] {
                let (overflow, stall, env, envelope) =
                    verdicts(kind, &profile, env_kind, 4, &tweaks);
                for (prop, verdict) in [(Property::Overflow, &overflow), (Property::Stall, &stall)]
                {
                    match verdict {
                        Verdict::Proven => assert_proven_faithful(
                            kind, &profile, env_kind, &env, &tweaks, &envelope, prop,
                        ),
                        Verdict::Refuted { mode } => {
                            let obs =
                                observe(kind, &profile, env_kind, &env, &tweaks, &envelope, *mode);
                            assert!(
                                obs.witnesses(prop),
                                "{kind:?}/{}/{env_kind:?}: REFUTED {} has no witness \
                                 under {mode:?}: {obs:?}",
                                profile.name,
                                prop.token(),
                            );
                        }
                        Verdict::Unknown { .. } => {}
                    }
                }
            }
        }
    }
}

/// The known-stalling config (the `checker_soundness` QZ001 witness:
/// whole-task replay, 1 mF, single cell) must come back REFUTED for
/// the stall property, with a confirmed counterexample.
#[test]
fn known_stall_config_is_refuted() {
    let tweaks = SimTweaks {
        seed: 11,
        checkpoint_policy: CheckpointPolicy::TaskBoundary,
        supercap_capacitance: Some(Farads(1e-3)),
        harvester_cells: 1,
        drain: SimDuration::from_secs(300),
        ..SimTweaks::default()
    };
    let profile = apollo4();
    let (_overflow, stall, _env, _envelope) = verdicts(
        BaselineKind::NoAdapt,
        &profile,
        EnvironmentKind::Crowded,
        30,
        &tweaks,
    );
    assert!(
        matches!(stall, Verdict::Refuted { .. }),
        "expected REFUTED stall, got {stall:?}"
    );
}

/// A one-slot buffer against a crowded environment must come back
/// REFUTED for the overflow property.
#[test]
fn known_overflow_config_is_refuted() {
    let tweaks = SimTweaks {
        seed: 3,
        buffer_capacity: 1,
        drain: SimDuration::from_secs(60),
        ..SimTweaks::default()
    };
    let profile = apollo4();
    let (overflow, _stall, _env, _envelope) = verdicts(
        BaselineKind::NoAdapt,
        &profile,
        EnvironmentKind::MoreCrowded,
        8,
        &tweaks,
    );
    assert!(
        matches!(overflow, Verdict::Refuted { .. }),
        "expected REFUTED overflow, got {overflow:?}"
    );
}

/// The stall property is PROVEN outright for every shipped preset:
/// they all use JIT checkpointing, whose replay unit is empty.
#[test]
fn jit_presets_prove_no_stall_without_search() {
    let tweaks = SimTweaks {
        drain: SimDuration::from_secs(60),
        ..SimTweaks::default()
    };
    for kind in PRESETS {
        let profile = apollo4();
        let env = SensingEnvironment::generate(EnvironmentKind::Quiet, 3, tweaks.seed);
        let (_model, _envelope, run) = abstract_run(kind, &profile, &env, &tweaks);
        let stall = decide(&run, Property::Stall, |_| {
            panic!("JIT proof must not need a concrete run")
        });
        assert!(stall.is_proven(), "{kind:?}: {stall:?}");
    }
}
