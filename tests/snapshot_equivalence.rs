//! Property-based tests for the time-travel contract: save → restore →
//! resume must be byte-identical to straight-through execution on both
//! stepping engines, for *arbitrary* configurations and for snapshot
//! instants landing anywhere — including mid-quiescent-span, where the
//! fast-forward engine has to split a skip to honour the cut.
//!
//! Three properties:
//!
//! 1. The resumed suffix reproduces the straight-through run exactly:
//!    metrics, the recorded observer event stream, and the JSONL/CSV
//!    renderings of that stream, after a `qz-snap/v1` JSON roundtrip of
//!    the state itself.
//! 2. Telemetry sampling is restore-invariant: a run resumed from a
//!    snapshot emits the same telemetry tail as the uninterrupted run.
//! 3. `History::rollback_to` then replay is idempotent: rolling back to
//!    an arbitrary tick and stepping forward again lands on the exact
//!    end-of-horizon state, twice in a row.

use proptest::prelude::*;
use qz_baselines::BaselineKind;
use qz_obs::export::{write_csv, write_jsonl};
use qz_obs::Event;
use qz_sim::EngineKind;
use qz_snap::{from_json, to_json, History};
use qz_traces::{EnvironmentKind, SensingEnvironment};
use qz_types::{SimDuration, SimTime};

fn any_engine() -> impl Strategy<Value = EngineKind> {
    prop_oneof![Just(EngineKind::Tick), Just(EngineKind::FastForward)]
}

fn any_env_kind() -> impl Strategy<Value = EnvironmentKind> {
    // Quiet maximises long quiescent spans, so millisecond-granular cut
    // instants routinely land inside a span the fast-forward engine
    // would otherwise skip over in one hop.
    prop_oneof![
        Just(EnvironmentKind::Quiet),
        Just(EnvironmentKind::LessCrowded),
        Just(EnvironmentKind::Crowded),
        Just(EnvironmentKind::Short),
    ]
}

fn any_baseline() -> impl Strategy<Value = BaselineKind> {
    prop_oneof![
        Just(BaselineKind::Quetzal),
        Just(BaselineKind::CatNap),
        Just(BaselineKind::NoAdapt),
    ]
}

fn tweaks(seed: u64, engine: EngineKind) -> qz_app::SimTweaks {
    qz_app::SimTweaks {
        seed,
        engine,
        ..qz_app::SimTweaks::default()
    }
}

fn render_jsonl(events: &[Event]) -> Vec<u8> {
    let mut buf = Vec::new();
    write_jsonl(&mut buf, events).expect("in-memory write");
    buf
}

fn render_csv(events: &[Event]) -> Vec<u8> {
    let mut buf = Vec::new();
    write_csv(&mut buf, events).expect("in-memory write");
    buf
}

proptest! {
    // Every case runs the full simulation three times (reference,
    // prefix, resumed suffix); keep the count modest.
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn save_restore_resume_is_byte_identical(
        kind in any_baseline(),
        engine in any_engine(),
        env_kind in any_env_kind(),
        events in 3usize..10,
        seed in 0u64..1000,
        cut_ms in 1_000u64..240_000,
    ) {
        let env = SensingEnvironment::generate(env_kind, events, seed);
        let tw = tweaks(seed, engine);
        let profile = qz_app::apollo4();

        // Straight-through reference with a recording observer.
        let mut reference = qz_app::build_simulation(kind, &profile, &env, &tw);
        reference.set_observer(Box::new(qz_obs::RecordingObserver::new()));
        let (ref_metrics, mut ref_obs) = reference.run_traced();
        let ref_events =
            qz_obs::take_recorded(ref_obs.as_mut()).expect("recording sink installed");

        // Prefix leg: step to the cut (wherever the run actually lands
        // — a short run may finish earlier), snapshot, and roundtrip
        // the state through the qz-snap/v1 wire format.
        let mut prefix = qz_app::build_simulation(kind, &profile, &env, &tw);
        prefix.step_until(SimTime::from_millis(cut_ms));
        let cut = prefix.time();
        let state = prefix.save_state().map_err(TestCaseError::fail)?;
        let parsed = from_json(&to_json(&state), prefix.runtime().spec())
            .map_err(TestCaseError::fail)?;
        prop_assert_eq!(&parsed, &state, "qz-snap/v1 roundtrip lost state");

        // Resumed leg: fresh simulation, restore the parsed state,
        // observe the suffix, and finish.
        let mut resumed = qz_app::build_simulation(kind, &profile, &env, &tw);
        resumed.restore_state(&parsed).map_err(TestCaseError::fail)?;
        resumed.set_observer(Box::new(qz_obs::RecordingObserver::new()));
        let (res_metrics, mut res_obs) = resumed.run_traced();
        let res_events =
            qz_obs::take_recorded(res_obs.as_mut()).expect("recording sink installed");

        // The snapshot holds every tick < cut fully processed, so the
        // comparable suffix is exactly the reference events stamped
        // >= cut.
        let ref_suffix: Vec<Event> = ref_events
            .into_iter()
            .filter(|e| e.t_ms >= cut.as_millis())
            .collect();

        prop_assert_eq!(&res_metrics, &ref_metrics, "end-of-run metrics diverged");
        prop_assert_eq!(&res_events, &ref_suffix, "suffix event streams diverged");
        prop_assert_eq!(
            render_jsonl(&res_events),
            render_jsonl(&ref_suffix),
            "JSONL renderings diverged"
        );
        prop_assert_eq!(
            render_csv(&res_events),
            render_csv(&ref_suffix),
            "CSV renderings diverged"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn telemetry_is_restore_invariant(
        engine in any_engine(),
        env_kind in any_env_kind(),
        seed in 0u64..1000,
        interval_s in 1u64..8,
        cut_ms in 1_000u64..180_000,
    ) {
        let env = SensingEnvironment::generate(env_kind, 6, seed);
        let tw = tweaks(seed, engine);
        let profile = qz_app::apollo4();

        let mut reference =
            qz_app::build_simulation(BaselineKind::Quetzal, &profile, &env, &tw);
        reference.record_telemetry(SimDuration::from_secs(interval_s));
        reference.step_until(SimTime::from_millis(cut_ms));
        let state = reference.save_state().map_err(TestCaseError::fail)?;
        let (ref_metrics, ref_telemetry) = reference.run_with_telemetry();

        let mut resumed =
            qz_app::build_simulation(BaselineKind::Quetzal, &profile, &env, &tw);
        resumed.record_telemetry(SimDuration::from_secs(interval_s));
        resumed.restore_state(&state).map_err(TestCaseError::fail)?;
        let (res_metrics, res_telemetry) = resumed.run_with_telemetry();

        prop_assert_eq!(res_metrics, ref_metrics, "metrics diverged after restore");
        prop_assert_eq!(res_telemetry, ref_telemetry, "telemetry diverged after restore");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn rollback_then_replay_is_idempotent(
        engine in any_engine(),
        env_kind in any_env_kind(),
        seed in 0u64..1000,
        stride_s in 5u64..25,
        capacity in 3usize..10,
        horizon_s in 60u64..180,
        frac in 0u64..1000,
    ) {
        let env = SensingEnvironment::generate(env_kind, 6, seed);
        let tw = tweaks(seed, engine);
        let profile = qz_app::apollo4();
        let mut sim =
            qz_app::build_simulation(BaselineKind::Quetzal, &profile, &env, &tw);

        let mut history = History::new(SimDuration::from_secs(stride_s), capacity);
        history
            .advance_until(&mut sim, SimTime::from_secs(horizon_s))
            .map_err(TestCaseError::fail)?;
        let end = sim.time();
        let probe = sim.save_state().map_err(TestCaseError::fail)?;

        // An arbitrary rollback target on the covered timeline; the
        // pinned initial snapshot guarantees a floor, and millisecond
        // granularity means most targets sit strictly between captures.
        let held = history.times();
        let lo = held.first().copied().unwrap_or(SimTime::ZERO).as_millis();
        let target = SimTime::from_millis(lo + (end.as_millis() - lo) * frac / 1000);

        for round in 0..2 {
            let from = history
                .rollback_to(&mut sim, target)
                .map_err(TestCaseError::fail)?;
            prop_assert!(from <= target, "restored snapshot is at or before the target");
            prop_assert_eq!(sim.time(), target, "rollback lands exactly on the target");
            sim.step_until(end);
            let replayed = sim.save_state().map_err(TestCaseError::fail)?;
            prop_assert_eq!(
                &replayed,
                &probe,
                "replay round {} did not reproduce the end-of-horizon state",
                round
            );
        }
    }
}
