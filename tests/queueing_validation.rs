//! Validates the device simulator against the closed-form queueing
//! models that Quetzal's design rests on (paper §3).
//!
//! The scenarios pin the simulator into textbook regimes: abundant
//! power (service time = `t_exe`, deterministic), single-frame events
//! with near-exponential interarrivals (≈ Poisson arrivals), a single
//! one-task job. The measured time-averaged occupancy and loss rates are
//! then compared against the M/D/1 (Pollaczek–Khinchine) and flow-balance
//! predictions.

use quetzal::model::{AppSpecBuilder, TaskCost};
use quetzal::{Quetzal, QuetzalConfig};
use qz_queueing::{MG1, MM1K};
use qz_sim::{Route, SimConfig, Simulation, TaskBehavior};
use qz_traces::{EnvironmentKind, EventTraceBuilder, SensingEnvironment, SolarTrace};
use qz_types::{Seconds, SimDuration, Watts};

/// Builds a single-job, single-Compute-task device under constant full
/// sun with negligible capture costs, so the input buffer behaves like a
/// G/D/1/K queue with service time `service_s`.
fn run_queue_scenario(
    service_s: f64,
    mean_gap_s: u64,
    events: usize,
    capacity: usize,
) -> qz_sim::Metrics {
    let mut b = AppSpecBuilder::new();
    // Low power so service stays compute-bound at full sun.
    let t = b
        .fixed_task("serve", TaskCost::new(Seconds(service_s), Watts(0.001)))
        .unwrap();
    let job = b.job("serve-job", vec![t]).unwrap();
    let spec = b.build().unwrap();

    // Single-frame events (1 s duration → one capture each) with
    // exponential-ish gaps.
    let events = EventTraceBuilder::new()
        .event_count(events)
        .min_duration(SimDuration::from_secs(1))
        .max_duration(SimDuration::from_secs(1))
        .mean_gap(SimDuration::from_secs(mean_gap_s))
        .min_gap(SimDuration::from_millis(1))
        .interesting_probability(1.0)
        .seed(1234)
        .build();
    let env =
        SensingEnvironment::with_parts(EnvironmentKind::Crowded, events, SolarTrace::constant(1.0));

    let mut cfg = SimConfig::default();
    cfg.device.buffer_capacity = capacity;
    // Make the capture path nearly free so it does not perturb service.
    cfg.device.capture = TaskCost::new(Seconds(1e-4), Watts(1e-5));
    cfg.device.diff = TaskCost::new(Seconds(1e-4), Watts(1e-5));
    cfg.device.compress = TaskCost::new(Seconds(1e-4), Watts(1e-5));
    cfg.device.scheduler_overhead = TaskCost::new(Seconds(1e-6), Watts(1e-6));
    cfg.drain = SimDuration::from_secs(300);

    let runtime = Quetzal::new(spec, QuetzalConfig::default()).unwrap();
    Simulation::new(
        cfg,
        &env,
        runtime,
        job,
        vec![TaskBehavior::Compute],
        vec![Route::Finish],
    )
    .unwrap()
    .run()
}

/// The scenario's arrival rate: one frame per (1 s event + mean gap).
fn arrival_rate(mean_gap_s: u64) -> f64 {
    1.0 / (1.0 + mean_gap_s as f64)
}

#[test]
fn light_load_occupancy_tracks_pollaczek_khinchine() {
    // ρ ≈ 0.45: the measured E[N] must land in the band between the
    // D/D/1 floor (ρ) and the M/D/1 prediction (arrivals here are
    // *shifted*-exponential, less bursty than Poisson, so P-K is an
    // upper bound).
    let service = 2.5;
    let gap = 10;
    let lambda = arrival_rate(gap);
    let m = run_queue_scenario(service, gap, 600, 50);
    assert_eq!(
        m.ibo_discards, 0,
        "light load must not overflow a 50-slot buffer"
    );

    let measured = m.mean_occupancy();
    let md1 = MG1::deterministic(lambda, service).expected_number();
    let floor = lambda * service; // pure utilization, no queueing
    assert!(
        measured > floor * 0.8 && measured < md1 * 1.15,
        "measured E[N]={measured:.3}, utilization floor={floor:.3}, M/D/1={md1:.3}"
    );
}

#[test]
fn occupancy_grows_with_load() {
    let service = 2.5;
    let loads: Vec<f64> = [20u64, 10, 5]
        .into_iter()
        .map(|gap| run_queue_scenario(service, gap, 300, 50).mean_occupancy())
        .collect();
    assert!(
        loads[0] < loads[1] && loads[1] < loads[2],
        "E[N] must grow with load: {loads:?}"
    );
}

#[test]
fn overload_loss_rate_matches_flow_balance() {
    // ρ = λ·S ≈ 2: in sustained overload the server processes one input
    // per service time and everything else is lost, regardless of the
    // arrival distribution: loss fraction → 1 − 1/ρ.
    let service = 4.0;
    let gap = 1; // λ = 0.5 → ρ = 2
    let m = run_queue_scenario(service, gap, 800, 10);
    let loss = m.ibo_discards as f64 / m.arrivals as f64;
    let rho = arrival_rate(gap) * service;
    let flow_balance = 1.0 - 1.0 / rho;
    assert!(
        (loss - flow_balance).abs() < 0.08,
        "loss={loss:.3} vs flow balance={flow_balance:.3}"
    );
}

#[test]
fn blocking_grows_as_buffer_shrinks() {
    // Same moderate overload, three buffer sizes: smaller buffers lose
    // more — the qualitative M/M/1/K shape.
    let service = 3.0;
    let gap = 1; // ρ = 1.5
    let losses: Vec<f64> = [3usize, 6, 12]
        .into_iter()
        .map(|k| {
            let m = run_queue_scenario(service, gap, 400, k);
            m.ibo_discards as f64 / m.arrivals as f64
        })
        .collect();
    assert!(
        losses[0] > losses[1] && losses[1] > losses[2],
        "loss must shrink with capacity: {losses:?}"
    );
    // And the analytic M/M/1/K agrees on the ordering and rough scale.
    let analytic: Vec<f64> = [3usize, 6, 12]
        .into_iter()
        .map(|k| MM1K::new(arrival_rate(gap), 1.0 / service, k).blocking_probability())
        .collect();
    for (sim, theory) in losses.iter().zip(&analytic) {
        assert!(
            (sim - theory).abs() < 0.2,
            "sim loss {sim:.3} vs M/M/1/K {theory:.3} (losses={losses:?}, analytic={analytic:?})"
        );
    }
}
