//! Determinism guarantees of the fleet layer (ISSUE acceptance
//! criteria):
//!
//! 1. The same `(fleet_seed, config)` produces **byte-identical**
//!    JSON/CSV reports whether the fleet runs on 1 thread or 8.
//! 2. With an uncontended channel (single device, non-binding duty
//!    budget) every device's metrics match a standalone `qz-sim` run
//!    bit for bit — the uplink gate costs nothing when it never
//!    refuses.
//! 3. The event-horizon scheduler is a pure optimization: at any fleet
//!    size, thread count, stepping engine, or gateway count, its
//!    reports are byte-identical to the epoch-barrier reference —
//!    including under proptest-randomized env × system × duty-cycle
//!    configurations.

use proptest::prelude::*;
use qz_app::{apollo4, simulate, SimTweaks};
use qz_baselines::BaselineKind;
use qz_fleet::{run_fleet, Executor, FleetConfig, FleetSchedulerKind};
use qz_sim::UplinkConfig;
use qz_traces::{EnvironmentKind, SensingEnvironment};

#[test]
fn reports_are_byte_identical_across_thread_counts() {
    let cfg = FleetConfig {
        devices: 8,
        events: 8,
        ..FleetConfig::default()
    };
    let one = run_fleet(&cfg, Executor::new(1)).expect("1 thread");
    let two = run_fleet(&cfg, Executor::new(2)).expect("2 threads");
    let eight = run_fleet(&cfg, Executor::new(8)).expect("8 threads");
    assert_eq!(one.to_json(), two.to_json());
    assert_eq!(one.to_json(), eight.to_json());
    assert_eq!(one.to_csv(), eight.to_csv());
    assert_eq!(one.render_text(), eight.render_text());
}

#[test]
fn reruns_with_the_same_seed_are_identical() {
    let cfg = FleetConfig {
        devices: 4,
        events: 6,
        ..FleetConfig::default()
    };
    let a = run_fleet(&cfg, Executor::new(2)).expect("first run");
    let b = run_fleet(&cfg, Executor::new(2)).expect("second run");
    assert_eq!(a, b);
}

#[test]
fn different_fleet_seeds_diverge() {
    let a = run_fleet(
        &FleetConfig {
            devices: 4,
            events: 8,
            fleet_seed: 1,
            ..FleetConfig::default()
        },
        Executor::new(2),
    )
    .expect("seed 1");
    let b = run_fleet(
        &FleetConfig {
            devices: 4,
            events: 8,
            fleet_seed: 2,
            ..FleetConfig::default()
        },
        Executor::new(2),
    )
    .expect("seed 2");
    assert_ne!(a.to_json(), b.to_json(), "seeds must matter");
}

/// Runs the same config under both schedulers and asserts every
/// deterministic output surface matches byte for byte: JSON, CSV,
/// rendered text, and the qz-obs metrics registry.
fn assert_schedulers_agree(cfg: &FleetConfig, threads: usize) {
    let eb = run_fleet(
        &FleetConfig {
            scheduler: FleetSchedulerKind::EpochBarrier,
            ..cfg.clone()
        },
        Executor::new(threads),
    )
    .expect("epoch barrier runs");
    let eh = run_fleet(
        &FleetConfig {
            scheduler: FleetSchedulerKind::EventHorizon,
            ..cfg.clone()
        },
        Executor::new(threads),
    )
    .expect("event horizon runs");
    assert_eq!(eb.to_json(), eh.to_json(), "JSON diverged");
    assert_eq!(eb.to_csv(), eh.to_csv(), "CSV diverged");
    assert_eq!(eb.render_text(), eh.render_text(), "text diverged");
    assert_eq!(
        eb.registry().render(),
        eh.registry().render(),
        "metrics registry diverged"
    );
}

#[test]
fn event_horizon_is_byte_identical_at_one_eight_and_sixty_four_devices() {
    for devices in [1, 8, 64] {
        let cfg = FleetConfig {
            devices,
            events: 6,
            ..FleetConfig::default()
        };
        assert_schedulers_agree(&cfg, 2);
    }
}

#[test]
fn cross_scheduler_identity_holds_at_any_thread_count() {
    let cfg = FleetConfig {
        devices: 8,
        events: 8,
        ..FleetConfig::default()
    };
    let reference = run_fleet(&cfg, Executor::new(1)).expect("reference");
    for threads in [1, 2, 8] {
        let eh = run_fleet(
            &FleetConfig {
                scheduler: FleetSchedulerKind::EventHorizon,
                ..cfg.clone()
            },
            Executor::new(threads),
        )
        .expect("event horizon runs");
        assert_eq!(reference.to_json(), eh.to_json(), "{threads} threads");
    }
}

#[test]
fn cross_scheduler_identity_holds_on_both_stepping_engines() {
    for engine in [qz_sim::EngineKind::FastForward, qz_sim::EngineKind::Tick] {
        let mut cfg = FleetConfig {
            devices: 4,
            events: 5,
            ..FleetConfig::default()
        };
        cfg.tweaks.engine = engine;
        assert_schedulers_agree(&cfg, 2);
    }
}

#[test]
fn cross_scheduler_identity_holds_with_sharded_gateways() {
    let cfg = FleetConfig {
        devices: 16,
        events: 6,
        gateways: 4,
        ..FleetConfig::default()
    };
    assert_schedulers_agree(&cfg, 2);
}

/// The throughput-bench configuration shape: fine-grained 50 ms
/// back-pressure epochs and a stretched 30 s capture period. This is
/// where the event-horizon scheduler's advantage is largest, so the
/// byte-identity precondition of the recorded speedup is pinned here at
/// a size the test suite can afford.
#[test]
fn cross_scheduler_identity_holds_with_fine_epochs_and_slow_capture() {
    let mut cfg = FleetConfig {
        devices: 12,
        events: 5,
        gateways: 4,
        epoch: qz_types::SimDuration::from_millis(50),
        ..FleetConfig::default()
    };
    cfg.tweaks.capture_period = qz_types::SimDuration::from_secs(30);
    assert_schedulers_agree(&cfg, 2);
}

fn any_env_kind() -> impl Strategy<Value = EnvironmentKind> {
    prop_oneof![
        Just(EnvironmentKind::MoreCrowded),
        Just(EnvironmentKind::Crowded),
        Just(EnvironmentKind::LessCrowded),
        Just(EnvironmentKind::Short),
    ]
}

fn any_system() -> impl Strategy<Value = BaselineKind> {
    prop_oneof![
        Just(BaselineKind::Quetzal),
        Just(BaselineKind::NoAdapt),
        Just(BaselineKind::CatNap),
        Just(BaselineKind::AlwaysDegrade),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// A one-device fleet with the duty budget disabled never draws
    /// from the uplink RNG and never defers, so the device must behave
    /// exactly like a standalone simulation: same metrics, except the
    /// uplink-only grant counters which the ungated run doesn't track.
    #[test]
    fn uncontended_device_matches_standalone_run(
        system in any_system(),
        env_kind in any_env_kind(),
        fleet_seed in 0u64..500,
        events in 4usize..10,
    ) {
        let cfg = FleetConfig {
            devices: 1,
            events,
            fleet_seed,
            system,
            env_mix: vec![env_kind],
            uplink: UplinkConfig {
                // >= 1 disables the budget; p_busy stays 0 with one
                // device, so the gate grants every sense untouched.
                duty_cycle: 1.0,
                ..UplinkConfig::default()
            },
            ..FleetConfig::default()
        };
        let fleet = run_fleet(&cfg, Executor::new(2)).expect("fleet runs");
        prop_assert_eq!(fleet.devices.len(), 1);

        let env = SensingEnvironment::generate(env_kind, events, cfg.env_seed(0));
        let tweaks = SimTweaks { seed: cfg.sim_seed(0), ..cfg.tweaks.clone() };
        let standalone = simulate(system, &apollo4(), &env, &tweaks);

        let mut gated = fleet.devices[0].metrics.clone();
        prop_assert_eq!(gated.tx_grants, gated.total_reports(),
            "every report passed the gate exactly once");
        // Erase the gate-only counters the ungated engine never sets.
        gated.tx_grants = 0;
        gated.tx_airtime = qz_types::SimDuration::ZERO;
        prop_assert_eq!(gated, standalone,
            "an uncontended gate must not change the simulation");
    }

    /// The schedulers agree on *randomized* configurations, not just
    /// hand-picked ones: environment mix, system, duty cycle, seed,
    /// and gateway count all drawn by proptest.
    #[test]
    fn randomized_configs_match_across_schedulers(
        system in any_system(),
        env_kind in any_env_kind(),
        fleet_seed in 0u64..500,
        events in 4usize..8,
        devices in 2usize..6,
        gateways in 1usize..3,
        duty_percent in 5u32..100,
    ) {
        let cfg = FleetConfig {
            devices,
            events,
            fleet_seed,
            system,
            gateways,
            env_mix: vec![env_kind],
            uplink: UplinkConfig {
                duty_cycle: f64::from(duty_percent) / 100.0,
                ..UplinkConfig::default()
            },
            ..FleetConfig::default()
        };
        let eb = run_fleet(&FleetConfig {
            scheduler: FleetSchedulerKind::EpochBarrier,
            ..cfg.clone()
        }, Executor::new(2)).expect("epoch barrier runs");
        let eh = run_fleet(&FleetConfig {
            scheduler: FleetSchedulerKind::EventHorizon,
            ..cfg
        }, Executor::new(2)).expect("event horizon runs");
        prop_assert_eq!(eb.to_json(), eh.to_json());
        prop_assert_eq!(eb.to_csv(), eh.to_csv());
    }
}
