//! Determinism guarantees of the fleet layer (ISSUE acceptance
//! criteria):
//!
//! 1. The same `(fleet_seed, config)` produces **byte-identical**
//!    JSON/CSV reports whether the fleet runs on 1 thread or 8.
//! 2. With an uncontended channel (single device, non-binding duty
//!    budget) every device's metrics match a standalone `qz-sim` run
//!    bit for bit — the uplink gate costs nothing when it never
//!    refuses.

use proptest::prelude::*;
use qz_app::{apollo4, simulate, SimTweaks};
use qz_baselines::BaselineKind;
use qz_fleet::{run_fleet, Executor, FleetConfig};
use qz_sim::UplinkConfig;
use qz_traces::{EnvironmentKind, SensingEnvironment};

#[test]
fn reports_are_byte_identical_across_thread_counts() {
    let cfg = FleetConfig {
        devices: 8,
        events: 8,
        ..FleetConfig::default()
    };
    let one = run_fleet(&cfg, Executor::new(1)).expect("1 thread");
    let two = run_fleet(&cfg, Executor::new(2)).expect("2 threads");
    let eight = run_fleet(&cfg, Executor::new(8)).expect("8 threads");
    assert_eq!(one.to_json(), two.to_json());
    assert_eq!(one.to_json(), eight.to_json());
    assert_eq!(one.to_csv(), eight.to_csv());
    assert_eq!(one.render_text(), eight.render_text());
}

#[test]
fn reruns_with_the_same_seed_are_identical() {
    let cfg = FleetConfig {
        devices: 4,
        events: 6,
        ..FleetConfig::default()
    };
    let a = run_fleet(&cfg, Executor::new(2)).expect("first run");
    let b = run_fleet(&cfg, Executor::new(2)).expect("second run");
    assert_eq!(a, b);
}

#[test]
fn different_fleet_seeds_diverge() {
    let a = run_fleet(
        &FleetConfig {
            devices: 4,
            events: 8,
            fleet_seed: 1,
            ..FleetConfig::default()
        },
        Executor::new(2),
    )
    .expect("seed 1");
    let b = run_fleet(
        &FleetConfig {
            devices: 4,
            events: 8,
            fleet_seed: 2,
            ..FleetConfig::default()
        },
        Executor::new(2),
    )
    .expect("seed 2");
    assert_ne!(a.to_json(), b.to_json(), "seeds must matter");
}

fn any_env_kind() -> impl Strategy<Value = EnvironmentKind> {
    prop_oneof![
        Just(EnvironmentKind::MoreCrowded),
        Just(EnvironmentKind::Crowded),
        Just(EnvironmentKind::LessCrowded),
        Just(EnvironmentKind::Short),
    ]
}

fn any_system() -> impl Strategy<Value = BaselineKind> {
    prop_oneof![
        Just(BaselineKind::Quetzal),
        Just(BaselineKind::NoAdapt),
        Just(BaselineKind::CatNap),
        Just(BaselineKind::AlwaysDegrade),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// A one-device fleet with the duty budget disabled never draws
    /// from the uplink RNG and never defers, so the device must behave
    /// exactly like a standalone simulation: same metrics, except the
    /// uplink-only grant counters which the ungated run doesn't track.
    #[test]
    fn uncontended_device_matches_standalone_run(
        system in any_system(),
        env_kind in any_env_kind(),
        fleet_seed in 0u64..500,
        events in 4usize..10,
    ) {
        let cfg = FleetConfig {
            devices: 1,
            events,
            fleet_seed,
            system,
            env_mix: vec![env_kind],
            uplink: UplinkConfig {
                // >= 1 disables the budget; p_busy stays 0 with one
                // device, so the gate grants every sense untouched.
                duty_cycle: 1.0,
                ..UplinkConfig::default()
            },
            ..FleetConfig::default()
        };
        let fleet = run_fleet(&cfg, Executor::new(2)).expect("fleet runs");
        prop_assert_eq!(fleet.devices.len(), 1);

        let env = SensingEnvironment::generate(env_kind, events, cfg.env_seed(0));
        let tweaks = SimTweaks { seed: cfg.sim_seed(0), ..cfg.tweaks.clone() };
        let standalone = simulate(system, &apollo4(), &env, &tweaks);

        let mut gated = fleet.devices[0].metrics.clone();
        prop_assert_eq!(gated.tx_grants, gated.total_reports(),
            "every report passed the gate exactly once");
        // Erase the gate-only counters the ungated engine never sets.
        gated.tx_grants = 0;
        gated.tx_airtime = qz_types::SimDuration::ZERO;
        prop_assert_eq!(gated, standalone,
            "an uncontended gate must not change the simulation");
    }
}
