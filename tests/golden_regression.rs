//! Golden-value regression tests: exact metric values for fixed seeds.
//!
//! The simulator is fully deterministic, so any change to scheduling,
//! energy accounting, trace generation or the runtime shows up as a
//! change in these numbers. A failure here is not necessarily a bug —
//! it means behaviour changed and the goldens (and EXPERIMENTS.md, whose
//! results would shift too) must be consciously re-baselined.
//!
//! Regenerate with:
//! `cargo test -p qz-bench --test golden_regression -- --nocapture`
//! (failing assertions print the new values).

use qz_app::{apollo4, msp430fr5994, simulate, SimTweaks};
use qz_baselines::BaselineKind;
use qz_traces::{EnvironmentKind, SensingEnvironment};

const SEED: u64 = 424_242;

fn fingerprint(
    kind: BaselineKind,
    env_kind: EnvironmentKind,
    msp430: bool,
) -> (u64, u64, u64, u64, u64) {
    let env = SensingEnvironment::generate(env_kind, 40, SEED);
    let profile = if msp430 { msp430fr5994() } else { apollo4() };
    let m = simulate(
        kind,
        &profile,
        &env,
        &SimTweaks {
            seed: SEED,
            ..SimTweaks::default()
        },
    );
    (
        m.interesting_discarded(),
        m.ibo_interesting,
        m.false_negatives,
        m.interesting_reported(),
        m.total_jobs(),
    )
}

macro_rules! golden {
    ($name:ident, $kind:expr, $env:expr, $msp430:expr) => {
        #[test]
        fn $name() {
            let got = fingerprint($kind, $env, $msp430);
            // On first run (or after an intentional change) copy the
            // printed tuple into the GOLDENS table below.
            let expect = GOLDENS
                .iter()
                .find(|(n, _)| *n == stringify!($name))
                .map(|(_, v)| *v)
                .expect("golden entry exists");
            assert_eq!(
                got,
                expect,
                "{} drifted — re-baseline if intentional",
                stringify!($name)
            );
        }
    };
}

/// One baselined fingerprint: (discarded, ibo, false-neg, reported, jobs).
type Fingerprint = (u64, u64, u64, u64, u64);

/// The baselined fingerprints.
const GOLDENS: &[(&str, Fingerprint)] = &[
    ("qz_crowded", (106, 58, 48, 617, 1829)),
    ("na_crowded", (324, 306, 18, 399, 1262)),
    ("ad_crowded", (155, 0, 155, 568, 1932)),
    ("cn_crowded", (252, 229, 23, 471, 1436)),
    ("qz_more_crowded", (1344, 577, 767, 5715, 17478)),
    ("qz_less_crowded", (37, 20, 17, 217, 640)),
    ("qz_msp430_short", (37, 23, 14, 100, 313)),
];

golden!(
    qz_crowded,
    BaselineKind::Quetzal,
    EnvironmentKind::Crowded,
    false
);
golden!(
    na_crowded,
    BaselineKind::NoAdapt,
    EnvironmentKind::Crowded,
    false
);
golden!(
    ad_crowded,
    BaselineKind::AlwaysDegrade,
    EnvironmentKind::Crowded,
    false
);
golden!(
    cn_crowded,
    BaselineKind::CatNap,
    EnvironmentKind::Crowded,
    false
);
golden!(
    qz_more_crowded,
    BaselineKind::Quetzal,
    EnvironmentKind::MoreCrowded,
    false
);
golden!(
    qz_less_crowded,
    BaselineKind::Quetzal,
    EnvironmentKind::LessCrowded,
    false
);
golden!(
    qz_msp430_short,
    BaselineKind::Quetzal,
    EnvironmentKind::Short,
    true
);

/// The fleet layer gets the same treatment: a small 3-device run whose
/// entire JSON report is snapshotted byte-for-byte. Covers per-device
/// simulation, uplink contention accounting, and aggregate statistics
/// in one artifact. Regenerate after an intentional behaviour change:
/// `qz fleet --devices 3 --events 6 --seed 424242 --json tests/golden/fleet_small.json`
#[test]
fn fleet_small_json_snapshot() {
    let cfg = qz_fleet::FleetConfig {
        devices: 3,
        events: 6,
        fleet_seed: SEED,
        ..qz_fleet::FleetConfig::default()
    };
    let report = qz_fleet::run_fleet(&cfg, qz_fleet::Executor::new(2)).expect("fleet runs");
    let got = report.to_json();
    let want = include_str!("golden/fleet_small.json");
    assert_eq!(
        got, want,
        "fleet JSON drifted — re-baseline tests/golden/fleet_small.json if intentional:\n{got}"
    );
}

/// The event-horizon scheduler must reproduce the *same* golden file:
/// it is a pure optimization of the epoch-barrier reference, so a drift
/// here without a drift in `fleet_small_json_snapshot` means the two
/// schedulers diverged — never re-baseline one without the other.
#[test]
fn fleet_small_json_snapshot_event_horizon() {
    let cfg = qz_fleet::FleetConfig {
        devices: 3,
        events: 6,
        fleet_seed: SEED,
        scheduler: qz_fleet::FleetSchedulerKind::EventHorizon,
        ..qz_fleet::FleetConfig::default()
    };
    let report = qz_fleet::run_fleet(&cfg, qz_fleet::Executor::new(2)).expect("fleet runs");
    let got = report.to_json();
    let want = include_str!("golden/fleet_small.json");
    assert_eq!(
        got, want,
        "event-horizon run diverged from the epoch-barrier golden:\n{got}"
    );
}
