//! Profiling must be provably invisible: arming the `qz-prof` phase
//! profiler, the horizon-cause accounting, or a flight-recorder ring
//! must not change a single simulated bit. Each test runs the same
//! seeded configuration with observability on and off and demands
//! byte-for-byte identical outputs — metrics on the single-device
//! engines, the full JSON report on the fleet coordinator.
//!
//! A failure here means an instrumentation path leaked into simulation
//! state (e.g. a profiler span that skips work when disabled, or an
//! observer that mutates what it observes). That is always a bug, never
//! a re-baseline.

use qz_app::{apollo4, msp430fr5994, profile_run, simulate, SimTweaks};
use qz_baselines::BaselineKind;
use qz_fleet::{run_fleet, run_fleet_profiled, Executor, FleetConfig};
use qz_sim::EngineKind;
use qz_traces::{EnvironmentKind, SensingEnvironment};

const SEED: u64 = 77_031;

fn tweaks(engine: EngineKind) -> SimTweaks {
    SimTweaks {
        seed: SEED,
        engine,
        ..SimTweaks::default()
    }
}

/// Profiler + horizon accounting on vs off, both engines, both device
/// profiles: end-of-run metrics must be equal.
#[test]
fn profiled_run_metrics_match_plain_run() {
    for engine in [EngineKind::Tick, EngineKind::FastForward] {
        for (profile, label) in [(apollo4(), "apollo4"), (msp430fr5994(), "msp430")] {
            let env = SensingEnvironment::generate(EnvironmentKind::Crowded, 30, SEED);
            let plain = simulate(BaselineKind::Quetzal, &profile, &env, &tweaks(engine));
            let profiled =
                profile_run(BaselineKind::Quetzal, &profile, &env, &tweaks(engine), None);
            assert_eq!(
                plain,
                profiled.metrics,
                "profiler changed {label} metrics under the {} engine",
                engine.label()
            );
            assert!(
                !profiled.report.phases.is_empty(),
                "profiled run produced no phase stats — profiling silently off"
            );
        }
    }
}

/// Installing the flight-recorder ring (which also turns on periodic
/// snapshot emission) must not change metrics either — on both
/// engines, so the snapshot-due horizon bound is exercised.
#[test]
fn flight_recorder_does_not_change_metrics() {
    let profile = apollo4();
    let env = SensingEnvironment::generate(EnvironmentKind::LessCrowded, 30, SEED);
    for engine in [EngineKind::Tick, EngineKind::FastForward] {
        let plain = simulate(BaselineKind::Quetzal, &profile, &env, &tweaks(engine));
        let meta = qz_prof::FlightMeta {
            source: "profiler_invisibility test".into(),
            repro: "cargo test -p qz-bench --test profiler_invisibility".into(),
        };
        let flown = profile_run(
            BaselineKind::Quetzal,
            &profile,
            &env,
            &tweaks(engine),
            Some(meta),
        );
        assert_eq!(
            plain,
            flown.metrics,
            "flight recorder changed metrics under the {} engine",
            engine.label()
        );
        let handle = flown.flight.expect("flight handle returned");
        assert!(
            handle
                .dump_json()
                .starts_with("{\"schema\":\"qz-flight/v1\""),
            "flight dump lost its schema header"
        );
    }
}

/// Fleet coordinator: the profiled run must emit a byte-identical
/// report. `FleetReport::to_json` has no non-deterministic fields, so
/// string equality is the strongest possible check.
#[test]
fn fleet_profiled_report_is_byte_identical() {
    let cfg = FleetConfig {
        devices: 5,
        events: 12,
        fleet_seed: SEED,
        ..FleetConfig::default()
    };
    let plain = run_fleet(&cfg, Executor::new(2)).expect("fleet runs");
    let (profiled, profile) = run_fleet_profiled(&cfg, Executor::new(2)).expect("fleet runs");
    assert_eq!(
        plain.to_json(),
        profiled.to_json(),
        "fleet profiling changed the report"
    );
    assert!(
        !profile.profiler.report().phases.is_empty(),
        "fleet profile came back empty — profiling silently off"
    );
    assert!(
        !profile.horizon.is_empty(),
        "fleet horizon accounting came back empty"
    );
}

/// The disabled profiler (the default) reports nothing: the compiled-in
/// spans must stay no-ops unless explicitly armed.
#[test]
fn disabled_profiler_records_nothing() {
    let mut prof = qz_prof::PhaseProfiler::disabled();
    let started = prof.begin();
    assert!(started.is_none(), "disabled profiler read the clock");
    prof.end(qz_prof::Phase::Sprint, started);
    assert!(
        prof.report().phases.is_empty(),
        "disabled profiler recorded a span"
    );
}
