//! Cross-crate integration tests: the paper's qualitative results must
//! hold on small workloads, end to end through traces → energy →
//! runtime → simulator.

use qz_app::{apollo4, ideal, msp430fr5994, pzo_threshold, simulate, SimTweaks};
use qz_baselines::BaselineKind;
use qz_traces::{EnvironmentKind, SensingEnvironment};
use qz_types::Watts;

const EVENTS: usize = 60;
const SEED: u64 = 20_250_330;

fn env(kind: EnvironmentKind) -> SensingEnvironment {
    SensingEnvironment::generate(kind, EVENTS, SEED)
}

#[test]
fn quetzal_beats_noadapt_in_every_environment() {
    let p = apollo4();
    let t = SimTweaks::default();
    for kind in EnvironmentKind::APOLLO_SET {
        let e = env(kind);
        let qz = simulate(BaselineKind::Quetzal, &p, &e, &t);
        let na = simulate(BaselineKind::NoAdapt, &p, &e, &t);
        assert!(
            qz.interesting_discarded() < na.interesting_discarded(),
            "{kind:?}: QZ {} vs NA {}",
            qz.interesting_discarded(),
            na.interesting_discarded()
        );
    }
}

#[test]
fn quetzal_beats_always_degrade_in_every_environment() {
    let p = apollo4();
    let t = SimTweaks::default();
    for kind in EnvironmentKind::APOLLO_SET {
        let e = env(kind);
        let qz = simulate(BaselineKind::Quetzal, &p, &e, &t);
        let ad = simulate(BaselineKind::AlwaysDegrade, &p, &e, &t);
        assert!(
            qz.interesting_discarded() <= ad.interesting_discarded(),
            "{kind:?}: QZ {} vs AD {}",
            qz.interesting_discarded(),
            ad.interesting_discarded()
        );
    }
}

#[test]
fn quetzal_beats_catnap_and_pzo() {
    let p = apollo4();
    let t = SimTweaks::default();
    let pzo = BaselineKind::PowerThreshold(pzo_threshold(6, Watts(0.010)));
    for kind in EnvironmentKind::APOLLO_SET {
        let e = env(kind);
        let qz = simulate(BaselineKind::Quetzal, &p, &e, &t).interesting_discarded();
        let cn = simulate(BaselineKind::CatNap, &p, &e, &t).interesting_discarded();
        let pz = simulate(pzo, &p, &e, &t).interesting_discarded();
        assert!(qz <= cn, "{kind:?}: QZ {qz} vs CN {cn}");
        assert!(qz <= pz, "{kind:?}: QZ {qz} vs PZO {pz}");
    }
}

#[test]
fn crowding_increases_pressure_on_noadapt() {
    // More crowded environments must discard a larger *fraction* under
    // the non-adaptive baseline (Fig. 9's x-axis gradient).
    let p = apollo4();
    let t = SimTweaks::default();
    let more = simulate(
        BaselineKind::NoAdapt,
        &p,
        &env(EnvironmentKind::MoreCrowded),
        &t,
    );
    let less = simulate(
        BaselineKind::NoAdapt,
        &p,
        &env(EnvironmentKind::LessCrowded),
        &t,
    );
    assert!(
        more.interesting_discarded_fraction() > less.interesting_discarded_fraction(),
        "more {} vs less {}",
        more.interesting_discarded_fraction(),
        less.interesting_discarded_fraction()
    );
}

#[test]
fn always_degrade_trades_ibos_for_misclassifications() {
    // The Fig. 3/9 story: AD suffers no IBO losses but pays in false
    // negatives and only ever sends low-quality reports.
    let p = apollo4();
    let e = env(EnvironmentKind::Crowded);
    let ad = simulate(BaselineKind::AlwaysDegrade, &p, &e, &SimTweaks::default());
    assert_eq!(ad.reports_interesting_high, 0);
    assert!(ad.false_negatives > 0);
    let na = simulate(BaselineKind::NoAdapt, &p, &e, &SimTweaks::default());
    assert!(ad.ibo_interesting < na.ibo_interesting);
    assert!(ad.false_negatives > na.false_negatives);
}

#[test]
fn quetzal_reports_mixed_quality() {
    // Quetzal degrades only under pressure: it must send some
    // full-quality and some degraded reports in the middle environment.
    let qz = simulate(
        BaselineKind::Quetzal,
        &apollo4(),
        &env(EnvironmentKind::Crowded),
        &SimTweaks::default(),
    );
    assert!(
        qz.reports_interesting_high > 0,
        "some reports at high quality"
    );
    assert!(qz.reports_interesting_low > 0, "some reports degraded");
    assert!(qz.ibo_predictions > 0, "the IBO engine must have fired");
}

#[test]
fn ideal_bounds_everyone() {
    let p = apollo4();
    let t = SimTweaks::default();
    for kind in EnvironmentKind::APOLLO_SET {
        let e = env(kind);
        let bound = ideal(&p, &e, &t);
        for sys in [
            BaselineKind::Quetzal,
            BaselineKind::NoAdapt,
            BaselineKind::CatNap,
        ] {
            let m = simulate(sys, &p, &e, &t);
            assert!(
                m.interesting_reported() <= bound.interesting_reported(),
                "{kind:?}/{sys:?} reported more than Ideal"
            );
        }
    }
}

#[test]
fn conservation_invariants_hold_for_every_system() {
    let p = apollo4();
    let e = env(EnvironmentKind::Crowded);
    let t = SimTweaks::default();
    for kind in [
        BaselineKind::Quetzal,
        BaselineKind::QuetzalHw,
        BaselineKind::NoAdapt,
        BaselineKind::AlwaysDegrade,
        BaselineKind::CatNap,
        BaselineKind::FixedThreshold(0.5),
        BaselineKind::PowerThreshold(Watts(0.01)),
        BaselineKind::AvgSe2e,
        BaselineKind::FcfsIbo,
        BaselineKind::LcfsIbo,
    ] {
        let m = simulate(kind, &p, &e, &t);
        // Every arrival is stored or IBO-discarded.
        assert_eq!(m.arrivals, m.stored + m.ibo_discards, "{kind:?}");
        // Every frame is filtered, an arrival, or missed.
        assert_eq!(
            m.frames_total,
            m.frames_filtered + m.arrivals + m.frames_missed_off,
            "{kind:?}"
        );
        // Stored inputs end as classification drops, reports, or pending
        // (at most one additionally in flight at the horizon).
        let resolved = m.false_negatives + m.true_negatives + m.total_reports() + m.pending;
        assert!(
            resolved <= m.stored + 1,
            "{kind:?}: resolved {resolved} > stored {}",
            m.stored
        );
        // Time accounting covers the whole run.
        assert_eq!(m.sim_time, m.time_on + m.time_off, "{kind:?}");
    }
}

#[test]
fn msp430_profile_runs_the_same_story() {
    let p = msp430fr5994();
    let e = env(EnvironmentKind::Short);
    let t = SimTweaks::default();
    let qz = simulate(BaselineKind::Quetzal, &p, &e, &t);
    let na = simulate(BaselineKind::NoAdapt, &p, &e, &t);
    assert!(qz.interesting_discarded() <= na.interesting_discarded());
    assert!(
        qz.high_quality_fraction() > 0.5,
        "QZ keeps most reports high quality"
    );
}

#[test]
fn full_stack_is_deterministic() {
    let p = apollo4();
    let e = env(EnvironmentKind::Crowded);
    let t = SimTweaks::default();
    let a = simulate(BaselineKind::Quetzal, &p, &e, &t);
    let b = simulate(BaselineKind::Quetzal, &p, &e, &t);
    assert_eq!(a, b);
}
