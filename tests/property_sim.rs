//! Property-based integration tests: the simulator's conservation
//! invariants must hold for *arbitrary* small configurations, not just
//! the curated experiment presets.

use proptest::prelude::*;
use qz_app::{apollo4, simulate, SimTweaks};
use qz_baselines::BaselineKind;
use qz_sim::CheckpointPolicy;
use qz_traces::{EnvironmentKind, SensingEnvironment};
use qz_types::{SimDuration, Watts};

fn any_baseline() -> impl Strategy<Value = BaselineKind> {
    prop_oneof![
        Just(BaselineKind::Quetzal),
        Just(BaselineKind::NoAdapt),
        Just(BaselineKind::AlwaysDegrade),
        Just(BaselineKind::CatNap),
        (0u8..=10).prop_map(|p| BaselineKind::FixedThreshold(p as f64 / 10.0)),
        (1u32..40).prop_map(|mw| BaselineKind::PowerThreshold(Watts(mw as f64 / 1e3))),
        Just(BaselineKind::AvgSe2e),
        Just(BaselineKind::FcfsIbo),
        Just(BaselineKind::LcfsIbo),
        (60u8..=95).prop_map(|p| BaselineKind::QuetzalVar(p as f64 / 100.0)),
    ]
}

fn any_env_kind() -> impl Strategy<Value = EnvironmentKind> {
    prop_oneof![
        Just(EnvironmentKind::MoreCrowded),
        Just(EnvironmentKind::Crowded),
        Just(EnvironmentKind::LessCrowded),
        Just(EnvironmentKind::Short),
    ]
}

fn any_checkpoint_policy() -> impl Strategy<Value = CheckpointPolicy> {
    prop_oneof![
        Just(CheckpointPolicy::JustInTime),
        (50u64..2000).prop_map(|ms| CheckpointPolicy::Periodic {
            interval: SimDuration::from_millis(ms)
        }),
        Just(CheckpointPolicy::TaskBoundary),
    ]
}

proptest! {
    // Each case simulates a few minutes of device time; keep the count
    // modest so the suite stays fast.
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn conservation_holds_for_arbitrary_configurations(
        kind in any_baseline(),
        env_kind in any_env_kind(),
        seed in 0u64..1000,
        buffer in 2usize..16,
        capture_period in 1u64..4,
        jitter in 0.0f64..0.6,
        checkpoint_policy in any_checkpoint_policy(),
        cells in 2u32..10,
    ) {
        let env = SensingEnvironment::generate(env_kind, 8, seed);
        let tweaks = SimTweaks {
            seed,
            buffer_capacity: buffer,
            capture_period: SimDuration::from_secs(capture_period),
            task_jitter: jitter,
            checkpoint_policy,
            harvester_cells: cells,
            drain: SimDuration::from_secs(600),
            ..SimTweaks::default()
        };
        let m = simulate(kind, &apollo4(), &env, &tweaks);

        // Frame accounting.
        prop_assert_eq!(m.frames_total, m.frames_filtered + m.arrivals + m.frames_missed_off);
        prop_assert_eq!(m.arrivals, m.stored + m.ibo_discards);
        prop_assert!(m.interesting_total <= m.frames_total);
        prop_assert!(m.ibo_interesting <= m.ibo_discards);

        // Stored inputs resolve to classification outcomes, reports or
        // pending work (at most one extra in flight at the horizon).
        let resolved = m.false_negatives + m.true_negatives + m.total_reports() + m.pending;
        prop_assert!(resolved <= m.stored + 1);

        // Time and occupancy.
        prop_assert_eq!(m.sim_time, m.time_on + m.time_off);
        prop_assert!(m.mean_occupancy() <= buffer as f64 + 1e-9);

        // Power-failure accounting: JIT takes exactly one checkpoint per
        // failure and never re-executes.
        if checkpoint_policy == CheckpointPolicy::JustInTime {
            prop_assert_eq!(m.checkpoints, m.power_failures);
            prop_assert_eq!(m.reexecuted.as_millis(), 0);
        }

        // Energy sanity: the device cannot report more than it stored.
        prop_assert!(m.total_reports() <= m.stored);
    }

    #[test]
    fn determinism_for_arbitrary_configurations(
        kind in any_baseline(),
        env_kind in any_env_kind(),
        seed in 0u64..1000,
    ) {
        let env = SensingEnvironment::generate(env_kind, 6, seed);
        let tweaks = SimTweaks { seed, ..SimTweaks::default() };
        let a = simulate(kind, &apollo4(), &env, &tweaks);
        let b = simulate(kind, &apollo4(), &env, &tweaks);
        prop_assert_eq!(a, b);
    }
}
