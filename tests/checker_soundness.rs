//! Soundness of the `qz-check` static analyzer against the simulator:
//! configs it accepts must simulate cleanly, and configs it rejects for
//! energy feasibility must *genuinely* exhibit the predicted failure
//! (non-termination or buffer overflow) when forced through the
//! simulator. A checker that cries wolf — or sleeps through one — fails
//! here.

use proptest::prelude::*;
use qz_app::{apollo4, check_experiment, experiment_configs, msp430fr5994, simulate, SimTweaks};
use qz_baselines::{build_runtime, BaselineKind};
use qz_check::Code;
use qz_sim::{CheckpointPolicy, Simulation};
use qz_traces::{EnvironmentKind, SensingEnvironment};
use qz_types::{Farads, SimDuration, Watts};

/// Runs an experiment config through the raw `qz-sim` assembly path,
/// bypassing `qz-app`'s panic-on-errors front end so deliberately
/// rejected configs can still be simulated.
fn simulate_unchecked(
    kind: BaselineKind,
    profile: &qz_app::DeviceProfile,
    env: &SensingEnvironment,
    tweaks: &SimTweaks,
) -> qz_sim::Metrics {
    let (app, qcfg, cfg) = experiment_configs(kind, profile, tweaks);
    let runtime = build_runtime(kind, app.spec.clone(), qcfg).expect("valid runtime");
    Simulation::new(cfg, env, runtime, app.entry, app.behaviors, app.routes)
        .expect("valid pipeline binding")
        .run()
}

/// Every preset any figure simulates.
const PRESETS: [BaselineKind; 13] = [
    BaselineKind::Quetzal,
    BaselineKind::QuetzalHw,
    BaselineKind::NoAdapt,
    BaselineKind::AlwaysDegrade,
    BaselineKind::CatNap,
    BaselineKind::FixedThreshold(0.25),
    BaselineKind::FixedThreshold(0.50),
    BaselineKind::FixedThreshold(0.75),
    BaselineKind::PowerThreshold(Watts(0.030)),
    BaselineKind::AvgSe2e,
    BaselineKind::QuetzalVar(0.9),
    BaselineKind::FcfsIbo,
    BaselineKind::LcfsIbo,
];

/// All shipped presets are error-free; the Apollo 4 is fully clean and
/// the MSP430 warns only `QZ011` (the intentional Fig. 13 regime where
/// full quality is unsustainable and degradation is the point).
#[test]
fn shipped_presets_are_clean() {
    let tweaks = SimTweaks::default();
    for profile in [apollo4(), msp430fr5994()] {
        for kind in PRESETS {
            let report = check_experiment(kind, &profile, &tweaks);
            assert!(
                !report.has_errors(),
                "{kind:?} on {}:\n{}",
                profile.name,
                report.render_text()
            );
            let unexpected: Vec<_> = report
                .diagnostics()
                .iter()
                .filter(|d| {
                    d.severity == qz_check::Severity::Warning
                        && !(profile.name == "MSP430FR5994" && d.code == Code::QZ011)
                })
                .collect();
            assert!(
                unexpected.is_empty(),
                "{kind:?} on {}: unexpected warnings {unexpected:?}",
                profile.name
            );
        }
    }
}

/// A config the checker rejects with QZ001 (the full-sun replay deficit
/// exceeds the per-charge budget under whole-task replay) must
/// genuinely live-lock: with a single-cell harvester (8 mW ceiling) the
/// 20 mJ radio burst drains ~16.8 mJ net per attempt from a ~2.7 mJ
/// budget, so the non-degrading baseline replays it forever and
/// completes zero jobs.
#[test]
fn qz001_configs_genuinely_stall() {
    let tweaks = SimTweaks {
        checkpoint_policy: CheckpointPolicy::TaskBoundary,
        supercap_capacitance: Some(Farads(1e-3)),
        harvester_cells: 1,
        drain: SimDuration::from_secs(300),
        ..SimTweaks::default()
    };
    let profile = apollo4();
    let report = check_experiment(BaselineKind::NoAdapt, &profile, &tweaks);
    assert!(
        report
            .diagnostics()
            .iter()
            .any(|d| d.code == Code::QZ001 && d.severity == qz_check::Severity::Error),
        "checker must reject this config:\n{}",
        report.render_text()
    );

    let env = SensingEnvironment::generate(EnvironmentKind::Crowded, 30, 11);
    let m = simulate_unchecked(BaselineKind::NoAdapt, &profile, &env, &tweaks);
    // Negative frames skip the radio, so their jobs may still complete;
    // the live-lock shows up as the radio burst never finishing — not
    // one report ever lands, while the device replays through repeated
    // power failures.
    let reports = m.reports_interesting_high
        + m.reports_interesting_low
        + m.reports_uninteresting_high
        + m.reports_uninteresting_low;
    assert_eq!(
        reports, 0,
        "QZ001 predicted the radio burst never completes, but {reports} reports landed"
    );
    assert!(
        m.power_failures > 0,
        "the stall should manifest as replay through power failures"
    );
}

/// A config the checker rejects with QZ010 (even the cheapest options
/// cannot keep up with the worst-case arrival rate) must genuinely
/// overflow the input buffer when events actually arrive that fast.
#[test]
fn qz010_configs_genuinely_overflow() {
    // 20 Hz against a best-case E[S_min] ≈ 0.069 s → λ·E[S_min] ≈ 1.4.
    let tweaks = SimTweaks {
        capture_period: SimDuration::from_millis(50),
        buffer_capacity: 4,
        ..SimTweaks::default()
    };
    let profile = apollo4();
    let report = check_experiment(BaselineKind::Quetzal, &profile, &tweaks);
    assert!(
        report
            .diagnostics()
            .iter()
            .any(|d| d.code == Code::QZ010 && d.severity == qz_check::Severity::Error),
        "checker must flag λ·E[S_min] ≥ 1:\n{}",
        report.render_text()
    );

    let env = SensingEnvironment::generate(EnvironmentKind::MoreCrowded, 60, 3);
    let m = simulate_unchecked(BaselineKind::Quetzal, &profile, &env, &tweaks);
    assert!(
        m.ibo_discards > 0,
        "QZ010 predicted inevitable overflow, but no frame was discarded"
    );
}

proptest! {
    // Each case simulates minutes of device time; keep the count modest.
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Soundness of acceptance: any config in this (deliberately wide)
    /// tweak space that the checker passes without errors must simulate
    /// to completion without panicking — including with the test
    /// profile's `overflow-checks = true` arming every narrowing path.
    #[test]
    fn accepted_configs_simulate_cleanly(
        kind_idx in 0usize..PRESETS.len(),
        seed in 0u64..1000,
        buffer in 2usize..16,
        capture_period_ms in prop_oneof![Just(500u64), Just(1000), Just(2000), Just(4000)],
        cells in 1u32..10,
        cap_mf in prop_oneof![Just(0.5f64), Just(1.0), Just(3.3), Just(33.0)],
        msp430 in any::<bool>(),
    ) {
        let profile = if msp430 { msp430fr5994() } else { apollo4() };
        let tweaks = SimTweaks {
            seed,
            buffer_capacity: buffer,
            capture_period: SimDuration::from_millis(capture_period_ms),
            harvester_cells: cells,
            supercap_capacitance: Some(Farads(cap_mf * 1e-3)),
            ..SimTweaks::default()
        };
        let kind = PRESETS[kind_idx];
        let report = check_experiment(kind, &profile, &tweaks);
        prop_assume!(!report.has_errors());
        // `simulate` re-runs the checker and panics on errors, so a
        // clean return is the property.
        let env = SensingEnvironment::generate(EnvironmentKind::Crowded, 20, seed);
        let m = simulate(kind, &profile, &env, &tweaks);
        prop_assert!(m.frames_total >= m.ibo_discards);
    }
}
