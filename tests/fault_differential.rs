//! The differential oracle harness at scale: ≥ 200 seeded fault
//! campaigns across three preset × device configurations, every one
//! judged against the fault-free run and the always-on oracle on all
//! four invariants. A violation fails the test and prints the
//! single-line `--seed` repro command for the offending campaign.
//!
//! Also pins the determinism contract: for a fixed seed, a campaign
//! family's JSON report is byte-identical across thread counts.

use qz_app::{apollo4, msp430fr5994, DeviceProfile, SimTweaks};
use qz_baselines::BaselineKind;
use qz_fault::{run_campaigns, CampaignConfig, FaultPlan};
use qz_fleet::Executor;
use qz_traces::EnvironmentKind;
use qz_types::SimDuration;

/// Short horizons keep 200+ campaigns affordable; every fault class
/// still fires hundreds of times across a family.
fn tweaks() -> SimTweaks {
    SimTweaks {
        drain: SimDuration::from_secs(30),
        ..SimTweaks::default()
    }
}

fn config(
    system: BaselineKind,
    profile: DeviceProfile,
    env: EnvironmentKind,
    plan: FaultPlan,
    campaigns: usize,
    seed: u64,
) -> CampaignConfig {
    CampaignConfig {
        system,
        profile,
        env,
        events: 4,
        campaigns,
        start: 0,
        seed,
        plan,
        injection_at: qz_types::SimDuration::ZERO,
        tweaks: tweaks(),
    }
}

/// The three campaign families: the paper's primary system on both
/// device profiles plus a non-IBO baseline, under escalating plans.
fn families() -> Vec<CampaignConfig> {
    vec![
        config(
            BaselineKind::Quetzal,
            apollo4(),
            EnvironmentKind::Crowded,
            FaultPlan::standard(),
            70,
            0xD1FF_0001,
        ),
        config(
            BaselineKind::QuetzalHw,
            msp430fr5994(),
            EnvironmentKind::MoreCrowded,
            FaultPlan::heavy(),
            70,
            0xD1FF_0002,
        ),
        config(
            BaselineKind::CatNap,
            apollo4(),
            EnvironmentKind::LessCrowded,
            FaultPlan::smoke(),
            70,
            0xD1FF_0003,
        ),
    ]
}

#[test]
fn two_hundred_campaigns_hold_all_four_invariants() {
    let exec = Executor::new(Executor::available());
    let mut total_campaigns = 0;
    let mut total_faults = 0;
    for cfg in families() {
        let report = run_campaigns(&cfg, exec).expect("campaign family runs");
        total_campaigns += report.rows.len();
        total_faults += report.total_faults();
        let mut repro = String::new();
        for row in report.rows.iter().filter(|r| !r.violations.is_empty()) {
            repro.push_str(&format!("  {}\n", report.repro_line(row)));
        }
        assert_eq!(
            report.total_violations(),
            0,
            "{} violations under {} on {:?}; reproduce with:\n{repro}\n{}",
            report.total_violations(),
            report.preset,
            cfg.system,
            report.render_text()
        );
        // The differential references must bracket the faulted runs.
        assert!(report.oracle_frames >= report.clean_frames);
    }
    assert!(
        total_campaigns >= 200,
        "harness shrank to {total_campaigns} campaigns"
    );
    assert!(
        total_faults > 1_000,
        "only {total_faults} faults injected across the sweep — adversity too weak"
    );
}

#[test]
fn campaign_reports_are_thread_count_invariant() {
    let cfg = config(
        BaselineKind::Quetzal,
        apollo4(),
        EnvironmentKind::Crowded,
        FaultPlan::standard(),
        6,
        0xD1FF_0004,
    );
    let one = run_campaigns(&cfg, Executor::new(1)).expect("1 thread");
    let four = run_campaigns(&cfg, Executor::new(4)).expect("4 threads");
    assert_eq!(one.to_json(), four.to_json());
    assert_eq!(one.render_text(), four.render_text());
}

#[test]
fn faulted_runs_differ_from_clean_but_reproduce_exactly() {
    let cfg = config(
        BaselineKind::Quetzal,
        apollo4(),
        EnvironmentKind::Crowded,
        FaultPlan::heavy(),
        2,
        0xD1FF_0005,
    );
    let a = run_campaigns(&cfg, Executor::new(2)).expect("first run");
    let b = run_campaigns(&cfg, Executor::new(2)).expect("second run");
    // Same seed → byte-identical report; faults actually perturbed the
    // runs (the heavy plan cannot be a no-op over 30+ seconds).
    assert_eq!(a.to_json(), b.to_json());
    assert!(a.total_faults() > 0);
    // Distinct campaign seeds draw distinct fault schedules.
    assert_ne!(a.rows[0].fault_seed, a.rows[1].fault_seed);
}
