//! Pins the machine-readable output schemas of `qz check --json` and
//! `qz verify --json` by running the actual binary against fixed
//! configurations and comparing stdout to committed golden files —
//! the same contract style as `tests/golden/flight_dump.json` pins
//! `qz-flight/v1`. Downstream tooling keys on these field names
//! (`sources`, `verdicts`, `repro`, …), so any drift is a conscious
//! re-baseline.
//!
//! A failure is either a model/message change (re-baseline after
//! reading the diff) or an incompatible schema change (update the
//! consumers too). Regenerate with the commands in each golden's
//! companion constant below, e.g.
//! `cargo run -p qz-cli -- check --system AvgSe2e --device msp430 --json`.

use std::process::Command;

/// Runs the `qz` binary, returning `(stdout, success)`.
fn run_qz(args: &[&str]) -> (String, bool) {
    let out = Command::new(env!("CARGO_BIN_EXE_qz"))
        .args(args)
        .output()
        .expect("qz binary runs");
    (
        String::from_utf8(out.stdout).expect("utf-8 stdout"),
        out.status.success(),
    )
}

const CHECK_ARGS: &[&str] = &[
    "check", "--system", "AvgSe2e", "--device", "msp430", "--json",
];
const VERIFY_PROVEN_ARGS: &[&str] = &[
    "verify", "--system", "QZ", "--device", "apollo4", "--env", "quiet", "--events", "10", "--json",
];
const VERIFY_REFUTED_ARGS: &[&str] = &[
    "verify", "--system", "lcfs", "--device", "msp430", "--env", "crowded", "--events", "40",
    "--json",
];

#[test]
fn check_json_matches_golden() {
    let (got, ok) = run_qz(CHECK_ARGS);
    assert!(ok, "warnings alone must not fail `qz check`");
    let want = include_str!("golden/check_schema.json");
    assert_eq!(
        got.trim_end(),
        want.trim_end(),
        "check JSON drifted — re-baseline tests/golden/check_schema.json if intentional:\n{got}"
    );
}

#[test]
fn verify_proven_json_matches_golden() {
    let (got, ok) = run_qz(VERIFY_PROVEN_ARGS);
    assert!(ok, "a fully proven config must exit zero");
    let want = include_str!("golden/verify_schema.json");
    assert_eq!(
        got.trim_end(),
        want.trim_end(),
        "verify JSON drifted — re-baseline tests/golden/verify_schema.json if intentional:\n{got}"
    );
}

#[test]
fn verify_refuted_json_matches_golden() {
    let (got, ok) = run_qz(VERIFY_REFUTED_ARGS);
    assert!(!ok, "a refuted property must exit nonzero");
    let want = include_str!("golden/verify_refuted_schema.json");
    assert_eq!(
        got.trim_end(),
        want.trim_end(),
        "verify JSON drifted — re-baseline tests/golden/verify_refuted_schema.json if \
         intentional:\n{got}"
    );
}

/// Structural guarantees the goldens rely on, stated explicitly so a
/// re-baseline can't silently drop a contract field.
#[test]
fn schema_keys_are_present() {
    let (check, _) = run_qz(CHECK_ARGS);
    for key in ["\"system\":", "\"device\":", "\"report\":", "\"sources\":"] {
        assert!(check.contains(key), "check JSON lost {key}: {check}");
    }
    let (verify, _) = run_qz(VERIFY_REFUTED_ARGS);
    for key in [
        "\"tool\":\"qz-verify\"",
        "\"verdicts\":",
        "\"overflow\":",
        "\"stall\":",
        "\"verdict\":\"REFUTED\"",
        "\"mode\":\"floor\"",
        "\"repro\":\"qz run ",
        "\"segment_secs\":",
        "\"sources\":[\"preflight\"]",
        "\"sources\":[\"verify\"]",
    ] {
        assert!(verify.contains(key), "verify JSON lost {key}: {verify}");
    }
}

/// The repro line a refutation prints must parse back through the CLI
/// (`qz run --solar …`) and reproduce the violation it names.
#[test]
fn refutation_repro_line_round_trips() {
    let (verify, _) = run_qz(VERIFY_REFUTED_ARGS);
    let repro = verify
        .split("\"repro\":\"")
        .nth(1)
        .and_then(|rest| rest.split('"').next())
        .expect("refuted verdict carries a repro line");
    let args: Vec<&str> = repro.split_whitespace().skip(1).collect();
    let (out, ok) = run_qz(&args);
    assert!(ok, "repro line failed to run: {repro}");
    let ibo: u64 = out
        .split(" IBO,")
        .next()
        .and_then(|head| head.rsplit('(').next())
        .and_then(|n| n.trim().parse().ok())
        .expect("metrics line reports IBO discards");
    assert!(ibo > 0, "repro run showed no overflow: {out}");
}
