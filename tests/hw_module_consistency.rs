//! Integration tests for the hardware measurement module against the
//! exact service-time model, across the core and hw crates.

use quetzal::model::{AppSpecBuilder, TaskCost, TaskKey};
use quetzal::service::{EnergyAwareEstimator, HwAssistedEstimator, ServiceEstimator};
use qz_hw::{PowerMonitor, RatioPath, APOLLO4, MSP430FR5994};
use qz_types::{Seconds, Watts};

fn spec_with(costs: &[(f64, f64)]) -> quetzal::model::AppSpec {
    let mut b = AppSpecBuilder::new();
    let mut ids = Vec::new();
    for (i, &(t, p)) in costs.iter().enumerate() {
        ids.push(
            b.fixed_task(&format!("t{i}"), TaskCost::new(Seconds(t), Watts(p)))
                .unwrap(),
        );
    }
    b.job("j", ids).unwrap();
    b.build().unwrap()
}

#[test]
fn hw_estimator_tracks_exact_model_within_quantization() {
    // Across a grid of task powers and input powers, the division-free
    // path must stay within the quantization-dominated error envelope.
    let costs = [(0.5, 0.005), (0.4, 0.050), (0.05, 0.004), (0.005, 0.090)];
    let spec = spec_with(&costs);
    let est = HwAssistedEstimator::from_spec(&spec, PowerMonitor::default());
    let mut worst: f64 = 0.0;
    for (i, &(t, p)) in costs.iter().enumerate() {
        let key = TaskKey::best(spec.task_id(i).unwrap());
        let cost = TaskCost::new(Seconds(t), Watts(p));
        for p_in_mw in [1.0, 2.0, 5.0, 10.0, 20.0, 40.0] {
            let p_in = Watts(p_in_mw / 1e3);
            let exact = EnergyAwareEstimator::se2e(cost, p_in).value();
            let hw = est.predict(key, cost, p_in).value();
            let err = (hw / exact - 1.0).abs();
            worst = worst.max(err);
            assert!(
                err < 0.25,
                "task {i} at {p_in_mw} mW: exact {exact:.3}s hw {hw:.3}s"
            );
        }
    }
    // Most of the grid should be far tighter than the bound.
    assert!(worst > 0.0, "the quantized path should not be bit-exact");
}

#[test]
fn hw_estimator_never_underestimates_t_exe() {
    let spec = spec_with(&[(0.8, 0.05)]);
    let est = HwAssistedEstimator::from_spec(&spec, PowerMonitor::default());
    let key = TaskKey::best(spec.task_id(0).unwrap());
    let cost = TaskCost::new(Seconds(0.8), Watts(0.05));
    for p_in_mw in [0.5, 1.0, 5.0, 25.0, 100.0] {
        let s = est.predict(key, cost, Watts(p_in_mw / 1e3));
        assert!(
            s.value() >= 0.8 * 0.999,
            "S_e2e below t_exe at {p_in_mw} mW"
        );
    }
}

#[test]
fn temperature_drift_stays_bounded() {
    // The paper's 25–50 °C claim: the same profile, re-read at a hotter
    // junction temperature, must not blow up the estimate.
    let spec = spec_with(&[(0.4, 0.050)]);
    let key = TaskKey::best(spec.task_id(0).unwrap());
    let cost = TaskCost::new(Seconds(0.4), Watts(0.050));
    let cool = HwAssistedEstimator::from_spec(&spec, PowerMonitor::default());
    let mut hot_monitor = PowerMonitor::default();
    hot_monitor.set_temperature(50.0);
    let hot = HwAssistedEstimator::from_spec(&spec, hot_monitor);
    for p_in_mw in [2.0, 5.0, 10.0, 25.0] {
        let p_in = Watts(p_in_mw / 1e3);
        let a = cool.predict(key, cost, p_in).value();
        let b = hot.predict(key, cost, p_in).value();
        assert!(
            (a / b - 1.0).abs() < 0.25,
            "temp drift too large at {p_in_mw} mW: {a} vs {b}"
        );
    }
}

#[test]
fn module_overheads_match_paper_costs_table() {
    // §5.1 end-to-end: module vs native path on both MCUs.
    let msp_native = MSP430FR5994.overhead_fraction(10.0, 32, 128, RatioPath::SoftwareDiv);
    let msp_module = MSP430FR5994.overhead_fraction(10.0, 32, 128, RatioPath::QuetzalModule);
    assert!(
        msp_native / msp_module > 10.0,
        "the module must be >10x cheaper on MSP430"
    );
    let apollo_module = APOLLO4.overhead_fraction(10.0, 32, 128, RatioPath::QuetzalModule);
    assert!(
        apollo_module < 0.001,
        "Apollo 4 overhead must be negligible"
    );
}
