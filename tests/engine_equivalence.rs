//! Differential equivalence suite: the fast-forward engine must be
//! *observably identical* to the per-tick reference loop.
//!
//! Every case below runs the same configuration twice — once with
//! `EngineKind::Tick` (the unmodified reference) and once with
//! `EngineKind::FastForward` — and demands byte-identical reports:
//!
//! - end-of-run [`qz_sim::Metrics`] (exact equality, including the
//!   accumulated-float energy totals),
//! - the full recorded `qz-obs` decision-event stream, compared both
//!   structurally and as serialized JSONL bytes,
//! - periodic telemetry, compared as rendered CSV bytes,
//! - fault-injector statistics when an adversarial injector is
//!   installed (the engine must fall back to per-tick stepping so the
//!   injector sees every tick).
//!
//! Cases are generated from a fixed [`SplitMix64`] stream so the suite
//! is deterministic: environment kind, event count, trace seed,
//! simulator seed, capture period, buffer capacity, drain time, device
//! profile, baseline system, and (for a fifth of the cases) a fault
//! plan are all randomized per case. With `CASES = 120` this crosses
//! well past the hundred-configuration mark required by the design.

use qz_app::{
    apollo4, build_simulation, msp430fr5994, simulate_with_telemetry, DeviceProfile, SimTweaks,
};
use qz_baselines::BaselineKind;
use qz_fault::{run_one, AdversarialInjector, FaultPlan};
use qz_obs::RecordingObserver;
use qz_sim::EngineKind;
use qz_traces::{EnvironmentKind, SensingEnvironment};
use qz_types::{SimDuration, SimTime, SplitMix64};

const CASES: u64 = 120;
const SUITE_SEED: u64 = 0x51CA_1020_26AB;

/// One randomized configuration drawn from the case stream.
struct Case {
    index: u64,
    kind: BaselineKind,
    profile: DeviceProfile,
    profile_label: &'static str,
    env: SensingEnvironment,
    tweaks: SimTweaks,
    fault: Option<(FaultPlan, u64)>,
}

impl Case {
    fn describe(&self) -> String {
        format!(
            "case {} ({:?} on {} in {} env, seed {:#x}, fault {:?})",
            self.index,
            self.kind,
            self.profile_label,
            self.env.kind(),
            self.tweaks.seed,
            self.fault.as_ref().map(|(plan, _)| plan.label),
        )
    }

    fn tweaks_for(&self, engine: EngineKind) -> SimTweaks {
        SimTweaks {
            engine,
            ..self.tweaks.clone()
        }
    }

    fn injector(&self) -> Option<AdversarialInjector> {
        self.fault
            .as_ref()
            .map(|(plan, seed)| AdversarialInjector::new(plan.clone(), *seed))
    }
}

fn draw_case(rng: &mut SplitMix64, index: u64) -> Case {
    // Mostly the short/medium environments (fast to simulate, still
    // exercising every horizon class), with occasional MoreCrowded and
    // Quiet cases for long-event and long-quiescent-span coverage.
    let (env_kind, events) = match rng.next_below(16) {
        0..=5 => (EnvironmentKind::Short, 2 + rng.next_below(4)),
        6..=9 => (EnvironmentKind::LessCrowded, 2 + rng.next_below(4)),
        10..=12 => (EnvironmentKind::Crowded, 2 + rng.next_below(3)),
        13 => (EnvironmentKind::MoreCrowded, 2),
        _ => (EnvironmentKind::Quiet, 2),
    };
    let env_seed = rng.next_u64();
    let event_count = usize::try_from(events).expect("tiny event count");
    let env = SensingEnvironment::generate(env_kind, event_count, env_seed);

    let kind = match rng.next_below(7) {
        0 => BaselineKind::Quetzal,
        1 => BaselineKind::NoAdapt,
        2 => BaselineKind::AlwaysDegrade,
        3 => BaselineKind::CatNap,
        4 => BaselineKind::FixedThreshold(rng.next_range(0.1, 0.9)),
        5 => BaselineKind::AvgSe2e,
        _ => BaselineKind::QuetzalHw,
    };
    let (profile, profile_label) = if rng.next_below(2) == 0 {
        (apollo4(), "apollo4")
    } else {
        (msp430fr5994(), "msp430fr5994")
    };

    let tweaks = SimTweaks {
        seed: rng.next_u64(),
        capture_period: SimDuration::from_millis(1000 + 500 * rng.next_below(5)),
        buffer_capacity: usize::try_from(4 + rng.next_below(9)).expect("tiny buffer"),
        drain: SimDuration::from_secs(20 + rng.next_below(11)),
        ..SimTweaks::default()
    };

    // Every fifth case runs under an adversarial fault injector; the
    // engine must detect it and degrade to per-tick stepping without
    // changing a single byte of the report.
    let fault = index.is_multiple_of(5).then(|| {
        let plan = match rng.next_below(4) {
            0 => FaultPlan::none(),
            1 => FaultPlan::smoke(),
            2 => FaultPlan::standard(),
            _ => FaultPlan::heavy(),
        };
        (plan, rng.next_u64())
    });

    Case {
        index,
        kind,
        profile,
        profile_label,
        env,
        tweaks,
        fault,
    }
}

/// Serializes a recorded event stream exactly as `qz fault --events` /
/// `qz trace` would.
fn jsonl_bytes(events: &[qz_obs::Event]) -> Vec<u8> {
    let mut buf = Vec::new();
    qz_obs::export::write_jsonl(&mut buf, events).expect("in-memory write");
    buf
}

#[test]
fn fast_forward_is_byte_identical_across_randomized_cases() {
    let mut rng = SplitMix64::new(SUITE_SEED);
    let mut faulted = 0u64;
    for index in 0..CASES {
        let case = draw_case(&mut rng, index);
        faulted += u64::from(case.fault.is_some());

        let (tick, tick_stats) = run_one(
            case.kind,
            &case.profile,
            &case.env,
            &case.tweaks_for(EngineKind::Tick),
            case.injector(),
        );
        let (fast, fast_stats) = run_one(
            case.kind,
            &case.profile,
            &case.env,
            &case.tweaks_for(EngineKind::FastForward),
            case.injector(),
        );

        assert_eq!(
            tick.metrics,
            fast.metrics,
            "metrics diverge: {}",
            case.describe()
        );
        assert_eq!(
            tick.events.len(),
            fast.events.len(),
            "event counts diverge: {}",
            case.describe()
        );
        assert_eq!(
            tick.events,
            fast.events,
            "event streams diverge: {}",
            case.describe()
        );
        assert_eq!(
            jsonl_bytes(&tick.events),
            jsonl_bytes(&fast.events),
            "serialized event bytes diverge: {}",
            case.describe()
        );
        assert_eq!(
            tick_stats,
            fast_stats,
            "fault stats diverge: {}",
            case.describe()
        );
    }
    assert!(
        faulted >= 20,
        "expected at least 20 fault-injected cases, got {faulted}"
    );
}

/// Kernel-boundary torture class: randomized configurations whose
/// invariant-invalidating events land on the batched busy-tick kernel's
/// block edges. Capture and telemetry periods are pinned to
/// `64k + {0, 1, 63}` ms so periodic due-ness flips exactly at (or one
/// tick either side of) a 64-tick block boundary, and the adversarial
/// injector activates mid-run at instants `≡ 0, 1, 63 (mod 64)` — the
/// three offsets where a prologue that clamps one tick too early or too
/// late would emit different bytes. Metrics, the structural event
/// stream, serialized JSONL bytes, reconstructed telemetry CSV bytes,
/// and fault statistics must all be identical across engines.
#[test]
fn kernel_boundary_torture_cases_are_byte_identical() {
    let mut rng = SplitMix64::new(SUITE_SEED ^ 0xB10C_ED6E);
    let offsets = [0u64, 1, 63];
    let mut index = 0u64;
    for &period_off in &offsets {
        for &fault_off in &offsets {
            let mut case = draw_case(&mut rng, index);
            index += 1;
            // Capture cadence a multiple of the 64-tick block (1024 ≡
            // 0 mod 64) plus the torture offset, so successive capture
            // boundaries sweep the residues around block edges. Stays
            // ≥ 1 s to keep the config past the QZ010 overflow
            // preflight.
            let capture_ms = 1024 * (1 + rng.next_below(3)) + period_off;
            case.tweaks.capture_period = SimDuration::from_millis(capture_ms.max(1));
            // Fault activation pinned to a block-aligned instant.
            let fault_at = SimTime::from_millis(64 * 200 + fault_off);
            let plan = match rng.next_below(3) {
                0 => FaultPlan::smoke(),
                1 => FaultPlan::standard(),
                _ => FaultPlan::heavy(),
            };
            let fault_seed = rng.next_u64();
            let injector = || {
                Some(AdversarialInjector::activating_at(
                    plan.clone(),
                    fault_seed,
                    fault_at,
                ))
            };

            let (tick, tick_stats) = run_one(
                case.kind,
                &case.profile,
                &case.env,
                &case.tweaks_for(EngineKind::Tick),
                injector(),
            );
            let (fast, fast_stats) = run_one(
                case.kind,
                &case.profile,
                &case.env,
                &case.tweaks_for(EngineKind::FastForward),
                injector(),
            );

            let describe = format!(
                "{} [torture: capture {capture_ms}ms, fault {} at {fault_at:?}]",
                case.describe(),
                plan.label,
            );
            assert_eq!(tick.metrics, fast.metrics, "metrics diverge: {describe}");
            assert_eq!(
                tick.events, fast.events,
                "event streams diverge: {describe}"
            );
            assert_eq!(
                jsonl_bytes(&tick.events),
                jsonl_bytes(&fast.events),
                "serialized event bytes diverge: {describe}"
            );
            let mut tick_csv = Vec::new();
            let mut fast_csv = Vec::new();
            qz_sim::Telemetry::from_events(&tick.events)
                .write_csv(&mut tick_csv)
                .expect("in-memory write");
            qz_sim::Telemetry::from_events(&fast.events)
                .write_csv(&mut fast_csv)
                .expect("in-memory write");
            assert_eq!(
                tick_csv, fast_csv,
                "telemetry CSV bytes diverge: {describe}"
            );
            assert_eq!(tick_stats, fast_stats, "fault stats diverge: {describe}");
        }
    }
}

/// Drives the fast-forward engine through `step_until` barriers whose
/// limits sweep every offset around the 64-tick block size (so busy
/// blocks are truncated at 1, 63, 64, 65, … remaining ticks), and
/// demands the final metrics and event stream match the reference
/// engine run to completion in one go.
#[test]
fn step_until_boundary_chunks_match_reference() {
    let mut rng = SplitMix64::new(SUITE_SEED ^ 0x57E9_0641);
    for index in 0..6u64 {
        let case = draw_case(&mut rng, index);

        let mut tick = build_simulation(
            case.kind,
            &case.profile,
            &case.env,
            &case.tweaks_for(EngineKind::Tick),
        );
        tick.set_observer(Box::new(RecordingObserver::new()));
        while tick.step() {}

        let mut fast = build_simulation(
            case.kind,
            &case.profile,
            &case.env,
            &case.tweaks_for(EngineKind::FastForward),
        );
        fast.set_observer(Box::new(RecordingObserver::new()));
        let chunks = [63u64, 64, 65, 1, 127, 129, 64, 63];
        let mut limit = 0u64;
        let mut i = 0usize;
        loop {
            limit += chunks[i % chunks.len()];
            i += 1;
            if !fast.step_until(SimTime::from_millis(limit)) {
                break;
            }
        }

        assert_eq!(
            tick.metrics(),
            fast.metrics(),
            "metrics diverge under chunked step_until: {}",
            case.describe()
        );
        let mut tick_obs = tick.take_observer();
        let mut fast_obs = fast.take_observer();
        let tick_events = qz_obs::take_recorded(tick_obs.as_mut()).expect("recording sink");
        let fast_events = qz_obs::take_recorded(fast_obs.as_mut()).expect("recording sink");
        assert_eq!(
            jsonl_bytes(&tick_events),
            jsonl_bytes(&fast_events),
            "event bytes diverge under chunked step_until: {}",
            case.describe()
        );
    }
}

#[test]
fn telemetry_csv_bytes_match_across_engines() {
    let mut rng = SplitMix64::new(SUITE_SEED ^ 0x7E1E_3E7E);
    for index in 0..30u64 {
        let case = draw_case(&mut rng, index);
        let interval = SimDuration::from_millis(250 + 250 * rng.next_below(5));

        let (tick_metrics, tick_tel) = simulate_with_telemetry(
            case.kind,
            &case.profile,
            &case.env,
            &case.tweaks_for(EngineKind::Tick),
            Some(interval),
        );
        let (fast_metrics, fast_tel) = simulate_with_telemetry(
            case.kind,
            &case.profile,
            &case.env,
            &case.tweaks_for(EngineKind::FastForward),
            Some(interval),
        );

        assert_eq!(
            tick_metrics,
            fast_metrics,
            "metrics diverge: {}",
            case.describe()
        );
        let mut tick_csv = Vec::new();
        let mut fast_csv = Vec::new();
        tick_tel.write_csv(&mut tick_csv).expect("in-memory write");
        fast_tel.write_csv(&mut fast_csv).expect("in-memory write");
        assert_eq!(
            tick_csv,
            fast_csv,
            "telemetry CSV bytes diverge: {} (interval {interval:?})",
            case.describe()
        );
    }
}
