//! A second application built on the public API: an acoustic wildlife
//! monitor — demonstrating that the runtime, simulator and pipeline
//! binding are not hard-wired to the paper's smart-camera app.
//!
//! The device listens for animal calls (the "capture" is an audio
//! window), classifies species with a degradable acoustic model, and
//! reports detections — full spectrogram vs a species-id byte. Power
//! comes from a small panel under a day/night diurnal cycle, which the
//! camera experiments don't exercise.
//!
//! Run with: `cargo run --release --example wildlife_monitor`

use quetzal::model::{AppSpecBuilder, TaskCost};
use quetzal::{Quetzal, QuetzalConfig};
use qz_sim::{ClassRates, ReportQuality, Route, SimConfig, Simulation, TaskBehavior};
use qz_traces::{EnvironmentKind, EventTraceBuilder, SensingEnvironment, SolarTraceBuilder};
use qz_types::{Seconds, SimDuration, Watts};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Application: acoustic classifier (degradable) → enrich → uplink
    // (degradable).
    let mut b = AppSpecBuilder::new();
    let classify = b
        .degradable_task("species-classifier")
        .option("full-model", TaskCost::new(Seconds(0.8), Watts(0.004)))
        .option("tiny-model", TaskCost::new(Seconds(0.08), Watts(0.003)))
        .finish()?;
    let enrich = b.fixed_task(
        "enrich-metadata",
        TaskCost::new(Seconds(0.02), Watts(0.008)),
    )?;
    let uplink = b
        .degradable_task("uplink")
        .option("spectrogram", TaskCost::new(Seconds(0.5), Watts(0.040)))
        .option("species-id", TaskCost::new(Seconds(0.005), Watts(0.080)))
        .finish()?;
    let listen = b.job("listen", vec![classify, enrich])?;
    let notify = b.job("notify", vec![uplink])?;
    let spec = b.build()?;

    // Bind tasks to simulated behaviour: the full model rarely misses a
    // call; the tiny model misses a quarter of them.
    let behaviors = vec![
        TaskBehavior::Classify(vec![
            ClassRates::new(0.04, 0.06),
            ClassRates::new(0.25, 0.15),
        ]),
        TaskBehavior::Compute,
        TaskBehavior::Transmit(vec![ReportQuality::High, ReportQuality::Low]),
    ];
    let routes = vec![Route::Forward(notify), Route::Finish];

    // Environment: dawn-chorus-style bursts of calls under a compressed
    // day/night cycle (2 h day period, 40 % night).
    let events = EventTraceBuilder::new()
        .event_count(300)
        .max_duration(SimDuration::from_secs(30))
        .mean_gap(SimDuration::from_secs(15))
        .interesting_probability(0.6)
        .seed(99)
        .build();
    let horizon = events.end() + SimDuration::from_secs(600);
    let solar = SolarTraceBuilder::new()
        .duration(SimDuration::from_millis(horizon.as_millis()))
        .diurnal(SimDuration::from_secs(7200), 0.4)
        .seed(99)
        .build();
    let env = SensingEnvironment::with_parts(EnvironmentKind::Crowded, events, solar);

    // Front-end the hand-built spec through qz-check: errors abort,
    // warnings are printed and tolerated (a slow full-quality path is a
    // trade-off this app knowingly makes, like the paper's MSP430 port).
    let report = qz_check::check(&qz_check::CheckInput::new(&spec));
    assert!(
        !report.has_errors(),
        "wildlife monitor spec failed qz-check:\n{}",
        report.render_text()
    );
    if report.warnings() > 0 {
        eprintln!("qz-check warnings for the wildlife monitor spec:");
        eprint!("{}", report.render_text());
    }

    let runtime = Quetzal::new(spec, QuetzalConfig::default())?;
    let metrics = Simulation::new(
        SimConfig::default(),
        &env,
        runtime,
        listen,
        behaviors,
        routes,
    )?
    .run();

    println!("Wildlife monitor, 300 call events under a day/night cycle\n");
    println!(
        "calls heard: {} interesting, {} discarded ({} to buffer overflows, {} misheard)",
        metrics.interesting_total,
        metrics.interesting_discarded(),
        metrics.ibo_interesting,
        metrics.false_negatives
    );
    println!(
        "uplinks: {} spectrograms + {} species-id bytes",
        metrics.reports_interesting_high, metrics.reports_interesting_low
    );
    println!(
        "device: {} jobs ({} degraded), {} power failures, off {:.0}% of the time (nights!)",
        metrics.total_jobs(),
        metrics.degraded_jobs(),
        metrics.power_failures,
        metrics.off_fraction() * 100.0
    );
    assert!(metrics.total_jobs() > 0, "the monitor must process calls");
    Ok(())
}
