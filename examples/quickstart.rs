//! Quickstart: assemble a Quetzal runtime by hand and watch it schedule
//! and degrade.
//!
//! This example uses only the `quetzal` core crate — no simulator. It
//! builds the paper's two-job person-detection structure (a degradable
//! ML task, then a degradable radio task), drives the capture tracker,
//! and asks for scheduling decisions under easy and harsh conditions.
//!
//! Run with: `cargo run --release --example quickstart`

use quetzal::model::{AppSpecBuilder, TaskCost};
use quetzal::runtime::{BufferView, Quetzal, QuetzalConfig};
use qz_types::{Seconds, Watts};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Describe the application: tasks with profiled costs, degradable
    //    tasks with quality-ordered options, grouped into jobs.
    let mut spec = AppSpecBuilder::new();
    let ml = spec
        .degradable_task("ml-infer")
        .option("mobilenetv2", TaskCost::new(Seconds(0.5), Watts(0.005)))
        .option("lenet", TaskCost::new(Seconds(0.05), Watts(0.004)))
        .finish()?;
    let annotate = spec.fixed_task("annotate", TaskCost::new(Seconds(0.01), Watts(0.010)))?;
    let radio = spec
        .degradable_task("radio-tx")
        .option("full-image", TaskCost::new(Seconds(0.4), Watts(0.050)))
        .option("single-byte", TaskCost::new(Seconds(0.005), Watts(0.090)))
        .finish()?;
    let process = spec.job("process", vec![ml, annotate])?;
    let report = spec.job("report", vec![radio])?;
    let spec = spec.build()?;

    // 1b. Prove the spec feasible before building anything: qz-check
    //     runs the energy/queueing/lattice analyses over the spec and
    //     the default device profile.
    let check_report = qz_check::check(&qz_check::CheckInput::new(&spec));
    assert!(
        !check_report.has_errors(),
        "quickstart spec failed qz-check:\n{}",
        check_report.render_text()
    );

    // 2. Assemble the runtime: Energy-aware SJF + IBO engine + PID.
    let mut qz = Quetzal::new(spec, QuetzalConfig::default())?;

    // 3. Feed capture history: the device stores every frame right now,
    //    so the tracked arrival rate λ approaches the capture rate.
    for _ in 0..16 {
        qz.on_capture(true);
    }
    println!("tracked arrival rate λ = {:.2} inputs/s", qz.lambda());

    // 4. Easy conditions: plenty of power, nearly empty buffer.
    let decision = qz
        .schedule(
            &[(process, Some(Seconds(2.0))), (report, Some(Seconds(5.0)))],
            BufferView {
                occupancy: 1,
                capacity: 10,
            },
            Watts(0.025), // 25 mW harvested
        )
        .expect("a job is runnable");
    println!(
        "at 25 mW, occupancy 1/10  → run {} at option {} (IBO predicted: {}), E[S] = {:.2}s",
        decision.job,
        decision.option,
        decision.ibo_predicted,
        decision.expected_service.value()
    );

    // 5. Harsh conditions: overcast power, buffer filling up. The IBO
    //    engine predicts the overflow with Little's Law and degrades the
    //    scheduled job's degradable task just enough.
    let decision = qz
        .schedule(
            &[(process, Some(Seconds(2.0))), (report, Some(Seconds(5.0)))],
            BufferView {
                occupancy: 9,
                capacity: 10,
            },
            Watts(0.001), // 1 mW harvested
        )
        .expect("a job is runnable");
    println!(
        "at  1 mW, occupancy 9/10 → run {} at option {} (IBO predicted: {}), E[S] = {:.2}s",
        decision.job,
        decision.option,
        decision.ibo_predicted,
        decision.expected_service.value()
    );
    assert!(
        decision.ibo_predicted,
        "harsh conditions should predict an IBO"
    );
    assert!(decision.option > 0, "and degrade the job in response");

    // 6. Close the loop: report what actually happened so the PID can
    //    track prediction error and the execution windows stay fresh.
    qz.on_job_complete(decision.job, &[], decision.expected_service + Seconds(1.5));
    println!(
        "PID correction after one under-prediction: {:+.3}s",
        qz.correction().value()
    );
    Ok(())
}
