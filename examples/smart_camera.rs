//! The paper's headline scenario: a solar-powered smart camera that
//! detects people and reports them over LoRa, simulated end-to-end on
//! the Apollo 4 device profile.
//!
//! Runs the same environment twice — once with Quetzal, once with the
//! non-adaptive firmware most prior systems ship — and compares what
//! each misses.
//!
//! Run with: `cargo run --release --example smart_camera`

use qz_app::{apollo4, check_experiment, ideal, simulate, SimTweaks};
use qz_baselines::BaselineKind;
use qz_sim::Metrics;
use qz_traces::{EnvironmentKind, SensingEnvironment};

fn describe(name: &str, m: &Metrics) {
    println!("  {name}:");
    println!(
        "    interesting inputs: {} seen, {} discarded ({} to IBOs, {} misclassified)",
        m.interesting_total,
        m.interesting_discarded(),
        m.ibo_interesting,
        m.false_negatives
    );
    println!(
        "    reports: {} full-image + {} single-byte ({:.0}% high quality)",
        m.reports_interesting_high,
        m.reports_interesting_low,
        m.high_quality_fraction() * 100.0
    );
    println!(
        "    device: {} jobs run ({} degraded), {} power failures, off {:.0}% of the time",
        m.total_jobs(),
        m.degraded_jobs(),
        m.power_failures,
        m.off_fraction() * 100.0
    );
}

fn main() {
    println!("Smart camera, Crowded environment, 200 events, Apollo 4\n");
    let env = SensingEnvironment::generate(EnvironmentKind::Crowded, 200, 7);
    let profile = apollo4();
    let tweaks = SimTweaks::default();

    // Front-end both experiment configs through qz-check before
    // simulating; an error here means the scenario can't run at all.
    for kind in [BaselineKind::NoAdapt, BaselineKind::Quetzal] {
        let report = check_experiment(kind, &profile, &tweaks);
        assert!(
            !report.has_errors(),
            "smart_camera {kind:?} config failed qz-check:\n{}",
            report.render_text()
        );
    }

    let ideal_m = ideal(&profile, &env, &tweaks);
    let na = simulate(BaselineKind::NoAdapt, &profile, &env, &tweaks);
    let qz = simulate(BaselineKind::Quetzal, &profile, &env, &tweaks);

    describe("Ideal (infinite buffer)", &ideal_m);
    describe("NoAdapt", &na);
    describe("Quetzal", &qz);

    let improvement = na.interesting_discarded() as f64 / qz.interesting_discarded().max(1) as f64;
    println!(
        "\nQuetzal discards {improvement:.1}x fewer interesting inputs than the \
         non-adaptive firmware,\nand reports {:.0}% of what an infinite buffer would.",
        qz.interesting_reported() as f64 / ideal_m.interesting_reported().max(1) as f64 * 100.0
    );
    assert!(
        qz.interesting_discarded() < na.interesting_discarded(),
        "Quetzal should beat NoAdapt in this scenario"
    );
}
