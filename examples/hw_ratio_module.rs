//! Demonstrates the hardware power-measurement module (paper §5.1): how
//! the diode law turns the `P_exe / P_in` division into a subtraction
//! plus shifts, what it costs, and how accurate it is.
//!
//! Run with: `cargo run --release --example hw_ratio_module`

use qz_hw::{
    premultiply_t_exe, ratio_estimate, se2e_hw, PowerMonitor, RatioPath, APOLLO4, MSP430FR5994,
};
use qz_types::{Seconds, Watts};

fn main() {
    let monitor = PowerMonitor::default();

    // Profile-time: the radio task's execution power goes through diode
    // D2 once; its t_exe is premultiplied by the eight 2^(b/8) factors.
    let t_exe = Seconds(0.4);
    let p_exe = Watts(0.050);
    let vd2 = monitor.sample_power(p_exe);
    let table = premultiply_t_exe(t_exe);
    println!("profiled radio task: t_exe = {t_exe}, P_exe = 50 mW, V_D2 code = {vd2}\n");

    // Run-time: sweep input power, compare Algorithm 3's division-free
    // S_e2e against the exact model.
    println!("P_in      V_D1  delta  ratio(est)  S_e2e(hw)  S_e2e(exact)  err");
    println!("----------------------------------------------------------------");
    for p_in_mw in [50.0, 25.0, 12.0, 6.0, 3.0, 1.5] {
        let p_in = Watts(p_in_mw / 1e3);
        let vd1 = monitor.sample_power(p_in);
        let hw = se2e_hw(&table, vd1, vd2).to_f64();
        let exact = quetzal::service::EnergyAwareEstimator::se2e(
            quetzal::model::TaskCost::new(t_exe, p_exe),
            p_in,
        )
        .value();
        let delta = vd2.saturating_sub(vd1);
        println!(
            "{p_in_mw:>5.1}mW  {vd1:>4}  {delta:>5}  {:>9.2}x  {hw:>8.2}s  {exact:>11.2}s  {:+5.1}%",
            if delta > 0 { ratio_estimate(delta) } else { 1.0 },
            (hw / exact - 1.0) * 100.0,
        );
    }

    // What the module saves: per-ratio cycles and energy on each MCU.
    println!("\nper-ratio cost of evaluating S_e2e:");
    for mcu in [&MSP430FR5994, &APOLLO4] {
        let native = mcu.native_path();
        println!(
            "  {:<13} {}: {} cycles / {:.2} nJ   vs   module: {} cycles / {:.2} nJ",
            mcu.name,
            native,
            mcu.div_cycles,
            mcu.ratio_op_energy(native).value() * 1e9,
            mcu.module_cycles,
            mcu.ratio_op_energy(RatioPath::QuetzalModule).value() * 1e9,
        );
    }
}
