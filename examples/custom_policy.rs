//! Extending the runtime with a user-defined scheduling policy.
//!
//! The `quetzal` crate's policy traits are public extension points: this
//! example implements a *hybrid* scheduler — Energy-aware SJF while the
//! buffer is comfortable, switching to oldest-first (FCFS) once it fills
//! past a threshold so no input starves near the deadline — and runs it
//! through the full simulator against the stock policies.
//!
//! Run with: `cargo run --release --example custom_policy`

use quetzal::policy::{
    EnergyAwareSjf, Fcfs, JobCandidate, SchedulerInputs, SchedulingPolicy, Selection,
};
use quetzal::{Quetzal, QuetzalConfig};
use qz_app::{apollo4, AppModel};
use qz_sim::{SimConfig, Simulation};
use qz_traces::{EnvironmentKind, SensingEnvironment};

/// SJF under light load, FCFS when the buffer is under pressure.
///
/// The policy cannot see the buffer directly (the scheduling interface
/// is deliberately narrow), so it infers pressure from the age of the
/// oldest queued input: if anything has waited longer than
/// `pressure_age`, fairness takes over.
#[derive(Debug)]
struct HybridPolicy {
    sjf: EnergyAwareSjf,
    fcfs: Fcfs,
    pressure_age: f64,
}

impl HybridPolicy {
    fn new(pressure_age_s: f64) -> HybridPolicy {
        HybridPolicy {
            sjf: EnergyAwareSjf::new(),
            fcfs: Fcfs::new(),
            pressure_age: pressure_age_s,
        }
    }
}

impl SchedulingPolicy for HybridPolicy {
    fn select(
        &mut self,
        inputs: &SchedulerInputs<'_>,
        candidates: &[JobCandidate],
    ) -> Option<Selection> {
        let oldest = candidates
            .iter()
            .map(|c| c.oldest_input_age.value())
            .fold(0.0f64, f64::max);
        if oldest > self.pressure_age {
            self.fcfs.select(inputs, candidates)
        } else {
            self.sjf.select(inputs, candidates)
        }
    }
}

fn run(policy: Box<dyn SchedulingPolicy>, env: &SensingEnvironment) -> qz_sim::Metrics {
    let profile = apollo4();
    let app = AppModel::person_detection(&profile).unwrap();
    let runtime = Quetzal::builder(app.spec.clone())
        .config(QuetzalConfig::default())
        .policy(policy)
        .build()
        .unwrap();
    let cfg = SimConfig {
        device: profile.device.clone(),
        ..SimConfig::default()
    };
    Simulation::new(cfg, env, runtime, app.entry, app.behaviors, app.routes)
        .unwrap()
        .run()
}

fn main() {
    // Every policy below runs the same person-detection app; check it
    // once against the Apollo 4 profile before simulating anything.
    let profile = apollo4();
    let app = AppModel::person_detection(&profile).unwrap();
    let check_input = qz_check::CheckInput {
        device: profile.device.clone(),
        ..qz_check::CheckInput::new(&app.spec)
    };
    let report = qz_check::check(&check_input);
    assert!(
        !report.has_errors(),
        "custom_policy app failed qz-check:\n{}",
        report.render_text()
    );

    let env = SensingEnvironment::generate(EnvironmentKind::Crowded, 150, 11);
    println!("Custom scheduling policy demo — Crowded, 150 events\n");
    for (name, policy) in [
        (
            "Energy-aware SJF",
            Box::new(EnergyAwareSjf::new()) as Box<dyn SchedulingPolicy>,
        ),
        ("FCFS", Box::new(Fcfs::new())),
        (
            "Hybrid (SJF → FCFS past 20 s wait)",
            Box::new(HybridPolicy::new(20.0)),
        ),
    ] {
        let m = run(policy, &env);
        println!(
            "{name:<36} discarded {:>4} (IBO {:>4}, FN {:>3}) | hi-q {:>4.1}%",
            m.interesting_discarded(),
            m.ibo_interesting,
            m.false_negatives,
            m.high_quality_fraction() * 100.0
        );
    }
    println!("\nAny type implementing `SchedulingPolicy` (or `DegradationPolicy`, or");
    println!("`ServiceEstimator`) plugs into `Quetzal::builder` the same way.");
}
