//! Baseline degradation policies.

use quetzal::ibo::{DegradationContext, DegradationPolicy, IboDecision};
use qz_types::Watts;

/// Never degrades — the behaviour of most prior energy-harvesting
/// systems (paper's *NoAdapt*).
#[derive(Debug, Clone, Copy, Default)]
pub struct NeverDegrade;

impl NeverDegrade {
    /// Creates the policy.
    pub fn new() -> NeverDegrade {
        NeverDegrade
    }
}

impl DegradationPolicy for NeverDegrade {
    fn select_option(&mut self, _ctx: &DegradationContext<'_>) -> IboDecision {
        IboDecision::NO_ACTION
    }
}

/// Always runs the lowest-quality option (paper's *Always Degrade*).
#[derive(Debug, Clone, Copy, Default)]
pub struct AlwaysDegrade;

impl AlwaysDegrade {
    /// Creates the policy.
    pub fn new() -> AlwaysDegrade {
        AlwaysDegrade
    }
}

impl DegradationPolicy for AlwaysDegrade {
    fn select_option(&mut self, ctx: &DegradationContext<'_>) -> IboDecision {
        let option = ctx.option_services.len().saturating_sub(1);
        IboDecision {
            option,
            ibo_predicted: false,
            unavoidable: false,
        }
    }
}

/// Degrades to the lowest quality once the buffer is filled to a static
/// threshold. `threshold = 1.0` is CatNap's degrade-when-full rule; the
/// paper's Fig. 11 sweeps the whole 0–100 % range.
#[derive(Debug, Clone, Copy)]
pub struct BufferThreshold {
    threshold: f64,
}

impl BufferThreshold {
    /// Creates the policy with a fill-fraction threshold.
    ///
    /// # Panics
    ///
    /// Panics if `threshold` is outside `[0, 1]`.
    pub fn new(threshold: f64) -> BufferThreshold {
        assert!(
            (0.0..=1.0).contains(&threshold),
            "threshold must be a fill fraction"
        );
        BufferThreshold { threshold }
    }

    /// CatNap: degrade only once the buffer is 100 % full.
    pub fn catnap() -> BufferThreshold {
        BufferThreshold::new(1.0)
    }

    /// The configured threshold.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }
}

impl DegradationPolicy for BufferThreshold {
    fn select_option(&mut self, ctx: &DegradationContext<'_>) -> IboDecision {
        if ctx.fill_fraction() >= self.threshold {
            let option = ctx.option_services.len().saturating_sub(1);
            IboDecision {
                option,
                ibo_predicted: false,
                unavoidable: false,
            }
        } else {
            IboDecision::NO_ACTION
        }
    }
}

/// Degrades to the lowest quality when input power falls below a static
/// threshold — the Protean/Zygarde adaptation rule. The paper studies
/// two threshold choices: a fraction of the harvester's *datasheet
/// maximum* (PZO, as those works propose) and a fraction of the
/// *observed maximum* over the whole trace (PZI, an unimplementable
/// oracle).
#[derive(Debug, Clone, Copy)]
pub struct PowerThreshold {
    threshold: Watts,
}

impl PowerThreshold {
    /// Creates the policy with an absolute power threshold.
    ///
    /// # Panics
    ///
    /// Panics if the threshold is negative or non-finite.
    pub fn new(threshold: Watts) -> PowerThreshold {
        assert!(
            threshold.value().is_finite() && threshold.value() >= 0.0,
            "power threshold must be non-negative"
        );
        PowerThreshold { threshold }
    }

    /// The configured threshold.
    pub fn threshold(&self) -> Watts {
        self.threshold
    }
}

impl DegradationPolicy for PowerThreshold {
    fn select_option(&mut self, ctx: &DegradationContext<'_>) -> IboDecision {
        if ctx.p_in < self.threshold {
            let option = ctx.option_services.len().saturating_sub(1);
            IboDecision {
                option,
                ibo_predicted: false,
                unavoidable: false,
            }
        } else {
            IboDecision::NO_ACTION
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qz_types::Seconds;

    fn ctx<'a>(occupancy: usize, p_in: f64, options: &'a [Seconds]) -> DegradationContext<'a> {
        DegradationContext {
            lambda: 1.0,
            occupancy,
            capacity: 10,
            expected_service: Seconds(1.0),
            non_degradable_service: Seconds(0.0),
            option_services: options,
            p_in: Watts(p_in),
        }
    }

    const OPTS: [Seconds; 3] = [Seconds(3.0), Seconds(1.0), Seconds(0.1)];

    #[test]
    fn never_degrade_ignores_everything() {
        let d = NeverDegrade::new().select_option(&ctx(10, 0.0, &OPTS));
        assert_eq!(d, IboDecision::NO_ACTION);
    }

    #[test]
    fn always_degrade_picks_last_option() {
        let d = AlwaysDegrade::new().select_option(&ctx(0, 1.0, &OPTS));
        assert_eq!(d.option, 2);
        let empty = AlwaysDegrade::new().select_option(&ctx(0, 1.0, &[]));
        assert_eq!(empty.option, 0);
    }

    #[test]
    // threshold() returns the constructor argument verbatim, so strict
    // float comparison is the point.
    #[allow(clippy::float_cmp)]
    fn buffer_threshold_triggers_at_fill() {
        let mut p = BufferThreshold::new(0.5);
        assert_eq!(p.select_option(&ctx(4, 1.0, &OPTS)), IboDecision::NO_ACTION);
        assert_eq!(p.select_option(&ctx(5, 1.0, &OPTS)).option, 2);
        assert_eq!(p.threshold(), 0.5);
    }

    #[test]
    fn catnap_waits_for_full() {
        let mut p = BufferThreshold::catnap();
        assert_eq!(p.select_option(&ctx(9, 1.0, &OPTS)), IboDecision::NO_ACTION);
        assert_eq!(p.select_option(&ctx(10, 1.0, &OPTS)).option, 2);
    }

    #[test]
    #[should_panic(expected = "fill fraction")]
    fn buffer_threshold_rejects_out_of_range() {
        BufferThreshold::new(1.5);
    }

    #[test]
    fn power_threshold_triggers_below() {
        let mut p = PowerThreshold::new(Watts(0.010));
        assert_eq!(
            p.select_option(&ctx(0, 0.02, &OPTS)),
            IboDecision::NO_ACTION
        );
        assert_eq!(p.select_option(&ctx(0, 0.005, &OPTS)).option, 2);
        assert_eq!(p.threshold(), Watts(0.010));
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn power_threshold_rejects_negative() {
        PowerThreshold::new(Watts(-1.0));
    }
}
