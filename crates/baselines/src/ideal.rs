//! The ∞-memory *Ideal* reference system.
//!
//! The paper's Ideal bar "models an infinite input buffer that never
//! overflows, only discarding interesting inputs due to ML model
//! misclassifications" (§2.3). Because such a system eventually
//! processes every stored input at the highest quality, its outcome is
//! fully determined by the capture schedule, the event ground truth and
//! the high-quality classifier's error rates — no device simulation is
//! needed (nor bounded by it: in overloaded environments the Ideal
//! system's queue grows without limit, which only an accounting model
//! can represent).

use qz_sim::{ClassRates, Metrics};
use qz_traces::EventTrace;
use qz_types::{SimDuration, SimTime, SplitMix64};

/// Computes the Ideal system's metrics for an event trace.
///
/// Every frame captured during an event is stored (the Ideal camera is
/// always on); every stored input is classified with the *high-quality*
/// model (`rates`), and every positive is reported at high quality.
///
/// # Panics
///
/// Panics if `capture_period` is zero.
pub fn ideal_metrics(
    events: &EventTrace,
    capture_period: SimDuration,
    rates: ClassRates,
    seed: u64,
) -> Metrics {
    assert!(!capture_period.is_zero(), "capture period must be positive");
    let mut rng = SplitMix64::new(seed);
    let mut m = Metrics::default();
    let end = events.end();
    let mut cursor = events.cursor();
    let mut t = SimTime::ZERO;
    while t < end {
        m.frames_total += 1;
        match cursor.active_at(t) {
            None => m.frames_filtered += 1,
            Some(e) => {
                m.arrivals += 1;
                m.stored += 1;
                if e.interesting {
                    m.interesting_total += 1;
                    if rng.chance(rates.false_negative) {
                        m.false_negatives += 1;
                    } else {
                        m.reports_interesting_high += 1;
                        m.jobs_by_option[0] += 2; // process + report jobs
                    }
                } else if rng.chance(rates.false_positive) {
                    m.reports_uninteresting_high += 1;
                    m.jobs_by_option[0] += 2;
                } else {
                    m.true_negatives += 1;
                    m.jobs_by_option[0] += 1;
                }
            }
        }
        t += capture_period;
    }
    m.sim_time = end.since(SimTime::ZERO);
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use qz_traces::EventTraceBuilder;

    fn trace() -> EventTrace {
        EventTraceBuilder::new().event_count(100).seed(5).build()
    }

    #[test]
    fn perfect_model_reports_everything() {
        let m = ideal_metrics(
            &trace(),
            SimDuration::from_secs(1),
            ClassRates::new(0.0, 0.0),
            1,
        );
        assert_eq!(m.false_negatives, 0);
        assert_eq!(m.reports_interesting_high, m.interesting_total);
        assert_eq!(m.ibo_discards, 0);
        assert_eq!(m.interesting_discarded(), 0);
    }

    #[test]
    fn false_negative_rate_is_respected() {
        let m = ideal_metrics(
            &trace(),
            SimDuration::from_secs(1),
            ClassRates::new(0.2, 0.0),
            2,
        );
        let frac = m.false_negatives as f64 / m.interesting_total as f64;
        assert!((frac - 0.2).abs() < 0.05, "frac={frac}");
        assert_eq!(
            m.reports_interesting_high + m.false_negatives,
            m.interesting_total
        );
    }

    #[test]
    fn false_positives_produce_uninteresting_reports() {
        let m = ideal_metrics(
            &trace(),
            SimDuration::from_secs(1),
            ClassRates::new(0.0, 0.3),
            3,
        );
        assert!(m.reports_uninteresting_high > 0);
        let uninteresting = m.arrivals - m.interesting_total;
        assert_eq!(
            m.reports_uninteresting_high + m.true_negatives,
            uninteresting
        );
    }

    #[test]
    fn frame_accounting_is_complete() {
        let m = ideal_metrics(
            &trace(),
            SimDuration::from_secs(1),
            ClassRates::new(0.05, 0.05),
            4,
        );
        assert_eq!(m.frames_total, m.frames_filtered + m.arrivals);
        assert_eq!(
            m.frames_missed_off, 0,
            "the Ideal camera never misses a frame"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let a = ideal_metrics(
            &trace(),
            SimDuration::from_secs(1),
            ClassRates::new(0.1, 0.1),
            9,
        );
        let b = ideal_metrics(
            &trace(),
            SimDuration::from_secs(1),
            ClassRates::new(0.1, 0.1),
            9,
        );
        assert_eq!(a, b);
    }

    #[test]
    fn slower_capture_sees_fewer_frames() {
        let fast = ideal_metrics(
            &trace(),
            SimDuration::from_secs(1),
            ClassRates::new(0.0, 0.0),
            1,
        );
        let slow = ideal_metrics(
            &trace(),
            SimDuration::from_secs(5),
            ClassRates::new(0.0, 0.0),
            1,
        );
        assert!(slow.frames_total < fast.frames_total);
        assert!(slow.interesting_total < fast.interesting_total);
    }

    #[test]
    #[should_panic(expected = "capture period")]
    fn rejects_zero_period() {
        ideal_metrics(&trace(), SimDuration::ZERO, ClassRates::new(0.0, 0.0), 1);
    }
}
