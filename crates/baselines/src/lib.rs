//! Baseline systems from the Quetzal paper's evaluation (§6.1).
//!
//! Every baseline is a composition of the `quetzal` crate's pluggable
//! pieces — a scheduling policy, a degradation policy and a service
//! estimator — assembled through [`quetzal::Quetzal::builder`]:
//!
//! | System | Scheduler | Degradation | Estimator |
//! |---|---|---|---|
//! | `QZ` (Quetzal) | Energy-aware SJF | IBO engine | energy-aware |
//! | `NA` (NoAdapt) | FCFS | never | — |
//! | `AD` (Always Degrade) | FCFS | always lowest | — |
//! | `CN` (CatNap) | FCFS | buffer 100 % full | — |
//! | fixed-threshold | FCFS | buffer ≥ p % full | — |
//! | `PZO`/`PZI` (Protean/Zygarde) | FCFS | input power < threshold | — |
//! | `Avg. S_e2e` | Energy-aware SJF | IBO engine | average of observed |
//! | `FCFS`/`LCFS` (Fig. 12) | FCFS / LCFS | IBO engine | energy-aware |
//!
//! The [`ideal`] module provides the ∞-memory *Ideal* reference, which
//! the paper computes as "never overflows, loses inputs only to
//! (high-quality) ML misclassification".

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod degrade;
pub mod ideal;
pub mod presets;

pub use degrade::{AlwaysDegrade, BufferThreshold, NeverDegrade, PowerThreshold};
pub use ideal::ideal_metrics;
pub use presets::{build_runtime, BaselineKind};
