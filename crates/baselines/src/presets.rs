//! Named system presets: one constructor per evaluated system.

use crate::degrade::{AlwaysDegrade, BufferThreshold, NeverDegrade, PowerThreshold};
use core::fmt;
use quetzal::model::{AppSpec, SpecError};
use quetzal::policy::{EnergyAwareSjf, Fcfs, Lcfs};
use quetzal::service::{AvgObservedEstimator, HwAssistedEstimator};
use quetzal::{IboEngine, Quetzal, QuetzalConfig};
use qz_hw::PowerMonitor;
use qz_types::Watts;

/// Every system the paper evaluates, as a constructible preset.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum BaselineKind {
    /// Quetzal: Energy-aware SJF + IBO engine + energy-aware `S_e2e`.
    Quetzal,
    /// `NA`: FCFS, never degrades (most prior systems).
    NoAdapt,
    /// `AD`: FCFS, always runs the lowest quality.
    AlwaysDegrade,
    /// `CN` (CatNap): FCFS, degrades only once the buffer is 100 % full.
    CatNap,
    /// Fixed buffer-fill threshold (Fig. 11's 0–100 % sweep).
    FixedThreshold(f64),
    /// Protean/Zygarde-style static input-power threshold (absolute
    /// watts; callers derive it from the datasheet max for PZO or the
    /// observed max for PZI).
    PowerThreshold(Watts),
    /// Quetzal with the *Avg. S_e2e* estimator (§7.3 sensitivity).
    AvgSe2e,
    /// Quetzal predicting `S_e2e` through the hardware measurement
    /// module (diode/ADC + Algorithm 3) instead of exact division.
    QuetzalHw,
    /// Quetzal with the variable-cost estimator (the paper's future-work
    /// extension): per-task inflation learned at the given percentile.
    QuetzalVar(f64),
    /// Quetzal's IBO engine over an FCFS scheduler (Fig. 12).
    FcfsIbo,
    /// Quetzal's IBO engine over an LCFS scheduler (Fig. 12).
    LcfsIbo,
}

impl BaselineKind {
    /// The short label the paper's figures use.
    pub fn label(&self) -> String {
        match self {
            BaselineKind::Quetzal => "QZ".into(),
            BaselineKind::NoAdapt => "NA".into(),
            BaselineKind::AlwaysDegrade => "AD".into(),
            BaselineKind::CatNap => "CN".into(),
            BaselineKind::FixedThreshold(p) => format!("TH{:.0}", p * 100.0),
            BaselineKind::PowerThreshold(w) => format!("PZ@{:.1}mW", w.as_milliwatts()),
            BaselineKind::AvgSe2e => "AvgSe2e".into(),
            BaselineKind::QuetzalHw => "QZ-HW".into(),
            BaselineKind::QuetzalVar(p) => format!("QZ-VAR{:.0}", p * 100.0),
            BaselineKind::FcfsIbo => "FCFS".into(),
            BaselineKind::LcfsIbo => "LCFS".into(),
        }
    }
}

impl fmt::Display for BaselineKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

/// Builds the runtime for a named system.
///
/// # Errors
///
/// Propagates [`SpecError`] from runtime assembly.
///
/// # Panics
///
/// Panics if a [`BaselineKind::FixedThreshold`] fraction is outside
/// `[0, 1]` or a [`BaselineKind::PowerThreshold`] is negative (these are
/// experiment constants, so a bad value is a programming error).
pub fn build_runtime(
    kind: BaselineKind,
    spec: AppSpec,
    config: QuetzalConfig,
) -> Result<Quetzal, SpecError> {
    let builder = Quetzal::builder(spec).config(config);
    match kind {
        BaselineKind::Quetzal => builder.build(),
        BaselineKind::NoAdapt => builder
            .policy(Box::new(Fcfs::new()))
            .degradation(Box::new(NeverDegrade::new()))
            .build(),
        BaselineKind::AlwaysDegrade => builder
            .policy(Box::new(Fcfs::new()))
            .degradation(Box::new(AlwaysDegrade::new()))
            .build(),
        BaselineKind::CatNap => builder
            .policy(Box::new(Fcfs::new()))
            .degradation(Box::new(BufferThreshold::catnap()))
            .build(),
        BaselineKind::FixedThreshold(p) => builder
            .policy(Box::new(Fcfs::new()))
            .degradation(Box::new(BufferThreshold::new(p)))
            .build(),
        BaselineKind::PowerThreshold(w) => builder
            .policy(Box::new(Fcfs::new()))
            .degradation(Box::new(PowerThreshold::new(w)))
            .build(),
        BaselineKind::QuetzalVar(p) => builder
            .estimator(Box::new(quetzal::VariableCostEstimator::new(p)))
            .build(),
        BaselineKind::QuetzalHw => {
            let estimator = HwAssistedEstimator::from_spec(builder.spec(), PowerMonitor::default());
            builder.estimator(Box::new(estimator)).build()
        }
        BaselineKind::AvgSe2e => builder
            .policy(Box::new(EnergyAwareSjf::new()))
            .degradation(Box::new(IboEngine::new()))
            .estimator(Box::new(AvgObservedEstimator::new()))
            .build(),
        BaselineKind::FcfsIbo => builder
            .policy(Box::new(Fcfs::new()))
            .degradation(Box::new(IboEngine::new()))
            .build(),
        BaselineKind::LcfsIbo => builder
            .policy(Box::new(Lcfs::new()))
            .degradation(Box::new(IboEngine::new()))
            .build(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quetzal::model::{AppSpecBuilder, TaskCost};
    use quetzal::runtime::BufferView;
    use qz_types::Seconds;

    fn spec() -> AppSpec {
        let mut b = AppSpecBuilder::new();
        let ml = b
            .degradable_task("ml")
            .option("hi", TaskCost::new(Seconds(3.0), Watts(0.02)))
            .option("lo", TaskCost::new(Seconds(0.3), Watts(0.015)))
            .finish()
            .unwrap();
        b.job("process", vec![ml]).unwrap();
        b.build().unwrap()
    }

    fn decide(kind: BaselineKind, occupancy: usize, p_in: Watts) -> (usize, bool) {
        let mut qz = build_runtime(kind, spec(), QuetzalConfig::default()).unwrap();
        for _ in 0..16 {
            qz.on_capture(true);
        }
        let job = qz.spec().job_id(0).unwrap();
        let d = qz
            .schedule(
                &[(job, Some(Seconds(1.0)))],
                BufferView {
                    occupancy,
                    capacity: 10,
                },
                p_in,
            )
            .unwrap();
        (d.option, d.ibo_predicted)
    }

    #[test]
    fn no_adapt_never_degrades() {
        let (opt, _) = decide(BaselineKind::NoAdapt, 10, Watts(0.0001));
        assert_eq!(opt, 0);
    }

    #[test]
    fn always_degrade_always_degrades() {
        let (opt, _) = decide(BaselineKind::AlwaysDegrade, 0, Watts(1.0));
        assert_eq!(opt, 1);
    }

    #[test]
    fn catnap_degrades_only_when_full() {
        let (opt, _) = decide(BaselineKind::CatNap, 9, Watts(1.0));
        assert_eq!(opt, 0);
        let (opt, _) = decide(BaselineKind::CatNap, 10, Watts(1.0));
        assert_eq!(opt, 1);
    }

    #[test]
    fn fixed_threshold_degrades_at_fill() {
        let (opt, _) = decide(BaselineKind::FixedThreshold(0.5), 4, Watts(1.0));
        assert_eq!(opt, 0);
        let (opt, _) = decide(BaselineKind::FixedThreshold(0.5), 5, Watts(1.0));
        assert_eq!(opt, 1);
    }

    #[test]
    fn power_threshold_degrades_in_darkness() {
        let kind = BaselineKind::PowerThreshold(Watts(0.010));
        let (opt, _) = decide(kind, 0, Watts(0.020));
        assert_eq!(opt, 0);
        let (opt, _) = decide(kind, 0, Watts(0.005));
        assert_eq!(opt, 1, "PZ degrades on low power even with an empty buffer");
    }

    #[test]
    fn quetzal_predicts_ibos() {
        // Low power + nearly full buffer → IBO predicted, degradation.
        let (opt, ibo) = decide(BaselineKind::Quetzal, 9, Watts(0.001));
        assert!(ibo);
        assert_eq!(opt, 1);
        // High power + empty buffer → no action.
        let (opt, ibo) = decide(BaselineKind::Quetzal, 0, Watts(1.0));
        assert!(!ibo);
        assert_eq!(opt, 0);
    }

    #[test]
    fn all_kinds_build() {
        for kind in [
            BaselineKind::Quetzal,
            BaselineKind::NoAdapt,
            BaselineKind::AlwaysDegrade,
            BaselineKind::CatNap,
            BaselineKind::FixedThreshold(0.25),
            BaselineKind::PowerThreshold(Watts(0.01)),
            BaselineKind::AvgSe2e,
            BaselineKind::QuetzalHw,
            BaselineKind::QuetzalVar(0.9),
            BaselineKind::FcfsIbo,
            BaselineKind::LcfsIbo,
        ] {
            assert!(
                build_runtime(kind, spec(), QuetzalConfig::default()).is_ok(),
                "{kind}"
            );
        }
    }

    #[test]
    fn labels() {
        assert_eq!(BaselineKind::Quetzal.label(), "QZ");
        assert_eq!(BaselineKind::FixedThreshold(0.75).label(), "TH75");
        assert_eq!(
            BaselineKind::PowerThreshold(Watts(0.0105)).label(),
            "PZ@10.5mW"
        );
        assert_eq!(BaselineKind::LcfsIbo.to_string(), "LCFS");
    }
}
