//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A length bound for generated collections.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SizeRange {
    lo: usize,
    /// Inclusive upper bound.
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> SizeRange {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

/// Generates `Vec`s whose elements come from `element` and whose length
/// falls in `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// The strategy returned by [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.hi - self.size.lo) as u64 + 1;
        let len = self.size.lo + rng.below(span) as usize;
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn lengths_respect_bounds() {
        let mut r = TestRng::from_name("vec");
        let s = vec(0u8..10, 2..5);
        for _ in 0..200 {
            let v = s.sample(&mut r);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
    }

    #[test]
    fn fixed_size() {
        let mut r = TestRng::from_name("vec-fixed");
        let s = vec(0u8..10, 3usize);
        assert_eq!(s.sample(&mut r).len(), 3);
    }
}
