//! A minimal, dependency-free stand-in for the [`proptest`] crate.
//!
//! The workspace's build environment is hermetic: no crate registry is
//! reachable, so the real `proptest` cannot be fetched. This shim
//! implements exactly the subset of proptest's API the workspace's tests
//! use — range/tuple/`Just`/`prop_oneof!`/`prop_map`/`collection::vec`
//! strategies, `any::<T>()`, the `proptest!` macro with an optional
//! `#![proptest_config(...)]` header, and the `prop_assert*` /
//! `prop_assume!` macros — backed by deterministic random sampling.
//!
//! Differences from the real crate (acceptable for this workspace):
//!
//! - **No shrinking.** A failing case reports its inputs but is not
//!   minimized.
//! - **No persistence.** `proptest-regressions` files are ignored; the
//!   RNG is seeded deterministically from the test name, so every run
//!   explores the same cases.
//! - Default case count is 64 (the real default is 256); override with
//!   `ProptestConfig::with_cases(n)` as usual.
//!
//! [`proptest`]: https://docs.rs/proptest

// Shim code intentionally narrows RNG output into the requested
// integer domains; these casts are the sampling mechanism.
#![allow(
    clippy::cast_possible_truncation,
    clippy::cast_sign_loss,
    clippy::float_cmp
)]

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// Everything tests conventionally glob-import.
pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that samples the strategies `config.cases` times.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr)
        $($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::from_name(stringify!($name));
                let mut cases_run: u32 = 0;
                let mut attempts: u32 = 0;
                while cases_run < config.cases {
                    attempts += 1;
                    assert!(
                        attempts <= config.cases.saturating_mul(20).max(1000),
                        "proptest: too many rejected cases in {}",
                        stringify!($name)
                    );
                    $(
                        let $arg = $crate::strategy::Strategy::sample(&$strat, &mut rng);
                    )+
                    let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body
                            ::core::result::Result::Ok(())
                        })();
                    match outcome {
                        Ok(()) => cases_run += 1,
                        Err($crate::test_runner::TestCaseError::Reject(_)) => continue,
                        Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            panic!(
                                "proptest case {}/{} of {} failed: {}",
                                cases_run + 1,
                                config.cases,
                                stringify!($name),
                                msg
                            );
                        }
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Like `assert!`, but fails the current proptest case with a message
/// instead of panicking directly (the harness adds case context).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Like `assert_eq!` for proptest cases.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(*left == *right, $($fmt)+);
    }};
}

/// Like `assert_ne!` for proptest cases.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
}

/// Discards the current case (sampled inputs don't satisfy a
/// precondition) without counting it as run.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

/// Picks uniformly among several strategies producing the same value
/// type. (The real proptest supports weights; this workspace doesn't use
/// them.)
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}
