//! Case configuration, failure plumbing, and the deterministic RNG.

/// How many cases each property runs, mirroring the real
/// `proptest::test_runner::Config` field this workspace uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of successful cases required for the property to pass.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

/// Why a single case did not pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// The case's inputs were rejected by `prop_assume!`.
    Reject(String),
    /// A `prop_assert*` failed.
    Fail(String),
}

impl TestCaseError {
    /// A failed assertion.
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Fail(msg.into())
    }

    /// A rejected precondition.
    pub fn reject(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Reject(msg.into())
    }
}

/// SplitMix64: tiny, fast, and plenty good for test-case generation.
/// Seeded from the test's name so each property explores a stable,
/// per-test sequence run over run (no persistence files needed).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from raw state.
    pub fn new(seed: u64) -> TestRng {
        TestRng { state: seed }
    }

    /// Seeds deterministically from a test name (FNV-1a).
    pub fn from_name(name: &str) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng::new(h)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Modulo bias is irrelevant at test-generation quality.
        self.next_u64() % bound
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_name() {
        let a: Vec<u64> = {
            let mut r = TestRng::from_name("x");
            (0..4).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = TestRng::from_name("x");
            (0..4).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        let mut r = TestRng::from_name("y");
        assert_ne!(a[0], r.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = TestRng::from_name("f");
        for _ in 0..1000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn below_respects_bound() {
        let mut r = TestRng::from_name("b");
        for _ in 0..1000 {
            assert!(r.below(7) < 7);
        }
    }
}
