//! Value-generation strategies (sampling only; no shrinking).

use crate::test_runner::TestRng;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Generates values of `Self::Value` from an RNG.
///
/// Unlike the real proptest `Strategy` (which builds shrinkable value
/// trees), this one samples directly. The combinator subset matches what
/// the workspace uses: `prop_map`, `boxed`, ranges, tuples, [`Just`],
/// [`Union`] (via `prop_oneof!`), and `collection::vec`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Samples one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Keeps only values for which `f` returns `true`, retrying up to an
    /// attempt cap (matches the real crate's local-rejection behaviour).
    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            f,
            whence,
        }
    }

    /// Type-erases the strategy so heterogeneous strategies can share a
    /// collection (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (**self).sample(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        (**self).sample(rng)
    }
}

/// Always produces a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `strategy.prop_map(f)`.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// `strategy.prop_filter(reason, f)`.
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    f: F,
    whence: &'static str,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.sample(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter({}) rejected 1000 consecutive samples",
            self.whence
        );
    }
}

/// Uniform choice among same-valued strategies (`prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds from pre-boxed alternatives; panics if empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].sample(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64 + 1;
                lo + rng.below(span) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = self.end.wrapping_sub(self.start) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}

signed_range_strategy!(i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        lo + rng.next_f64() * (hi - lo)
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+))+) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )+};
}

tuple_strategy! {
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// Types with a canonical "any value" strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Samples an unconstrained value.
    fn arbitrary_sample(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary_sample(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary_sample(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    fn arbitrary_sample(rng: &mut TestRng) -> f64 {
        // Finite, sign-symmetric, spanning several orders of magnitude —
        // a pragmatic "any" for numeric property tests.
        let mag = rng.next_f64() * 2.0 - 1.0;
        let exp = (rng.below(61) as i32) - 30;
        mag * 2f64.powi(exp)
    }
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary_sample(rng)
    }
}

/// An unconstrained strategy for `T` (proptest's `any::<T>()`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::from_name("strategy-tests")
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = rng();
        for _ in 0..500 {
            let v = (3u8..9).sample(&mut r);
            assert!((3..9).contains(&v));
            let w = (1u64..=4).sample(&mut r);
            assert!((1..=4).contains(&w));
            let f = (0.25f64..0.75).sample(&mut r);
            assert!((0.25..0.75).contains(&f));
            let s = (-5i64..5).sample(&mut r);
            assert!((-5..5).contains(&s));
        }
    }

    #[test]
    fn map_filter_union_compose() {
        let mut r = rng();
        let even = (0u32..100).prop_map(|x| x * 2);
        let big_even = (0u32..100)
            .prop_map(|x| x * 2)
            .prop_filter("big", |x| *x >= 50);
        let pick = Union::new(vec![Just(1u32).boxed(), Just(2u32).boxed()]);
        for _ in 0..200 {
            assert_eq!(even.sample(&mut r) % 2, 0);
            assert!(big_even.sample(&mut r) >= 50);
            assert!(matches!(pick.sample(&mut r), 1 | 2));
        }
    }

    #[test]
    fn tuples_sample_elementwise() {
        let mut r = rng();
        let (a, b) = (0u8..4, any::<bool>()).sample(&mut r);
        assert!(a < 4);
        let _: bool = b;
    }
}
