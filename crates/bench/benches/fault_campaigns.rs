//! Measures qz-fault campaign throughput with prefix-snapshot forking
//! ([`CampaignMode::Snapshot`]) versus replay-from-zero
//! ([`CampaignMode::Replay`]) on the standard 210-campaign suite
//! (3 environments × 70 campaigns, every fault class gated to ~75% of
//! the fault-free run), and appends one record to the
//! `results/BENCH_fault_campaigns.json` trajectory (`qz bench --check`
//! gates on the newest record).
//!
//! The workspace's criterion shim has no measurement API, so this
//! harness times suites itself with `std::time::Instant` (best of
//! `REPS`). Both modes run the same seeds; the harness asserts their
//! reports are byte-identical before reporting any number, so a
//! speedup can never come from divergence.

use qz_app::SimTweaks;
use qz_fault::{run_campaigns_with, run_one, CampaignConfig, CampaignMode, FaultPlan, FaultReport};
use qz_fleet::Executor;
use qz_traces::{EnvironmentKind, SensingEnvironment};
use qz_types::SimDuration;
use std::hint::black_box;
use std::time::Instant;

const REPS: usize = 2;
const CAMPAIGNS: usize = 70;
const SEED: u64 = 0xFA017;

/// One suite configuration: the standard plan with the fault gate at
/// ~75% of the fault-free run, so the forked suffix is the final
/// quarter of the timeline.
fn config(env_kind: EnvironmentKind) -> CampaignConfig {
    let mut cfg = CampaignConfig {
        env: env_kind,
        events: 12,
        campaigns: CAMPAIGNS,
        seed: SEED,
        plan: FaultPlan::standard(),
        tweaks: SimTweaks {
            drain: SimDuration::from_secs(60),
            ..SimTweaks::default()
        },
        ..CampaignConfig::default()
    };
    let env = SensingEnvironment::generate(cfg.env, cfg.events, cfg.env_seed());
    let mut tweaks = cfg.tweaks.clone();
    tweaks.seed = cfg.sim_seed();
    let (clean, _) = run_one(cfg.system, &cfg.profile, &env, &tweaks, None);
    let clean_ms = clean.metrics.sim_time.as_millis();
    cfg.injection_at = SimDuration::from_secs(clean_ms * 3 / 4 / 1000);
    cfg
}

/// Best-of-`REPS` wall-clock for one campaign mode; returns the report
/// so the caller can assert both modes agree.
fn time_mode(cfg: &CampaignConfig, mode: CampaignMode) -> (f64, FaultReport) {
    let mut best = f64::INFINITY;
    let mut report = None;
    for _ in 0..REPS {
        let start = Instant::now();
        let r = run_campaigns_with(cfg, Executor::new(1), mode).expect("campaign suite runs");
        best = best.min(start.elapsed().as_secs_f64());
        report = Some(black_box(r));
    }
    (best, report.expect("REPS > 0"))
}

struct Outcome {
    label: &'static str,
    inject_at_s: u64,
    replay_secs: f64,
    snapshot_secs: f64,
}

impl Outcome {
    fn speedup(&self) -> f64 {
        self.replay_secs / self.snapshot_secs.max(f64::MIN_POSITIVE)
    }
}

fn run_case(env_kind: EnvironmentKind) -> Outcome {
    let cfg = config(env_kind);
    let (replay_secs, replay_report) = time_mode(&cfg, CampaignMode::Replay);
    let (snapshot_secs, snapshot_report) = time_mode(&cfg, CampaignMode::Snapshot);
    assert_eq!(
        replay_report.to_json(),
        snapshot_report.to_json(),
        "modes diverged on {} — a speedup number would be meaningless",
        env_kind.label()
    );
    Outcome {
        label: env_kind.label(),
        inject_at_s: cfg.injection_at.as_millis() / 1000,
        replay_secs,
        snapshot_secs,
    }
}

fn main() {
    let envs = [
        EnvironmentKind::Quiet,
        EnvironmentKind::Crowded,
        EnvironmentKind::MoreCrowded,
    ];

    let mut rows = Vec::new();
    for env_kind in envs {
        let o = run_case(env_kind);
        println!(
            "{:>12}: {} campaigns, inject at {}s | replay {:.3} s | snapshot {:.3} s | {:.1}x",
            o.label,
            CAMPAIGNS,
            o.inject_at_s,
            o.replay_secs,
            o.snapshot_secs,
            o.speedup()
        );
        rows.push(o);
    }

    let repo = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let cases: Vec<qz_prof::BenchCase> = rows
        .iter()
        .map(|o| qz_prof::BenchCase {
            name: o.label.to_owned(),
            values: vec![
                (
                    "campaigns".to_owned(),
                    as_metric(u64::try_from(CAMPAIGNS).unwrap_or(u64::MAX)),
                ),
                ("inject_at_s".to_owned(), as_metric(o.inject_at_s)),
                ("replay_secs".to_owned(), o.replay_secs),
                ("snapshot_secs".to_owned(), o.snapshot_secs),
                ("speedup".to_owned(), o.speedup()),
            ],
        })
        .collect();
    let path = repo.join("results/BENCH_fault_campaigns.json");
    let run =
        qz_prof::Trajectory::append_run(&path, "fault_campaigns", &qz_prof::git_rev(&repo), cases)
            .expect("append BENCH_fault_campaigns.json");
    println!("appended run {run} to {}", path.display());
}

/// Counter values stored as f64 in the trajectory; the counts here fit
/// f64's 53-bit mantissa comfortably.
#[allow(clippy::cast_precision_loss)]
fn as_metric(v: u64) -> f64 {
    v as f64
}
