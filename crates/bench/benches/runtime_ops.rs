//! Microbenchmarks for the Quetzal runtime's hot operations: the
//! energy-aware SJF selection, the IBO detection/reaction walk, the PID
//! update, and the window trackers. These are the operations a real
//! device would run on every scheduling round, so their costs are the
//! software half of the paper's §5.1 overhead story.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use quetzal::ibo::{DegradationContext, DegradationPolicy, IboEngine};
use quetzal::model::{AppSpec, AppSpecBuilder, TaskCost};
use quetzal::pid::{Pid, PidConfig};
use quetzal::policy::{EnergyAwareSjf, JobCandidate, SchedulerInputs, SchedulingPolicy};
use quetzal::runtime::{BufferView, Quetzal, QuetzalConfig};
use quetzal::service::EnergyAwareEstimator;
use quetzal::trackers::{ArrivalTracker, ExecutionTracker};
use quetzal::window::BitWindow;
use qz_types::{Hertz, Seconds, Watts};
use std::hint::black_box;

/// A spec at the paper's maximum scale: 32 tasks (8 degradable with 4
/// options each) in 8 jobs of 4 tasks.
fn max_scale_spec() -> AppSpec {
    let mut b = AppSpecBuilder::new();
    let mut tasks = Vec::new();
    for i in 0..32 {
        if i % 4 == 0 {
            let mut d = b.degradable_task(&format!("deg{i}"));
            for o in 0..4 {
                d = d.option(
                    &format!("o{o}"),
                    TaskCost::new(Seconds(1.0 / (o + 1) as f64), Watts(0.01)),
                );
            }
            tasks.push(d.finish().unwrap());
        } else {
            tasks.push(
                b.fixed_task(&format!("fix{i}"), TaskCost::new(Seconds(0.5), Watts(0.02)))
                    .unwrap(),
            );
        }
    }
    for j in 0..8 {
        b.job(&format!("job{j}"), tasks[j * 4..(j + 1) * 4].to_vec())
            .unwrap();
    }
    b.build().unwrap()
}

fn bench_scheduler(c: &mut Criterion) {
    let spec = max_scale_spec();
    let exec = ExecutionTracker::new(&spec, 64);
    let est = EnergyAwareEstimator::new();
    let options = vec![0u8; 32];
    let inputs = SchedulerInputs {
        spec: &spec,
        exec: &exec,
        estimator: &est,
        p_in: Watts(0.01),
        current_options: &options,
    };
    let candidates: Vec<JobCandidate> = (0..8)
        .map(|i| JobCandidate {
            job: spec.job_id(i).unwrap(),
            oldest_input_age: Seconds(i as f64),
        })
        .collect();
    let mut sjf = EnergyAwareSjf::new();
    c.bench_function("energy_aware_sjf_select_8_jobs_32_tasks", |b| {
        b.iter(|| sjf.select(black_box(&inputs), black_box(&candidates)))
    });
}

fn bench_ibo_engine(c: &mut Criterion) {
    let options = [Seconds(4.0), Seconds(2.0), Seconds(1.0), Seconds(0.1)];
    let ctx = DegradationContext {
        lambda: 0.8,
        occupancy: 7,
        capacity: 10,
        expected_service: Seconds(4.5),
        non_degradable_service: Seconds(0.5),
        option_services: &options,
        p_in: Watts(0.005),
    };
    let mut engine = IboEngine::new();
    c.bench_function("ibo_detect_and_react_4_options", |b| {
        b.iter(|| engine.select_option(black_box(&ctx)))
    });
}

fn bench_full_schedule_round(c: &mut Criterion) {
    // One complete runtime invocation: policy + decomposition + PID +
    // degradation walk, at maximum spec scale.
    let spec = max_scale_spec();
    let runnable: Vec<_> = (0..8)
        .map(|i| (spec.job_id(i).unwrap(), Some(Seconds(i as f64 + 1.0))))
        .collect();
    c.bench_function("quetzal_schedule_round_max_scale", |b| {
        b.iter_batched(
            || Quetzal::new(max_scale_spec(), QuetzalConfig::default()).unwrap(),
            |mut qz| {
                qz.schedule(
                    black_box(&runnable),
                    BufferView {
                        occupancy: 6,
                        capacity: 10,
                    },
                    Watts(0.008),
                )
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_pid(c: &mut Criterion) {
    let mut pid = Pid::new(PidConfig::default());
    let mut x = 0.0f64;
    c.bench_function("pid_update", |b| {
        b.iter(|| {
            x += 0.1;
            pid.update(black_box(x.sin() * 5.0))
        })
    });
}

fn bench_windows(c: &mut Criterion) {
    c.bench_function("bit_window_push_256", |b| {
        let mut w = BitWindow::new(256);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            w.push(i.is_multiple_of(3));
            black_box(w.ones())
        })
    });
    c.bench_function("arrival_tracker_lambda", |b| {
        let mut t = ArrivalTracker::new(256, Hertz(1.0));
        for i in 0..256 {
            t.record_capture(i % 2 == 0);
        }
        b.iter(|| black_box(t.lambda()))
    });
}

criterion_group!(
    benches,
    bench_scheduler,
    bench_ibo_engine,
    bench_full_schedule_round,
    bench_pid,
    bench_windows
);
criterion_main!(benches);
