//! Benchmarks the simulator itself: tick throughput and a small
//! end-to-end run. The figure binaries simulate hours of device time, so
//! tick cost determines how large an experiment is practical.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use quetzal::QuetzalConfig;
use qz_app::{apollo4, AppModel};
use qz_baselines::{build_runtime, BaselineKind};
use qz_sim::{SimConfig, Simulation};
use qz_traces::{EnvironmentKind, SensingEnvironment};
use std::hint::black_box;

fn make_sim(env: &SensingEnvironment) -> Simulation<'_> {
    let profile = apollo4();
    let app = AppModel::person_detection(&profile).unwrap();
    let runtime = build_runtime(
        BaselineKind::Quetzal,
        app.spec.clone(),
        QuetzalConfig::default(),
    )
    .unwrap();
    let cfg = SimConfig {
        device: profile.device.clone(),
        ..SimConfig::default()
    };
    Simulation::new(cfg, env, runtime, app.entry, app.behaviors, app.routes).unwrap()
}

fn bench_ticks(c: &mut Criterion) {
    let env = SensingEnvironment::generate(EnvironmentKind::Crowded, 50, 1);
    let mut group = c.benchmark_group("simulator");
    group.throughput(Throughput::Elements(10_000));
    group.bench_function("ticks_10k", |b| {
        b.iter_batched(
            || make_sim(&env),
            |mut sim| {
                for _ in 0..10_000 {
                    if !sim.step() {
                        break;
                    }
                }
                black_box(sim.time())
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

fn bench_small_run(c: &mut Criterion) {
    let env = SensingEnvironment::generate(EnvironmentKind::LessCrowded, 10, 2);
    c.bench_function("full_run_10_events_lesscrowded", |b| {
        b.iter_batched(
            || make_sim(&env),
            |sim| black_box(sim.run()),
            BatchSize::SmallInput,
        )
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_ticks, bench_small_run
}
criterion_main!(benches);
