//! Microbenchmarks for the hardware-module ratio path vs software
//! division — the host-side analogue of the paper's §5.1 cycle
//! comparison (the authoritative per-MCU cycle counts live in
//! `qz_hw::costs`; this measures our simulation of each path).

use criterion::{criterion_group, criterion_main, Criterion};
use qz_hw::{premultiply_t_exe, se2e_hw, PowerMonitor};
use qz_types::{Seconds, Watts, Q16};
use std::hint::black_box;

fn bench_ratio_paths(c: &mut Criterion) {
    let table = premultiply_t_exe(Seconds(0.4));

    // Algorithm 3: subtraction + lookup + shift, pure integer.
    c.bench_function("se2e_algorithm3", |b| {
        let mut vd1 = 0u8;
        b.iter(|| {
            vd1 = vd1.wrapping_add(7);
            se2e_hw(black_box(&table), black_box(vd1 % 180), black_box(190))
        })
    });

    // The division it replaces, in Q16.16 fixed point (what MCU firmware
    // without the module would execute).
    c.bench_function("se2e_q16_division", |b| {
        let t_exe = Q16::from_f64(0.4);
        let mut p_in = 1u32;
        b.iter(|| {
            p_in = p_in % 4000 + 100;
            let ratio = Q16::from_f64(50.0) / Q16::from_bits(p_in as i32 * 65536 / 1000);
            black_box(t_exe.saturating_mul(ratio).max(t_exe))
        })
    });

    // Full-precision floating point reference.
    c.bench_function("se2e_f64_division", |b| {
        let mut p_in = 0.001f64;
        b.iter(|| {
            p_in = if p_in > 0.05 { 0.001 } else { p_in + 0.0007 };
            black_box((0.4f64 * (0.05 / p_in)).max(0.4))
        })
    });
}

fn bench_measurement_chain(c: &mut Criterion) {
    let monitor = PowerMonitor::default();
    c.bench_function("power_monitor_sample", |b| {
        let mut p = 0.001f64;
        b.iter(|| {
            p = if p > 0.4 { 0.001 } else { p * 1.1 };
            monitor.sample_power(black_box(Watts(p)))
        })
    });
}

criterion_group!(benches, bench_ratio_paths, bench_measurement_chain);
criterion_main!(benches);
