//! Measures the cost of the `qz-obs` decision-tracing layer on a full
//! simulator run: the seed baseline (no observer installed), an
//! explicitly-installed no-op observer (the disabled path every emit
//! site branches on), a recording observer capturing the complete
//! event stream, and the `qz-prof` phase profiler armed (the `qz
//! profile` path). The acceptance bar is no-op overhead under 2% of
//! the baseline.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use quetzal::QuetzalConfig;
use qz_app::{apollo4, AppModel};
use qz_baselines::{build_runtime, BaselineKind};
use qz_obs::{NoopObserver, RecordingObserver};
use qz_sim::{SimConfig, Simulation};
use qz_traces::{EnvironmentKind, SensingEnvironment};
use std::hint::black_box;

fn make_sim(env: &SensingEnvironment) -> Simulation<'_> {
    let profile = apollo4();
    let app = AppModel::person_detection(&profile).unwrap();
    let runtime = build_runtime(
        BaselineKind::Quetzal,
        app.spec.clone(),
        QuetzalConfig::default(),
    )
    .unwrap();
    let cfg = SimConfig {
        device: profile.device.clone(),
        ..SimConfig::default()
    };
    Simulation::new(cfg, env, runtime, app.entry, app.behaviors, app.routes).unwrap()
}

fn bench_observer_overhead(c: &mut Criterion) {
    let env = SensingEnvironment::generate(EnvironmentKind::Crowded, 25, 3);
    let mut group = c.benchmark_group("observer_overhead");

    group.bench_function("baseline_no_observer", |b| {
        b.iter_batched(
            || make_sim(&env),
            |sim| black_box(sim.run()),
            BatchSize::SmallInput,
        )
    });

    group.bench_function("noop_observer", |b| {
        b.iter_batched(
            || {
                let mut sim = make_sim(&env);
                sim.set_observer(Box::new(NoopObserver));
                sim
            },
            |sim| black_box(sim.run()),
            BatchSize::SmallInput,
        )
    });

    group.bench_function("recording_observer", |b| {
        b.iter_batched(
            || {
                let mut sim = make_sim(&env);
                sim.set_observer(Box::new(RecordingObserver::new()));
                sim
            },
            |sim| black_box(sim.run_traced()),
            BatchSize::SmallInput,
        )
    });

    group.bench_function("qz_prof_profiler", |b| {
        b.iter_batched(
            || {
                let mut sim = make_sim(&env);
                sim.enable_profiling();
                sim
            },
            |sim| black_box(sim.run()),
            BatchSize::SmallInput,
        )
    });

    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_observer_overhead
}
criterion_main!(benches);
