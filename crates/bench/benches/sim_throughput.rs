//! Measures simulator throughput with the per-tick reference engine
//! versus the event-horizon fast-forward engine, on one sparse and one
//! dense environment, and writes `results/BENCH_sim_throughput.json`.
//!
//! The workspace's criterion shim has no measurement API, so this
//! harness times runs itself with `std::time::Instant` (best of
//! `REPS`) and emits the JSON the CI gate parses. Both engines run the
//! same seeds; the harness asserts their metrics are identical before
//! reporting any number, so a speedup can never come from divergence.

use qz_app::{apollo4, simulate, SimTweaks};
use qz_baselines::BaselineKind;
use qz_sim::{EngineKind, Metrics};
use qz_traces::{EnvironmentKind, SensingEnvironment};
use std::hint::black_box;
use std::time::Instant;

const REPS: usize = 3;
const SEED: u64 = 9_2025;

struct Case {
    env: EnvironmentKind,
    events: usize,
}

struct Outcome {
    label: &'static str,
    events: usize,
    sim_ms: u64,
    tick_secs: f64,
    fast_secs: f64,
}

impl Outcome {
    fn speedup(&self) -> f64 {
        self.tick_secs / self.fast_secs.max(f64::MIN_POSITIVE)
    }
}

/// Best-of-`REPS` wall-clock for one engine; returns the metrics too so
/// the caller can assert both engines agree.
fn time_engine(env: &SensingEnvironment, engine: EngineKind) -> (f64, Metrics) {
    let profile = apollo4();
    let tweaks = SimTweaks {
        engine,
        ..SimTweaks::default()
    };
    let mut best = f64::INFINITY;
    let mut metrics = None;
    for _ in 0..REPS {
        let start = Instant::now();
        let m = simulate(BaselineKind::Quetzal, &profile, env, &tweaks);
        let secs = start.elapsed().as_secs_f64();
        best = best.min(secs);
        metrics = Some(black_box(m));
    }
    (best, metrics.expect("REPS > 0"))
}

fn run_case(case: &Case) -> Outcome {
    let env = SensingEnvironment::generate(case.env, case.events, SEED);
    let (tick_secs, tick_metrics) = time_engine(&env, EngineKind::Tick);
    let (fast_secs, fast_metrics) = time_engine(&env, EngineKind::FastForward);
    assert_eq!(
        tick_metrics,
        fast_metrics,
        "engines diverged on {} — a speedup number would be meaningless",
        case.env.label()
    );
    Outcome {
        label: case.env.label(),
        events: case.events,
        sim_ms: tick_metrics.sim_time.as_millis(),
        tick_secs,
        fast_secs,
    }
}

fn main() {
    let cases = [
        Case {
            env: EnvironmentKind::Quiet,
            events: 120,
        },
        Case {
            env: EnvironmentKind::Crowded,
            events: 120,
        },
    ];

    let mut rows = Vec::new();
    for case in &cases {
        let o = run_case(case);
        println!(
            "{:>8}: {:>11} simulated ticks | tick {:.3} s | fast-forward {:.3} s | {:.1}x",
            o.label,
            o.sim_ms,
            o.tick_secs,
            o.fast_secs,
            o.speedup()
        );
        rows.push(o);
    }

    let mut json = String::from("{\"bench\":\"sim_throughput\",\"system\":\"QZ\",\"cases\":[");
    for (i, o) in rows.iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        json.push_str(&format!(
            "{{\"env\":\"{}\",\"events\":{},\"sim_ticks\":{},\
             \"tick_secs\":{:.6},\"fast_forward_secs\":{:.6},\"speedup\":{:.3}}}",
            o.label,
            o.events,
            o.sim_ms,
            o.tick_secs,
            o.fast_secs,
            o.speedup()
        ));
    }
    json.push_str("]}\n");

    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../results/BENCH_sim_throughput.json"
    );
    std::fs::write(path, &json).expect("write BENCH_sim_throughput.json");
    println!("wrote {path}");
}
