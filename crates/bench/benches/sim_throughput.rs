//! Measures simulator throughput with the per-tick reference engine
//! versus the event-horizon fast-forward engine, on one sparse and one
//! dense environment, and appends one record to the
//! `results/BENCH_sim_throughput.json` trajectory (`qz bench --check`
//! gates on the newest record).
//!
//! The workspace's criterion shim has no measurement API, so this
//! harness times runs itself with `std::time::Instant` (best of
//! `REPS`) and emits the JSON the CI gate parses. Both engines run the
//! same seeds; the harness asserts their metrics are identical before
//! reporting any number, so a speedup can never come from divergence.

use qz_app::{apollo4, build_simulation, SimTweaks};
use qz_baselines::BaselineKind;
use qz_fault::{AdversarialInjector, FaultPlan};
use qz_sim::{EngineKind, Metrics};
use qz_traces::{EnvironmentKind, SensingEnvironment};
use std::hint::black_box;
use std::time::Instant;

const REPS: usize = 3;
const SEED: u64 = 9_2025;

struct Case {
    env: EnvironmentKind,
    events: usize,
    /// Fault-plan preset installed on both engines (`None` = clean
    /// run). A present injector collapses every quiescent span, so this
    /// exercises the batched busy-tick kernel end to end.
    fault: Option<&'static str>,
}

struct Outcome {
    label: &'static str,
    events: usize,
    sim_ms: u64,
    tick_secs: f64,
    fast_secs: f64,
}

impl Outcome {
    fn speedup(&self) -> f64 {
        self.tick_secs / self.fast_secs.max(f64::MIN_POSITIVE)
    }
}

/// Best-of-`REPS` wall-clock for one engine; returns the metrics too so
/// the caller can assert both engines agree. When `fault` names a
/// preset, the same seeded adversary is installed on every rep of both
/// engines, so the comparison stays apples to apples.
fn time_engine(
    env: &SensingEnvironment,
    engine: EngineKind,
    fault: Option<&'static str>,
) -> (f64, Metrics) {
    let profile = apollo4();
    let tweaks = SimTweaks {
        engine,
        ..SimTweaks::default()
    };
    let mut best = f64::INFINITY;
    let mut metrics = None;
    for _ in 0..REPS {
        let start = Instant::now();
        let mut sim = build_simulation(BaselineKind::Quetzal, &profile, env, &tweaks);
        if let Some(preset) = fault {
            let plan = FaultPlan::preset(preset).expect("known fault preset");
            sim.set_fault_injector(Box::new(AdversarialInjector::new(plan, SEED)));
        }
        while sim.step() {}
        let m = sim.metrics().clone();
        let secs = start.elapsed().as_secs_f64();
        best = best.min(secs);
        metrics = Some(black_box(m));
    }
    (best, metrics.expect("REPS > 0"))
}

fn run_case(case: &Case) -> Outcome {
    let env = SensingEnvironment::generate(case.env, case.events, SEED);
    let (tick_secs, tick_metrics) = time_engine(&env, EngineKind::Tick, case.fault);
    let (fast_secs, fast_metrics) = time_engine(&env, EngineKind::FastForward, case.fault);
    assert_eq!(
        tick_metrics,
        fast_metrics,
        "engines diverged on {} — a speedup number would be meaningless",
        case.env.label()
    );
    Outcome {
        label: case.env.label(),
        events: case.events,
        sim_ms: tick_metrics.sim_time.as_millis(),
        tick_secs,
        fast_secs,
    }
}

fn main() {
    let cases = [
        Case {
            env: EnvironmentKind::Quiet,
            events: 120,
            fault: None,
        },
        Case {
            env: EnvironmentKind::Crowded,
            events: 120,
            fault: None,
        },
        // Alternating 2 s storms / ~10 s lulls under the `smoke` fault
        // preset: the adversary keeps every tick busy, so the engine
        // alternates between bulk spans and full busy-tick blocks —
        // the mixed regime the kernel's prologue/tail boundary
        // exercises hardest.
        Case {
            env: EnvironmentKind::Burst,
            events: 120,
            fault: Some("smoke"),
        },
    ];

    let mut rows = Vec::new();
    for case in &cases {
        let o = run_case(case);
        println!(
            "{:>8}: {:>11} simulated ticks | tick {:.3} s | fast-forward {:.3} s | {:.1}x",
            o.label,
            o.sim_ms,
            o.tick_secs,
            o.fast_secs,
            o.speedup()
        );
        rows.push(o);
    }

    let repo = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let cases: Vec<qz_prof::BenchCase> = rows
        .iter()
        .map(|o| qz_prof::BenchCase {
            name: o.label.to_owned(),
            values: vec![
                (
                    "events".to_owned(),
                    as_metric(u64::try_from(o.events).unwrap_or(u64::MAX)),
                ),
                ("sim_ticks".to_owned(), as_metric(o.sim_ms)),
                ("tick_secs".to_owned(), o.tick_secs),
                ("fast_forward_secs".to_owned(), o.fast_secs),
                ("speedup".to_owned(), o.speedup()),
            ],
        })
        .collect();
    let path = repo.join("results/BENCH_sim_throughput.json");
    let run =
        qz_prof::Trajectory::append_run(&path, "sim_throughput", &qz_prof::git_rev(&repo), cases)
            .expect("append BENCH_sim_throughput.json");
    println!("appended run {run} to {}", path.display());
}

/// Counter values stored as f64 in the trajectory; the counts here fit
/// f64's 53-bit mantissa comfortably.
#[allow(clippy::cast_precision_loss)]
fn as_metric(v: u64) -> f64 {
    v as f64
}
