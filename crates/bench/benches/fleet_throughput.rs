//! Measures fleet-coordinator throughput with the per-tick reference
//! engine versus the fast-forward engine on every device, and appends
//! one record to the `results/BENCH_fleet_throughput.json` trajectory
//! (`qz bench --check` gates on the newest record).
//!
//! Like `sim_throughput`, the criterion shim has no measurement API so
//! this harness times itself (best of `REPS`). Both engine runs share
//! one `FleetConfig` except for the engine knob; the harness asserts
//! their full JSON reports are byte-identical before reporting a
//! speedup, so the number can never come from divergence.

use qz_fleet::{run_fleet, Executor, FleetConfig};
use qz_sim::EngineKind;
use std::hint::black_box;
use std::time::Instant;

const REPS: usize = 3;
const SEED: u64 = 0x000F_1EE7_2026;
const DEVICES: usize = 8;
const EVENTS: usize = 20;

/// Best-of-`REPS` wall-clock for one engine; returns the report JSON so
/// the caller can assert both engines agree.
fn time_engine(engine: EngineKind) -> (f64, String) {
    let mut cfg = FleetConfig {
        devices: DEVICES,
        events: EVENTS,
        fleet_seed: SEED,
        ..FleetConfig::default()
    };
    cfg.tweaks.engine = engine;
    let mut best = f64::INFINITY;
    let mut json = None;
    for _ in 0..REPS {
        let start = Instant::now();
        let report = run_fleet(&cfg, Executor::new(2)).expect("fleet runs");
        let secs = start.elapsed().as_secs_f64();
        best = best.min(secs);
        json = Some(black_box(report.to_json()));
    }
    (best, json.expect("REPS > 0"))
}

fn main() {
    let (tick_secs, tick_json) = time_engine(EngineKind::Tick);
    let (fast_secs, fast_json) = time_engine(EngineKind::FastForward);
    assert_eq!(
        tick_json, fast_json,
        "fleet engines diverged — a speedup number would be meaningless"
    );
    let speedup = tick_secs / fast_secs.max(f64::MIN_POSITIVE);
    println!(
        "fleet {DEVICES}x{EVENTS}: tick {tick_secs:.3} s | fast-forward {fast_secs:.3} s | {speedup:.1}x"
    );

    let repo = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let cases = vec![qz_prof::BenchCase {
        name: format!("Fleet{DEVICES}x{EVENTS}"),
        values: vec![
            ("devices".to_owned(), as_metric(DEVICES)),
            ("events".to_owned(), as_metric(EVENTS)),
            ("tick_secs".to_owned(), tick_secs),
            ("fast_forward_secs".to_owned(), fast_secs),
            ("speedup".to_owned(), speedup),
        ],
    }];
    let path = repo.join("results/BENCH_fleet_throughput.json");
    let run =
        qz_prof::Trajectory::append_run(&path, "fleet_throughput", &qz_prof::git_rev(&repo), cases)
            .expect("append BENCH_fleet_throughput.json");
    println!("appended run {run} to {}", path.display());
}

/// Counter values stored as f64 in the trajectory; the counts here fit
/// f64's 53-bit mantissa comfortably.
#[allow(clippy::cast_precision_loss)]
fn as_metric(v: usize) -> f64 {
    v as f64
}
