//! Measures fleet-coordinator throughput and appends one record to the
//! `results/BENCH_fleet_throughput.json` trajectory (`qz bench --check`
//! gates on the newest record). Two comparisons live here:
//!
//! 1. Per-tick reference engine versus fast-forward on every device
//!    (the original `Fleet8x20` case).
//! 2. Epoch-barrier coordinator versus the event-horizon scheduler at
//!    N ∈ {64, 10⁴} (`FleetEH64`, `FleetEH10000` — the latter carries
//!    the ≥5x baseline gate), plus an event-horizon-only scale probe at
//!    N = 10⁵ (`FleetEH100000`). A 10⁶-device smoke runs only when
//!    `QZ_BENCH_HUGE=1` is set — it needs ~16 GiB and several minutes.
//!
//! Like `sim_throughput`, the criterion shim has no measurement API so
//! this harness times itself (best of `REPS`). Every speedup is backed
//! by a byte-identity assertion on the full JSON reports, so the number
//! can never come from divergence.

use qz_fleet::{run_fleet, Executor, FleetConfig, FleetSchedulerKind};
use qz_sim::EngineKind;
use std::hint::black_box;
use std::time::Instant;

const REPS: usize = 3;
const SEED: u64 = 0x000F_1EE7_2026;
const DEVICES: usize = 8;
const EVENTS: usize = 20;

/// Best-of-`REPS` wall-clock for one engine; returns the report JSON so
/// the caller can assert both engines agree.
fn time_engine(engine: EngineKind) -> (f64, String) {
    let mut cfg = FleetConfig {
        devices: DEVICES,
        events: EVENTS,
        fleet_seed: SEED,
        ..FleetConfig::default()
    };
    cfg.tweaks.engine = engine;
    time_fleet(&cfg, REPS)
}

/// Best-of-`reps` wall-clock for one fleet config; returns the report
/// JSON so callers can assert cross-scheduler identity.
fn time_fleet(cfg: &FleetConfig, reps: usize) -> (f64, String) {
    let mut best = f64::INFINITY;
    let mut json = None;
    for _ in 0..reps {
        let start = Instant::now();
        let report = run_fleet(cfg, Executor::new(2)).expect("fleet runs");
        let secs = start.elapsed().as_secs_f64();
        best = best.min(secs);
        json = Some(black_box(report.to_json()));
    }
    (best, json.expect("reps > 0"))
}

/// A large-fleet config that passes preflight: sharded gateways keep
/// the per-shard offered load below saturation (QZ080) and a 30 s
/// capture period bounds the worst-case report rate. The 50 ms
/// back-pressure epoch is the fine-grained cadence the event-horizon
/// scheduler makes affordable: the epoch-barrier reference pays one
/// fleet-wide visit per epoch while the event-horizon queue only
/// surfaces the epochs where some device is actually due.
fn scale_cfg(devices: usize, events: usize, gateways: usize) -> FleetConfig {
    let mut cfg = FleetConfig {
        devices,
        events,
        fleet_seed: SEED,
        gateways,
        epoch: qz_types::SimDuration::from_millis(50),
        ..FleetConfig::default()
    };
    cfg.tweaks.capture_period = qz_types::SimDuration::from_secs(30);
    cfg
}

/// Times both schedulers on `cfg`, asserts their reports are
/// byte-identical, and returns `(eb_secs, eh_secs)`.
fn time_both_schedulers(cfg: &FleetConfig, reps: usize) -> (f64, f64) {
    let eb = FleetConfig {
        scheduler: FleetSchedulerKind::EpochBarrier,
        ..cfg.clone()
    };
    let eh = FleetConfig {
        scheduler: FleetSchedulerKind::EventHorizon,
        ..cfg.clone()
    };
    let (eb_secs, eb_json) = time_fleet(&eb, reps);
    let (eh_secs, eh_json) = time_fleet(&eh, reps);
    assert_eq!(
        eb_json, eh_json,
        "schedulers diverged at {} devices — a speedup number would be meaningless",
        cfg.devices
    );
    (eb_secs, eh_secs)
}

fn scheduler_case(name: &str, cfg: &FleetConfig, reps: usize) -> qz_prof::BenchCase {
    let (eb_secs, eh_secs) = time_both_schedulers(cfg, reps);
    let speedup = eb_secs / eh_secs.max(f64::MIN_POSITIVE);
    println!(
        "{name}: {} devices | epoch-barrier {eb_secs:.3} s | event-horizon {eh_secs:.3} s | {speedup:.1}x",
        cfg.devices
    );
    qz_prof::BenchCase {
        name: name.to_owned(),
        values: vec![
            ("devices".to_owned(), as_metric(cfg.devices)),
            ("gateways".to_owned(), as_metric(cfg.gateways)),
            ("epoch_barrier_secs".to_owned(), eb_secs),
            ("event_horizon_secs".to_owned(), eh_secs),
            ("speedup".to_owned(), speedup),
        ],
    }
}

/// Event-horizon-only scale probe: the epoch-barrier reference is too
/// slow to time at this size, so the record carries throughput instead
/// of a speedup.
fn scale_case(name: &str, cfg: &FleetConfig) -> qz_prof::BenchCase {
    let (eh_secs, _) = time_fleet(
        &FleetConfig {
            scheduler: FleetSchedulerKind::EventHorizon,
            ..cfg.clone()
        },
        1,
    );
    let devices_per_sec = as_metric(cfg.devices) / eh_secs.max(f64::MIN_POSITIVE);
    println!(
        "{name}: {} devices | event-horizon {eh_secs:.3} s | {devices_per_sec:.0} devices/s",
        cfg.devices
    );
    qz_prof::BenchCase {
        name: name.to_owned(),
        values: vec![
            ("devices".to_owned(), as_metric(cfg.devices)),
            ("gateways".to_owned(), as_metric(cfg.gateways)),
            ("event_horizon_secs".to_owned(), eh_secs),
            ("devices_per_sec".to_owned(), devices_per_sec),
        ],
    }
}

fn main() {
    let (tick_secs, tick_json) = time_engine(EngineKind::Tick);
    let (fast_secs, fast_json) = time_engine(EngineKind::FastForward);
    assert_eq!(
        tick_json, fast_json,
        "fleet engines diverged — a speedup number would be meaningless"
    );
    let speedup = tick_secs / fast_secs.max(f64::MIN_POSITIVE);
    println!(
        "fleet {DEVICES}x{EVENTS}: tick {tick_secs:.3} s | fast-forward {fast_secs:.3} s | {speedup:.1}x"
    );

    let mut cases = vec![qz_prof::BenchCase {
        name: format!("Fleet{DEVICES}x{EVENTS}"),
        values: vec![
            ("devices".to_owned(), as_metric(DEVICES)),
            ("events".to_owned(), as_metric(EVENTS)),
            ("tick_secs".to_owned(), tick_secs),
            ("fast_forward_secs".to_owned(), fast_secs),
            ("speedup".to_owned(), speedup),
        ],
    }];

    // Event-horizon vs epoch-barrier. N=64 fits the default channel
    // budget; the larger fleets shard across gateways and stretch the
    // capture period (see `scale_cfg`).
    let small = FleetConfig {
        devices: 64,
        events: 6,
        fleet_seed: SEED,
        ..FleetConfig::default()
    };
    cases.push(scheduler_case("FleetEH64", &small, REPS));
    cases.push(scheduler_case("FleetEH10000", &scale_cfg(10_000, 6, 64), 1));
    cases.push(scale_case("FleetEH100000", &scale_cfg(100_000, 4, 512)));
    if std::env::var("QZ_BENCH_HUGE").as_deref() == Ok("1") {
        cases.push(scale_case("FleetEH1000000", &scale_cfg(1_000_000, 3, 8192)));
    }

    let repo = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let path = repo.join("results/BENCH_fleet_throughput.json");
    let run =
        qz_prof::Trajectory::append_run(&path, "fleet_throughput", &qz_prof::git_rev(&repo), cases)
            .expect("append BENCH_fleet_throughput.json");
    println!("appended run {run} to {}", path.display());
}

/// Counter values stored as f64 in the trajectory; the counts here fit
/// f64's 53-bit mantissa comfortably.
#[allow(clippy::cast_precision_loss)]
fn as_metric(v: usize) -> f64 {
    v as f64
}
