//! Minimal text-table rendering for experiment output.

use core::fmt;

/// A simple left-aligned text table.
///
/// # Examples
///
/// ```
/// use qz_bench::Table;
///
/// let mut t = Table::new(vec!["system", "discarded"]);
/// t.row(vec!["QZ".into(), "12".into()]);
/// t.row(vec!["NA".into(), "51".into()]);
/// let s = t.to_string();
/// assert!(s.contains("QZ"));
/// assert!(s.contains("51"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Table {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row. Short rows are padded with empty cells; long rows
    /// extend the column set.
    pub fn row(&mut self, cells: Vec<String>) {
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` if no data rows have been added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    fn widths(&self) -> Vec<usize> {
        let cols = self
            .headers
            .len()
            .max(self.rows.iter().map(Vec::len).max().unwrap_or(0));
        let mut w = vec![0; cols];
        for (i, h) in self.headers.iter().enumerate() {
            w[i] = w[i].max(h.len());
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                w[i] = w[i].max(c.len());
            }
        }
        w
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let w = self.widths();
        let line = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for (i, width) in w.iter().enumerate() {
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                if i > 0 {
                    write!(f, "  ")?;
                }
                write!(f, "{cell:<width$}")?;
            }
            writeln!(f)
        };
        line(f, &self.headers)?;
        let total: usize = w.iter().sum::<usize>() + 2 * (w.len().saturating_sub(1));
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            line(f, row)?;
        }
        Ok(())
    }
}

/// Renders the standard per-system results table every figure binary
/// prints: interesting-input accounting plus the radio-report split.
pub fn standard_table(rows: &[crate::figures::ResultRow]) -> Table {
    let mut t = Table::new(vec![
        "environment",
        "system",
        "interesting",
        "discarded",
        "disc%",
        "ibo",
        "false-neg",
        "rep-high",
        "rep-low",
        "hi-q%",
        "off%",
    ]);
    for r in rows {
        let m = &r.metrics;
        t.row(vec![
            r.environment.clone(),
            r.system.clone(),
            m.interesting_total.to_string(),
            m.interesting_discarded().to_string(),
            pct(m.interesting_discarded_fraction()),
            m.ibo_interesting.to_string(),
            m.false_negatives.to_string(),
            m.reports_interesting_high.to_string(),
            m.reports_interesting_low.to_string(),
            pct(m.high_quality_fraction()),
            pct(m.off_fraction()),
        ]);
    }
    t
}

/// Prints "QZ discards N× fewer interesting inputs than <base>" lines for
/// every environment present in `rows`, comparing against the system
/// labeled `qz`.
pub fn improvement_lines(rows: &[crate::figures::ResultRow], qz: &str, base: &str) -> Vec<String> {
    let mut lines = Vec::new();
    let mut envs: Vec<&str> = rows.iter().map(|r| r.environment.as_str()).collect();
    envs.dedup();
    for env in envs {
        let find = |sys: &str| {
            rows.iter()
                .find(|r| r.environment == env && r.system == sys)
                .map(|r| &r.metrics)
        };
        if let (Some(q), Some(b)) = (find(qz), find(base)) {
            lines.push(format!(
                "  {env}: {qz} discards {} fewer interesting inputs than {base} \
                 ({} vs {}); IBO-only reduction {}",
                ratio(b.interesting_discarded(), q.interesting_discarded()),
                q.interesting_discarded(),
                b.interesting_discarded(),
                ratio(b.ibo_interesting, q.ibo_interesting),
            ));
        }
    }
    lines
}

/// Formats a ratio like the paper's "4.2×" improvements; `∞` when the
/// denominator is zero.
pub fn ratio(numerator: u64, denominator: u64) -> String {
    if denominator == 0 {
        if numerator == 0 {
            "1.0x".into()
        } else {
            "inf".into()
        }
    } else {
        format!("{:.1}x", numerator as f64 / denominator as f64)
    }
}

/// Formats a fraction as a percentage with one decimal.
pub fn pct(fraction: f64) -> String {
    format!("{:.1}%", fraction * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(vec!["a", "long-header"]);
        t.row(vec!["xxxx".into(), "1".into()]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("a   "));
        assert!(lines[1].chars().all(|c| c == '-'));
        assert!(lines[2].starts_with("xxxx"));
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    fn pads_short_rows() {
        let mut t = Table::new(vec!["a", "b", "c"]);
        t.row(vec!["1".into()]);
        let s = t.to_string();
        assert!(s.contains('1'));
    }

    #[test]
    fn ratio_formatting() {
        assert_eq!(ratio(42, 10), "4.2x");
        assert_eq!(ratio(0, 0), "1.0x");
        assert_eq!(ratio(5, 0), "inf");
    }

    #[test]
    fn pct_formatting() {
        assert_eq!(pct(0.423), "42.3%");
        assert_eq!(pct(0.0), "0.0%");
    }
}
