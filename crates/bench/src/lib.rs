//! Experiment harness: regenerates every table and figure of the
//! Quetzal paper's evaluation.
//!
//! Each figure has a runner function in [`figures`] returning structured
//! rows, a binary in `src/bin/` that prints them as a text table, and
//! (where meaningful) a Criterion bench in `benches/`. The absolute
//! numbers come from the synthetic device profiles in `qz-app`, so the
//! comparison *shapes* — who wins, by roughly what factor, where the
//! crossovers fall — are the reproduction target, not the paper's exact
//! counts (see `EXPERIMENTS.md`).
//!
//! Scale: the paper's simulation study uses 1000 events per run. The
//! runners take an event count; the binaries default to
//! `QZ_EVENTS` (env var) or 400, and `--quick` drops to 60 for smoke
//! runs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod figures;
pub mod report;
pub mod stats;

pub use figures::{ResultRow, EVENT_SEED};
pub use report::Table;

/// Reads the experiment scale from the environment: `QZ_EVENTS`, or the
/// given default.
pub fn event_count(default: usize) -> usize {
    std::env::var("QZ_EVENTS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Parses `--quick` / `--events N` style CLI args shared by the figure
/// binaries. Returns the event count.
pub fn cli_event_count(default: usize) -> usize {
    let mut events = event_count(default);
    let args: Vec<String> = std::env::args().collect();
    for (i, a) in args.iter().enumerate() {
        if a == "--quick" {
            events = events.min(60);
        }
        if a == "--events" {
            if let Some(v) = args.get(i + 1).and_then(|v| v.parse().ok()) {
                events = v;
            }
        }
    }
    events
}
