//! Experiment harness: regenerates every table and figure of the
//! Quetzal paper's evaluation.
//!
//! Each figure has a runner function in [`figures`] returning structured
//! rows, a binary in `src/bin/` that prints them as a text table, and
//! (where meaningful) a Criterion bench in `benches/`. The absolute
//! numbers come from the synthetic device profiles in `qz-app`, so the
//! comparison *shapes* — who wins, by roughly what factor, where the
//! crossovers fall — are the reproduction target, not the paper's exact
//! counts (see `EXPERIMENTS.md`).
//!
//! Scale: the paper's simulation study uses 1000 events per run. The
//! runners take an event count; the binaries default to
//! `QZ_EVENTS` (env var) or 400, and `--quick` drops to 60 for smoke
//! runs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod figures;
pub mod report;
pub mod stats;

pub use figures::{ResultRow, EVENT_SEED};
pub use report::Table;

/// Which device profiles a figure simulates (for [`preflight`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FigureDevices {
    /// Apollo 4 only (most figures).
    Apollo4,
    /// MSP430FR5994 only (Fig. 13).
    Msp430,
    /// Both platforms (Table 1).
    Both,
}

/// The full preset list [`preflight`] sweeps — every system any figure
/// simulates, with the parameter values the figures use.
const PREFLIGHT_KINDS: [qz_baselines::BaselineKind; 13] = [
    qz_baselines::BaselineKind::Quetzal,
    qz_baselines::BaselineKind::QuetzalHw,
    qz_baselines::BaselineKind::NoAdapt,
    qz_baselines::BaselineKind::AlwaysDegrade,
    qz_baselines::BaselineKind::CatNap,
    qz_baselines::BaselineKind::FixedThreshold(0.25),
    qz_baselines::BaselineKind::FixedThreshold(0.50),
    qz_baselines::BaselineKind::FixedThreshold(0.75),
    qz_baselines::BaselineKind::PowerThreshold(qz_types::Watts(0.030)),
    qz_baselines::BaselineKind::AvgSe2e,
    qz_baselines::BaselineKind::QuetzalVar(0.9),
    qz_baselines::BaselineKind::FcfsIbo,
    qz_baselines::BaselineKind::LcfsIbo,
];

/// Gate every figure binary runs before simulating anything: the
/// `qz-check` analyzer over each preset the figure's platform(s) can
/// reach. A config with errors would plot garbage, not data, so the
/// binary refuses and exits nonzero. Warnings don't block — the MSP430
/// presets warn `QZ011` by design (degrading out of full-quality
/// overload is the phenomenon Fig. 13 plots).
pub fn preflight(figure: &str, devices: FigureDevices) {
    let profiles = match devices {
        FigureDevices::Apollo4 => vec![qz_app::apollo4()],
        FigureDevices::Msp430 => vec![qz_app::msp430fr5994()],
        FigureDevices::Both => vec![qz_app::apollo4(), qz_app::msp430fr5994()],
    };
    let tweaks = qz_app::SimTweaks::default();
    // The preset × device sweep is embarrassingly parallel; fan it out
    // (QZ_THREADS overrides the width) and print failures serially in
    // sweep order so the output stays deterministic.
    let pairs: Vec<(qz_app::DeviceProfile, qz_baselines::BaselineKind)> = profiles
        .iter()
        .flat_map(|p| PREFLIGHT_KINDS.iter().map(move |&k| (p.clone(), k)))
        .collect();
    let rejections = qz_fleet::Executor::from_env(0).map(pairs, |_, (profile, kind)| {
        let report = qz_app::check_experiment(kind, &profile, &tweaks);
        report.has_errors().then(|| {
            format!(
                "{figure}: qz-check rejected the {} preset on {}:\n{}",
                kind.label(),
                profile.name,
                report.render_text()
            )
        })
    });
    let mut failed = false;
    for rejection in rejections.into_iter().flatten() {
        eprintln!("{rejection}");
        failed = true;
    }
    if failed {
        eprintln!("{figure}: refusing to plot from infeasible configs");
        std::process::exit(1);
    }
}

/// Reads the experiment scale from the environment: `QZ_EVENTS`, or the
/// given default.
pub fn event_count(default: usize) -> usize {
    std::env::var("QZ_EVENTS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Parses `--quick` / `--events N` style CLI args shared by the figure
/// binaries. Returns the event count.
pub fn cli_event_count(default: usize) -> usize {
    let mut events = event_count(default);
    let args: Vec<String> = std::env::args().collect();
    for (i, a) in args.iter().enumerate() {
        if a == "--quick" {
            events = events.min(60);
        }
        if a == "--events" {
            if let Some(v) = args.get(i + 1).and_then(|v| v.parse().ok()) {
                events = v;
            }
        }
    }
    events
}
