//! Multi-seed aggregation: mean ± standard deviation across repeated
//! experiment runs.
//!
//! The paper reports single runs over 1000 events; this module
//! strengthens the reproduction's claims by repeating each figure over
//! several environment seeds and reporting the spread (see the
//! `fig09_multiseed` binary and EXPERIMENTS.md).

use crate::figures::ResultRow;

/// Mean/spread of a metric across seeds for one (system, environment)
/// cell.
#[derive(Debug, Clone, PartialEq)]
pub struct Aggregate {
    /// System label.
    pub system: String,
    /// Environment label.
    pub environment: String,
    /// Number of seeds aggregated.
    pub runs: usize,
    /// Mean of `interesting_discarded`.
    pub mean_discarded: f64,
    /// Sample standard deviation of `interesting_discarded`.
    pub sd_discarded: f64,
    /// Minimum observed `interesting_discarded`.
    pub min_discarded: u64,
    /// Maximum observed `interesting_discarded`.
    pub max_discarded: u64,
    /// Mean fraction of interesting inputs discarded.
    pub mean_discarded_fraction: f64,
    /// Mean high-quality report fraction.
    pub mean_high_quality: f64,
}

/// Aggregates repeated runs (one `Vec<ResultRow>` per seed) into per-cell
/// means and spreads. Cells are keyed by `(system, environment)` and
/// returned in the order they first appear in the first run.
///
/// # Panics
///
/// Panics if `runs` is empty.
pub fn aggregate(runs: &[Vec<ResultRow>]) -> Vec<Aggregate> {
    assert!(!runs.is_empty(), "need at least one run to aggregate");
    let template = &runs[0];
    template
        .iter()
        .map(|cell| {
            let samples: Vec<&ResultRow> = runs
                .iter()
                .filter_map(|run| {
                    run.iter()
                        .find(|r| r.system == cell.system && r.environment == cell.environment)
                })
                .collect();
            let discarded: Vec<f64> = samples
                .iter()
                .map(|r| r.metrics.interesting_discarded() as f64)
                .collect();
            let n = discarded.len();
            let mean = discarded.iter().sum::<f64>() / n as f64;
            let var = if n > 1 {
                discarded.iter().map(|d| (d - mean).powi(2)).sum::<f64>() / (n - 1) as f64
            } else {
                0.0
            };
            Aggregate {
                system: cell.system.clone(),
                environment: cell.environment.clone(),
                runs: n,
                mean_discarded: mean,
                sd_discarded: var.sqrt(),
                min_discarded: samples
                    .iter()
                    .map(|r| r.metrics.interesting_discarded())
                    .min()
                    .unwrap_or(0),
                max_discarded: samples
                    .iter()
                    .map(|r| r.metrics.interesting_discarded())
                    .max()
                    .unwrap_or(0),
                mean_discarded_fraction: samples
                    .iter()
                    .map(|r| r.metrics.interesting_discarded_fraction())
                    .sum::<f64>()
                    / n as f64,
                mean_high_quality: samples
                    .iter()
                    .map(|r| r.metrics.high_quality_fraction())
                    .sum::<f64>()
                    / n as f64,
            }
        })
        .collect()
}

/// The mean improvement ratio of `qz` over `base` per environment,
/// computed on mean discards.
pub fn mean_improvement(aggregates: &[Aggregate], qz: &str, base: &str) -> Vec<(String, f64)> {
    let mut envs: Vec<&str> = aggregates.iter().map(|a| a.environment.as_str()).collect();
    envs.dedup();
    envs.into_iter()
        .filter_map(|env| {
            let find = |sys: &str| {
                aggregates
                    .iter()
                    .find(|a| a.environment == env && a.system == sys)
            };
            let (q, b) = (find(qz)?, find(base)?);
            Some((env.to_owned(), b.mean_discarded / q.mean_discarded.max(1.0)))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use qz_sim::Metrics;

    fn row(system: &str, env: &str, discarded: u64) -> ResultRow {
        ResultRow {
            system: system.into(),
            environment: env.into(),
            metrics: Metrics {
                interesting_total: 100,
                ibo_interesting: discarded,
                reports_interesting_high: 10,
                reports_interesting_low: 10,
                ..Metrics::default()
            },
        }
    }

    #[test]
    fn aggregates_mean_and_spread() {
        let runs = vec![
            vec![row("QZ", "E", 10), row("NA", "E", 40)],
            vec![row("QZ", "E", 14), row("NA", "E", 44)],
            vec![row("QZ", "E", 12), row("NA", "E", 48)],
        ];
        let agg = aggregate(&runs);
        assert_eq!(agg.len(), 2);
        let qz = &agg[0];
        assert_eq!(qz.system, "QZ");
        assert_eq!(qz.runs, 3);
        assert!((qz.mean_discarded - 12.0).abs() < 1e-12);
        assert!((qz.sd_discarded - 2.0).abs() < 1e-12);
        assert_eq!(qz.min_discarded, 10);
        assert_eq!(qz.max_discarded, 14);
        assert!((qz.mean_high_quality - 0.5).abs() < 1e-12);
    }

    #[test]
    fn improvement_ratios() {
        let runs = vec![vec![row("QZ", "E", 10), row("NA", "E", 40)]];
        let agg = aggregate(&runs);
        let imp = mean_improvement(&agg, "QZ", "NA");
        assert_eq!(imp.len(), 1);
        assert!((imp[0].1 - 4.0).abs() < 1e-12);
    }

    #[test]
    // A single run's standard deviation must be exactly 0.0 (no
    // arithmetic happened), so the strict comparison is the point.
    #[allow(clippy::float_cmp)]
    fn single_run_has_zero_spread() {
        let runs = vec![vec![row("QZ", "E", 10)]];
        let agg = aggregate(&runs);
        assert_eq!(agg[0].sd_discarded, 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one run")]
    fn empty_runs_panic() {
        aggregate(&[]);
    }
}
