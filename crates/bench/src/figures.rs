//! One runner per paper figure/table; each returns structured rows the
//! binaries print and the integration tests assert shapes on.

use qz_app::{apollo4, ideal, msp430fr5994, pzi_threshold, pzo_threshold, simulate, SimTweaks};
use qz_baselines::BaselineKind;
use qz_sim::Metrics;
use qz_traces::{EnvironmentKind, SensingEnvironment};
use qz_types::{SimDuration, Watts};

/// Seed shared by all figure runs so every system sees the same
/// environment.
pub const EVENT_SEED: u64 = 20_250_330; // ASPLOS'25 opening day

/// One experiment outcome: a system in an environment.
#[derive(Debug, Clone, PartialEq)]
pub struct ResultRow {
    /// System label (paper abbreviation: QZ, NA, AD, …).
    pub system: String,
    /// Environment label, or the swept parameter value.
    pub environment: String,
    /// Full metrics for the run.
    pub metrics: Metrics,
}

impl ResultRow {
    fn new(
        system: impl Into<String>,
        environment: impl Into<String>,
        metrics: Metrics,
    ) -> ResultRow {
        ResultRow {
            system: system.into(),
            environment: environment.into(),
            metrics,
        }
    }
}

fn env(kind: EnvironmentKind, events: usize) -> SensingEnvironment {
    SensingEnvironment::generate(kind, events, EVENT_SEED)
}

/// **Fig. 9 with an explicit environment seed** — the multi-seed study
/// (`fig09_multiseed`) repeats the comparison across seeds and reports
/// mean ± sd (an extension beyond the paper's single runs).
pub fn fig09_seeded(events: usize, seed: u64) -> Vec<ResultRow> {
    let t = SimTweaks::default();
    let mut rows = Vec::new();
    for kind_env in EnvironmentKind::APOLLO_SET {
        let e = SensingEnvironment::generate(kind_env, events, seed);
        rows.push(ResultRow::new(
            "Ideal",
            e.kind().label(),
            ideal(&apollo4(), &e, &t),
        ));
        for kind in [
            BaselineKind::NoAdapt,
            BaselineKind::AlwaysDegrade,
            BaselineKind::Quetzal,
        ] {
            rows.push(run(kind, &e, &t));
        }
    }
    rows
}

fn run(kind: BaselineKind, e: &SensingEnvironment, tweaks: &SimTweaks) -> ResultRow {
    let m = simulate(kind, &apollo4(), e, tweaks);
    ResultRow::new(kind.label(), e.kind().label(), m)
}

/// The PZO baseline for the Apollo 4 harvester configuration.
fn pzo() -> BaselineKind {
    BaselineKind::PowerThreshold(pzo_threshold(6, Watts(0.010)))
}

/// The PZI oracle baseline for a given environment.
fn pzi(e: &SensingEnvironment, tweaks: &SimTweaks) -> BaselineKind {
    BaselineKind::PowerThreshold(pzi_threshold(e, tweaks, Watts(0.010), 0.80))
}

/// **Fig. 2b** — NoAdapt with reduced capture rates (1–10 s periods):
/// lowering the capture rate avoids IBOs but simply fails to capture the
/// events.
pub fn fig02_capture_rate(events: usize) -> Vec<ResultRow> {
    let e = env(EnvironmentKind::Crowded, events);
    (1..=10u64)
        .map(|period_s| {
            let tweaks = SimTweaks {
                capture_period: SimDuration::from_secs(period_s),
                ..SimTweaks::default()
            };
            let m = simulate(BaselineKind::NoAdapt, &apollo4(), &e, &tweaks);
            ResultRow::new("NA", format!("{period_s}s"), m)
        })
        .collect()
}

/// **Fig. 3** — naive solutions in the Crowded environment: Ideal, NA,
/// AD, CN, PZO and QZ.
pub fn fig03_naive(events: usize) -> Vec<ResultRow> {
    let e = env(EnvironmentKind::Crowded, events);
    let t = SimTweaks::default();
    let mut rows = vec![ResultRow::new(
        "Ideal",
        e.kind().label(),
        ideal(&apollo4(), &e, &t),
    )];
    for kind in [
        BaselineKind::NoAdapt,
        BaselineKind::AlwaysDegrade,
        BaselineKind::CatNap,
        pzo(),
        BaselineKind::Quetzal,
    ] {
        rows.push(run(kind, &e, &t));
    }
    rows
}

/// **Fig. 8** — the end-to-end "hardware" experiment: QZ vs NA on two
/// sensing environments with 100 events (the paper's hardware runs use
/// 100 events; pass a different count to scale).
pub fn fig08_hardware(events: usize) -> Vec<ResultRow> {
    let t = SimTweaks::default();
    let mut rows = Vec::new();
    for kind_env in [EnvironmentKind::Crowded, EnvironmentKind::LessCrowded] {
        let e = env(kind_env, events);
        rows.push(run(BaselineKind::NoAdapt, &e, &t));
        rows.push(run(BaselineKind::Quetzal, &e, &t));
    }
    rows
}

/// **Fig. 9** — QZ vs the non-adaptive extremes (NA, AD) and the
/// ∞-memory Ideal, across the three sensing environments.
pub fn fig09_vs_nonadaptive(events: usize) -> Vec<ResultRow> {
    let t = SimTweaks::default();
    let mut rows = Vec::new();
    for kind_env in EnvironmentKind::APOLLO_SET {
        let e = env(kind_env, events);
        rows.push(ResultRow::new(
            "Ideal",
            e.kind().label(),
            ideal(&apollo4(), &e, &t),
        ));
        for kind in [
            BaselineKind::NoAdapt,
            BaselineKind::AlwaysDegrade,
            BaselineKind::Quetzal,
        ] {
            rows.push(run(kind, &e, &t));
        }
    }
    rows
}

/// **Fig. 10** — QZ vs prior work: CatNap, PZO (as proposed) and PZI
/// (the observed-max oracle), across the three environments.
pub fn fig10_vs_prior(events: usize) -> Vec<ResultRow> {
    let t = SimTweaks::default();
    let mut rows = Vec::new();
    for kind_env in EnvironmentKind::APOLLO_SET {
        let e = env(kind_env, events);
        rows.push(ResultRow::new(
            "CN",
            e.kind().label(),
            simulate(BaselineKind::CatNap, &apollo4(), &e, &t).clone(),
        ));
        let mut pzo_row = run(pzo(), &e, &t);
        pzo_row.system = "PZO".into();
        rows.push(pzo_row);
        let mut pzi_row = run(pzi(&e, &t), &e, &t);
        pzi_row.system = "PZI".into();
        rows.push(pzi_row);
        rows.push(run(BaselineKind::Quetzal, &e, &t));
    }
    rows
}

/// **Fig. 11a/b** — QZ vs fixed buffer-fill thresholds (25/50/75 %)
/// across the three environments.
pub fn fig11_thresholds(events: usize) -> Vec<ResultRow> {
    let t = SimTweaks::default();
    let mut rows = Vec::new();
    for kind_env in EnvironmentKind::APOLLO_SET {
        let e = env(kind_env, events);
        for p in [0.25, 0.50, 0.75] {
            rows.push(run(BaselineKind::FixedThreshold(p), &e, &t));
        }
        rows.push(run(BaselineKind::Quetzal, &e, &t));
    }
    rows
}

/// **Fig. 11c** — the full 0–100 % threshold sweep (Crowded
/// environment), showing no static threshold matches dynamic IBO
/// prediction.
pub fn fig11_sweep(events: usize) -> Vec<ResultRow> {
    let e = env(EnvironmentKind::Crowded, events);
    let t = SimTweaks::default();
    let mut rows: Vec<ResultRow> = (0..=10)
        .map(|i| {
            let p = i as f64 / 10.0;
            let mut r = run(BaselineKind::FixedThreshold(p), &e, &t);
            r.environment = format!("{}%", i * 10);
            r
        })
        .collect();
    let mut qz = run(BaselineKind::Quetzal, &e, &t);
    qz.environment = "dynamic".into();
    rows.push(qz);
    rows
}

/// **Fig. 12** — scheduler sensitivity: Avg-S_e2e, FCFS and LCFS (each
/// with the IBO engine) vs Energy-aware SJF, across the three
/// environments.
pub fn fig12_schedulers(events: usize) -> Vec<ResultRow> {
    let t = SimTweaks::default();
    let mut rows = Vec::new();
    for kind_env in EnvironmentKind::APOLLO_SET {
        let e = env(kind_env, events);
        for kind in [
            BaselineKind::AvgSe2e,
            BaselineKind::FcfsIbo,
            BaselineKind::LcfsIbo,
            BaselineKind::Quetzal,
        ] {
            rows.push(run(kind, &e, &t));
        }
    }
    rows
}

/// **Fig. 13** — platform versatility: every system on the
/// MSP430FR5994 in the Short (10 s max duration, busier) environment.
pub fn fig13_msp430(events: usize) -> Vec<ResultRow> {
    let profile = msp430fr5994();
    let e = env(EnvironmentKind::Short, events);
    let t = SimTweaks::default();
    let mut rows = vec![ResultRow::new(
        "Ideal",
        e.kind().label(),
        ideal(&profile, &e, &t),
    )];
    let pzi_kind = pzi(&e, &t);
    for (label, kind) in [
        ("NA", BaselineKind::NoAdapt),
        ("AD", BaselineKind::AlwaysDegrade),
        ("CN", BaselineKind::CatNap),
        ("TH25", BaselineKind::FixedThreshold(0.25)),
        ("TH50", BaselineKind::FixedThreshold(0.50)),
        ("TH75", BaselineKind::FixedThreshold(0.75)),
        ("PZO", pzo()),
        ("PZI", pzi_kind),
        ("QZ", BaselineKind::Quetzal),
    ] {
        let m = simulate(kind, &profile, &e, &t);
        rows.push(ResultRow::new(label, e.kind().label(), m));
    }
    rows
}

/// **Fig. 14** — parameter sensitivity for Quetzal in the MoreCrowded
/// environment: harvester cell count, `<arrival-window>` and
/// `<task-window>`. Rows are labeled `param=value`.
pub fn fig14_params(events: usize) -> Vec<ResultRow> {
    let e = env(EnvironmentKind::MoreCrowded, events);
    let mut rows = Vec::new();
    for cells in [2u32, 4, 6, 8, 10] {
        let t = SimTweaks {
            harvester_cells: cells,
            ..SimTweaks::default()
        };
        let m = simulate(BaselineKind::Quetzal, &apollo4(), &e, &t);
        rows.push(ResultRow::new("QZ", format!("cells={cells}"), m));
    }
    for arrival in [16usize, 32, 64, 128, 256, 512, 1024] {
        let t = SimTweaks {
            arrival_window: arrival,
            ..SimTweaks::default()
        };
        let m = simulate(BaselineKind::Quetzal, &apollo4(), &e, &t);
        rows.push(ResultRow::new("QZ", format!("arrival-window={arrival}"), m));
    }
    for task in [8usize, 16, 32, 64, 128, 256] {
        let t = SimTweaks {
            task_window: task,
            ..SimTweaks::default()
        };
        let m = simulate(BaselineKind::Quetzal, &apollo4(), &e, &t);
        rows.push(ResultRow::new("QZ", format!("task-window={task}"), m));
    }
    rows
}

/// **Ablation (extension)** — Quetzal with and without the PID
/// error-mitigation loop, and with the hardware-assisted (quantized)
/// estimator in place of exact division.
pub fn ablations(events: usize) -> Vec<ResultRow> {
    let e = env(EnvironmentKind::MoreCrowded, events);
    let t = SimTweaks::default();
    let mut rows = vec![run(BaselineKind::Quetzal, &e, &t)];
    let no_pid = SimTweaks {
        pid_enabled: false,
        ..SimTweaks::default()
    };
    let mut r = run(BaselineKind::Quetzal, &e, &no_pid);
    r.system = "QZ-noPID".into();
    rows.push(r);
    let no_sticky = SimTweaks {
        sticky_options: false,
        ..SimTweaks::default()
    };
    let mut r = run(BaselineKind::Quetzal, &e, &no_sticky);
    r.system = "QZ-noSticky".into();
    rows.push(r);
    rows.push(run(BaselineKind::QuetzalHw, &e, &t));
    // The variable-cost (future-work) extension, with and without
    // injected data-dependent latency jitter.
    let jitter = SimTweaks {
        task_jitter: 0.5,
        ..SimTweaks::default()
    };
    let mut r = run(BaselineKind::Quetzal, &e, &jitter);
    r.system = "QZ+jitter".into();
    rows.push(r);
    let mut r = run(BaselineKind::QuetzalVar(0.9), &e, &jitter);
    r.system = "QZ-VAR90+jitter".into();
    rows.push(r);
    // EWMA-smoothed input-power prediction.
    let ewma = SimTweaks {
        power_ewma_alpha: Some(0.3),
        ..SimTweaks::default()
    };
    let mut r = run(BaselineKind::Quetzal, &e, &ewma);
    r.system = "QZ-EWMA".into();
    rows.push(r);
    rows
}

/// **Checkpoint-policy ablation** (extension): Quetzal under the three
/// intermittent-computing checkpoint disciplines from the literature the
/// paper builds on — just-in-time (Hibernus, the paper's choice),
/// periodic (Mementos) and task-boundary (Alpaca).
pub fn checkpoint_policies(events: usize) -> Vec<ResultRow> {
    use qz_sim::CheckpointPolicy;
    let e = env(EnvironmentKind::Crowded, events);
    let policies = [
        ("JIT", CheckpointPolicy::JustInTime),
        (
            "Periodic-100ms",
            CheckpointPolicy::Periodic {
                interval: SimDuration::from_millis(100),
            },
        ),
        (
            "Periodic-1s",
            CheckpointPolicy::Periodic {
                interval: SimDuration::from_secs(1),
            },
        ),
        ("TaskBoundary", CheckpointPolicy::TaskBoundary),
    ];
    policies
        .into_iter()
        .map(|(label, checkpoint_policy)| {
            let t = SimTweaks {
                checkpoint_policy,
                ..SimTweaks::default()
            };
            let mut r = run(BaselineKind::Quetzal, &e, &t);
            r.system = label.into();
            r
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const SMALL: usize = 25;

    #[test]
    fn fig02_slower_capture_misses_captures() {
        let rows = fig02_capture_rate(SMALL);
        assert_eq!(rows.len(), 10);
        let at_1s = &rows[0].metrics;
        let at_10s = &rows[9].metrics;
        assert!(at_10s.frames_total < at_1s.frames_total / 5);
    }

    #[test]
    fn fig09_has_all_systems_and_envs() {
        let rows = fig09_vs_nonadaptive(SMALL);
        assert_eq!(rows.len(), 4 * 3);
        assert!(rows.iter().any(|r| r.system == "Ideal"));
        assert!(rows
            .iter()
            .any(|r| r.system == "QZ" && r.environment == "LessCrowded"));
    }

    #[test]
    fn fig11_sweep_covers_range() {
        let rows = fig11_sweep(SMALL);
        assert_eq!(rows.len(), 12);
        assert_eq!(rows[0].environment, "0%");
        assert_eq!(rows[10].environment, "100%");
        assert_eq!(rows[11].environment, "dynamic");
    }

    #[test]
    fn fig14_labels_parameters() {
        let rows = fig14_params(SMALL);
        assert_eq!(rows.len(), 5 + 7 + 6);
        assert!(rows.iter().any(|r| r.environment == "cells=6"));
        assert!(rows.iter().any(|r| r.environment == "task-window=64"));
    }
}
