//! **Fig. 9, multi-seed** (extension): repeats the QZ vs NA/AD
//! comparison across several environment seeds and reports
//! mean ± standard deviation, strengthening the single-run headline.

use qz_bench::figures::fig09_seeded;
use qz_bench::stats::{aggregate, mean_improvement};
use qz_bench::{cli_event_count, Table};
use qz_fleet::Executor;

fn main() {
    qz_bench::preflight("fig09_multiseed", qz_bench::FigureDevices::Apollo4);
    let events = cli_event_count(200);
    let seeds = [20_250_330u64, 7, 99, 1234, 0xBEEF];
    let exec = Executor::from_env(0);
    println!(
        "Fig. 9 (multi-seed) — QZ vs NA/AD over {} seeds, {events} events each ({} threads)\n",
        seeds.len(),
        exec.threads()
    );
    // Seeds are independent runs; fan them out (QZ_THREADS overrides
    // the width). The map returns in seed order, so aggregation — and
    // the printed table — is identical at any thread count.
    let runs = exec.map(seeds.to_vec(), |_, s| fig09_seeded(events, s));
    let agg = aggregate(&runs);

    let mut t = Table::new(vec![
        "environment",
        "system",
        "discarded (mean±sd)",
        "range",
        "disc% (mean)",
        "hi-q% (mean)",
    ]);
    for a in &agg {
        t.row(vec![
            a.environment.clone(),
            a.system.clone(),
            format!("{:.0} ± {:.0}", a.mean_discarded, a.sd_discarded),
            format!("[{}, {}]", a.min_discarded, a.max_discarded),
            format!("{:.1}%", a.mean_discarded_fraction * 100.0),
            format!("{:.1}%", a.mean_high_quality * 100.0),
        ]);
    }
    println!("{t}");
    for base in ["NA", "AD"] {
        for (env, ratio) in mean_improvement(&agg, "QZ", base) {
            println!("  {env}: QZ discards {ratio:.1}x fewer (mean) than {base}");
        }
    }
}
