//! Regenerates **Fig. 2b**: reducing the capture rate does not solve the
//! IBO problem — the device simply fails to capture the events.

use qz_bench::{cli_event_count, figures, report, Table};

fn main() {
    qz_bench::preflight("fig02_capture_rate", qz_bench::FigureDevices::Apollo4);
    let events = cli_event_count(400);
    println!("Fig. 2b — NoAdapt with reduced capture rates (Crowded, {events} events)\n");
    let rows = figures::fig02_capture_rate(events);
    let mut t = Table::new(vec![
        "capture-period",
        "frames-captured",
        "interesting-seen",
        "interesting-discarded",
        "total-missed%",
    ]);
    for r in &rows {
        let m = &r.metrics;
        // Frames the slower camera never even attempted, relative to 1 FPS.
        let baseline_frames = rows[0].metrics.interesting_total;
        let never_captured = baseline_frames.saturating_sub(m.interesting_total);
        let total_missed = never_captured + m.interesting_discarded();
        t.row(vec![
            r.environment.clone(),
            m.frames_total.to_string(),
            m.interesting_total.to_string(),
            m.interesting_discarded().to_string(),
            report::pct(total_missed as f64 / baseline_frames.max(1) as f64),
        ]);
    }
    println!("{t}");
    println!(
        "Paper shape: with less frequent captures the device fails to capture a \
         large fraction of interesting data — losses shift from IBOs to never-captured."
    );
}
