//! Diagnostic summary: the full internal-metric table (IBO attribution,
//! degradation counts, off-time) for QZ/NA/AD/Ideal across the three
//! environments, followed by the event-derived metrics registry for
//! Quetzal in each — prediction-error, occupancy, and recharge-time
//! distributions straight from the decision log. Useful when re-tuning
//! device profiles; not part of the figure index.

use qz_app::{apollo4, simulate_traced, SimTweaks};
use qz_baselines::BaselineKind;
use qz_bench::{cli_event_count, figures, Table};
use qz_obs::MetricsObserver;
use qz_traces::{EnvironmentKind, SensingEnvironment};

fn main() {
    let events = cli_event_count(200);
    println!("== fig09 exploration, {events} events ==");
    let rows = figures::fig09_vs_nonadaptive(events);
    let mut t = Table::new(vec![
        "env",
        "system",
        "int_total",
        "discarded",
        "missed_off",
        "ibo",
        "fn",
        "rep_hi",
        "rep_lo",
        "ibo_off",
        "ibo_full",
        "ibo_deg",
        "deg_jobs",
        "jobs",
        "off%",
    ]);
    for r in &rows {
        let m = &r.metrics;
        t.row(vec![
            r.environment.clone(),
            r.system.clone(),
            m.interesting_total.to_string(),
            m.interesting_discarded().to_string(),
            m.interesting_missed_off.to_string(),
            m.ibo_interesting.to_string(),
            m.false_negatives.to_string(),
            m.reports_interesting_high.to_string(),
            m.reports_interesting_low.to_string(),
            m.ibo_while_off.to_string(),
            m.ibo_during_full_job.to_string(),
            m.ibo_during_degraded_job.to_string(),
            m.degraded_jobs().to_string(),
            m.total_jobs().to_string(),
            format!("{:.0}%", m.off_fraction() * 100.0),
        ]);
    }
    println!("{t}");

    // Event-derived registry: the same runs, diagnosed from the
    // decision log alone (see EXPERIMENTS.md, "re-deriving calibration
    // diagnoses").
    let tweaks = SimTweaks::default();
    let profile = apollo4();
    for kind in [
        EnvironmentKind::MoreCrowded,
        EnvironmentKind::Crowded,
        EnvironmentKind::LessCrowded,
    ] {
        let env = SensingEnvironment::generate(kind, events, tweaks.seed);
        let (_, log) = simulate_traced(BaselineKind::Quetzal, &profile, &env, &tweaks);
        println!("== QZ decision-log registry, {kind} ==");
        println!("{}", MetricsObserver::from_events(&log).render());
    }
}
