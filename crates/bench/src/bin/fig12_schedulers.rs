//! Regenerates **Fig. 12**: scheduler sensitivity — Energy-aware SJF vs
//! Avg-S_e2e, FCFS and LCFS (all running Quetzal's IBO engine).

use qz_bench::{cli_event_count, figures, report};

fn main() {
    qz_bench::preflight("fig12_schedulers", qz_bench::FigureDevices::Apollo4);
    let events = cli_event_count(400);
    println!("Fig. 12 — scheduling policies under the IBO engine ({events} events)\n");
    let rows = figures::fig12_schedulers(events);
    println!("{}", report::standard_table(&rows));
    for base in ["AvgSe2e", "FCFS", "LCFS"] {
        for line in report::improvement_lines(&rows, "QZ", base) {
            println!("{line}");
        }
    }
    println!(
        "\nPaper shape: energy-aware S_e2e scaling beats the power-blind Avg-S_e2e estimator\n\
         (2.2x/3.1x/4.2x) and Energy-aware SJF beats FCFS/LCFS."
    );
}
