//! Prints the reproduction's equivalent of the paper's **Table 1**
//! (experiment details), including where our synthetic substitution
//! deviates and why.

use quetzal::pid::PidConfig;
use quetzal::QuetzalConfig;
use qz_app::{apollo4, msp430fr5994};
use qz_bench::Table;
use qz_traces::EnvironmentKind;

fn main() {
    qz_bench::preflight("table1_config", qz_bench::FigureDevices::Both);
    println!("Table 1 — experiment details (reproduction values)\n");

    let mut t = Table::new(vec!["component", "value"]);
    for profile in [apollo4(), msp430fr5994()] {
        t.row(vec![
            format!("Compute [{}]", profile.name),
            format!(
                "input buffer = {} imgs, capture rate = 1 FPS",
                profile.device.buffer_capacity
            ),
        ]);
        t.row(vec![
            format!("  ML high [{}]", profile.name),
            format!(
                "t_exe={:.2}s P_exe={:.1}mW (fn={:.0}%, fp={:.0}%)",
                profile.ml_high.t_exe.value(),
                profile.ml_high.p_exe.as_milliwatts(),
                profile.ml_high_rates.false_negative * 100.0,
                profile.ml_high_rates.false_positive * 100.0
            ),
        ]);
        t.row(vec![
            format!("  ML low [{}]", profile.name),
            format!(
                "t_exe={:.2}s P_exe={:.1}mW (fn={:.0}%, fp={:.0}%)",
                profile.ml_low.t_exe.value(),
                profile.ml_low.p_exe.as_milliwatts(),
                profile.ml_low_rates.false_negative * 100.0,
                profile.ml_low_rates.false_positive * 100.0
            ),
        ]);
        t.row(vec![
            format!("  Radio [{}]", profile.name),
            format!(
                "full image {:.1}mJ / single byte {:.2}mJ",
                profile.radio_full.energy().as_millijoules(),
                profile.radio_byte.energy().as_millijoules()
            ),
        ]);
    }
    for kind in [
        EnvironmentKind::MoreCrowded,
        EnvironmentKind::Crowded,
        EnvironmentKind::LessCrowded,
        EnvironmentKind::Short,
    ] {
        t.row(vec![
            format!("Environment {kind}"),
            format!(
                "max interesting duration = {}s",
                kind.max_event_duration().as_millis() / 1000
            ),
        ]);
    }
    let q = QuetzalConfig::default();
    let p = PidConfig::default();
    t.row(vec![
        "Quetzal params".into(),
        format!(
            "<task-window>={}, <arrival-window>={}",
            q.task_window, q.arrival_window
        ),
    ]);
    t.row(vec![
        "PID controller".into(),
        format!(
            "Kp={}, Ki={}, Kd={} (output clamp ±{}s)",
            p.kp, p.ki, p.kd, p.output_limits.1
        ),
    ]);
    println!("{t}");
    println!(
        "Deviations from the paper's Table 1: <arrival-window> (256 → {}) and the PID gains\n\
         were retuned for the synthetic substrate; see EXPERIMENTS.md.",
        q.arrival_window
    );
}
