//! Regenerates **Fig. 14**: Quetzal's sensitivity to harvester cell
//! count, `<arrival-window>` and `<task-window>` (MoreCrowded).

use qz_bench::{cli_event_count, figures, report, Table};

fn main() {
    qz_bench::preflight("fig14_params", qz_bench::FigureDevices::Apollo4);
    let events = cli_event_count(300);
    println!("Fig. 14 — parameter sensitivity (MoreCrowded, {events} events)\n");
    let rows = figures::fig14_params(events);
    let mut t = Table::new(vec![
        "parameter",
        "interesting-discarded",
        "interesting-reported",
        "hi-q%",
    ]);
    for r in &rows {
        t.row(vec![
            r.environment.clone(),
            r.metrics.interesting_discarded().to_string(),
            r.metrics.interesting_reported().to_string(),
            report::pct(r.metrics.high_quality_fraction()),
        ]);
    }
    println!("{t}");
    println!(
        "Defaults used by the primary experiments: cells=6, arrival-window=16, task-window=64\n\
         (the paper's Table 1 uses arrival-window=256; see EXPERIMENTS.md for why ours differs)."
    );
}
