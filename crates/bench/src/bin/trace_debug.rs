//! Diagnostic timeline dump for tuning: the full decision-event stream
//! for a Quetzal run in the Crowded environment, rendered through the
//! `qz-obs` timeline plus the event-derived metrics registry. Not part
//! of the figure index.
//!
//! Usage: `trace_debug [events] [seed]` (defaults: 30 events, the
//! standard experiment seed).

use qz_app::{apollo4, simulate_traced, timeline_names, AppModel, SimTweaks};
use qz_baselines::BaselineKind;
use qz_obs::timeline::{render_timeline, TimelineConfig};
use qz_obs::MetricsObserver;
use qz_traces::{EnvironmentKind, SensingEnvironment};

fn main() {
    let mut args = std::env::args().skip(1);
    let events: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(30);
    let seed: u64 = args
        .next()
        .and_then(|a| a.parse().ok())
        .unwrap_or(20_250_330);

    let env = SensingEnvironment::generate(EnvironmentKind::Crowded, events, seed);
    let profile = apollo4();
    let tweaks = SimTweaks {
        seed,
        ..SimTweaks::default()
    };

    let (metrics, log) = simulate_traced(BaselineKind::Quetzal, &profile, &env, &tweaks);
    let names = timeline_names(&AppModel::person_detection(&profile).unwrap().spec);

    // Full timeline including periodic snapshots — this binary exists
    // for eyeballing state around anomalies, so nothing is elided.
    let cfg = TimelineConfig {
        show_snapshots: true,
        limit: 0,
        ..TimelineConfig::default()
    };
    println!("{}", render_timeline(&log, &names, &cfg));
    println!("{}", MetricsObserver::from_events(&log).render());
    println!(
        "run summary: {} events in log | {} jobs | {} IBO discards | {:.0}% off",
        log.len(),
        metrics.total_jobs(),
        metrics.ibo_discards,
        metrics.off_fraction() * 100.0
    );
}
