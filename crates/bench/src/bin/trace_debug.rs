//! Diagnostic timeline dump for tuning: per-second device state for a
//! Quetzal run in the Crowded environment. Not part of the figure index.

use qz_app::{apollo4, simulate, AppModel, SimTweaks};
use qz_baselines::{build_runtime, BaselineKind};
use qz_sim::{SimConfig, Simulation};
use qz_traces::{EnvironmentKind, SensingEnvironment};

fn main() {
    let env = SensingEnvironment::generate(EnvironmentKind::Crowded, 30, 20_250_330);
    let profile = apollo4();
    let app = AppModel::person_detection(&profile).unwrap();
    let runtime = build_runtime(
        BaselineKind::Quetzal,
        app.spec.clone(),
        quetzal::QuetzalConfig::default(),
    )
    .unwrap();
    let mut cfg = SimConfig::default();
    cfg.device = profile.device.clone();
    let mut sim =
        Simulation::new(cfg, &env, runtime, app.entry, app.behaviors, app.routes).unwrap();

    let mut last_ibo = 0u64;
    let mut last_jobs = [0u64; 4];
    println!("t(s) irr cap(mJ) on occ lam corr opt ibo+ full+ deg+");
    let mut next_print = 0;
    while sim.step() {
        let t = sim.time().as_millis();
        if t >= next_print {
            next_print += 1000;
            let m = sim.metrics();
            let jb = m.jobs_by_option;
            let dfull = jb[0] - last_jobs[0];
            let ddeg: u64 = jb[1..].iter().sum::<u64>() - last_jobs[1..].iter().sum::<u64>();
            let dibo = m.ibo_discards - last_ibo;
            let irr = env.solar().irradiance(sim.time());
            if dibo > 0 || sim.occupancy() >= 8 || t % 60_000 == 0 {
                println!(
                    "{:>6} {:.2} {:>6.1} {} {:>2} {:.2} {:+.2} {:?} {} {} {}",
                    t / 1000,
                    irr,
                    sim.stored_energy().value() * 1e3,
                    if sim.is_on() { "on " } else { "OFF" },
                    sim.occupancy(),
                    sim.runtime().lambda(),
                    sim.runtime().correction().value(),
                    sim.active_option(),
                    dibo,
                    dfull,
                    ddeg,
                );
            }
            last_ibo = m.ibo_discards;
            last_jobs = jb;
        }
    }
    let _ = simulate(BaselineKind::NoAdapt, &profile, &env, &SimTweaks::default());
}
