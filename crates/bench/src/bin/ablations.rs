//! Ablation study (extension beyond the paper): Quetzal without the PID
//! error-mitigation loop, without sticky current-option scheduling, and
//! with the hardware-assisted (quantized) estimator replacing exact
//! division.

use qz_bench::{cli_event_count, figures, report};

fn main() {
    qz_bench::preflight("ablations", qz_bench::FigureDevices::Apollo4);
    let events = cli_event_count(300);
    println!("Ablations — MoreCrowded ({events} events)\n");
    let rows = figures::ablations(events);
    println!("{}", report::standard_table(&rows));
    println!(
        "QZ-noPID: without prediction-error mitigation (paper 4.3).\n\
         QZ-noSticky: Algorithm 1 ranks jobs at highest quality instead of their current\n\
         degradation level, which can starve slot-freeing jobs under pressure.\n\
         QZ-HW: S_e2e through the diode/ADC module (Algorithm 3) instead of exact division.\n\
         QZ-EWMA: input-power measurements smoothed before prediction.\n"
    );

    println!("Checkpoint-policy ablation (Crowded):\n");
    let rows = figures::checkpoint_policies(events);
    let mut t = qz_bench::Table::new(vec![
        "policy",
        "discarded",
        "ibo",
        "false-neg",
        "power-failures",
        "reexecuted(s)",
    ]);
    for r in &rows {
        t.row(vec![
            r.system.clone(),
            r.metrics.interesting_discarded().to_string(),
            r.metrics.ibo_interesting.to_string(),
            r.metrics.false_negatives.to_string(),
            r.metrics.power_failures.to_string(),
            format!("{:.1}", r.metrics.reexecuted.as_seconds().value()),
        ]);
    }
    println!("{t}");
    println!(
        "JIT checkpointing (the paper's simulator, 6.3) loses no progress; periodic and\n\
         task-boundary policies re-execute work after every power failure, inflating\n\
         service times and IBOs."
    );
}
