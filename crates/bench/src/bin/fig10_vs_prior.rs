//! Regenerates **Fig. 10**: Quetzal vs prior work — CatNap (degrade when
//! full), PZO (Protean/Zygarde datasheet-fraction threshold) and PZI
//! (the observed-max oracle variant).

use qz_bench::{cli_event_count, figures, report};

fn main() {
    qz_bench::preflight("fig10_vs_prior", qz_bench::FigureDevices::Apollo4);
    let events = cli_event_count(400);
    println!("Fig. 10 — QZ vs CatNap / PZO / PZI ({events} events)\n");
    let rows = figures::fig10_vs_prior(events);
    println!("{}", report::standard_table(&rows));
    for base in ["CN", "PZO", "PZI"] {
        for line in report::improvement_lines(&rows, "QZ", base) {
            println!("{line}");
        }
    }
    println!(
        "\nPaper shape: QZ discards 2.2x/3.4x/4.3x fewer than CatNap and 1.9x/2.6x/3.1x fewer\n\
         than even the unimplementable PZI oracle; PZO degrades nearly always (the real traces\n\
         never approach the datasheet maximum)."
    );
}
