//! Regenerates **Fig. 11**: Quetzal vs fixed buffer-occupancy-threshold
//! systems — the 25/50/75 % comparison (a, b) and the full 0–100 % sweep
//! (c).

use qz_bench::{cli_event_count, figures, report};

fn main() {
    qz_bench::preflight("fig11_thresholds", qz_bench::FigureDevices::Apollo4);
    let events = cli_event_count(400);
    println!("Fig. 11a/b — QZ vs fixed thresholds 25/50/75% ({events} events)\n");
    let rows = figures::fig11_thresholds(events);
    println!("{}", report::standard_table(&rows));
    for base in ["TH25", "TH50", "TH75"] {
        for line in report::improvement_lines(&rows, "QZ", base) {
            println!("{line}");
        }
    }
    println!("\nFig. 11c — full threshold sweep (Crowded)\n");
    let sweep = figures::fig11_sweep(events);
    println!("{}", report::standard_table(&sweep));
    let best = sweep
        .iter()
        .filter(|r| r.environment != "dynamic")
        .min_by_key(|r| r.metrics.interesting_discarded())
        .expect("sweep is non-empty");
    let qz = sweep
        .iter()
        .find(|r| r.environment == "dynamic")
        .expect("dynamic row present");
    println!(
        "  Best static threshold ({}) discards {}; dynamic IBO prediction discards {}.",
        best.environment,
        best.metrics.interesting_discarded(),
        qz.metrics.interesting_discarded()
    );
    println!(
        "\nPaper shape: QZ outperforms every static threshold — adapt only when an IBO is imminent."
    );
}
