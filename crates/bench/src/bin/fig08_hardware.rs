//! Regenerates **Fig. 8**: the end-to-end "hardware" experiment — QZ vs
//! NoAdapt on two sensing environments with 100 events (the paper's
//! hardware runs use 100 events).

use qz_bench::{cli_event_count, figures, report};

fn main() {
    qz_bench::preflight("fig08_hardware", qz_bench::FigureDevices::Apollo4);
    let events = cli_event_count(100);
    println!("Fig. 8 — end-to-end experiment: QZ vs NoAdapt ({events} events)\n");
    let rows = figures::fig08_hardware(events);
    println!("{}", report::standard_table(&rows));
    for line in report::improvement_lines(&rows, "QZ", "NA") {
        println!("{line}");
    }
    for env in ["Crowded", "LessCrowded"] {
        let find = |sys: &str| {
            rows.iter()
                .find(|r| r.environment == env && r.system == sys)
                .map(|r| r.metrics.interesting_reported())
        };
        if let (Some(q), Some(n)) = (find("QZ"), find("NA")) {
            let gain = (q as f64 / n.max(1) as f64 - 1.0) * 100.0;
            println!("  {env}: QZ reports {gain:.0}% more interesting inputs than NA");
        }
    }
    println!(
        "\nPaper shape: QZ reduces discarded interesting inputs 6.4x/5x and reports 74%/27% more."
    );
}
