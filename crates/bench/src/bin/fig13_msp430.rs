//! Regenerates **Fig. 13**: platform versatility — every system on the
//! MSP430FR5994 in the Sparse sensing environment.

use qz_bench::{cli_event_count, figures, report};

fn main() {
    qz_bench::preflight("fig13_msp430", qz_bench::FigureDevices::Msp430);
    let events = cli_event_count(400);
    println!("Fig. 13 — MSP430FR5994, Short-event environment ({events} events)\n");
    let rows = figures::fig13_msp430(events);
    println!("{}", report::standard_table(&rows));
    for base in ["NA", "AD", "CN", "TH75", "PZO"] {
        for line in report::improvement_lines(&rows, "QZ", base) {
            println!("{line}");
        }
    }
    println!("\nPaper shape: QZ discards 2.8x fewer than NA on the MSP430 — the approach is MCU-agnostic.");
}
