//! Regenerates the paper's **§5.1 "Costs and Overheads"** analysis for
//! the hardware power-measurement module: per-op energy, invocation
//! overheads, memory footprint, and the module's ratio-estimation error
//! over the 25–50 °C band.

use qz_bench::Table;
use qz_hw::costs::runtime_footprint_bytes;
use qz_hw::{ratio_estimate, PowerMonitor, RatioPath, APOLLO4, MSP430FR5994};
use qz_types::Watts;

fn main() {
    println!("§5.1 — hardware module costs and overheads\n");

    let mut t = Table::new(vec![
        "mcu",
        "path",
        "cycles/op",
        "energy/op",
        "overhead@10Hz,32x4",
    ]);
    for mcu in [&MSP430FR5994, &APOLLO4] {
        for path in [mcu.native_path(), RatioPath::QuetzalModule] {
            let cycles = match path {
                RatioPath::QuetzalModule => mcu.module_cycles,
                _ => mcu.div_cycles,
            };
            t.row(vec![
                mcu.name.into(),
                path.to_string(),
                cycles.to_string(),
                format!("{:.2} nJ", mcu.ratio_op_energy(path).value() * 1e9),
                format!("{:.2}%", mcu.overhead_fraction(10.0, 32, 128, path) * 100.0),
            ]);
        }
    }
    println!("{t}");

    let msp_saving = 1.0
        - MSP430FR5994
            .ratio_op_energy(RatioPath::QuetzalModule)
            .value()
            / MSP430FR5994.ratio_op_energy(RatioPath::SoftwareDiv).value();
    let ap_saving = 1.0
        - APOLLO4.ratio_op_energy(RatioPath::QuetzalModule).value()
            / APOLLO4.ratio_op_energy(RatioPath::HardwareDiv).value();
    println!(
        "Per-op energy reduction: MSP430 {:.1}% (paper: 92.5%), Apollo 4 {:.1}% (paper: 62%)",
        msp_saving * 100.0,
        ap_saving * 100.0
    );
    println!(
        "Runtime memory footprint (32 tasks x 4 options, 64/256-bit windows): {} bytes (paper: 2,360)\n",
        runtime_footprint_bytes(32, 4, 64, 256)
    );

    println!(
        "Ratio-module error over temperature (true ratio vs 2^(delta/8) from quantized codes):\n"
    );
    let mut e = Table::new(vec!["true ratio", "25C", "30C", "37.5C", "45C", "50C"]);
    for ratio10 in [11u32, 13, 15, 20, 25, 40, 80] {
        let true_ratio = ratio10 as f64 / 10.0;
        let mut cells = vec![format!("{true_ratio:.1}x")];
        for temp in [25.0, 30.0, 37.5, 45.0, 50.0] {
            let mut m = PowerMonitor::default();
            m.set_temperature(temp);
            let p_in = Watts(0.020);
            let p_exe = Watts(p_in.value() * true_ratio);
            let vd1 = m.sample_power(p_in);
            let vd2 = m.sample_power(p_exe);
            let est = if vd2 > vd1 {
                ratio_estimate(vd2 - vd1)
            } else {
                1.0
            };
            cells.push(format!("{:+.1}%", (est / true_ratio - 1.0) * 100.0));
        }
        e.row(cells);
    }
    println!("{e}");
    println!(
        "Paper claims <=5.5% error over 25-50C; our end-to-end model (diode law + 8-bit\n\
         quantization + Algorithm 3) matches that for the ratio range the scheduler\n\
         exercises most (<=2.5x) and grows with the ratio, dominated by quantization\n\
         (+-1 ADC count ~= 9%). See EXPERIMENTS.md."
    );
}
