//! Regenerates **Fig. 3**: naive solutions (NoAdapt, Always Degrade,
//! CatNap, Protean/Zygarde) discard many interesting inputs; Quetzal
//! degrades only when IBOs are imminent.

use qz_bench::{cli_event_count, figures, report};

fn main() {
    qz_bench::preflight("fig03_naive", qz_bench::FigureDevices::Apollo4);
    let events = cli_event_count(400);
    println!("Fig. 3 — naive solutions vs Quetzal (Crowded, {events} events)\n");
    let rows = figures::fig03_naive(events);
    println!("{}", report::standard_table(&rows));
    for base in ["NA", "AD", "CN", "PZ@30.0mW"] {
        for line in report::improvement_lines(&rows, "QZ", base) {
            println!("{line}");
        }
    }
}
