//! Regenerates **Fig. 9**: Quetzal vs NoAdapt, Always Degrade, and the
//! ∞-memory Ideal across three sensing environments.

use qz_bench::{cli_event_count, figures, report};

fn main() {
    qz_bench::preflight("fig09_vs_nonadaptive", qz_bench::FigureDevices::Apollo4);
    let events = cli_event_count(400);
    println!("Fig. 9 — QZ vs NA/AD/Ideal ({events} events)\n");
    let rows = figures::fig09_vs_nonadaptive(events);
    println!("{}", report::standard_table(&rows));
    for base in ["NA", "AD"] {
        for line in report::improvement_lines(&rows, "QZ", base) {
            println!("{line}");
        }
    }
    // Reported interesting inputs, normalized to the Ideal system.
    let mut envs: Vec<&str> = rows.iter().map(|r| r.environment.as_str()).collect();
    envs.dedup();
    for env in envs {
        let find = |sys: &str| {
            rows.iter()
                .find(|r| r.environment == env && r.system == sys)
                .map(|r| r.metrics.interesting_reported())
        };
        if let (Some(q), Some(i)) = (find("QZ"), find("Ideal")) {
            println!(
                "  {env}: QZ reports {} of the Ideal (infinite-memory) system's interesting inputs",
                report::pct(q as f64 / i.max(1) as f64)
            );
        }
    }
    println!(
        "\nPaper shape: QZ discards 2.9x/3.5x/4.2x fewer than NA, 2.2x/3.1x/4.2x fewer than AD,\n\
         reports 92%/96%/98% of Ideal at 49.6%/59.5%/69.1% high quality."
    );
}
