//! Foundational types shared across the Quetzal reproduction workspace.
//!
//! This crate provides the vocabulary the rest of the system is written in:
//!
//! - [`units`] — strongly-typed physical quantities ([`Seconds`], [`Watts`],
//!   [`Joules`], [`Volts`], [`Amps`], [`Farads`], [`Hertz`]) with the
//!   dimensional arithmetic the energy models need (`Watts * Seconds =
//!   Joules`, `Joules / Watts = Seconds`, …).
//! - [`time`] — discrete simulation time ([`SimTime`], [`SimDuration`]) in
//!   integer milliseconds, matching the paper's fixed-increment 1 ms
//!   simulator (§6.3).
//! - [`fixed`] — [`Q16`], a Q16.16 fixed-point type used to mirror the
//!   integer-only arithmetic an MSP430-class microcontroller would perform.
//! - [`rng`] — a small deterministic [`SplitMix64`] generator used where the
//!   simulator needs cheap reproducible randomness without pulling in a
//!   full RNG crate.
//!
//! The crate is `no_std`-capable (disable the default `std` feature):
//! every type here is usable on the microcontrollers the Quetzal runtime
//! targets.
//!
//! # Examples
//!
//! ```
//! use qz_types::{Joules, Watts, Seconds};
//!
//! let task_energy = Watts(0.020) * Seconds(3.0); // 20 mW for 3 s
//! assert_eq!(task_energy, Joules(0.060));
//! let recharge = task_energy / Watts(0.010);     // at 10 mW input power
//! assert_eq!(recharge, Seconds(6.0));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(feature = "std"), no_std)]

pub mod fixed;
pub mod math;
pub mod rng;
pub mod time;
pub mod units;

pub use fixed::Q16;
pub use math::{ceil_positive, round_half_away};
pub use rng::SplitMix64;
pub use time::{SimDuration, SimTime, MS_PER_SEC};
pub use units::{Amps, Farads, Hertz, Joules, Seconds, Volts, Watts};
