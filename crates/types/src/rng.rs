//! A small deterministic pseudo-random generator.
//!
//! The simulator needs reproducible randomness in hot paths (per-input
//! misclassification draws) where pulling a full `rand` RNG through every
//! API would add noise. [`SplitMix64`] is the standard 64-bit mixing
//! generator (Steele et al., "Fast splittable pseudorandom number
//! generators", OOPSLA 2014): tiny state, excellent statistical quality for
//! simulation purposes, and trivially seedable.
//!
//! The trace-generation crate (`qz-traces`) uses `rand` distributions on
//! top of this for non-uniform draws.

/// A deterministic SplitMix64 pseudo-random generator.
///
/// # Examples
///
/// ```
/// use qz_types::SplitMix64;
/// let mut a = SplitMix64::new(42);
/// let mut b = SplitMix64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64()); // same seed, same stream
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed. Any seed (including 0) is valid.
    #[inline]
    pub const fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// Returns the next 64 uniformly distributed bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Returns a uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        // 53 random mantissa bits scaled into [0, 1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p.clamp(0.0, 1.0)
    }

    /// Returns a uniform integer in `[0, bound)`.
    ///
    /// Uses Lemire's multiply-shift reduction; the slight modulo bias is
    /// negligible for simulation workloads (bound ≪ 2⁶⁴).
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Returns a uniform `f64` in `[lo, hi)`.
    #[inline]
    pub fn next_range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.next_f64() * (hi - lo)
    }

    /// Derives an independent child generator; useful for giving each
    /// simulation subsystem its own stream so adding draws in one does not
    /// perturb another.
    #[inline]
    pub fn split(&mut self) -> SplitMix64 {
        SplitMix64::new(self.next_u64())
    }

    /// Returns the raw generator state for snapshotting.
    ///
    /// Together with [`SplitMix64::from_state`] this allows a simulation
    /// snapshot to capture and later resume an RNG stream bit-exactly:
    /// the state word *is* the entire generator.
    #[inline]
    pub const fn state(&self) -> u64 {
        self.state
    }

    /// Reconstructs a generator from a state word previously obtained via
    /// [`SplitMix64::state`]. The restored generator produces the exact
    /// same future stream as the original would have.
    #[inline]
    pub const fn from_state(state: u64) -> SplitMix64 {
        SplitMix64 { state }
    }

    /// Derives a stream seed from a base seed and a stream index by
    /// pushing both through the SplitMix64 mixer. Streams for distinct
    /// indices are statistically independent of each other and of the
    /// base stream, so a fleet of devices can each get their own
    /// reproducible randomness from one experiment seed:
    /// `derive_stream(fleet_seed, device_id)`.
    #[inline]
    pub fn derive_stream(seed: u64, stream: u64) -> u64 {
        // Jump the base generator to a stream-specific state, then mix
        // once so consecutive stream indices land far apart.
        let mut g =
            SplitMix64::new(seed ^ stream.wrapping_add(1).wrapping_mul(0xA24B_AED4_963E_E407));
        g.next_u64()
    }
}

impl Default for SplitMix64 {
    /// Seeds with a fixed arbitrary constant; prefer [`SplitMix64::new`]
    /// with an explicit experiment seed.
    fn default() -> SplitMix64 {
        SplitMix64::new(0x5EED_5EED_5EED_5EED)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SplitMix64::new(123);
        for _ in 0..10_000 {
            let v = r.next_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn f64_mean_near_half() {
        let mut r = SplitMix64::new(99);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean={mean}");
    }

    #[test]
    fn chance_edge_cases() {
        let mut r = SplitMix64::new(5);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        assert!(!r.chance(-3.0));
        assert!(r.chance(3.0));
    }

    #[test]
    fn chance_frequency_matches_probability() {
        let mut r = SplitMix64::new(17);
        let n = 100_000;
        let hits = (0..n).filter(|_| r.chance(0.3)).count();
        let freq = hits as f64 / n as f64;
        assert!((freq - 0.3).abs() < 0.01, "freq={freq}");
    }

    #[test]
    fn next_below_respects_bound() {
        let mut r = SplitMix64::new(11);
        for _ in 0..10_000 {
            assert!(r.next_below(10) < 10);
        }
        // every bucket gets hit for a small bound
        let mut seen = [false; 10];
        for _ in 0..1000 {
            // next_below(10) < 10, so the cast is exact.
            #[allow(clippy::cast_possible_truncation)]
            let bucket = r.next_below(10) as usize;
            seen[bucket] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn next_below_zero_panics() {
        SplitMix64::new(0).next_below(0);
    }

    #[test]
    fn next_range_bounds() {
        let mut r = SplitMix64::new(3);
        for _ in 0..1000 {
            let v = r.next_range(-2.0, 5.0);
            assert!((-2.0..5.0).contains(&v));
        }
    }

    #[test]
    fn derive_stream_is_deterministic_and_spreads() {
        assert_eq!(
            SplitMix64::derive_stream(42, 3),
            SplitMix64::derive_stream(42, 3)
        );
        let mut seen = std::collections::HashSet::new();
        for device in 0..1000u64 {
            seen.insert(SplitMix64::derive_stream(42, device));
        }
        assert_eq!(seen.len(), 1000, "stream seeds must not collide");
        assert_ne!(
            SplitMix64::derive_stream(1, 0),
            SplitMix64::derive_stream(2, 0)
        );
    }

    #[test]
    fn state_roundtrip_resumes_stream() {
        let mut a = SplitMix64::new(42);
        a.next_u64();
        a.next_f64();
        let saved = a.state();
        let mut b = SplitMix64::from_state(saved);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn state_of_fresh_generator_is_seed() {
        assert_eq!(SplitMix64::new(7).state(), 7);
        assert_eq!(SplitMix64::from_state(7), SplitMix64::new(7));
    }

    #[test]
    fn split_streams_are_independent() {
        let mut parent = SplitMix64::new(8);
        let mut c1 = parent.split();
        let mut c2 = parent.split();
        assert_ne!(c1.next_u64(), c2.next_u64());
    }
}
