//! Strongly-typed physical quantities.
//!
//! Every quantity the energy models manipulate is wrapped in a newtype so
//! the compiler catches dimensional mistakes (e.g. adding a power to an
//! energy). Arithmetic between units follows physics:
//!
//! - `Watts * Seconds = Joules` and `Joules / Seconds = Watts`
//! - `Joules / Watts = Seconds`
//! - `Volts * Amps = Watts`
//! - `Farads * Volts = Coulombs` is not needed; capacitor energy is computed
//!   directly in [`qz-energy`](https://docs.rs/qz-energy) as `½·C·V²`.
//!
//! All quantities are `f64` internally; the simulator's discrete time is a
//! separate integer type ([`crate::time::SimTime`]) to keep the 1 ms
//! stepping exact.

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// Implements the shared boilerplate for an `f64` newtype unit.
macro_rules! unit {
    ($(#[$meta:meta])* $name:ident, $suffix:literal) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
        pub struct $name(pub f64);

        impl $name {
            /// The zero quantity.
            pub const ZERO: $name = $name(0.0);

            /// Returns the raw `f64` value.
            #[inline]
            pub fn value(self) -> f64 {
                self.0
            }

            /// Returns the smaller of `self` and `other`.
            ///
            /// Uses IEEE-754 total ordering via `f64::min`, so `NaN`
            /// propagation follows `f64::min` semantics.
            #[inline]
            pub fn min(self, other: $name) -> $name {
                $name(self.0.min(other.0))
            }

            /// Returns the larger of `self` and `other`.
            #[inline]
            pub fn max(self, other: $name) -> $name {
                $name(self.0.max(other.0))
            }

            /// Clamps the quantity into `[lo, hi]`.
            ///
            /// # Panics
            ///
            /// Panics if `lo > hi` (same contract as [`f64::clamp`]).
            #[inline]
            pub fn clamp(self, lo: $name, hi: $name) -> $name {
                $name(self.0.clamp(lo.0, hi.0))
            }

            /// Returns `true` if the quantity is finite (not NaN/±∞).
            #[inline]
            pub fn is_finite(self) -> bool {
                self.0.is_finite()
            }

            /// Returns `true` if the quantity is `NaN`.
            #[inline]
            pub fn is_nan(self) -> bool {
                self.0.is_nan()
            }

            /// Total ordering over the underlying `f64` (see
            /// [`f64::total_cmp`]); useful for sorting and exact
            /// min-selection in the scheduler.
            #[inline]
            pub fn total_cmp(&self, other: &$name) -> core::cmp::Ordering {
                self.0.total_cmp(&other.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{} {}", self.0, $suffix)
            }
        }

        impl Add for $name {
            type Output = $name;
            #[inline]
            fn add(self, rhs: $name) -> $name {
                $name(self.0 + rhs.0)
            }
        }

        impl AddAssign for $name {
            #[inline]
            fn add_assign(&mut self, rhs: $name) {
                self.0 += rhs.0;
            }
        }

        impl Sub for $name {
            type Output = $name;
            #[inline]
            fn sub(self, rhs: $name) -> $name {
                $name(self.0 - rhs.0)
            }
        }

        impl SubAssign for $name {
            #[inline]
            fn sub_assign(&mut self, rhs: $name) {
                self.0 -= rhs.0;
            }
        }

        impl Neg for $name {
            type Output = $name;
            #[inline]
            fn neg(self) -> $name {
                $name(-self.0)
            }
        }

        impl Mul<f64> for $name {
            type Output = $name;
            #[inline]
            fn mul(self, rhs: f64) -> $name {
                $name(self.0 * rhs)
            }
        }

        impl Mul<$name> for f64 {
            type Output = $name;
            #[inline]
            fn mul(self, rhs: $name) -> $name {
                $name(self * rhs.0)
            }
        }

        impl Div<f64> for $name {
            type Output = $name;
            #[inline]
            fn div(self, rhs: f64) -> $name {
                $name(self.0 / rhs)
            }
        }

        impl Div<$name> for $name {
            /// Dividing two like quantities yields a dimensionless ratio.
            type Output = f64;
            #[inline]
            fn div(self, rhs: $name) -> f64 {
                self.0 / rhs.0
            }
        }

        impl Sum for $name {
            fn sum<I: Iterator<Item = $name>>(iter: I) -> $name {
                $name(iter.map(|v| v.0).sum())
            }
        }

        impl From<f64> for $name {
            #[inline]
            fn from(v: f64) -> $name {
                $name(v)
            }
        }
    };
}

unit!(
    /// A time span in seconds.
    ///
    /// Continuous model-level time. For the simulator's discrete clock see
    /// [`crate::time::SimTime`].
    Seconds,
    "s"
);
unit!(
    /// Power in watts.
    Watts,
    "W"
);
unit!(
    /// Energy in joules.
    Joules,
    "J"
);
unit!(
    /// Electric potential in volts.
    Volts,
    "V"
);
unit!(
    /// Electric current in amperes.
    Amps,
    "A"
);
unit!(
    /// Capacitance in farads.
    Farads,
    "F"
);
unit!(
    /// Frequency in hertz.
    Hertz,
    "Hz"
);

// --- Cross-unit arithmetic -------------------------------------------------

impl Mul<Seconds> for Watts {
    type Output = Joules;
    /// Energy = power × time.
    #[inline]
    fn mul(self, rhs: Seconds) -> Joules {
        Joules(self.0 * rhs.0)
    }
}

impl Mul<Watts> for Seconds {
    type Output = Joules;
    /// Energy = time × power.
    #[inline]
    fn mul(self, rhs: Watts) -> Joules {
        Joules(self.0 * rhs.0)
    }
}

impl Div<Watts> for Joules {
    type Output = Seconds;
    /// Time to produce/consume this energy at the given power.
    #[inline]
    fn div(self, rhs: Watts) -> Seconds {
        Seconds(self.0 / rhs.0)
    }
}

impl Div<Seconds> for Joules {
    type Output = Watts;
    /// Average power over the time span.
    #[inline]
    fn div(self, rhs: Seconds) -> Watts {
        Watts(self.0 / rhs.0)
    }
}

impl Mul<Amps> for Volts {
    type Output = Watts;
    /// Power = voltage × current.
    #[inline]
    fn mul(self, rhs: Amps) -> Watts {
        Watts(self.0 * rhs.0)
    }
}

impl Mul<Volts> for Amps {
    type Output = Watts;
    /// Power = current × voltage.
    #[inline]
    fn mul(self, rhs: Volts) -> Watts {
        Watts(self.0 * rhs.0)
    }
}

impl Div<Volts> for Watts {
    type Output = Amps;
    /// Current drawn at the given voltage.
    #[inline]
    fn div(self, rhs: Volts) -> Amps {
        Amps(self.0 / rhs.0)
    }
}

impl Hertz {
    /// The period corresponding to this frequency.
    ///
    /// # Examples
    ///
    /// ```
    /// use qz_types::{Hertz, Seconds};
    /// assert_eq!(Hertz(1.0).period(), Seconds(1.0));
    /// assert_eq!(Hertz(4.0).period(), Seconds(0.25));
    /// ```
    #[inline]
    pub fn period(self) -> Seconds {
        Seconds(1.0 / self.0)
    }
}

impl Seconds {
    /// The frequency corresponding to this period.
    #[inline]
    pub fn frequency(self) -> Hertz {
        Hertz(1.0 / self.0)
    }

    /// Convenience constructor from milliseconds.
    #[inline]
    pub fn from_millis(ms: f64) -> Seconds {
        Seconds(ms / 1e3)
    }

    /// This span expressed in milliseconds.
    #[inline]
    pub fn as_millis(self) -> f64 {
        self.0 * 1e3
    }
}

impl Watts {
    /// Convenience constructor from milliwatts.
    #[inline]
    pub fn from_milliwatts(mw: f64) -> Watts {
        Watts(mw / 1e3)
    }

    /// This power expressed in milliwatts.
    #[inline]
    pub fn as_milliwatts(self) -> f64 {
        self.0 * 1e3
    }

    /// Convenience constructor from microwatts.
    #[inline]
    pub fn from_microwatts(uw: f64) -> Watts {
        Watts(uw / 1e6)
    }
}

impl Joules {
    /// Convenience constructor from millijoules.
    #[inline]
    pub fn from_millijoules(mj: f64) -> Joules {
        Joules(mj / 1e3)
    }

    /// This energy expressed in millijoules.
    #[inline]
    pub fn as_millijoules(self) -> f64 {
        self.0 * 1e3
    }

    /// Convenience constructor from microjoules.
    #[inline]
    pub fn from_microjoules(uj: f64) -> Joules {
        Joules(uj / 1e6)
    }

    /// Convenience constructor from nanojoules.
    #[inline]
    pub fn from_nanojoules(nj: f64) -> Joules {
        Joules(nj / 1e9)
    }
}

#[cfg(test)]
// Q16/unit round-trips over dyadic rationals are exact by construction;
// these tests pin that exactness, so strict float comparison is the point.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    #[test]
    fn power_times_time_is_energy() {
        assert_eq!(Watts(2.0) * Seconds(3.0), Joules(6.0));
        assert_eq!(Seconds(3.0) * Watts(2.0), Joules(6.0));
    }

    #[test]
    fn energy_over_power_is_time() {
        assert_eq!(Joules(6.0) / Watts(2.0), Seconds(3.0));
    }

    #[test]
    fn energy_over_time_is_power() {
        assert_eq!(Joules(6.0) / Seconds(3.0), Watts(2.0));
    }

    #[test]
    fn volts_times_amps_is_watts() {
        assert_eq!(Volts(3.3) * Amps(2.0), Watts(6.6));
        assert_eq!(Amps(2.0) * Volts(3.3), Watts(6.6));
    }

    #[test]
    fn watts_over_volts_is_amps() {
        assert_eq!(Watts(6.6) / Volts(3.3), Amps(2.0));
    }

    #[test]
    fn like_division_is_dimensionless() {
        let r: f64 = Watts(10.0) / Watts(4.0);
        assert_eq!(r, 2.5);
    }

    #[test]
    fn scalar_ops() {
        assert_eq!(Watts(2.0) * 3.0, Watts(6.0));
        assert_eq!(3.0 * Watts(2.0), Watts(6.0));
        assert_eq!(Watts(6.0) / 3.0, Watts(2.0));
        assert_eq!(-Watts(1.0), Watts(-1.0));
    }

    #[test]
    fn add_sub_assign() {
        let mut e = Joules(1.0);
        e += Joules(0.5);
        assert_eq!(e, Joules(1.5));
        e -= Joules(1.0);
        assert_eq!(e, Joules(0.5));
    }

    #[test]
    fn min_max_clamp() {
        assert_eq!(Watts(1.0).min(Watts(2.0)), Watts(1.0));
        assert_eq!(Watts(1.0).max(Watts(2.0)), Watts(2.0));
        assert_eq!(Watts(5.0).clamp(Watts(0.0), Watts(2.0)), Watts(2.0));
        assert_eq!(Watts(-1.0).clamp(Watts(0.0), Watts(2.0)), Watts(0.0));
    }

    #[test]
    fn frequency_period_roundtrip() {
        let f = Hertz(2.0);
        assert!((f.period().frequency().0 - f.0).abs() < 1e-12);
    }

    #[test]
    fn unit_conversions() {
        assert_eq!(Seconds::from_millis(1500.0), Seconds(1.5));
        assert_eq!(Seconds(1.5).as_millis(), 1500.0);
        assert_eq!(Watts::from_milliwatts(20.0), Watts(0.020));
        assert!((Watts::from_microwatts(500.0).0 - 0.0005).abs() < 1e-15);
        assert_eq!(Joules::from_millijoules(60.0), Joules(0.060));
        assert!((Joules::from_nanojoules(3.75).0 - 3.75e-9).abs() < 1e-20);
    }

    #[test]
    fn sum_over_iterator() {
        let total: Joules = [Joules(1.0), Joules(2.0), Joules(3.0)].into_iter().sum();
        assert_eq!(total, Joules(6.0));
    }

    #[test]
    fn display_includes_suffix() {
        assert_eq!(Watts(1.5).to_string(), "1.5 W");
        assert_eq!(Seconds(0.25).to_string(), "0.25 s");
        assert_eq!(Joules(2.0).to_string(), "2 J");
    }

    #[test]
    fn total_cmp_handles_nan() {
        use core::cmp::Ordering;
        let nan = Watts(f64::NAN);
        assert_eq!(Watts(1.0).total_cmp(&Watts(2.0)), Ordering::Less);
        assert_eq!(nan.total_cmp(&Watts(1.0)), Ordering::Greater);
        assert!(nan.is_nan());
        assert!(!nan.is_finite());
    }
}
