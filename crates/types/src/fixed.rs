//! Q16.16 signed fixed-point arithmetic.
//!
//! Quetzal's runtime is designed for microcontrollers without floating-point
//! or even hardware-divide units (MSP430, Cortex-M0; §5.1 of the paper). The
//! hardware-module crate (`qz-hw`) therefore evaluates Algorithm 3 in pure
//! integer arithmetic. [`Q16`] mirrors what that firmware would do: a 32-bit
//! value with 16 fractional bits, multiplication via a 64-bit intermediate,
//! and shift-based scaling.

use core::fmt;
use core::ops::{Add, AddAssign, Div, Mul, Neg, Shl, Shr, Sub, SubAssign};

/// Number of fractional bits in [`Q16`].
pub const FRAC_BITS: u32 = 16;

/// A signed Q16.16 fixed-point number.
///
/// Range ≈ ±32768 with resolution 2⁻¹⁶ ≈ 1.5e-5, comfortably covering the
/// service times (≤ hundreds of seconds) and power ratios (≤ 2¹⁵ after the
/// shift decomposition of Algorithm 3) Quetzal manipulates.
///
/// # Examples
///
/// ```
/// use qz_types::Q16;
/// let a = Q16::from_f64(1.5);
/// let b = Q16::from_f64(2.0);
/// assert_eq!((a * b).to_f64(), 3.0);
/// assert_eq!((a << 2).to_f64(), 6.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Q16(pub i32);

impl Q16 {
    /// The value 0.
    pub const ZERO: Q16 = Q16(0);
    /// The value 1.
    pub const ONE: Q16 = Q16(1 << FRAC_BITS);
    /// Largest representable value (≈ 32767.99998).
    pub const MAX: Q16 = Q16(i32::MAX);
    /// Smallest representable value (≈ −32768).
    pub const MIN: Q16 = Q16(i32::MIN);
    /// Smallest positive increment (2⁻¹⁶).
    pub const EPSILON: Q16 = Q16(1);

    /// Builds a fixed-point value from raw Q16.16 bits.
    #[inline]
    pub const fn from_bits(bits: i32) -> Q16 {
        Q16(bits)
    }

    /// The raw Q16.16 bit pattern.
    #[inline]
    pub const fn to_bits(self) -> i32 {
        self.0
    }

    /// Converts from an integer.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `v` is outside ±32767.
    #[inline]
    pub const fn from_int(v: i16) -> Q16 {
        Q16((v as i32) << FRAC_BITS)
    }

    /// Converts from `f64`, rounding to the nearest representable value and
    /// saturating at the type's range (`NaN` maps to zero).
    #[inline]
    pub fn from_f64(v: f64) -> Q16 {
        let scaled = crate::math::round_half_away(v * f64::from(1u32 << FRAC_BITS));
        if scaled >= f64::from(i32::MAX) {
            Q16::MAX
        } else if scaled <= f64::from(i32::MIN) {
            Q16::MIN
        } else if scaled.is_nan() {
            Q16::ZERO
        } else {
            // In-range by the branches above, so the narrowing is exact.
            #[allow(clippy::cast_possible_truncation)]
            Q16(scaled as i32)
        }
    }

    /// Converts to `f64` exactly (every Q16.16 value is an exact `f64`).
    #[inline]
    pub fn to_f64(self) -> f64 {
        self.0 as f64 / (1u32 << FRAC_BITS) as f64
    }

    /// Truncates toward negative infinity to an integer.
    #[inline]
    pub const fn floor_int(self) -> i32 {
        self.0 >> FRAC_BITS
    }

    /// Saturating addition.
    #[inline]
    pub const fn saturating_add(self, rhs: Q16) -> Q16 {
        Q16(self.0.saturating_add(rhs.0))
    }

    /// Saturating multiplication.
    #[inline]
    pub fn saturating_mul(self, rhs: Q16) -> Q16 {
        let wide = (i64::from(self.0) * i64::from(rhs.0)) >> FRAC_BITS;
        // Clamped to i32 range on the line above, so the narrowing is exact.
        #[allow(clippy::cast_possible_truncation)]
        Q16(wide.clamp(i64::from(i32::MIN), i64::from(i32::MAX)) as i32)
    }

    /// Absolute value (saturating at `MAX` for `MIN`).
    #[inline]
    pub const fn abs(self) -> Q16 {
        if self.0 == i32::MIN {
            Q16::MAX
        } else if self.0 < 0 {
            Q16(-self.0)
        } else {
            self
        }
    }

    /// Returns the smaller of two values.
    #[inline]
    pub fn min(self, other: Q16) -> Q16 {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// Returns the larger of two values.
    #[inline]
    pub fn max(self, other: Q16) -> Q16 {
        if self >= other {
            self
        } else {
            other
        }
    }
}

impl fmt::Display for Q16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_f64())
    }
}

impl Add for Q16 {
    type Output = Q16;
    /// # Panics
    ///
    /// Panics in debug builds on overflow; use
    /// [`Q16::saturating_add`] when the operands are unbounded.
    #[inline]
    fn add(self, rhs: Q16) -> Q16 {
        Q16(self.0 + rhs.0)
    }
}

impl AddAssign for Q16 {
    #[inline]
    fn add_assign(&mut self, rhs: Q16) {
        self.0 += rhs.0;
    }
}

impl Sub for Q16 {
    type Output = Q16;
    #[inline]
    fn sub(self, rhs: Q16) -> Q16 {
        Q16(self.0 - rhs.0)
    }
}

impl SubAssign for Q16 {
    #[inline]
    fn sub_assign(&mut self, rhs: Q16) {
        self.0 -= rhs.0;
    }
}

impl Neg for Q16 {
    type Output = Q16;
    #[inline]
    fn neg(self) -> Q16 {
        Q16(-self.0)
    }
}

impl Mul for Q16 {
    type Output = Q16;
    /// Fixed-point multiply through a 64-bit intermediate, truncating
    /// toward zero and *saturating* at the type's range. MCU firmware
    /// emits the same 64-bit multiply; the saturation matches
    /// [`Q16::MAX`]'s "longer than any experiment" semantics instead of
    /// wrapping into nonsense service times.
    #[inline]
    fn mul(self, rhs: Q16) -> Q16 {
        self.saturating_mul(rhs)
    }
}

impl Div for Q16 {
    type Output = Q16;
    /// Fixed-point division.
    ///
    /// Present for completeness and for modeling the *baseline* software-
    /// division cost; Quetzal's hardware module exists precisely to avoid
    /// this operation at runtime.
    ///
    /// Saturates at the type's range when the quotient leaves Q16.16
    /// (e.g. a large value divided by [`Q16::EPSILON`]).
    ///
    /// # Panics
    ///
    /// Panics if `rhs` is zero.
    #[inline]
    fn div(self, rhs: Q16) -> Q16 {
        let wide = (i64::from(self.0) << FRAC_BITS) / i64::from(rhs.0);
        // Clamped to i32 range on the line above, so the narrowing is exact.
        #[allow(clippy::cast_possible_truncation)]
        Q16(wide.clamp(i64::from(i32::MIN), i64::from(i32::MAX)) as i32)
    }
}

impl Shl<u32> for Q16 {
    type Output = Q16;
    /// Multiply by 2ⁿ.
    #[inline]
    fn shl(self, rhs: u32) -> Q16 {
        Q16(self.0 << rhs)
    }
}

impl Shr<u32> for Q16 {
    type Output = Q16;
    /// Divide by 2ⁿ (arithmetic shift).
    #[inline]
    fn shr(self, rhs: u32) -> Q16 {
        Q16(self.0 >> rhs)
    }
}

impl From<i16> for Q16 {
    #[inline]
    fn from(v: i16) -> Q16 {
        Q16::from_int(v)
    }
}

#[cfg(test)]
// Q16/unit round-trips over dyadic rationals are exact by construction;
// these tests pin that exactness, so strict float comparison is the point.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn constants() {
        assert_eq!(Q16::ZERO.to_f64(), 0.0);
        assert_eq!(Q16::ONE.to_f64(), 1.0);
        assert_eq!(Q16::EPSILON.to_f64(), 1.0 / 65536.0);
    }

    #[test]
    fn f64_roundtrip_exact_values() {
        for v in [0.0, 1.0, -1.0, 0.5, -0.5, 1.25, 100.0625, -32767.0] {
            assert_eq!(Q16::from_f64(v).to_f64(), v, "v={v}");
        }
    }

    #[test]
    fn from_f64_saturates() {
        assert_eq!(Q16::from_f64(1e12), Q16::MAX);
        assert_eq!(Q16::from_f64(-1e12), Q16::MIN);
    }

    #[test]
    fn basic_arithmetic() {
        let a = Q16::from_f64(1.5);
        let b = Q16::from_f64(2.0);
        assert_eq!((a + b).to_f64(), 3.5);
        assert_eq!((a - b).to_f64(), -0.5);
        assert_eq!((a * b).to_f64(), 3.0);
        assert_eq!(
            (b / a).to_f64(),
            2.0 / 1.5 - ((2.0 / 1.5) % (1.0 / 65536.0))
        );
        assert_eq!((-a).to_f64(), -1.5);
    }

    #[test]
    fn shifts_scale_by_powers_of_two() {
        let x = Q16::from_f64(3.0);
        assert_eq!((x << 3).to_f64(), 24.0);
        assert_eq!((x >> 1).to_f64(), 1.5);
    }

    #[test]
    fn floor_int() {
        assert_eq!(Q16::from_f64(3.75).floor_int(), 3);
        assert_eq!(Q16::from_f64(-0.25).floor_int(), -1);
    }

    #[test]
    fn saturating_ops() {
        assert_eq!(Q16::MAX.saturating_add(Q16::ONE), Q16::MAX);
        assert_eq!(
            Q16::from_f64(30000.0).saturating_mul(Q16::from_f64(2.0)),
            Q16::MAX
        );
        assert_eq!(Q16::MIN.abs(), Q16::MAX);
        assert_eq!(Q16::from_f64(-2.0).abs().to_f64(), 2.0);
    }

    #[test]
    fn min_max() {
        let a = Q16::from_f64(1.0);
        let b = Q16::from_f64(2.0);
        assert_eq!(a.min(b), a);
        assert_eq!(a.max(b), b);
    }

    #[test]
    #[should_panic]
    fn div_by_zero_panics() {
        let _ = Q16::ONE / Q16::ZERO;
    }

    #[test]
    fn mul_and_div_saturate_instead_of_wrapping() {
        let big = Q16::from_f64(30000.0);
        assert_eq!(big * Q16::from_f64(2.0), Q16::MAX);
        assert_eq!(-big * Q16::from_f64(2.0), Q16::MIN);
        assert_eq!(big / Q16::EPSILON, Q16::MAX);
        assert_eq!(-big / Q16::EPSILON, Q16::MIN);
    }

    #[test]
    fn from_f64_maps_nan_to_zero() {
        assert_eq!(Q16::from_f64(f64::NAN), Q16::ZERO);
    }

    proptest! {
        #[test]
        fn mul_matches_f64_within_quantum(a in -1000.0f64..1000.0, b in -30.0f64..30.0) {
            let qa = Q16::from_f64(a);
            let qb = Q16::from_f64(b);
            let exact = qa.to_f64() * qb.to_f64();
            prop_assume!(exact.abs() < 30000.0);
            let got = (qa * qb).to_f64();
            // Truncating fixed-point multiply loses at most one quantum.
            prop_assert!((got - exact).abs() <= 1.0 / 65536.0 + 1e-12);
        }

        #[test]
        fn add_matches_f64(a in -10000.0f64..10000.0, b in -10000.0f64..10000.0) {
            let got = (Q16::from_f64(a) + Q16::from_f64(b)).to_f64();
            let exact = Q16::from_f64(a).to_f64() + Q16::from_f64(b).to_f64();
            prop_assert_eq!(got, exact);
        }

        #[test]
        fn roundtrip_error_bounded(v in -30000.0f64..30000.0) {
            let rt = Q16::from_f64(v).to_f64();
            prop_assert!((rt - v).abs() <= 0.5 / 65536.0 + 1e-12);
        }

        #[test]
        fn shl_shr_inverse(v in -100.0f64..100.0, s in 0u32..6) {
            let q = Q16::from_f64(v);
            let back = (q << s) >> s;
            prop_assert_eq!(back, q);
        }

        #[test]
        fn f64_roundtrip_is_bit_exact(bits in any::<i32>()) {
            // Every Q16.16 value is an exact f64, so the round trip must
            // restore the identical bit pattern — including MIN and MAX.
            let q = Q16::from_bits(bits);
            prop_assert_eq!(Q16::from_f64(q.to_f64()), q);
        }

        #[test]
        fn mul_saturates_at_both_rails(a in 200.0f64..32000.0, b in 200.0f64..32000.0) {
            // |a·b| ≥ 40000 > 32768, so every product overflows Q16.16.
            let (qa, qb) = (Q16::from_f64(a), Q16::from_f64(b));
            prop_assert_eq!(qa * qb, Q16::MAX);
            prop_assert_eq!(-qa * qb, Q16::MIN);
            prop_assert_eq!(qa * -qb, Q16::MIN);
            prop_assert_eq!(-qa * -qb, Q16::MAX);
        }

        #[test]
        fn add_saturates_at_both_rails(a in 20000.0f64..32000.0, b in 20000.0f64..32000.0) {
            // a+b ≥ 40000 > 32768, so every sum overflows Q16.16.
            let (qa, qb) = (Q16::from_f64(a), Q16::from_f64(b));
            prop_assert_eq!(qa.saturating_add(qb), Q16::MAX);
            prop_assert_eq!((-qa).saturating_add(-qb), Q16::MIN);
        }

        #[test]
        fn mul_tracks_the_clamped_f64_product(a in any::<i32>(), b in any::<i32>()) {
            // Over the full bit range, the fixed-point product equals the
            // real-valued product clamped to the rails, within two quanta
            // (one for truncation, one for boundary rounding).
            let (qa, qb) = (Q16::from_bits(a), Q16::from_bits(b));
            let exact = (qa.to_f64() * qb.to_f64())
                .clamp(Q16::MIN.to_f64(), Q16::MAX.to_f64());
            let got = (qa * qb).to_f64();
            prop_assert!(
                (got - exact).abs() <= 2.0 / 65536.0,
                "{qa} * {qb}: got {got}, clamped exact {exact}"
            );
        }

        #[test]
        fn div_by_near_zero_saturates(v in 8.0f64..30000.0, tiny_bits in 1i32..16) {
            // Divisors of a few quanta (≤ 15·2⁻¹⁶) push every quotient of
            // |v| ≥ 8 past the rails; division must clamp, not wrap.
            let q = Q16::from_f64(v);
            let tiny = Q16::from_bits(tiny_bits);
            prop_assert_eq!(q / tiny, Q16::MAX);
            prop_assert_eq!(-q / tiny, Q16::MIN);
            prop_assert_eq!(q / -tiny, Q16::MIN);
            prop_assert_eq!(-q / -tiny, Q16::MAX);
        }

        #[test]
        fn in_range_div_stays_within_one_quantum(a in -500.0f64..500.0, b in 1.0f64..30.0) {
            let (qa, qb) = (Q16::from_f64(a), Q16::from_f64(b));
            let exact = qa.to_f64() / qb.to_f64();
            let got = (qa / qb).to_f64();
            prop_assert!(
                (got - exact).abs() <= 1.0 / 65536.0 + 1e-12,
                "{qa} / {qb}: got {got}, exact {exact}"
            );
        }
    }
}
