//! Tiny `core`-only float helpers.
//!
//! `f64::round`/`f64::ceil` live in `std` (they lower to platform
//! intrinsics); these replacements keep the crate `no_std`-capable for
//! the value ranges the workspace uses (|v| well below 2⁶³).

/// Rounds half away from zero — the same tie behaviour as
/// [`f64::round`] — using only `core` operations.
///
/// # Examples
///
/// ```
/// use qz_types::round_half_away;
/// assert_eq!(round_half_away(2.5), 3.0);
/// assert_eq!(round_half_away(-2.5), -3.0);
/// assert_eq!(round_half_away(2.4), 2.0);
/// ```
#[inline]
// The i64 round-trip IS the rounding mechanism (truncation toward zero
// after the half-offset); inputs are simulator milliseconds, far inside
// i64 range.
#[allow(clippy::cast_possible_truncation)]
pub fn round_half_away(v: f64) -> f64 {
    if !v.is_finite() {
        return v;
    }
    if v >= 0.0 {
        (v + 0.5) as i64 as f64
    } else {
        (v - 0.5) as i64 as f64
    }
}

/// Ceiling for non-negative values using only `core` operations.
///
/// # Examples
///
/// ```
/// use qz_types::ceil_positive;
/// assert_eq!(ceil_positive(2.0), 2.0);
/// assert_eq!(ceil_positive(2.0001), 3.0);
/// assert_eq!(ceil_positive(0.0), 0.0);
/// ```
///
/// # Panics
///
/// Debug-asserts that `v` is non-negative.
#[inline]
// The u64 round-trip IS the floor operation; the debug_assert pins the
// non-negative domain that makes the sign-losing cast exact.
#[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
pub fn ceil_positive(v: f64) -> f64 {
    debug_assert!(v >= 0.0, "ceil_positive requires a non-negative input");
    let t = v as u64 as f64;
    if v > t {
        t + 1.0
    } else {
        t
    }
}

#[cfg(test)]
// Q16/unit round-trips over dyadic rationals are exact by construction;
// these tests pin that exactness, so strict float comparison is the point.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    #[test]
    fn round_matches_std() {
        for v in [
            0.0, 0.4, 0.5, 0.6, 1.5, 2.5, -0.4, -0.5, -1.5, 123.456, -99.99,
        ] {
            assert_eq!(round_half_away(v), v.round(), "v={v}");
        }
    }

    #[test]
    fn round_passes_non_finite_through() {
        assert!(round_half_away(f64::NAN).is_nan());
        assert_eq!(round_half_away(f64::INFINITY), f64::INFINITY);
    }

    #[test]
    fn ceil_matches_std() {
        for v in [0.0, 0.1, 1.0, 1.0001, 42.0, 42.9, 1e9] {
            assert_eq!(ceil_positive(v), v.ceil(), "v={v}");
        }
    }
}
