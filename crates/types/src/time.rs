//! Discrete simulation time.
//!
//! The paper's custom simulator advances in fixed 1 ms increments (§6.3).
//! [`SimTime`] is an absolute instant (milliseconds since simulation start)
//! and [`SimDuration`] is a span, both integer-backed so stepping is exact
//! and deterministic. Conversions to the continuous [`Seconds`] unit are
//! provided for the modeling layer.

use crate::units::Seconds;
use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, Mul, Rem, Sub, SubAssign};

/// Milliseconds per second; the simulator tick is 1 ms.
pub const MS_PER_SEC: u64 = 1_000;

/// An absolute simulation instant, in integer milliseconds since t = 0.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of simulation time, in integer milliseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// The simulation start instant.
    pub const ZERO: SimTime = SimTime(0);

    /// Creates an instant from whole milliseconds.
    #[inline]
    pub fn from_millis(ms: u64) -> SimTime {
        SimTime(ms)
    }

    /// Creates an instant from whole seconds.
    #[inline]
    pub fn from_secs(s: u64) -> SimTime {
        SimTime(s * MS_PER_SEC)
    }

    /// Milliseconds since simulation start.
    #[inline]
    pub fn as_millis(self) -> u64 {
        self.0
    }

    /// This instant as continuous seconds.
    #[inline]
    pub fn as_seconds(self) -> Seconds {
        Seconds(self.0 as f64 / MS_PER_SEC as f64)
    }

    /// The span from `earlier` to `self`.
    ///
    /// Returns [`SimDuration::ZERO`] if `earlier` is after `self` (saturating),
    /// which keeps metric arithmetic panic-free in edge cases.
    #[inline]
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Advances by one 1 ms tick.
    #[inline]
    pub fn tick(self) -> SimTime {
        SimTime(self.0 + 1)
    }

    /// The earliest instant at or after `self` that is a whole multiple
    /// of `period` — the next firing of a periodic boundary (capture,
    /// telemetry sample, snapshot) whose phase test is `t % period == 0`.
    /// Returns `self` when already on a boundary.
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero.
    ///
    /// # Examples
    ///
    /// ```
    /// use qz_types::{SimDuration, SimTime};
    /// let period = SimDuration::from_secs(1);
    /// assert_eq!(SimTime(3000).next_multiple_of(period), SimTime(3000));
    /// assert_eq!(SimTime(3001).next_multiple_of(period), SimTime(4000));
    /// ```
    #[inline]
    pub fn next_multiple_of(self, period: SimDuration) -> SimTime {
        assert!(!period.is_zero(), "period must be non-zero");
        SimTime(self.0.div_ceil(period.0) * period.0)
    }
}

impl SimDuration {
    /// The empty span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// One simulator tick (1 ms).
    pub const TICK: SimDuration = SimDuration(1);

    /// Creates a span from whole milliseconds.
    #[inline]
    pub fn from_millis(ms: u64) -> SimDuration {
        SimDuration(ms)
    }

    /// Creates a span from whole seconds.
    #[inline]
    pub fn from_secs(s: u64) -> SimDuration {
        SimDuration(s * MS_PER_SEC)
    }

    /// Creates a span from continuous seconds, rounding *up* to the next
    /// whole millisecond so a task can never complete earlier than its
    /// modeled latency.
    ///
    /// # Examples
    ///
    /// ```
    /// use qz_types::{SimDuration, Seconds};
    /// assert_eq!(SimDuration::from_seconds_ceil(Seconds(0.0004)), SimDuration(1));
    /// assert_eq!(SimDuration::from_seconds_ceil(Seconds(0.25)), SimDuration(250));
    /// ```
    #[inline]
    // `ceil_positive` returns a whole non-negative value (clamped by the
    // `.max(0.0)` above), so the narrowing cast is exact.
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    pub fn from_seconds_ceil(s: Seconds) -> SimDuration {
        let ms = (s.0 * MS_PER_SEC as f64).max(0.0);
        SimDuration(crate::math::ceil_positive(ms) as u64)
    }

    /// The span in whole milliseconds.
    #[inline]
    pub fn as_millis(self) -> u64 {
        self.0
    }

    /// This span as continuous seconds.
    #[inline]
    pub fn as_seconds(self) -> Seconds {
        Seconds(self.0 as f64 / MS_PER_SEC as f64)
    }

    /// Returns `true` if the span is zero.
    #[inline]
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }

    /// Returns the smaller of two spans.
    #[inline]
    pub fn min(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.min(other.0))
    }

    /// Returns the larger of two spans.
    #[inline]
    pub fn max(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.max(other.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={}ms", self.0)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}ms", self.0)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    /// # Panics
    ///
    /// Panics in debug builds if the duration exceeds the instant.
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Sub for SimTime {
    type Output = SimDuration;
    /// # Panics
    ///
    /// Panics in debug builds if `rhs` is after `self`; use
    /// [`SimTime::since`] for a saturating version.
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    /// # Panics
    ///
    /// Panics in debug builds on underflow; use
    /// [`SimDuration::saturating_sub`] when the operands may be unordered.
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    #[inline]
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Rem<SimDuration> for SimTime {
    type Output = SimDuration;
    /// Phase of this instant within a repeating period — used for periodic
    /// capture scheduling (`t % period == 0` fires a capture).
    #[inline]
    fn rem(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 % rhs.0)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        SimDuration(iter.map(|d| d.0).sum())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instant_plus_duration() {
        assert_eq!(SimTime(100) + SimDuration(50), SimTime(150));
        let mut t = SimTime::ZERO;
        t += SimDuration::from_secs(2);
        assert_eq!(t, SimTime(2000));
    }

    #[test]
    fn instant_difference() {
        assert_eq!(SimTime(150) - SimTime(100), SimDuration(50));
        assert_eq!(SimTime(100).since(SimTime(150)), SimDuration::ZERO);
    }

    #[test]
    fn seconds_roundtrip() {
        let t = SimTime::from_secs(3);
        assert_eq!(t.as_seconds(), Seconds(3.0));
        let d = SimDuration::from_millis(1500);
        assert_eq!(d.as_seconds(), Seconds(1.5));
    }

    #[test]
    fn ceil_conversion_never_undershoots() {
        for ms in [0.1, 0.5, 0.999, 1.0, 1.0001, 123.456] {
            let d = SimDuration::from_seconds_ceil(Seconds(ms / 1e3));
            assert!(d.as_seconds().0 >= ms / 1e3 - 1e-12, "ms={ms}");
        }
        assert_eq!(
            SimDuration::from_seconds_ceil(Seconds(-1.0)),
            SimDuration::ZERO
        );
    }

    #[test]
    fn tick_advances_one_ms() {
        assert_eq!(SimTime(41).tick(), SimTime(42));
    }

    #[test]
    fn periodic_phase() {
        let period = SimDuration::from_secs(1);
        assert_eq!(SimTime(3000) % period, SimDuration::ZERO);
        assert_eq!(SimTime(3250) % period, SimDuration(250));
    }

    #[test]
    fn next_multiple_lands_on_boundaries() {
        let p = SimDuration(250);
        assert_eq!(SimTime::ZERO.next_multiple_of(p), SimTime::ZERO);
        assert_eq!(SimTime(1).next_multiple_of(p), SimTime(250));
        assert_eq!(SimTime(250).next_multiple_of(p), SimTime(250));
        assert_eq!(SimTime(251).next_multiple_of(p), SimTime(500));
        assert_eq!(SimTime(999).next_multiple_of(SimDuration(1)), SimTime(999));
    }

    #[test]
    fn duration_arith() {
        assert_eq!(SimDuration(10) * 3, SimDuration(30));
        assert_eq!(SimDuration(30) / 3, SimDuration(10));
        assert_eq!(
            SimDuration(30).saturating_sub(SimDuration(40)),
            SimDuration::ZERO
        );
        assert_eq!(SimDuration(3).min(SimDuration(5)), SimDuration(3));
        assert_eq!(SimDuration(3).max(SimDuration(5)), SimDuration(5));
        assert!(SimDuration::ZERO.is_zero());
        let total: SimDuration = [SimDuration(1), SimDuration(2)].into_iter().sum();
        assert_eq!(total, SimDuration(3));
    }

    #[test]
    fn display() {
        assert_eq!(SimTime(5).to_string(), "t=5ms");
        assert_eq!(SimDuration(5).to_string(), "5ms");
    }
}
