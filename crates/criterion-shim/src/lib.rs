//! A minimal, dependency-free stand-in for the [`criterion`] crate.
//!
//! The workspace builds hermetically (no crate registry), so the real
//! criterion cannot be fetched. This shim implements the API surface the
//! workspace's benches use — `Criterion::bench_function`,
//! `benchmark_group` + `Throughput`, `Bencher::iter` /
//! `iter_batched`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros — with a straightforward wall-clock harness:
//! a warm-up phase, then timed batches until the measurement budget is
//! spent, reporting the median batch mean and min/max spread.
//!
//! It produces no HTML reports and does no statistical outlier analysis;
//! numbers print to stdout, one line per benchmark:
//!
//! ```text
//! simulator/ticks_10k     time: [  3.01 ms   3.05 ms   3.21 ms]  thrpt: 3.28 Melem/s
//! ```
//!
//! [`criterion`]: https://docs.rs/criterion

// Shim code intentionally narrows RNG output into the requested
// integer domains; these casts are the sampling mechanism.
#![allow(
    clippy::cast_possible_truncation,
    clippy::cast_sign_loss,
    clippy::float_cmp
)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How per-iteration state is batched in `iter_batched` (accepted for
/// API compatibility; the shim runs one setup per timed iteration).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Units for derived throughput lines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// The measurement harness (a small subset of the real `Criterion`).
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            sample_size: 30,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_millis(1200),
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Criterion {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Sets the warm-up duration.
    pub fn warm_up_time(mut self, d: Duration) -> Criterion {
        self.warm_up_time = d;
        self
    }

    /// Sets the measurement budget.
    pub fn measurement_time(mut self, d: Duration) -> Criterion {
        self.measurement_time = d;
        self
    }

    /// Accepted for compatibility with generated runners; the shim has
    /// no CLI of its own.
    pub fn configure_from_args(self) -> Criterion {
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(self, id, None, &mut f);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_owned(),
            throughput: None,
        }
    }

    /// Called by `criterion_main!` after all groups run.
    pub fn final_summary(&self) {}
}

/// A named group sharing configuration and throughput annotations.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Annotates subsequent benchmarks with a throughput denominator.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Overrides the sample count within this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n.max(2);
        self
    }

    /// Runs one benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        run_bench(self.criterion, &full, self.throughput, &mut f);
        self
    }

    /// Ends the group (kept for API compatibility).
    pub fn finish(self) {}
}

/// Passed to the closure given to `bench_function`; call exactly one of
/// its `iter*` methods.
pub struct Bencher {
    /// Iterations to time in this call.
    iters: u64,
    /// Measured time for the routine across `iters` iterations.
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over the requested iterations.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` on inputs built (untimed) by `setup`.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }

    /// Like `iter_batched` but hands the routine `&mut I`.
    pub fn iter_batched_ref<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(&mut I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let mut input = setup();
            let start = Instant::now();
            black_box(routine(&mut input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

fn time_once<F: FnMut(&mut Bencher)>(f: &mut F, iters: u64) -> Duration {
    let mut b = Bencher {
        iters,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    b.elapsed
}

fn run_bench<F>(config: &Criterion, id: &str, throughput: Option<Throughput>, f: &mut F)
where
    F: FnMut(&mut Bencher),
{
    // Warm up and size the per-sample iteration count so one sample
    // costs roughly measurement_time / sample_size.
    let warm_start = Instant::now();
    let mut iters: u64 = 1;
    let mut per_iter = Duration::from_nanos(1);
    while warm_start.elapsed() < config.warm_up_time {
        let t = time_once(f, iters);
        per_iter = t.max(Duration::from_nanos(1)) / iters as u32;
        if t > config.warm_up_time / 4 {
            break;
        }
        iters = iters.saturating_mul(2);
    }
    let budget_per_sample = config.measurement_time / config.sample_size as u32;
    let iters_per_sample = (budget_per_sample.as_nanos() / per_iter.as_nanos().max(1))
        .clamp(1, u64::MAX as u128) as u64;

    let mut samples: Vec<f64> = (0..config.sample_size)
        .map(|_| time_once(f, iters_per_sample).as_secs_f64() / iters_per_sample as f64)
        .collect();
    samples.sort_by(f64::total_cmp);
    let min = samples[0];
    let max = samples[samples.len() - 1];
    let median = samples[samples.len() / 2];

    let thrpt = match throughput {
        Some(Throughput::Elements(n)) => format!("  thrpt: {}elem/s", si(n as f64 / median)),
        Some(Throughput::Bytes(n)) => format!("  thrpt: {}B/s", si(n as f64 / median)),
        None => String::new(),
    };
    println!(
        "{id:<44} time: [{} {} {}]{thrpt}",
        fmt_time(min),
        fmt_time(median),
        fmt_time(max)
    );
}

fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:>8.2} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:>8.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:>8.2} ms", secs * 1e3)
    } else {
        format!("{:>8.2} s ", secs)
    }
}

fn si(v: f64) -> String {
    if v >= 1e9 {
        format!("{:.2} G", v / 1e9)
    } else if v >= 1e6 {
        format!("{:.2} M", v / 1e6)
    } else if v >= 1e3 {
        format!("{:.2} K", v / 1e3)
    } else {
        format!("{v:.2} ")
    }
}

/// Declares a benchmark group runner, mirroring the real macro's two
/// accepted forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config.configure_from_args();
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark `main` that runs each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_prints() {
        let mut c = Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        let mut count = 0u64;
        c.bench_function("smoke", |b| b.iter(|| count += 1));
        assert!(count > 0);
    }

    #[test]
    fn groups_and_batched() {
        let mut c = Criterion::default()
            .sample_size(2)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(4));
        let mut group = c.benchmark_group("g");
        group.throughput(Throughput::Elements(10));
        group.bench_function("b", |b| {
            b.iter_batched(|| vec![1u8; 8], |v| v.len(), BatchSize::SmallInput)
        });
        group.finish();
    }

    #[test]
    fn time_formatting() {
        assert!(fmt_time(2e-9).contains("ns"));
        assert!(fmt_time(2e-6).contains("µs"));
        assert!(fmt_time(2e-3).contains("ms"));
        assert!(fmt_time(2.0).contains("s"));
    }
}
