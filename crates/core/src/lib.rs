//! # Quetzal — energy-aware scheduling and input-buffer-overflow prevention
//!
//! A from-scratch reproduction of the runtime proposed in *"Energy-aware
//! Scheduling and Input Buffer Overflow Prevention for Energy-harvesting
//! Systems"* (Desai, Wang, Lucia — ASPLOS 2025).
//!
//! Periodic energy-harvesting devices capture inputs at a fixed rate but
//! process them at a rate that varies with harvestable power and event
//! activity. When processing falls behind, inputs pile up in a small
//! on-device buffer; once it fills, new — potentially interesting —
//! inputs are lost to **input buffer overflows (IBOs)**. Quetzal attacks
//! this with three cooperating mechanisms:
//!
//! 1. **Energy-aware SJF scheduling** ([`policy`]): pick the job with the
//!    smallest *end-to-end* expected service time `E[S]`, where each
//!    task's service time `S_e2e = max(t_exe, t_exe · P_exe / P_in)`
//!    (Eq. 1) folds in energy-recharge time at the measured input power.
//! 2. **IBO detection and reaction** ([`ibo`]): use Little's Law
//!    `E[N] = λ · E[S]` (Eq. 2) to predict whether the buffer will
//!    overflow while the selected job runs; if so, degrade the job's
//!    degradable task just enough — the highest-quality option that
//!    avoids the predicted overflow.
//! 3. **Prediction-error mitigation** ([`pid`]): a PID controller on the
//!    difference between predicted and observed `E[S]` inflates or
//!    relaxes future predictions (§4.3).
//!
//! The quantities these mechanisms need are tracked by bit-vector windows
//! ([`window`], [`trackers`]) and estimated by pluggable service-time
//! models ([`service`]) — including a hardware-assisted model backed by
//! the diode/ADC measurement circuit from the companion [`qz_hw`] crate.
//!
//! Applications describe themselves with the [`model`] programming model:
//! *tasks* (optionally with quality-ordered degradation options) grouped
//! into *jobs*, at most one degradable task per job. The [`runtime`]
//! module ties everything together behind the [`Quetzal`] facade.
//!
//! The runtime is `no_std`-capable (`default-features = false`,
//! requires `alloc`): everything a device firmware needs — the
//! programming model, trackers, estimators, scheduler, IBO engine and
//! PID — runs without the standard library. Only the simulation-side
//! pieces (the [`service::HwAssistedEstimator`] backed by the analog
//! circuit *model*) need `std`.
//!
//! # Quickstart
//!
//! ```
//! use quetzal::model::{AppSpecBuilder, TaskCost};
//! use quetzal::runtime::{BufferView, Quetzal, QuetzalConfig};
//! use qz_types::{Seconds, Watts};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut spec = AppSpecBuilder::new();
//! let infer = spec
//!     .degradable_task("ml-infer")
//!     .option("mobilenetv2", TaskCost::new(Seconds(3.0), Watts(0.020)))
//!     .option("lenet", TaskCost::new(Seconds(0.3), Watts(0.015)))
//!     .finish()?;
//! let process = spec.job("process", vec![infer])?;
//! let spec = spec.build()?;
//!
//! let mut qz = Quetzal::new(spec, QuetzalConfig::default())?;
//! qz.on_capture(true); // one input stored into the buffer
//! let decision = qz
//!     .schedule(
//!         &[(process, Some(Seconds(1.0)))],
//!         BufferView { occupancy: 1, capacity: 10 },
//!         Watts(0.010),
//!     )
//!     .expect("one job is runnable");
//! assert_eq!(decision.job, process);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(feature = "std"), no_std)]

extern crate alloc;

pub mod ibo;
pub mod mcu;
pub mod model;
pub mod pid;
pub mod policy;
pub mod power;
pub mod quantile;
pub mod runtime;
pub mod service;
pub mod trackers;
pub mod variable;
pub mod window;
pub mod witness;

pub use ibo::{DegradationContext, DegradationPolicy, IboDecision, IboEngine};
pub use mcu::{McuDecision, McuEngine, McuTaskProfile};
pub use model::{AppSpec, AppSpecBuilder, JobId, SpecError, TaskCost, TaskId, TaskKey};
pub use pid::PidState;
pub use policy::{EnergyAwareSjf, Fcfs, JobCandidate, Lcfs, SchedulingPolicy, Selection};
pub use power::PredictorState;
pub use quantile::P2QuantileState;
pub use runtime::{BufferView, Decision, Quetzal, QuetzalConfig, RuntimeState};
pub use service::EstimatorState;
pub use window::BitWindowState;
// Decision tracing rides on the companion observability crate; re-export
// it so firmware-side users don't need a separate dependency line.
pub use qz_obs as obs;
#[cfg(feature = "std")]
pub use service::HwAssistedEstimator;
pub use service::{AvgObservedEstimator, EnergyAwareEstimator, ServiceEstimator};
pub use variable::VariableCostEstimator;
pub use witness::{check_ibo_walk, check_pressure_monotone, WitnessViolation};
