//! Fixed-size bit-vector history windows (paper §5.1).
//!
//! Quetzal tracks task execution probability and input-arrival rate with
//! bit-vectors: a 1 means "the task executed for this input" / "this
//! capture was stored", a 0 the opposite. Each window keeps a running
//! 1-counter that is updated only when the window changes, so querying
//! the estimate is O(1) — exactly the structure the paper describes for
//! its software library.

use alloc::format;
use alloc::string::String;
use alloc::vec;
use alloc::vec::Vec;

/// A ring-buffered window of bits with a running count of ones.
///
/// # Examples
///
/// ```
/// use quetzal::window::BitWindow;
///
/// let mut w = BitWindow::new(4);
/// w.push(true);
/// w.push(true);
/// w.push(false);
/// assert_eq!(w.ones(), 2);
/// assert_eq!(w.fraction(), Some(2.0 / 3.0)); // over the filled portion
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitWindow {
    blocks: Vec<u64>,
    capacity: usize,
    /// Next write position, in bits.
    head: usize,
    /// Number of bits pushed so far, saturating at `capacity`.
    filled: usize,
    ones: usize,
}

impl BitWindow {
    /// Largest supported window, bounding memory to what an MCU library
    /// would reserve.
    pub const MAX_CAPACITY: usize = 4096;

    /// Creates a window holding the most recent `capacity` bits.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is 0 or exceeds [`BitWindow::MAX_CAPACITY`].
    pub fn new(capacity: usize) -> BitWindow {
        assert!(
            (1..=BitWindow::MAX_CAPACITY).contains(&capacity),
            "window capacity must be in 1..={}",
            BitWindow::MAX_CAPACITY
        );
        BitWindow {
            blocks: vec![0; capacity.div_ceil(64)],
            capacity,
            head: 0,
            filled: 0,
            ones: 0,
        }
    }

    /// The window's fixed capacity in bits.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// How many bits have been recorded (saturates at the capacity).
    #[inline]
    pub fn filled(&self) -> usize {
        self.filled
    }

    /// `true` if no bits have been recorded yet.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.filled == 0
    }

    /// Number of ones currently in the window (the "1-counter").
    #[inline]
    pub fn ones(&self) -> usize {
        self.ones
    }

    /// Appends a bit, evicting the oldest once the window is full.
    pub fn push(&mut self, bit: bool) {
        let idx = self.head;
        let (block, mask) = (idx / 64, 1u64 << (idx % 64));
        if self.filled == self.capacity {
            // Evicting: subtract the outgoing bit from the counter.
            if self.blocks[block] & mask != 0 {
                self.ones -= 1;
            }
        } else {
            self.filled += 1;
        }
        if bit {
            self.blocks[block] |= mask;
            self.ones += 1;
        } else {
            self.blocks[block] &= !mask;
        }
        self.head = (self.head + 1) % self.capacity;
    }

    /// Fraction of ones over the *filled* portion, or `None` before any
    /// bit has been recorded. Callers supply their own cold-start default
    /// (the runtime uses 1.0 — conservative for IBO prediction).
    pub fn fraction(&self) -> Option<f64> {
        if self.filled == 0 {
            None
        } else {
            Some(self.ones as f64 / self.filled as f64)
        }
    }

    /// Clears the window to its initial empty state.
    pub fn clear(&mut self) {
        self.blocks.fill(0);
        self.head = 0;
        self.filled = 0;
        self.ones = 0;
    }

    /// Captures the window's contents for a simulation snapshot.
    pub fn save_state(&self) -> BitWindowState {
        BitWindowState {
            capacity: self.capacity,
            blocks: self.blocks.clone(),
            head: self.head,
            filled: self.filled,
            ones: self.ones,
        }
    }

    /// Restores contents captured by [`BitWindow::save_state`].
    ///
    /// # Errors
    ///
    /// Rejects a state whose shape does not match this window (different
    /// capacity) or whose cursors are internally inconsistent, so a
    /// snapshot can never silently corrupt the running counters.
    pub fn restore_state(&mut self, state: &BitWindowState) -> Result<(), String> {
        if state.capacity != self.capacity {
            return Err(format!(
                "bit-window capacity mismatch: snapshot {} vs live {}",
                state.capacity, self.capacity
            ));
        }
        if state.blocks.len() != self.blocks.len()
            || state.head >= state.capacity
            || state.filled > state.capacity
            || state.ones > state.filled
        {
            return Err(String::from("bit-window state is internally inconsistent"));
        }
        self.blocks.copy_from_slice(&state.blocks);
        self.head = state.head;
        self.filled = state.filled;
        self.ones = state.ones;
        Ok(())
    }
}

/// Serializable contents of a [`BitWindow`], captured by
/// [`BitWindow::save_state`]. All fields are plain data so snapshot
/// layers can serialize them exactly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitWindowState {
    /// The window's fixed capacity in bits; restore targets must match.
    pub capacity: usize,
    /// Raw 64-bit blocks backing the ring.
    pub blocks: Vec<u64>,
    /// Next write position, in bits.
    pub head: usize,
    /// Bits recorded so far (saturating at `capacity`).
    pub filled: usize,
    /// Running 1-count over the filled portion.
    pub ones: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_window() {
        let w = BitWindow::new(8);
        assert!(w.is_empty());
        assert_eq!(w.ones(), 0);
        assert_eq!(w.fraction(), None);
        assert_eq!(w.capacity(), 8);
    }

    #[test]
    fn counts_partial_fill() {
        let mut w = BitWindow::new(8);
        w.push(true);
        w.push(false);
        w.push(true);
        assert_eq!(w.filled(), 3);
        assert_eq!(w.ones(), 2);
        assert_eq!(w.fraction(), Some(2.0 / 3.0));
    }

    #[test]
    fn evicts_oldest_when_full() {
        let mut w = BitWindow::new(3);
        w.push(true);
        w.push(true);
        w.push(false);
        assert_eq!(w.ones(), 2);
        w.push(false); // evicts the first `true`
        assert_eq!(w.ones(), 1);
        assert_eq!(w.filled(), 3);
        w.push(true); // evicts a `true`
        assert_eq!(w.ones(), 1);
        w.push(true); // evicts the `false`
        assert_eq!(w.ones(), 2);
    }

    #[test]
    fn spans_block_boundaries() {
        let mut w = BitWindow::new(130);
        for i in 0..130 {
            w.push(i % 2 == 0);
        }
        assert_eq!(w.ones(), 65);
        // Push 130 more zeros; all ones evicted.
        for _ in 0..130 {
            w.push(false);
        }
        assert_eq!(w.ones(), 0);
    }

    #[test]
    fn clear_resets() {
        let mut w = BitWindow::new(4);
        w.push(true);
        w.push(true);
        w.clear();
        assert!(w.is_empty());
        assert_eq!(w.fraction(), None);
        w.push(false);
        assert_eq!(w.fraction(), Some(0.0));
    }

    #[test]
    fn state_roundtrip_preserves_eviction_order() {
        let mut a = BitWindow::new(5);
        for i in 0..13 {
            a.push(i % 3 == 0);
        }
        let state = a.save_state();
        let mut b = BitWindow::new(5);
        b.restore_state(&state).unwrap();
        assert_eq!(a, b);
        // Future pushes must evict in the same order.
        for i in 0..10 {
            a.push(i % 2 == 0);
            b.push(i % 2 == 0);
            assert_eq!(a, b);
            assert_eq!(a.ones(), b.ones());
        }
    }

    #[test]
    fn restore_rejects_capacity_mismatch() {
        let a = BitWindow::new(8);
        let mut b = BitWindow::new(16);
        let err = b.restore_state(&a.save_state()).unwrap_err();
        assert!(err.contains("capacity mismatch"), "{err}");
    }

    #[test]
    fn restore_rejects_inconsistent_cursors() {
        let a = BitWindow::new(8);
        let mut state = a.save_state();
        state.ones = 3; // more ones than filled bits
        let mut b = BitWindow::new(8);
        assert!(b.restore_state(&state).is_err());
    }

    #[test]
    #[should_panic(expected = "window capacity")]
    fn rejects_zero_capacity() {
        BitWindow::new(0);
    }

    #[test]
    #[should_panic(expected = "window capacity")]
    fn rejects_oversized_capacity() {
        BitWindow::new(BitWindow::MAX_CAPACITY + 1);
    }

    proptest! {
        #[test]
        fn counter_matches_reference(
            bits in proptest::collection::vec(any::<bool>(), 1..600),
            cap in 1usize..200,
        ) {
            let mut w = BitWindow::new(cap);
            let mut reference: Vec<bool> = Vec::new();
            for b in bits {
                w.push(b);
                reference.push(b);
                if reference.len() > cap {
                    reference.remove(0);
                }
                let expect = reference.iter().filter(|&&x| x).count();
                prop_assert_eq!(w.ones(), expect);
                prop_assert_eq!(w.filled(), reference.len());
            }
        }

        #[test]
        fn fraction_in_unit_interval(bits in proptest::collection::vec(any::<bool>(), 1..100)) {
            let mut w = BitWindow::new(16);
            for b in bits {
                w.push(b);
                let f = w.fraction().unwrap();
                prop_assert!((0.0..=1.0).contains(&f));
            }
        }
    }
}
