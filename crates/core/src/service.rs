//! End-to-end service-time (`S_e2e`) estimators.
//!
//! Equation 1 of the paper models a task's end-to-end service time as
//!
//! ```text
//! S_e2e = max(t_exe, t_chg) = max(t_exe, t_exe · P_exe / P_in)
//! ```
//!
//! — execution time when harvest keeps up, recharge time when it does
//! not. Three estimators implement the [`ServiceEstimator`] interface:
//!
//! - [`EnergyAwareEstimator`] — evaluates Eq. 1 exactly in floating
//!   point (the "ideal software" reference).
//! - [`HwAssistedEstimator`] — evaluates Eq. 1 the way the real system
//!   would: through the diode/ADC measurement circuit and Algorithm 3's
//!   division-free fixed-point path (`qz-hw`), including quantization
//!   and temperature effects.
//! - [`AvgObservedEstimator`] — the paper's *Avg. S_e2e* baseline
//!   (§6.1): ignores input power and predicts each task's next service
//!   time as the average of its previously observed service times.

#[cfg(feature = "std")]
use crate::model::AppSpec;
use crate::model::{TaskCost, TaskKey};
use crate::quantile::P2QuantileState;
use alloc::collections::BTreeMap;
use alloc::string::String;
use alloc::vec::Vec;
use core::fmt;
#[cfg(feature = "std")]
use qz_hw::{premultiply_t_exe, se2e_hw, PowerMonitor, PremultTable};
use qz_types::{Seconds, Watts};

/// Ceiling on any service-time prediction: with zero input power the true
/// recharge time is unbounded; predictions saturate here (≈ 11.6 days),
/// far beyond any buffer horizon, so saturated jobs always predict IBOs.
pub const SE2E_CAP: Seconds = Seconds(1.0e6);

/// Predicts per-task end-to-end service times.
///
/// `observe` feeds back measured service times after execution; only
/// history-based estimators use it.
///
/// `Send` because `qz-fleet` moves whole runtimes across worker
/// threads between epochs.
pub trait ServiceEstimator: fmt::Debug + Send {
    /// Predicts `S_e2e` for a task configuration at the given input power.
    fn predict(&self, key: TaskKey, cost: TaskCost, p_in: Watts) -> Seconds;

    /// Records an observed end-to-end service time for a task
    /// configuration. Default: ignored.
    fn observe(&mut self, key: TaskKey, observed: Seconds) {
        let _ = (key, observed);
    }

    /// Notifies the estimator that a task configuration was just
    /// scheduled at the given conditions, so history-based estimators can
    /// normalize the observation that will follow. Default: ignored.
    fn note_scheduled(&mut self, key: TaskKey, cost: TaskCost, p_in: Watts) {
        let _ = (key, cost, p_in);
    }

    /// Captures the estimator's evolving state for a simulation
    /// snapshot. Default: [`EstimatorState::Stateless`] — correct for
    /// estimators that are constant after construction (the exact model
    /// and the hardware-assisted model).
    fn save_state(&self) -> EstimatorState {
        EstimatorState::Stateless
    }

    /// Restores state captured by [`ServiceEstimator::save_state`].
    ///
    /// # Errors
    ///
    /// The default implementation accepts only
    /// [`EstimatorState::Stateless`]; a snapshot carrying history for a
    /// different estimator kind is a configuration mismatch.
    fn restore_state(&mut self, state: &EstimatorState) -> Result<(), String> {
        match state {
            EstimatorState::Stateless => Ok(()),
            _ => Err(String::from(
                "snapshot carries estimator history but the live estimator is stateless",
            )),
        }
    }
}

/// Serializable evolving state of a [`ServiceEstimator`], captured by
/// [`ServiceEstimator::save_state`]. Plain data for exact serialization.
#[derive(Debug, Clone, PartialEq)]
pub enum EstimatorState {
    /// The estimator is constant after construction (exact model,
    /// hardware-assisted model).
    Stateless,
    /// [`AvgObservedEstimator`] history: per configuration, the running
    /// `(sum of observed seconds, observation count)`.
    AvgObserved(Vec<(TaskKey, f64, u64)>),
    /// [`VariableCostEstimator`](crate::variable::VariableCostEstimator)
    /// history: per configuration, the inflation quantile markers and
    /// the last base prediction used for normalization.
    VariableCost(Vec<(TaskKey, P2QuantileState, f64)>),
}

/// Exact floating-point evaluation of Eq. 1.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EnergyAwareEstimator;

impl EnergyAwareEstimator {
    /// Creates the estimator.
    pub fn new() -> EnergyAwareEstimator {
        EnergyAwareEstimator
    }

    /// Evaluates Eq. 1 directly (also used by tests and other estimators
    /// as ground truth).
    pub fn se2e(cost: TaskCost, p_in: Watts) -> Seconds {
        if p_in.value() <= 0.0 {
            return SE2E_CAP;
        }
        let ratio = (cost.p_exe / p_in).max(1.0);
        (cost.t_exe * ratio).min(SE2E_CAP)
    }
}

impl ServiceEstimator for EnergyAwareEstimator {
    fn predict(&self, _key: TaskKey, cost: TaskCost, p_in: Watts) -> Seconds {
        EnergyAwareEstimator::se2e(cost, p_in)
    }
}

#[cfg(feature = "std")]
/// Eq. 1 evaluated through the hardware measurement module.
///
/// At construction, every task configuration in the spec is "profiled":
/// its execution power is passed through the D2 diode and the resulting
/// ADC code plus the premultiplied `t_exe` table are stored. At predict
/// time the input power is sampled through D1 and Algorithm 3 combines
/// the codes — no division, and with the ADC's quantization and the
/// diode's temperature sensitivity faithfully applied.
#[derive(Debug, Clone)]
#[cfg(feature = "std")]
pub struct HwAssistedEstimator {
    monitor: PowerMonitor,
    /// Per-configuration profile: (V_D2 code, premultiplied t_exe table).
    profiles: BTreeMap<TaskKey, (u8, PremultTable)>,
}

#[cfg(feature = "std")]
impl HwAssistedEstimator {
    /// Profiles every task configuration in `spec` through `monitor`.
    pub fn from_spec(spec: &AppSpec, monitor: PowerMonitor) -> HwAssistedEstimator {
        let profiles = spec
            .profile_entries()
            .map(|(key, cost)| {
                let vd2 = monitor.sample_power(cost.p_exe);
                (key, (vd2, premultiply_t_exe(cost.t_exe)))
            })
            .collect();
        HwAssistedEstimator { monitor, profiles }
    }

    /// Mutable access to the measurement circuit (e.g. to sweep its
    /// temperature in sensitivity studies).
    pub fn monitor_mut(&mut self) -> &mut PowerMonitor {
        &mut self.monitor
    }
}

#[cfg(feature = "std")]
impl ServiceEstimator for HwAssistedEstimator {
    /// # Panics
    ///
    /// Panics if `key` was not profiled — i.e. it does not belong to the
    /// spec this estimator was built from.
    fn predict(&self, key: TaskKey, _cost: TaskCost, p_in: Watts) -> Seconds {
        let (vd2, table) = self
            .profiles
            .get(&key)
            .unwrap_or_else(|| panic!("task configuration {key:?} was never profiled"));
        let vd1 = self.monitor.sample_power(p_in);
        Seconds(se2e_hw(table, vd1, *vd2).to_f64()).min(SE2E_CAP)
    }
}

/// The *Avg. S_e2e* baseline: per-task running average of observed
/// service times, blind to input power.
#[derive(Debug, Clone, Default)]
pub struct AvgObservedEstimator {
    history: BTreeMap<TaskKey, (f64, u64)>,
}

impl AvgObservedEstimator {
    /// Creates an estimator with no history.
    pub fn new() -> AvgObservedEstimator {
        AvgObservedEstimator::default()
    }

    /// Number of configurations with recorded history.
    pub fn tracked(&self) -> usize {
        self.history.len()
    }
}

impl ServiceEstimator for AvgObservedEstimator {
    /// Before any observation for `key`, falls back to the profiled
    /// `t_exe` (the only power-blind prior available).
    fn predict(&self, key: TaskKey, cost: TaskCost, _p_in: Watts) -> Seconds {
        match self.history.get(&key) {
            Some(&(sum, n)) if n > 0 => Seconds(sum / n as f64).min(SE2E_CAP),
            _ => cost.t_exe,
        }
    }

    fn observe(&mut self, key: TaskKey, observed: Seconds) {
        let entry = self.history.entry(key).or_insert((0.0, 0));
        entry.0 += observed.value();
        entry.1 += 1;
    }

    fn save_state(&self) -> EstimatorState {
        EstimatorState::AvgObserved(
            self.history
                .iter()
                .map(|(&key, &(sum, n))| (key, sum, n))
                .collect(),
        )
    }

    fn restore_state(&mut self, state: &EstimatorState) -> Result<(), String> {
        match state {
            EstimatorState::AvgObserved(entries) => {
                self.history = entries
                    .iter()
                    .map(|&(key, sum, n)| (key, (sum, n)))
                    .collect();
                Ok(())
            }
            _ => Err(String::from(
                "snapshot estimator state does not match AvgObservedEstimator",
            )),
        }
    }
}

#[cfg(test)]
// Many assertions here pin values that are copied or computed exactly
// (literals, dyadic fractions, pass-through accessors); strict float
// comparison is the point.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;
    use crate::model::{AppSpecBuilder, TaskId};
    use proptest::prelude::*;

    fn cost(t: f64, p: f64) -> TaskCost {
        TaskCost::new(Seconds(t), Watts(p))
    }

    fn key() -> TaskKey {
        TaskKey::best(TaskId(0))
    }

    #[test]
    fn avg_estimator_state_roundtrips() {
        let mut a = AvgObservedEstimator::new();
        a.observe(key(), Seconds(2.0));
        a.observe(key(), Seconds(4.0));
        a.observe(TaskKey::best(TaskId(1)), Seconds(7.0));
        let state = a.save_state();
        let mut b = AvgObservedEstimator::new();
        b.restore_state(&state).unwrap();
        assert_eq!(b.tracked(), 2);
        let c = cost(1.0, 0.01);
        assert_eq!(
            a.predict(key(), c, Watts(1.0)),
            b.predict(key(), c, Watts(1.0))
        );
        // Stateless estimators reject history and accept Stateless.
        let mut exact = EnergyAwareEstimator::new();
        assert!(exact.restore_state(&state).is_err());
        assert!(exact.restore_state(&EstimatorState::Stateless).is_ok());
        assert_eq!(exact.save_state(), EstimatorState::Stateless);
        // And the avg estimator rejects a stateless-kind mismatch only
        // for foreign history kinds.
        assert!(b.restore_state(&EstimatorState::Stateless).is_err());
    }

    #[test]
    fn compute_bound_regime() {
        // P_in ≥ P_exe → S_e2e = t_exe.
        let s = EnergyAwareEstimator::se2e(cost(2.0, 0.01), Watts(0.02));
        assert_eq!(s, Seconds(2.0));
    }

    #[test]
    fn recharge_bound_regime() {
        // P_exe = 4×P_in → S_e2e = 4·t_exe.
        let s = EnergyAwareEstimator::se2e(cost(2.0, 0.04), Watts(0.01));
        assert_eq!(s, Seconds(8.0));
    }

    #[test]
    fn paper_radio_example() {
        // §2.2: a radio task ranging from 0.8 s at high power to >50 s at
        // low power. 0.8 s at 400 mW = 0.32 J; at 6 mW input that takes
        // 53 s of recharging.
        let radio = cost(0.8, 0.4);
        assert_eq!(EnergyAwareEstimator::se2e(radio, Watts(0.5)), Seconds(0.8));
        let slow = EnergyAwareEstimator::se2e(radio, Watts(0.006));
        assert!(slow > Seconds(50.0), "slow={slow}");
    }

    #[test]
    fn zero_power_saturates() {
        assert_eq!(
            EnergyAwareEstimator::se2e(cost(1.0, 0.1), Watts::ZERO),
            SE2E_CAP
        );
        assert_eq!(
            EnergyAwareEstimator::se2e(cost(1.0, 0.1), Watts(-1.0)),
            SE2E_CAP
        );
    }

    #[test]
    fn tiny_power_is_capped() {
        let s = EnergyAwareEstimator::se2e(cost(100.0, 0.4), Watts(1e-12));
        assert_eq!(s, SE2E_CAP);
    }

    fn one_task_spec(t: f64, p: f64) -> AppSpec {
        let mut b = AppSpecBuilder::new();
        let id = b.fixed_task("t", cost(t, p)).unwrap();
        b.job("j", vec![id]).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn hw_estimator_tracks_exact_model() {
        let spec = one_task_spec(2.0, 0.040);
        let est = HwAssistedEstimator::from_spec(&spec, PowerMonitor::default());
        let c = cost(2.0, 0.040);
        for p_in_mw in [5.0, 10.0, 20.0, 40.0, 80.0] {
            let p_in = Watts(p_in_mw / 1e3);
            let exact = EnergyAwareEstimator::se2e(c, p_in).value();
            let hw = est.predict(key(), c, p_in).value();
            let err = (hw / exact - 1.0).abs();
            assert!(
                err < 0.20,
                "p_in={p_in_mw}mW exact={exact} hw={hw} err={err}"
            );
        }
    }

    #[test]
    fn hw_estimator_compute_bound_is_exact() {
        let spec = one_task_spec(2.0, 0.010);
        let est = HwAssistedEstimator::from_spec(&spec, PowerMonitor::default());
        // P_in well above P_exe → returns the premultiplied t_exe exactly.
        let s = est.predict(key(), cost(2.0, 0.010), Watts(0.1));
        assert!((s.value() - 2.0).abs() < 1e-3);
    }

    #[test]
    #[should_panic(expected = "never profiled")]
    fn hw_estimator_rejects_unprofiled_key() {
        let spec = one_task_spec(1.0, 0.01);
        let est = HwAssistedEstimator::from_spec(&spec, PowerMonitor::default());
        est.predict(
            TaskKey {
                task: TaskId(9),
                option: 0,
            },
            cost(1.0, 0.01),
            Watts(0.01),
        );
    }

    #[test]
    fn hw_estimator_temperature_access() {
        let spec = one_task_spec(1.0, 0.01);
        let mut est = HwAssistedEstimator::from_spec(&spec, PowerMonitor::default());
        est.monitor_mut().set_temperature(40.0);
        assert_eq!(est.monitor_mut().temperature(), 40.0);
    }

    #[test]
    fn avg_estimator_falls_back_to_t_exe() {
        let est = AvgObservedEstimator::new();
        assert_eq!(
            est.predict(key(), cost(3.0, 0.1), Watts(0.001)),
            Seconds(3.0)
        );
        assert_eq!(est.tracked(), 0);
    }

    #[test]
    fn avg_estimator_averages_observations() {
        let mut est = AvgObservedEstimator::new();
        est.observe(key(), Seconds(2.0));
        est.observe(key(), Seconds(4.0));
        assert_eq!(
            est.predict(key(), cost(1.0, 0.1), Watts(0.001)),
            Seconds(3.0)
        );
        assert_eq!(est.tracked(), 1);
    }

    #[test]
    fn avg_estimator_is_power_blind() {
        // The defining flaw the paper's Fig. 12 demonstrates: the same
        // prediction regardless of current input power.
        let mut est = AvgObservedEstimator::new();
        est.observe(key(), Seconds(10.0));
        let lo = est.predict(key(), cost(1.0, 0.1), Watts(0.0001));
        let hi = est.predict(key(), cost(1.0, 0.1), Watts(10.0));
        assert_eq!(lo, hi);
    }

    #[test]
    fn energy_aware_estimator_ignores_observations() {
        let mut est = EnergyAwareEstimator::new();
        est.observe(key(), Seconds(100.0)); // default no-op
        assert_eq!(
            est.predict(key(), cost(1.0, 0.01), Watts(0.02)),
            Seconds(1.0)
        );
    }

    proptest! {
        #[test]
        fn se2e_at_least_t_exe(t in 0.001f64..100.0, p_exe in 0.001f64..1.0, p_in in 0.0f64..1.0) {
            let s = EnergyAwareEstimator::se2e(cost(t, p_exe), Watts(p_in));
            prop_assert!(s >= Seconds(t).min(SE2E_CAP));
            prop_assert!(s <= SE2E_CAP);
        }

        #[test]
        fn se2e_monotone_decreasing_in_power(
            t in 0.001f64..100.0,
            p_exe in 0.001f64..1.0,
            p1 in 0.0001f64..1.0,
            p2 in 0.0001f64..1.0,
        ) {
            let (lo, hi) = if p1 < p2 { (p1, p2) } else { (p2, p1) };
            let s_lo = EnergyAwareEstimator::se2e(cost(t, p_exe), Watts(lo));
            let s_hi = EnergyAwareEstimator::se2e(cost(t, p_exe), Watts(hi));
            prop_assert!(s_hi <= s_lo);
        }
    }
}
