//! Quetzal's programming model: tasks, degradation options and jobs
//! (paper §5.2).
//!
//! A *task* is an application-defined unit of computation with a profiled
//! time and power cost. A *degradable* task offers a quality-ordered list
//! of degradation options (highest quality first) that trade quality for
//! lower time/energy cost. A *job* is a sequence of tasks that processes
//! one buffered input; each job has **at most one** degradable task,
//! which is responsible for avoiding IBOs for the whole job.
//!
//! Capacity limits mirror the paper's runtime library: at most
//! [`MAX_TASKS`] tasks and [`MAX_OPTIONS`] degradation options per task.

use alloc::borrow::ToOwned;
use alloc::string::String;
use alloc::vec::Vec;
use core::fmt;
use qz_types::{Seconds, Watts};

/// Maximum number of tasks the runtime supports (paper §5.1).
pub const MAX_TASKS: usize = 32;
/// Maximum degradation options per task (paper §5.1).
pub const MAX_OPTIONS: usize = 4;

/// Identifies a task within an [`AppSpec`].
///
/// The `Default` id refers to the spec's first task.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct TaskId(pub(crate) u8);

impl TaskId {
    /// The task's index within the spec.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "task#{}", self.0)
    }
}

/// Identifies a job within an [`AppSpec`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct JobId(pub(crate) u8);

impl JobId {
    /// The job's index within the spec.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "job#{}", self.0)
    }
}

/// A task at a specific degradation level — the unit service-time
/// estimators and profiling tables are keyed by.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TaskKey {
    /// The task.
    pub task: TaskId,
    /// Degradation option index (0 = highest quality; always 0 for
    /// non-degradable tasks).
    pub option: u8,
}

impl TaskKey {
    /// Key for a task's highest-quality configuration.
    #[inline]
    pub fn best(task: TaskId) -> TaskKey {
        TaskKey { task, option: 0 }
    }
}

/// A profiled task cost: execution latency and average execution power.
///
/// The paper assumes each task has a consistent `t_exe` and `P_exe`,
/// profiled in advance (§4.1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TaskCost {
    /// Execution latency at full power.
    pub t_exe: Seconds,
    /// Average power drawn while executing.
    pub p_exe: Watts,
}

impl TaskCost {
    /// Creates a cost from latency and power.
    pub fn new(t_exe: Seconds, p_exe: Watts) -> TaskCost {
        TaskCost { t_exe, p_exe }
    }

    /// Total execution energy `t_exe · P_exe`.
    #[inline]
    pub fn energy(&self) -> qz_types::Joules {
        self.p_exe * self.t_exe
    }
}

/// One entry in a degradable task's quality-ordered option list.
#[derive(Debug, Clone, PartialEq)]
pub struct DegradationOption {
    /// Human-readable option name (e.g. `"mobilenetv2"`).
    pub name: String,
    /// Profiled cost at this quality level.
    pub cost: TaskCost,
}

/// How a task executes: at a fixed cost, or at one of several
/// quality-ordered degradation options.
#[derive(Debug, Clone, PartialEq)]
pub enum TaskKind {
    /// A non-degradable task with a single profiled cost.
    Fixed(TaskCost),
    /// A degradable task; options are ordered highest quality first.
    Degradable(Vec<DegradationOption>),
}

/// A named task within an application.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskSpec {
    /// Task name, unique within the spec.
    pub name: String,
    /// Fixed or degradable execution behaviour.
    pub kind: TaskKind,
}

impl TaskSpec {
    /// `true` if the task offers degradation options.
    #[inline]
    pub fn is_degradable(&self) -> bool {
        matches!(self.kind, TaskKind::Degradable(_))
    }

    /// Number of selectable configurations (1 for fixed tasks).
    pub fn option_count(&self) -> usize {
        match &self.kind {
            TaskKind::Fixed(_) => 1,
            TaskKind::Degradable(opts) => opts.len(),
        }
    }

    /// Cost at a given option index.
    ///
    /// # Panics
    ///
    /// Panics if `option` is out of range for this task.
    pub fn cost(&self, option: usize) -> TaskCost {
        match &self.kind {
            TaskKind::Fixed(c) => {
                assert!(option == 0, "fixed task has only option 0");
                *c
            }
            TaskKind::Degradable(opts) => opts[option].cost,
        }
    }

    /// Cost of the highest-quality configuration.
    #[inline]
    pub fn best_cost(&self) -> TaskCost {
        self.cost(0)
    }
}

/// A job: an ordered sequence of tasks processing one buffered input.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Job name, unique within the spec.
    pub name: String,
    /// Tasks executed (potentially conditionally) by this job, in order.
    pub tasks: Vec<TaskId>,
    /// Index into `tasks` of the degradable task, if the job has one.
    pub degradable: Option<usize>,
}

impl JobSpec {
    /// The degradable task's id, if any.
    pub fn degradable_task(&self) -> Option<TaskId> {
        self.degradable.map(|i| self.tasks[i])
    }
}

/// A validated application specification: all tasks and jobs.
#[derive(Debug, Clone, PartialEq)]
pub struct AppSpec {
    tasks: Vec<TaskSpec>,
    jobs: Vec<JobSpec>,
}

impl AppSpec {
    /// All tasks.
    #[inline]
    pub fn tasks(&self) -> &[TaskSpec] {
        &self.tasks
    }

    /// All jobs.
    #[inline]
    pub fn jobs(&self) -> &[JobSpec] {
        &self.jobs
    }

    /// Looks up a task.
    ///
    /// # Panics
    ///
    /// Panics if `id` did not come from this spec's builder.
    #[inline]
    pub fn task(&self, id: TaskId) -> &TaskSpec {
        &self.tasks[id.index()]
    }

    /// Looks up a job.
    ///
    /// # Panics
    ///
    /// Panics if `id` did not come from this spec's builder.
    #[inline]
    pub fn job(&self, id: JobId) -> &JobSpec {
        &self.jobs[id.index()]
    }

    /// The `TaskId` at a given index, if in range.
    // Bounded by MAX_TASKS (32), so the u8 casts are exact.
    #[allow(clippy::cast_possible_truncation)]
    pub fn task_id(&self, index: usize) -> Option<TaskId> {
        (index < self.tasks.len()).then_some(TaskId(index as u8))
    }

    /// The `JobId` at a given index, if in range.
    // Bounded by MAX_TASKS (32), so the u8 cast is exact.
    #[allow(clippy::cast_possible_truncation)]
    pub fn job_id(&self, index: usize) -> Option<JobId> {
        (index < self.jobs.len()).then_some(JobId(index as u8))
    }

    /// Iterates over every `(TaskKey, TaskCost)` in the spec — the set a
    /// profiling pass measures.
    // Bounded by MAX_TASKS (32) and MAX_OPTIONS (4), so the u8 casts
    // are exact.
    #[allow(clippy::cast_possible_truncation)]
    pub fn profile_entries(&self) -> impl Iterator<Item = (TaskKey, TaskCost)> + '_ {
        self.tasks.iter().enumerate().flat_map(|(t, spec)| {
            (0..spec.option_count()).map(move |o| {
                (
                    TaskKey {
                        task: TaskId(t as u8),
                        option: o as u8,
                    },
                    spec.cost(o),
                )
            })
        })
    }

    /// Total number of degradation options across all tasks (fixed tasks
    /// count 1) — the `num_degradation_options` of the paper's overhead
    /// model.
    pub fn total_options(&self) -> usize {
        self.tasks.iter().map(TaskSpec::option_count).sum()
    }
}

/// Errors from building an [`AppSpec`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SpecError {
    /// More than [`MAX_TASKS`] tasks.
    TooManyTasks,
    /// A degradable task with zero or more than [`MAX_OPTIONS`] options.
    BadOptionCount {
        /// The offending task's name.
        task: String,
    },
    /// A task cost had a non-positive latency or power.
    InvalidCost {
        /// The offending task's name.
        task: String,
    },
    /// A job referenced a task id not in the spec.
    UnknownTask {
        /// The offending job's name.
        job: String,
    },
    /// A job contained more than one degradable task (the paper requires
    /// exactly one degradable task to own IBO avoidance for the job).
    MultipleDegradable {
        /// The offending job's name.
        job: String,
    },
    /// A job had no tasks.
    EmptyJob {
        /// The offending job's name.
        job: String,
    },
    /// Two tasks or two jobs shared a name.
    DuplicateName {
        /// The duplicated name.
        name: String,
    },
    /// Two options of one degradable task shared a name, so the
    /// quality levels are indistinguishable in spans and telemetry.
    DuplicateOption {
        /// The offending task's name.
        task: String,
        /// The duplicated option name.
        option: String,
    },
    /// The spec had no jobs.
    NoJobs,
    /// A runtime configuration field was invalid (zero estimator
    /// window, non-positive capture rate, a PID config the controller
    /// rejects, …).
    InvalidConfig {
        /// Dotted path of the offending field (e.g. `pid.tau`).
        field: &'static str,
    },
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::TooManyTasks => write!(f, "at most {MAX_TASKS} tasks are supported"),
            SpecError::BadOptionCount { task } => {
                write!(
                    f,
                    "task `{task}` needs between 1 and {MAX_OPTIONS} degradation options"
                )
            }
            SpecError::InvalidCost { task } => {
                write!(f, "task `{task}` has a non-positive or non-finite cost")
            }
            SpecError::UnknownTask { job } => write!(f, "job `{job}` references an unknown task"),
            SpecError::MultipleDegradable { job } => {
                write!(f, "job `{job}` has more than one degradable task")
            }
            SpecError::EmptyJob { job } => write!(f, "job `{job}` has no tasks"),
            SpecError::DuplicateName { name } => write!(f, "duplicate name `{name}`"),
            SpecError::DuplicateOption { task, option } => {
                write!(f, "task `{task}` has two options named `{option}`")
            }
            SpecError::NoJobs => write!(f, "application has no jobs"),
            SpecError::InvalidConfig { field } => {
                write!(f, "invalid runtime configuration field `{field}`")
            }
        }
    }
}

#[cfg(feature = "std")]
impl std::error::Error for SpecError {}

/// Builder for [`AppSpec`] (see the crate-level quickstart).
#[derive(Debug, Default)]
pub struct AppSpecBuilder {
    tasks: Vec<TaskSpec>,
    jobs: Vec<JobSpec>,
}

impl AppSpecBuilder {
    /// Starts an empty spec.
    pub fn new() -> AppSpecBuilder {
        AppSpecBuilder::default()
    }

    /// Adds a non-degradable task.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError`] if the task limit is exceeded, the name is a
    /// duplicate, or the cost is invalid.
    pub fn fixed_task(&mut self, name: &str, cost: TaskCost) -> Result<TaskId, SpecError> {
        validate_cost(name, &cost)?;
        self.push_task(TaskSpec {
            name: name.to_owned(),
            kind: TaskKind::Fixed(cost),
        })
    }

    /// Starts a degradable task; add quality-ordered options and call
    /// [`DegradableTaskBuilder::finish`].
    pub fn degradable_task<'a>(&'a mut self, name: &str) -> DegradableTaskBuilder<'a> {
        DegradableTaskBuilder {
            spec: self,
            name: name.to_owned(),
            options: Vec::new(),
        }
    }

    /// Adds a job over previously created tasks.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError`] if the job is empty, references unknown
    /// tasks, has more than one degradable task, or duplicates a name.
    pub fn job(&mut self, name: &str, tasks: Vec<TaskId>) -> Result<JobId, SpecError> {
        if tasks.is_empty() {
            return Err(SpecError::EmptyJob {
                job: name.to_owned(),
            });
        }
        if self.jobs.iter().any(|j| j.name == name) {
            return Err(SpecError::DuplicateName {
                name: name.to_owned(),
            });
        }
        let mut degradable = None;
        for (i, id) in tasks.iter().enumerate() {
            let spec = self
                .tasks
                .get(id.index())
                .ok_or_else(|| SpecError::UnknownTask {
                    job: name.to_owned(),
                })?;
            if spec.is_degradable() {
                if degradable.is_some() {
                    return Err(SpecError::MultipleDegradable {
                        job: name.to_owned(),
                    });
                }
                degradable = Some(i);
            }
        }
        // Bounded by the MAX_TASKS check above, so the cast is exact.
        #[allow(clippy::cast_possible_truncation)]
        let id = JobId(self.jobs.len() as u8);
        self.jobs.push(JobSpec {
            name: name.to_owned(),
            tasks,
            degradable,
        });
        Ok(id)
    }

    /// Validates and produces the final [`AppSpec`].
    ///
    /// # Errors
    ///
    /// Returns [`SpecError::NoJobs`] if no job was added.
    pub fn build(self) -> Result<AppSpec, SpecError> {
        if self.jobs.is_empty() {
            return Err(SpecError::NoJobs);
        }
        Ok(AppSpec {
            tasks: self.tasks,
            jobs: self.jobs,
        })
    }

    fn push_task(&mut self, spec: TaskSpec) -> Result<TaskId, SpecError> {
        if self.tasks.len() >= MAX_TASKS {
            return Err(SpecError::TooManyTasks);
        }
        if self.tasks.iter().any(|t| t.name == spec.name) {
            return Err(SpecError::DuplicateName { name: spec.name });
        }
        // Bounded by the MAX_TASKS check above, so the cast is exact.
        #[allow(clippy::cast_possible_truncation)]
        let id = TaskId(self.tasks.len() as u8);
        self.tasks.push(spec);
        Ok(id)
    }
}

/// In-progress degradable task; created by
/// [`AppSpecBuilder::degradable_task`].
#[derive(Debug)]
pub struct DegradableTaskBuilder<'a> {
    spec: &'a mut AppSpecBuilder,
    name: String,
    options: Vec<DegradationOption>,
}

impl DegradableTaskBuilder<'_> {
    /// Appends the next-lower-quality option. The first option added is
    /// the highest quality; the paper requires the programmer to provide
    /// this quality ordering (§5.2).
    pub fn option(mut self, name: &str, cost: TaskCost) -> Self {
        self.options.push(DegradationOption {
            name: name.to_owned(),
            cost,
        });
        self
    }

    /// Validates and registers the task.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError`] if there are 0 or more than [`MAX_OPTIONS`]
    /// options, a cost is invalid, or limits/names conflict.
    pub fn finish(self) -> Result<TaskId, SpecError> {
        if self.options.is_empty() || self.options.len() > MAX_OPTIONS {
            return Err(SpecError::BadOptionCount { task: self.name });
        }
        for (i, opt) in self.options.iter().enumerate() {
            validate_cost(&self.name, &opt.cost)?;
            if self.options[..i].iter().any(|prev| prev.name == opt.name) {
                return Err(SpecError::DuplicateOption {
                    task: self.name.clone(),
                    option: opt.name.clone(),
                });
            }
        }
        self.spec.push_task(TaskSpec {
            name: self.name,
            kind: TaskKind::Degradable(self.options),
        })
    }
}

fn validate_cost(task: &str, cost: &TaskCost) -> Result<(), SpecError> {
    let t = cost.t_exe.value();
    let p = cost.p_exe.value();
    if !(t.is_finite() && t > 0.0 && p.is_finite() && p > 0.0) {
        return Err(SpecError::InvalidCost {
            task: task.to_owned(),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cost(t: f64, p: f64) -> TaskCost {
        TaskCost::new(Seconds(t), Watts(p))
    }

    fn two_job_spec() -> AppSpec {
        let mut b = AppSpecBuilder::new();
        let ml = b
            .degradable_task("ml")
            .option("hi", cost(3.0, 0.020))
            .option("lo", cost(0.3, 0.015))
            .finish()
            .unwrap();
        let compress = b.fixed_task("compress", cost(0.2, 0.015)).unwrap();
        let radio = b
            .degradable_task("radio")
            .option("full", cost(2.5, 0.4))
            .option("byte", cost(0.05, 0.4))
            .finish()
            .unwrap();
        b.job("process", vec![ml, compress]).unwrap();
        b.job("report", vec![radio]).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn builds_valid_spec() {
        let spec = two_job_spec();
        assert_eq!(spec.tasks().len(), 3);
        assert_eq!(spec.jobs().len(), 2);
        assert_eq!(spec.total_options(), 2 + 1 + 2);
        assert_eq!(spec.job(JobId(0)).degradable_task(), Some(TaskId(0)));
        assert_eq!(spec.job(JobId(1)).degradable_task(), Some(TaskId(2)));
    }

    #[test]
    fn profile_entries_cover_all_options() {
        let spec = two_job_spec();
        let entries: Vec<_> = spec.profile_entries().collect();
        assert_eq!(entries.len(), 5);
        assert_eq!(
            entries[0].0,
            TaskKey {
                task: TaskId(0),
                option: 0
            }
        );
        assert_eq!(
            entries[1].0,
            TaskKey {
                task: TaskId(0),
                option: 1
            }
        );
        assert_eq!(entries[2].0, TaskKey::best(TaskId(1)));
    }

    #[test]
    fn task_cost_energy() {
        let c = cost(3.0, 0.020);
        assert!((c.energy().value() - 0.060).abs() < 1e-12);
    }

    #[test]
    fn rejects_empty_job() {
        let mut b = AppSpecBuilder::new();
        assert_eq!(
            b.job("j", vec![]),
            Err(SpecError::EmptyJob { job: "j".into() })
        );
    }

    #[test]
    fn rejects_two_degradable_tasks_in_one_job() {
        let mut b = AppSpecBuilder::new();
        let d1 = b
            .degradable_task("d1")
            .option("a", cost(1.0, 0.01))
            .finish()
            .unwrap();
        let d2 = b
            .degradable_task("d2")
            .option("a", cost(1.0, 0.01))
            .finish()
            .unwrap();
        assert_eq!(
            b.job("j", vec![d1, d2]),
            Err(SpecError::MultipleDegradable { job: "j".into() })
        );
    }

    #[test]
    fn rejects_unknown_task() {
        let mut b = AppSpecBuilder::new();
        assert_eq!(
            b.job("j", vec![TaskId(7)]),
            Err(SpecError::UnknownTask { job: "j".into() })
        );
    }

    #[test]
    fn rejects_duplicate_names() {
        let mut b = AppSpecBuilder::new();
        b.fixed_task("t", cost(1.0, 0.01)).unwrap();
        assert_eq!(
            b.fixed_task("t", cost(1.0, 0.01)),
            Err(SpecError::DuplicateName { name: "t".into() })
        );
        let t2 = b.fixed_task("t2", cost(1.0, 0.01)).unwrap();
        b.job("j", vec![t2]).unwrap();
        assert_eq!(
            b.job("j", vec![t2]),
            Err(SpecError::DuplicateName { name: "j".into() })
        );
    }

    #[test]
    fn rejects_bad_costs() {
        let mut b = AppSpecBuilder::new();
        assert!(matches!(
            b.fixed_task("z", cost(0.0, 0.01)),
            Err(SpecError::InvalidCost { .. })
        ));
        assert!(matches!(
            b.fixed_task("n", cost(1.0, f64::NAN)),
            Err(SpecError::InvalidCost { .. })
        ));
        assert!(matches!(
            b.degradable_task("d")
                .option("o", cost(-1.0, 0.01))
                .finish(),
            Err(SpecError::InvalidCost { .. })
        ));
    }

    #[test]
    fn rejects_duplicate_option_names() {
        let mut b = AppSpecBuilder::new();
        assert_eq!(
            b.degradable_task("d")
                .option("same", cost(1.0, 0.01))
                .option("same", cost(0.5, 0.01))
                .finish(),
            Err(SpecError::DuplicateOption {
                task: "d".into(),
                option: "same".into(),
            })
        );
        // Identical costs under distinct names stay legal (coarse
        // profiling can collide); qz-check lints them as QZ022.
        assert!(b
            .degradable_task("d2")
            .option("a", cost(1.0, 0.01))
            .option("b", cost(1.0, 0.01))
            .finish()
            .is_ok());
    }

    #[test]
    fn rejects_option_count_extremes() {
        let mut b = AppSpecBuilder::new();
        assert_eq!(
            b.degradable_task("d").finish(),
            Err(SpecError::BadOptionCount { task: "d".into() })
        );
        let mut tb = b.degradable_task("d");
        for i in 0..5 {
            tb = tb.option(&format!("o{i}"), cost(1.0, 0.01));
        }
        assert_eq!(
            tb.finish(),
            Err(SpecError::BadOptionCount { task: "d".into() })
        );
    }

    #[test]
    fn rejects_too_many_tasks() {
        let mut b = AppSpecBuilder::new();
        for i in 0..MAX_TASKS {
            b.fixed_task(&format!("t{i}"), cost(1.0, 0.01)).unwrap();
        }
        assert_eq!(
            b.fixed_task("one-more", cost(1.0, 0.01)),
            Err(SpecError::TooManyTasks)
        );
    }

    #[test]
    fn rejects_jobless_spec() {
        assert_eq!(AppSpecBuilder::new().build(), Err(SpecError::NoJobs));
    }

    #[test]
    fn fixed_task_option_access() {
        let spec = two_job_spec();
        let t = spec.task(TaskId(1));
        assert!(!t.is_degradable());
        assert_eq!(t.option_count(), 1);
        assert_eq!(t.best_cost(), cost(0.2, 0.015));
    }

    #[test]
    #[should_panic(expected = "only option 0")]
    fn fixed_task_rejects_option_index() {
        let spec = two_job_spec();
        spec.task(TaskId(1)).cost(1);
    }

    #[test]
    fn display_impls() {
        assert_eq!(TaskId(3).to_string(), "task#3");
        assert_eq!(JobId(1).to_string(), "job#1");
        assert!(SpecError::NoJobs.to_string().contains("no jobs"));
        assert!(SpecError::TooManyTasks.to_string().contains("32"));
    }
}
