//! IBO detection and reaction (paper Algorithm 2).
//!
//! Given the scheduled job's expected service time `E[S]`, Quetzal
//! predicts the buffer occupancy at the job's completion with Little's
//! Law: the job occupies the device for `E[S]` seconds, during which
//! `λ · E[S]` new inputs arrive. If that exceeds the buffer's remaining
//! space, an IBO is imminent and the job's degradable task is stepped
//! down the programmer's quality-ordered option list — to the
//! **highest-quality option that avoids the predicted overflow**, or the
//! lowest-`S_e2e` option if none does.
//!
//! The same [`DegradationPolicy`] interface hosts the baseline reaction
//! policies of §6.1 (never/always degrade, buffer-fill thresholds,
//! input-power thresholds), which live in the `qz-baselines` crate.

use core::fmt;
use qz_types::{Seconds, Watts};

/// Inputs to a degradation decision for the scheduled job.
#[derive(Debug, Clone)]
pub struct DegradationContext<'a> {
    /// Estimated input-arrival rate, inputs/second.
    pub lambda: f64,
    /// Inputs currently stored in the buffer.
    pub occupancy: usize,
    /// Buffer capacity in inputs.
    pub capacity: usize,
    /// The scheduled job's `E[S]` at its highest quality, including any
    /// PID correction.
    pub expected_service: Seconds,
    /// Sum of the probability-weighted `S_e2e` of the job's
    /// *non-degradable* tasks (plus PID correction).
    pub non_degradable_service: Seconds,
    /// Probability-weighted `S_e2e` of the degradable task at each
    /// option, quality-ordered (index 0 = highest). Empty when the job
    /// has no degradable task.
    pub option_services: &'a [Seconds],
    /// Measured input power (used by power-threshold baselines).
    pub p_in: Watts,
}

impl DegradationContext<'_> {
    /// Remaining buffer space, in inputs (zero when already full).
    pub fn slack(&self) -> f64 {
        self.capacity.saturating_sub(self.occupancy) as f64
    }

    /// Current buffer fill fraction in `[0, 1]`.
    pub fn fill_fraction(&self) -> f64 {
        if self.capacity == 0 {
            1.0
        } else {
            (self.occupancy as f64 / self.capacity as f64).min(1.0)
        }
    }

    /// Little's-Law overflow test (Eq. 2) for a hypothetical job `E[S]`:
    /// `true` if `λ · E[S] ≥ capacity − occupancy`.
    pub fn predicts_overflow(&self, expected_service: Seconds) -> bool {
        self.lambda * expected_service.value() >= self.slack()
    }
}

/// The outcome of a degradation decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IboDecision {
    /// Selected degradation option (0 = highest quality).
    pub option: usize,
    /// Whether an IBO was predicted for the job at its highest quality.
    pub ibo_predicted: bool,
    /// Whether the selected option is predicted to still overflow (no
    /// option was sufficient; the lowest-`S_e2e` option was chosen to
    /// minimize `E[N]`).
    pub unavoidable: bool,
}

impl IboDecision {
    /// A no-degradation decision with no predicted overflow.
    pub const NO_ACTION: IboDecision = IboDecision {
        option: 0,
        ibo_predicted: false,
        unavoidable: false,
    };
}

/// Chooses a degradation option for the scheduled job.
///
/// `Send` because `qz-fleet` moves whole runtimes across worker
/// threads between epochs.
pub trait DegradationPolicy: fmt::Debug + Send {
    /// Decides which option the job's degradable task should run at.
    ///
    /// When `ctx.option_services` is empty (no degradable task), the
    /// returned option must be 0.
    fn select_option(&mut self, ctx: &DegradationContext<'_>) -> IboDecision;
}

/// Quetzal's IBO-detection and reaction engine (Algorithm 2).
#[derive(Debug, Clone, Copy, Default)]
pub struct IboEngine;

impl IboEngine {
    /// Creates the engine.
    pub fn new() -> IboEngine {
        IboEngine
    }
}

impl DegradationPolicy for IboEngine {
    fn select_option(&mut self, ctx: &DegradationContext<'_>) -> IboDecision {
        // IBO-detection: does the job at its scheduled (highest) quality
        // push expected occupancy past the buffer limit?
        if !ctx.predicts_overflow(ctx.expected_service) {
            return IboDecision::NO_ACTION;
        }
        if ctx.option_services.is_empty() {
            // Nothing to degrade; report the predicted overflow.
            return IboDecision {
                option: 0,
                ibo_predicted: true,
                unavoidable: true,
            };
        }
        // IBO-reaction: walk the quality-ordered options, take the first
        // (highest-quality) one that avoids the predicted overflow.
        for (i, &svc) in ctx.option_services.iter().enumerate() {
            let es = ctx.non_degradable_service + svc;
            if !ctx.predicts_overflow(es) {
                return IboDecision {
                    option: i,
                    ibo_predicted: true,
                    unavoidable: false,
                };
            }
        }
        // No option avoids it: minimize E[N] with the lowest-S_e2e option.
        let option = ctx
            .option_services
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| a.total_cmp(b))
            .map(|(i, _)| i)
            .unwrap_or(0);
        IboDecision {
            option,
            ibo_predicted: true,
            unavoidable: true,
        }
    }
}

#[cfg(test)]
// Many assertions here pin values that are copied or computed exactly
// (literals, dyadic fractions, pass-through accessors); strict float
// comparison is the point.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn ctx<'a>(
        lambda: f64,
        occupancy: usize,
        capacity: usize,
        non_deg: f64,
        options: &'a [Seconds],
    ) -> DegradationContext<'a> {
        let expected = Seconds(non_deg) + options.first().copied().unwrap_or(Seconds::ZERO);
        DegradationContext {
            lambda,
            occupancy,
            capacity,
            expected_service: expected,
            non_degradable_service: Seconds(non_deg),
            option_services: options,
            p_in: Watts(0.01),
        }
    }

    #[test]
    fn no_overflow_no_degradation() {
        // λ=0.5/s, E[S]=4s → 2 arrivals; slack = 8 → safe.
        let options = [Seconds(3.0), Seconds(0.5)];
        let d = IboEngine::new().select_option(&ctx(0.5, 2, 10, 1.0, &options));
        assert_eq!(d, IboDecision::NO_ACTION);
    }

    #[test]
    fn overflow_picks_highest_quality_that_fits() {
        // λ=1/s, slack=3. Option 0: E[S]=1+3=4 → 4 ≥ 3 overflow.
        // Option 1: E[S]=1+1.5=2.5 → 2.5 < 3 fits.
        let options = [Seconds(3.0), Seconds(1.5), Seconds(0.2)];
        let d = IboEngine::new().select_option(&ctx(1.0, 7, 10, 1.0, &options));
        assert_eq!(d.option, 1, "should not over-degrade to option 2");
        assert!(d.ibo_predicted);
        assert!(!d.unavoidable);
    }

    #[test]
    fn unavoidable_overflow_minimizes_service() {
        // slack = 1, λ=2/s: even the cheapest option (0.8s → 1.6 arrivals)
        // overflows. Choose the minimum-S_e2e option.
        let options = [Seconds(5.0), Seconds(2.0), Seconds(0.8)];
        let d = IboEngine::new().select_option(&ctx(2.0, 9, 10, 0.5, &options));
        assert_eq!(d.option, 2);
        assert!(d.ibo_predicted);
        assert!(d.unavoidable);
    }

    #[test]
    fn option_list_order_is_quality_not_cost() {
        // A mis-ordered list (cheaper option earlier) still picks the
        // first fitting entry: quality order is the programmer's contract.
        let options = [Seconds(0.5), Seconds(3.0)];
        let d = IboEngine::new().select_option(&ctx(1.0, 8, 10, 0.5, &options));
        assert_eq!(d.option, 0);
    }

    #[test]
    fn full_buffer_always_predicts_overflow() {
        let options = [Seconds(1.0), Seconds(0.1)];
        let d = IboEngine::new().select_option(&ctx(0.0, 10, 10, 0.1, &options));
        assert!(d.ibo_predicted);
        // λ=0 means no option can make λ·E[S] < 0; unavoidable.
        assert!(d.unavoidable);
    }

    #[test]
    fn zero_lambda_with_slack_never_overflows() {
        let options = [Seconds(1000.0)];
        let d = IboEngine::new().select_option(&ctx(0.0, 5, 10, 100.0, &options));
        assert_eq!(d, IboDecision::NO_ACTION);
    }

    #[test]
    fn job_without_degradable_task_reports_overflow() {
        let d = IboEngine::new().select_option(&ctx(5.0, 9, 10, 4.0, &[]));
        assert_eq!(d.option, 0);
        assert!(d.ibo_predicted);
        assert!(d.unavoidable);
    }

    #[test]
    fn context_helpers() {
        let options = [Seconds(1.0)];
        let c = ctx(1.0, 3, 10, 0.0, &options);
        assert_eq!(c.slack(), 7.0);
        assert!((c.fill_fraction() - 0.3).abs() < 1e-12);
        assert!(c.predicts_overflow(Seconds(7.0)));
        assert!(!c.predicts_overflow(Seconds(6.9)));
        let full = ctx(1.0, 12, 10, 0.0, &options);
        assert_eq!(full.slack(), 0.0);
        assert_eq!(full.fill_fraction(), 1.0);
        let degenerate = DegradationContext {
            capacity: 0,
            ..ctx(1.0, 0, 0, 0.0, &options)
        };
        assert_eq!(degenerate.fill_fraction(), 1.0);
    }

    proptest! {
        #[test]
        fn chosen_option_is_first_that_fits_or_cheapest(
            lambda in 0.0f64..3.0,
            occupancy in 0usize..12,
            opts in proptest::collection::vec(0.01f64..20.0, 1..4),
            non_deg in 0.0f64..5.0,
        ) {
            let capacity = 10usize;
            let options: Vec<Seconds> = opts.iter().map(|&s| Seconds(s)).collect();
            let c = ctx(lambda, occupancy, capacity, non_deg, &options);
            let d = IboEngine::new().select_option(&c);

            if !c.predicts_overflow(c.expected_service) {
                prop_assert_eq!(d, IboDecision::NO_ACTION);
            } else if !d.unavoidable {
                // Every higher-quality option must overflow...
                for &svc in options.iter().take(d.option) {
                    prop_assert!(c.predicts_overflow(Seconds(non_deg) + svc));
                }
                // ...and the chosen one must not.
                prop_assert!(!c.predicts_overflow(Seconds(non_deg) + options[d.option]));
            } else {
                // Unavoidable: chosen option has the minimum service.
                let min = options.iter().cloned().fold(Seconds(f64::INFINITY), Seconds::min);
                prop_assert_eq!(options[d.option], min);
            }
        }
    }
}
