//! Job scheduling policies (paper Algorithm 1 and the Fig. 12 baselines).
//!
//! The centerpiece is [`EnergyAwareSjf`]: schedule the job with the
//! smallest expected service time `E[S]`, where each task's `S_e2e` is
//! scaled to the *current* input power and weighted by its tracked
//! execution probability. SJF minimizes mean wait time for the other
//! buffered inputs, relieving pressure on the input buffer.
//!
//! [`Fcfs`] and [`Lcfs`] are the comparison policies of §7.3; they select
//! by input age but still report the chosen job's `E[S]` so the IBO
//! engine can run on top of any policy (as in the paper's Fig. 12 study,
//! where every scheduler is paired with the IBO engine).

use crate::model::{AppSpec, JobId, TaskKey};
use crate::service::ServiceEstimator;
use crate::trackers::ExecutionTracker;
use core::fmt;
use qz_types::{Seconds, Watts};

/// A runnable job: it has at least one queued input.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JobCandidate {
    /// Which job.
    pub job: JobId,
    /// Age of the oldest input waiting in this job's queue — the SJF
    /// tie-break prefers older inputs, FCFS/LCFS order on it directly.
    pub oldest_input_age: Seconds,
}

/// Everything a policy needs to evaluate candidates.
pub struct SchedulerInputs<'a> {
    /// The application specification.
    pub spec: &'a AppSpec,
    /// Per-task execution-probability tracker.
    pub exec: &'a ExecutionTracker,
    /// Service-time estimator (energy-aware, hardware-assisted, or the
    /// averaging baseline).
    pub estimator: &'a dyn ServiceEstimator,
    /// Predicted input power for the scheduling horizon.
    pub p_in: Watts,
    /// Each task's *current* degradation option (what the IBO engine
    /// last selected), indexed by task. Algorithm 1 evaluates jobs as
    /// they are currently configured to run; the IBO engine then
    /// re-derives the best allowed quality for the selected job.
    pub current_options: &'a [u8],
}

impl fmt::Debug for SchedulerInputs<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SchedulerInputs")
            .field("p_in", &self.p_in)
            .finish_non_exhaustive()
    }
}

/// A policy's choice.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Selection {
    /// Index into the candidate slice.
    pub index: usize,
    /// The chosen job's expected service time `E[S]` at the current
    /// input power (highest-quality configuration, no PID correction).
    pub expected_service: Seconds,
}

/// A job-selection policy.
///
/// `Send` because `qz-fleet` moves whole runtimes across worker
/// threads between epochs; implementations hold plain owned state.
pub trait SchedulingPolicy: fmt::Debug + Send {
    /// Picks one of `candidates`, or `None` if the slice is empty.
    fn select(
        &mut self,
        inputs: &SchedulerInputs<'_>,
        candidates: &[JobCandidate],
    ) -> Option<Selection>;
}

/// Computes a job's expected service time (the `E[S]` loop of
/// Algorithm 1): the sum over its tasks of
/// `execution_probability(task) × S_e2e(task, P_in)`, using each task's
/// highest-quality configuration.
pub fn expected_service(inputs: &SchedulerInputs<'_>, job: JobId) -> Seconds {
    let spec = inputs.spec.job(job);
    spec.tasks
        .iter()
        .map(|&task| {
            let prob = inputs.exec.probability(task);
            let option = inputs
                .current_options
                .get(task.index())
                .copied()
                .unwrap_or(0)
                .min({
                    // option_count() <= MAX_OPTIONS (4), so the cast is exact.
                    #[allow(clippy::cast_possible_truncation)]
                    let last = (inputs.spec.task(task).option_count() - 1) as u8;
                    last
                });
            let cost = inputs.spec.task(task).cost(option as usize);
            let key = TaskKey { task, option };
            inputs.estimator.predict(key, cost, inputs.p_in) * prob
        })
        .sum()
}

/// Energy-aware Shortest-Job-First (Algorithm 1).
///
/// Note: the paper's listing initializes `min_E ← 0`, which as printed
/// would never select any job; we implement the evident intent
/// (`min_E ← ∞`). Ties on `E[S]` go to the job with the older input.
#[derive(Debug, Clone, Copy, Default)]
pub struct EnergyAwareSjf;

impl EnergyAwareSjf {
    /// Creates the policy.
    pub fn new() -> EnergyAwareSjf {
        EnergyAwareSjf
    }
}

impl SchedulingPolicy for EnergyAwareSjf {
    fn select(
        &mut self,
        inputs: &SchedulerInputs<'_>,
        candidates: &[JobCandidate],
    ) -> Option<Selection> {
        let mut best: Option<(usize, Seconds, Seconds)> = None; // (idx, E[S], age)
        for (i, cand) in candidates.iter().enumerate() {
            let es = expected_service(inputs, cand.job);
            let better = match &best {
                None => true,
                Some((_, best_es, best_age)) => match es.total_cmp(best_es) {
                    core::cmp::Ordering::Less => true,
                    core::cmp::Ordering::Equal => cand.oldest_input_age > *best_age,
                    core::cmp::Ordering::Greater => false,
                },
            };
            if better {
                best = Some((i, es, cand.oldest_input_age));
            }
        }
        best.map(|(index, expected_service, _)| Selection {
            index,
            expected_service,
        })
    }
}

/// First-Come-First-Served: always processes the job holding the oldest
/// input.
#[derive(Debug, Clone, Copy, Default)]
pub struct Fcfs;

impl Fcfs {
    /// Creates the policy.
    pub fn new() -> Fcfs {
        Fcfs
    }
}

impl SchedulingPolicy for Fcfs {
    fn select(
        &mut self,
        inputs: &SchedulerInputs<'_>,
        candidates: &[JobCandidate],
    ) -> Option<Selection> {
        let index = candidates
            .iter()
            .enumerate()
            .max_by(|(_, a), (_, b)| a.oldest_input_age.total_cmp(&b.oldest_input_age))?
            .0;
        Some(Selection {
            index,
            expected_service: expected_service(inputs, candidates[index].job),
        })
    }
}

/// Last-Come-First-Served: always processes the job holding the newest
/// input.
#[derive(Debug, Clone, Copy, Default)]
pub struct Lcfs;

impl Lcfs {
    /// Creates the policy.
    pub fn new() -> Lcfs {
        Lcfs
    }
}

impl SchedulingPolicy for Lcfs {
    fn select(
        &mut self,
        inputs: &SchedulerInputs<'_>,
        candidates: &[JobCandidate],
    ) -> Option<Selection> {
        let index = candidates
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| a.oldest_input_age.total_cmp(&b.oldest_input_age))?
            .0;
        Some(Selection {
            index,
            expected_service: expected_service(inputs, candidates[index].job),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{AppSpecBuilder, TaskCost, TaskId};
    use crate::service::EnergyAwareEstimator;
    use qz_types::Watts;

    /// Two jobs mirroring the paper's motivating schedule tension:
    /// ML inference (low power, 3 s) vs radio (high power, 0.8 s).
    fn spec() -> (AppSpec, JobId, JobId) {
        let mut b = AppSpecBuilder::new();
        let ml = b
            .fixed_task("ml", TaskCost::new(Seconds(3.0), Watts(0.020)))
            .unwrap();
        let radio = b
            .fixed_task("radio", TaskCost::new(Seconds(0.8), Watts(0.400)))
            .unwrap();
        let j_ml = b.job("process", vec![ml]).unwrap();
        let j_radio = b.job("report", vec![radio]).unwrap();
        (b.build().unwrap(), j_ml, j_radio)
    }

    fn candidates(j1: JobId, j2: JobId) -> Vec<JobCandidate> {
        vec![
            JobCandidate {
                job: j1,
                oldest_input_age: Seconds(5.0),
            },
            JobCandidate {
                job: j2,
                oldest_input_age: Seconds(2.0),
            },
        ]
    }

    const ALL_BEST: [u8; 8] = [0; 8];

    fn inputs<'a>(
        spec: &'a AppSpec,
        exec: &'a ExecutionTracker,
        est: &'a EnergyAwareEstimator,
        p_in: Watts,
    ) -> SchedulerInputs<'a> {
        SchedulerInputs {
            spec,
            exec,
            estimator: est,
            p_in,
            current_options: &ALL_BEST,
        }
    }

    #[test]
    fn sjf_prefers_radio_at_high_power() {
        // At high power compute time dominates: radio (0.8 s) < ML (3 s).
        let (spec, j_ml, j_radio) = spec();
        let exec = ExecutionTracker::new(&spec, 64);
        let est = EnergyAwareEstimator::new();
        let inp = inputs(&spec, &exec, &est, Watts(1.0));
        let sel = EnergyAwareSjf::new()
            .select(&inp, &candidates(j_ml, j_radio))
            .unwrap();
        assert_eq!(candidates(j_ml, j_radio)[sel.index].job, j_radio);
        assert_eq!(sel.expected_service, Seconds(0.8));
    }

    #[test]
    fn sjf_prefers_ml_at_low_power() {
        // At 5 mW recharge dominates: ML needs 60 mJ → 12 s; radio needs
        // 320 mJ → 64 s. The energy-aware policy flips its choice.
        let (spec, j_ml, j_radio) = spec();
        let exec = ExecutionTracker::new(&spec, 64);
        let est = EnergyAwareEstimator::new();
        let inp = inputs(&spec, &exec, &est, Watts(0.005));
        let sel = EnergyAwareSjf::new()
            .select(&inp, &candidates(j_ml, j_radio))
            .unwrap();
        assert_eq!(candidates(j_ml, j_radio)[sel.index].job, j_ml);
        assert_eq!(sel.expected_service, Seconds(12.0));
    }

    #[test]
    fn sjf_weighs_execution_probability() {
        let mut b = AppSpecBuilder::new();
        let always = b
            .fixed_task("always", TaskCost::new(Seconds(1.0), Watts(0.01)))
            .unwrap();
        let rare = b
            .fixed_task("rare", TaskCost::new(Seconds(10.0), Watts(0.01)))
            .unwrap();
        let job = b.job("j", vec![always, rare]).unwrap();
        let spec = b.build().unwrap();
        let mut exec = ExecutionTracker::new(&spec, 64);
        // rare ran 1 of 10 jobs.
        for i in 0..10 {
            exec.record_job([(always, true), (rare, i == 0)]);
        }
        let est = EnergyAwareEstimator::new();
        let inp = inputs(&spec, &exec, &est, Watts(1.0));
        let es = expected_service(&inp, job);
        assert!((es.value() - (1.0 + 0.1 * 10.0)).abs() < 1e-9, "E[S]={es}");
    }

    #[test]
    fn sjf_tie_breaks_to_older_input() {
        let mut b = AppSpecBuilder::new();
        let t = b
            .fixed_task("t", TaskCost::new(Seconds(1.0), Watts(0.01)))
            .unwrap();
        let j1 = b.job("a", vec![t]).unwrap();
        let j2 = b.job("b", vec![t]).unwrap();
        let spec = b.build().unwrap();
        let exec = ExecutionTracker::new(&spec, 64);
        let est = EnergyAwareEstimator::new();
        let inp = inputs(&spec, &exec, &est, Watts(1.0));
        let cands = vec![
            JobCandidate {
                job: j1,
                oldest_input_age: Seconds(1.0),
            },
            JobCandidate {
                job: j2,
                oldest_input_age: Seconds(9.0),
            },
        ];
        let sel = EnergyAwareSjf::new().select(&inp, &cands).unwrap();
        assert_eq!(sel.index, 1, "same E[S] → older input wins");
    }

    #[test]
    fn fcfs_picks_oldest_lcfs_newest() {
        let (spec, j_ml, j_radio) = spec();
        let exec = ExecutionTracker::new(&spec, 64);
        let est = EnergyAwareEstimator::new();
        let inp = inputs(&spec, &exec, &est, Watts(1.0));
        let cands = candidates(j_ml, j_radio); // ml age 5, radio age 2
        let f = Fcfs::new().select(&inp, &cands).unwrap();
        assert_eq!(cands[f.index].job, j_ml);
        assert_eq!(f.expected_service, Seconds(3.0)); // still reports E[S]
        let l = Lcfs::new().select(&inp, &cands).unwrap();
        assert_eq!(cands[l.index].job, j_radio);
    }

    #[test]
    fn empty_candidates_yield_none() {
        let (spec, ..) = spec();
        let exec = ExecutionTracker::new(&spec, 64);
        let est = EnergyAwareEstimator::new();
        let inp = inputs(&spec, &exec, &est, Watts(1.0));
        assert_eq!(EnergyAwareSjf::new().select(&inp, &[]), None);
        assert_eq!(Fcfs::new().select(&inp, &[]), None);
        assert_eq!(Lcfs::new().select(&inp, &[]), None);
    }

    #[test]
    fn expected_service_uses_current_option() {
        let mut b = AppSpecBuilder::new();
        let d = b
            .degradable_task("d")
            .option("hi", TaskCost::new(Seconds(4.0), Watts(0.01)))
            .option("lo", TaskCost::new(Seconds(1.0), Watts(0.01)))
            .finish()
            .unwrap();
        let job = b.job("j", vec![d]).unwrap();
        let spec = b.build().unwrap();
        let exec = ExecutionTracker::new(&spec, 64);
        let est = EnergyAwareEstimator::new();
        let degraded = [1u8; 8];
        let inp = SchedulerInputs {
            spec: &spec,
            exec: &exec,
            estimator: &est,
            p_in: Watts(1.0),
            current_options: &degraded,
        };
        assert_eq!(expected_service(&inp, job), Seconds(1.0));
    }

    #[test]
    fn expected_service_uses_best_quality() {
        let mut b = AppSpecBuilder::new();
        let d = b
            .degradable_task("d")
            .option("hi", TaskCost::new(Seconds(4.0), Watts(0.01)))
            .option("lo", TaskCost::new(Seconds(1.0), Watts(0.01)))
            .finish()
            .unwrap();
        let job = b.job("j", vec![d]).unwrap();
        let spec = b.build().unwrap();
        let exec = ExecutionTracker::new(&spec, 64);
        let est = EnergyAwareEstimator::new();
        let inp = inputs(&spec, &exec, &est, Watts(1.0));
        assert_eq!(expected_service(&inp, job), Seconds(4.0));
        let _ = TaskId(0); // silence unused import lint paths in some cfgs
    }
}
