//! PID-based prediction-error mitigation (paper §4.3).
//!
//! Quetzal's `E[S]` predictions rest on historical estimates and can be
//! wrong. After each job, the runtime computes the error between the
//! *observed* and *predicted* service time and feeds it to a PID
//! controller; the controller's output is added to future `E[S]`
//! predictions. A job that ran longer than predicted (positive error)
//! inflates future predictions, making degradation more likely; a job
//! that finished early relaxes them.
//!
//! The implementation follows the discrete PID form the paper cites
//! (pms67's C implementation): trapezoidal integrator with anti-windup
//! clamping, band-limited derivative, and clamped output.

/// PID gains and limits.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PidConfig {
    /// Proportional gain (paper Table 1: `5e-6`).
    pub kp: f64,
    /// Integral gain (paper Table 1: `1e-6`).
    pub ki: f64,
    /// Derivative gain (paper Table 1: `1`).
    pub kd: f64,
    /// Derivative low-pass time constant (in update periods).
    pub tau: f64,
    /// Sample period between updates (one scheduler invocation).
    pub sample_time: f64,
    /// Output clamp, `(min, max)`, in seconds of `E[S]` correction.
    pub output_limits: (f64, f64),
}

impl Default for PidConfig {
    /// Gains retuned for this reproduction's synthetic cost scales (the
    /// paper's Table 1 gains — Kp 5e-6, Ki 1e-6, Kd 1 — are tuned to its
    /// hardware's absolute `E[S]` magnitudes; on our substrate their
    /// derivative term dominates and whipsaws the IBO engine, see
    /// EXPERIMENTS.md). The paper does not give the output clamp or
    /// derivative filter the cited pms67 implementation requires; we
    /// clamp to ±2 s so the correction biases `E[S]` without ever
    /// dominating it.
    fn default() -> PidConfig {
        PidConfig {
            kp: 0.01,
            ki: 0.005,
            kd: 0.1,
            tau: 5.0,
            sample_time: 1.0,
            output_limits: (-2.0, 2.0),
        }
    }
}

/// A discrete PID controller.
///
/// # Examples
///
/// ```
/// use quetzal::pid::{Pid, PidConfig};
///
/// let mut pid = Pid::new(PidConfig::default());
/// // A string of under-predictions (observed ran longer) pushes the
/// // correction up.
/// let mut out = 0.0;
/// for _ in 0..10 {
///     out = pid.update(5.0);
/// }
/// assert!(out > 0.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Pid {
    config: PidConfig,
    integrator: f64,
    differentiator: f64,
    prev_error: f64,
    output: f64,
}

impl Pid {
    /// Creates a controller at rest.
    ///
    /// # Panics
    ///
    /// Panics if the config is invalid: non-finite gains, non-positive
    /// `tau`/`sample_time`, or inverted output limits.
    pub fn new(config: PidConfig) -> Pid {
        assert!(
            config.kp.is_finite() && config.ki.is_finite() && config.kd.is_finite(),
            "PID gains must be finite"
        );
        assert!(
            config.tau > 0.0 && config.sample_time > 0.0,
            "tau and sample_time must be positive"
        );
        assert!(
            config.output_limits.0 <= config.output_limits.1,
            "output limits inverted"
        );
        Pid {
            config,
            integrator: 0.0,
            differentiator: 0.0,
            prev_error: 0.0,
            output: 0.0,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &PidConfig {
        &self.config
    }

    /// Feeds one error sample (`observed − predicted`, seconds) and
    /// returns the new correction output (seconds).
    pub fn update(&mut self, error: f64) -> f64 {
        let t = self.config.sample_time;
        let proportional = self.config.kp * error;

        // Trapezoidal integrator.
        self.integrator += 0.5 * self.config.ki * t * (error + self.prev_error);
        // Anti-windup: keep the integrator within what the output clamp
        // leaves room for.
        let (out_min, out_max) = self.config.output_limits;
        let int_max = (out_max - proportional).max(0.0);
        let int_min = (out_min - proportional).min(0.0);
        self.integrator = self.integrator.clamp(int_min, int_max);

        // Band-limited derivative (on error).
        self.differentiator = (2.0 * self.config.kd * (error - self.prev_error)
            + (2.0 * self.config.tau - t) * self.differentiator)
            / (2.0 * self.config.tau + t);

        self.prev_error = error;
        self.output =
            (proportional + self.integrator + self.differentiator).clamp(out_min, out_max);
        self.output
    }

    /// The most recent correction output.
    pub fn output(&self) -> f64 {
        self.output
    }

    /// Resets the controller to rest (keeps the configuration).
    pub fn reset(&mut self) {
        self.integrator = 0.0;
        self.differentiator = 0.0;
        self.prev_error = 0.0;
        self.output = 0.0;
    }

    /// Captures the controller's evolving state for a simulation
    /// snapshot (the configuration is not captured — restore targets are
    /// built from the same config).
    pub fn save_state(&self) -> PidState {
        PidState {
            integrator: self.integrator,
            differentiator: self.differentiator,
            prev_error: self.prev_error,
            output: self.output,
        }
    }

    /// Restores state captured by [`Pid::save_state`] verbatim, so the
    /// resumed controller produces bit-identical outputs.
    pub fn restore_state(&mut self, state: &PidState) {
        self.integrator = state.integrator;
        self.differentiator = state.differentiator;
        self.prev_error = state.prev_error;
        self.output = state.output;
    }
}

/// Evolving state of a [`Pid`] controller, captured by
/// [`Pid::save_state`]. Plain data for exact serialization.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PidState {
    /// Trapezoidal integrator accumulator.
    pub integrator: f64,
    /// Band-limited differentiator state.
    pub differentiator: f64,
    /// Previous error sample.
    pub prev_error: f64,
    /// Most recent clamped output.
    pub output: f64,
}

#[cfg(test)]
// Many assertions here pin values that are copied or computed exactly
// (literals, dyadic fractions, pass-through accessors); strict float
// comparison is the point.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn zero_error_zero_output() {
        let mut pid = Pid::new(PidConfig::default());
        assert_eq!(pid.update(0.0), 0.0);
        assert_eq!(pid.output(), 0.0);
    }

    #[test]
    fn positive_error_positive_output() {
        let mut pid = Pid::new(PidConfig::default());
        let out = pid.update(10.0);
        assert!(out > 0.0, "under-prediction must inflate future E[S]");
    }

    #[test]
    fn negative_error_negative_output() {
        let mut pid = Pid::new(PidConfig::default());
        let out = pid.update(-10.0);
        assert!(out < 0.0, "over-prediction must relax future E[S]");
    }

    #[test]
    fn integrator_accumulates_persistent_error() {
        let mut pid = Pid::new(PidConfig {
            kd: 0.0,
            ..PidConfig::default()
        });
        let first = pid.update(5.0);
        let mut last = first;
        for _ in 0..50 {
            last = pid.update(5.0);
        }
        assert!(last > first, "steady error should wind the integrator up");
    }

    #[test]
    fn output_respects_limits() {
        let cfg = PidConfig {
            output_limits: (-1.0, 1.0),
            kp: 10.0,
            ..PidConfig::default()
        };
        let mut pid = Pid::new(cfg);
        assert_eq!(pid.update(1e9), 1.0);
        assert_eq!(pid.update(-1e9), -1.0);
    }

    #[test]
    fn anti_windup_releases_quickly() {
        let cfg = PidConfig {
            output_limits: (-1.0, 1.0),
            ki: 0.5,
            kd: 0.0,
            ..PidConfig::default()
        };
        let mut pid = Pid::new(cfg);
        for _ in 0..100 {
            pid.update(100.0); // saturate hard
        }
        // A few opposite samples must be able to pull the output back.
        for _ in 0..10 {
            pid.update(-100.0);
        }
        assert!(
            pid.output() < 0.5,
            "integrator wind-up not contained: {}",
            pid.output()
        );
    }

    #[test]
    fn derivative_reacts_to_change() {
        let cfg = PidConfig {
            kp: 0.0,
            ki: 0.0,
            kd: 1.0,
            ..PidConfig::default()
        };
        let mut pid = Pid::new(cfg);
        pid.update(0.0);
        let out = pid.update(10.0); // step change
        assert!(out > 0.0);
        // With constant error the derivative decays back toward zero.
        let mut later = out;
        for _ in 0..50 {
            later = pid.update(10.0);
        }
        assert!(later.abs() < out.abs() / 10.0);
    }

    #[test]
    fn reset_restores_rest() {
        let mut pid = Pid::new(PidConfig::default());
        for _ in 0..10 {
            pid.update(42.0);
        }
        pid.reset();
        assert_eq!(pid.output(), 0.0);
        assert_eq!(pid.update(0.0), 0.0);
    }

    #[test]
    fn state_roundtrip_resumes_bit_exactly() {
        let mut a = Pid::new(PidConfig::default());
        for i in 0..50 {
            a.update(f64::from(i) * 0.37 - 5.0);
        }
        let state = a.save_state();
        let mut b = Pid::new(PidConfig::default());
        b.restore_state(&state);
        assert_eq!(a, b);
        for i in 0..50 {
            let e = -3.0 + f64::from(i) * 0.11;
            assert_eq!(a.update(e), b.update(e));
        }
    }

    #[test]
    #[should_panic(expected = "output limits")]
    fn rejects_inverted_limits() {
        Pid::new(PidConfig {
            output_limits: (1.0, -1.0),
            ..PidConfig::default()
        });
    }

    #[test]
    #[should_panic(expected = "gains must be finite")]
    fn rejects_nan_gain() {
        Pid::new(PidConfig {
            kp: f64::NAN,
            ..PidConfig::default()
        });
    }

    #[test]
    #[should_panic(expected = "tau and sample_time")]
    fn rejects_zero_tau() {
        Pid::new(PidConfig {
            tau: 0.0,
            ..PidConfig::default()
        });
    }

    #[test]
    fn step_input_keeps_the_integrator_inside_the_clamp_window() {
        // Regression for integrator wind-up: a sustained step must leave
        // the integrator clamped to the room the output limits leave
        // (out_max − proportional), not accumulating without bound. A
        // naive trapezoidal integrator would reach 0.5·ki·Δt·2e·n ≈ 25000
        // here; anti-windup caps it at 1.5.
        let cfg = PidConfig {
            ki: 0.5,
            kd: 0.0,
            ..PidConfig::default()
        };
        let mut pid = Pid::new(cfg);
        for _ in 0..1000 {
            pid.update(50.0);
            assert!(
                pid.integrator <= cfg.output_limits.1,
                "integrator wound up to {}",
                pid.integrator
            );
            assert!(pid.integrator >= cfg.output_limits.0);
        }
        assert_eq!(pid.output(), cfg.output_limits.1, "step must saturate");
        assert_eq!(
            pid.integrator,
            cfg.output_limits.1 - cfg.kp * 50.0,
            "integrator must sit exactly at the anti-windup limit"
        );
    }

    #[test]
    fn sign_flip_recovers_within_a_fixed_window() {
        // Regression for the recovery half of anti-windup: after hard
        // positive saturation, a sign-flipped error must drive the output
        // negative within a handful of samples (2 with these gains). An
        // unclamped integrator would need ~1500 samples to unwind.
        let cfg = PidConfig {
            ki: 0.5,
            kd: 0.0,
            ..PidConfig::default()
        };
        let mut pid = Pid::new(cfg);
        for _ in 0..500 {
            pid.update(50.0);
        }
        assert_eq!(pid.output(), cfg.output_limits.1);
        let mut steps = 0;
        while pid.output() > 0.0 {
            pid.update(-50.0);
            steps += 1;
            assert!(
                steps <= 3,
                "sign flip took more than 3 samples to recover (output {})",
                pid.output()
            );
        }
        // And it reaches the opposite rail, not just zero.
        pid.update(-50.0);
        assert_eq!(pid.output(), cfg.output_limits.0);
    }

    proptest! {
        #[test]
        fn output_always_within_limits(errors in proptest::collection::vec(-1e6f64..1e6, 1..100)) {
            let mut pid = Pid::new(PidConfig::default());
            let (lo, hi) = PidConfig::default().output_limits;
            for e in errors {
                let out = pid.update(e);
                prop_assert!(out >= lo && out <= hi);
                prop_assert!(out.is_finite());
            }
        }

        #[test]
        fn integrator_bounded_and_recovery_window_holds_after_any_history(
            errors in proptest::collection::vec(-1e3f64..1e3, 1..200)
        ) {
            // Whatever the drive history, the integrator never exceeds the
            // clamp window plus the proportional headroom, and 20 strong
            // opposite samples always flip the output's sign.
            let cfg = PidConfig { kd: 0.0, ..PidConfig::default() };
            let mut pid = Pid::new(cfg);
            let bound = cfg.output_limits.1 + cfg.kp * 1e3 + 1e-9;
            for e in errors {
                pid.update(e);
                prop_assert!(pid.integrator.abs() <= bound, "integrator {}", pid.integrator);
            }
            let mut out = pid.output();
            for _ in 0..20 {
                out = pid.update(-100.0);
            }
            prop_assert!(out < 0.0, "stuck at {out} after 20 corrective samples");
        }
    }
}
