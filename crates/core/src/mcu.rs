//! The division-free firmware path: Algorithms 1 and 2 in pure integer
//! arithmetic.
//!
//! The paper's hardware module removes the `P_exe / P_in` division from
//! `S_e2e` (Algorithm 3). The *remaining* arithmetic in Algorithms 1–2 is
//! also division-free once the history windows are powers of two:
//!
//! - execution probability × S_e2e:
//!   `(ones(task) · S_e2e) >> log2(task_window)`
//! - Little's Law `λ · E[S]` (with λ = stored fraction × capture rate):
//!   `(ones(arrivals) · E[S]) >> log2(arrival_window)` followed by one
//!   Q16 multiplication by the capture rate.
//!
//! [`McuEngine`] is therefore the complete scheduling + IBO-reaction
//! engine exactly as MSP430-class firmware would run it: ADC codes in,
//! Q16.16 fixed point throughout, shifts and lookups instead of
//! divisions. It is `no_std` and allocation-light (windows only), and
//! the test suite checks its decisions against the floating-point
//! reference runtime.

use crate::model::{AppSpec, JobId};
use crate::window::BitWindow;
use alloc::vec::Vec;
use qz_hw::{se2e_hw, PremultTable};
use qz_types::Q16;

/// A profiled task configuration as firmware stores it: the execution-
/// power diode code and the premultiplied `t_exe` table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct McuTaskProfile {
    /// `V_D2` ADC code recorded at profile time.
    pub vd2: u8,
    /// `t_exe · 2^(b/8)` table in Q16.16 seconds.
    pub table: PremultTable,
}

/// One task inside an [`McuEngine`] job: its per-option profiles (one
/// entry for non-degradable tasks).
#[derive(Debug, Clone)]
struct McuTask {
    options: Vec<McuTaskProfile>,
    exec_window: BitWindow,
}

/// A job: task indices plus the position of its degradable task.
#[derive(Debug, Clone)]
struct McuJob {
    tasks: Vec<usize>,
    degradable: Option<usize>,
}

/// The engine's decision for one scheduling round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct McuDecision {
    /// Index into the runnable-jobs slice passed to
    /// [`McuEngine::schedule`].
    pub candidate: usize,
    /// Degradation option for the job's degradable task.
    pub option: usize,
    /// Whether an overflow was predicted at the job's highest quality.
    pub ibo_predicted: bool,
}

/// Errors from assembling an [`McuEngine`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum McuError {
    /// A window size was not a power of two (the shifts replacing the
    /// divisions require it).
    WindowNotPowerOfTwo,
}

impl core::fmt::Display for McuError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            McuError::WindowNotPowerOfTwo => {
                write!(f, "mcu engine windows must be powers of two")
            }
        }
    }
}

#[cfg(feature = "std")]
impl std::error::Error for McuError {}

/// The integer-only scheduler + IBO engine.
#[derive(Debug, Clone)]
pub struct McuEngine {
    tasks: Vec<McuTask>,
    jobs: Vec<McuJob>,
    arrival_window: BitWindow,
    task_window_log2: u32,
    arrival_window_log2: u32,
    /// Capture rate in Q16 Hz (the one multiplication the paper's cost
    /// model allows per term).
    capture_rate: Q16,
}

impl McuEngine {
    /// Builds the engine from a spec and a profiling pass: `profile`
    /// returns the `V_D2` code and premultiplied table for each
    /// `(task index, option index)`.
    ///
    /// # Errors
    ///
    /// Returns [`McuError::WindowNotPowerOfTwo`] unless both windows are
    /// powers of two (they are in the paper: 64 and 256).
    pub fn new(
        spec: &AppSpec,
        task_window: usize,
        arrival_window: usize,
        capture_rate_hz: f64,
        mut profile: impl FnMut(usize, usize) -> McuTaskProfile,
    ) -> Result<McuEngine, McuError> {
        if !task_window.is_power_of_two() || !arrival_window.is_power_of_two() {
            return Err(McuError::WindowNotPowerOfTwo);
        }
        let tasks = spec
            .tasks()
            .iter()
            .enumerate()
            .map(|(t, task_spec)| McuTask {
                options: (0..task_spec.option_count())
                    .map(|o| profile(t, o))
                    .collect(),
                exec_window: BitWindow::new(task_window),
            })
            .collect();
        let jobs = spec
            .jobs()
            .iter()
            .map(|j| McuJob {
                tasks: j.tasks.iter().map(|t| t.index()).collect(),
                degradable: j.degradable,
            })
            .collect();
        Ok(McuEngine {
            tasks,
            jobs,
            arrival_window: BitWindow::new(arrival_window),
            task_window_log2: task_window.trailing_zeros(),
            arrival_window_log2: arrival_window.trailing_zeros(),
            capture_rate: Q16::from_f64(capture_rate_hz),
        })
    }

    /// Records one periodic capture (stored or not) — the λ window.
    pub fn on_capture(&mut self, stored: bool) {
        self.arrival_window.push(stored);
    }

    /// Records a completed job's per-task execution bits.
    pub fn record_job(&mut self, executed: &[(usize, bool)]) {
        for &(task, ran) in executed {
            self.tasks[task].exec_window.push(ran);
        }
    }

    /// Probability-weighted `S_e2e` for a task at an option, division-free:
    /// `(se2e · ones) >> log2(window)` (empty window ⇒ probability 1).
    fn weighted_se2e(&self, task: usize, option: usize, vd1: u8) -> Q16 {
        let t = &self.tasks[task];
        let profile = &t.options[option.min(t.options.len() - 1)];
        let se2e = se2e_hw(&profile.table, vd1, profile.vd2);
        if t.exec_window.is_empty() {
            return se2e;
        }
        // The window may be partially filled; firmware uses the filled
        // count's next power of two — we shift by the full window only
        // once it is full, matching the paper's steady-state behaviour.
        if t.exec_window.filled() == t.exec_window.capacity() {
            let wide =
                (se2e.to_bits() as i64 * t.exec_window.ones() as i64) >> self.task_window_log2;
            // Clamped to i32 range on this line, so the narrowing is exact.
            #[allow(clippy::cast_possible_truncation)]
            let narrowed = wide.clamp(i64::from(i32::MIN), i64::from(i32::MAX)) as i32;
            Q16::from_bits(narrowed)
        } else {
            // Warm-up: treat probability as 1 (conservative).
            se2e
        }
    }

    /// A job's `E[S]` at its highest quality (Algorithm 1 body).
    fn job_expected_service(&self, job: usize, vd1: u8) -> Q16 {
        let mut es = Q16::ZERO;
        for &task in &self.jobs[job].tasks {
            es = es.saturating_add(self.weighted_se2e(task, 0, vd1));
        }
        es
    }

    /// `λ · E[S]` in Q16 inputs: `(ones(arrivals) · E[S]) >> log2(window)`
    /// then one multiplication by the capture rate.
    fn predicted_arrivals(&self, es: Q16) -> Q16 {
        let ones = if self.arrival_window.is_empty() {
            self.arrival_window.capacity() // cold start: assume all stored
        } else if self.arrival_window.filled() == self.arrival_window.capacity() {
            self.arrival_window.ones()
        } else {
            // Warm-up: scale to the full window conservatively.
            let frac_num = self.arrival_window.ones() * self.arrival_window.capacity();
            frac_num / self.arrival_window.filled().max(1)
        };
        let wide = (es.to_bits() as i64 * ones as i64) >> self.arrival_window_log2;
        // Clamped to i32 range on this line, so the narrowing is exact.
        #[allow(clippy::cast_possible_truncation)]
        let scaled = Q16::from_bits(wide.clamp(i64::from(i32::MIN), i64::from(i32::MAX)) as i32);
        scaled.saturating_mul(self.capture_rate)
    }

    /// One scheduling round: picks the shortest job among `runnable`
    /// (job ids), then walks its degradation options against the buffer
    /// state (Algorithm 2). `vd1` is the input-power diode code sampled
    /// now.
    ///
    /// Returns `None` when `runnable` is empty.
    pub fn schedule(
        &self,
        runnable: &[JobId],
        occupancy: usize,
        capacity: usize,
        vd1: u8,
    ) -> Option<McuDecision> {
        // Algorithm 1: shortest E[S].
        let mut best: Option<(usize, Q16)> = None;
        for (i, job) in runnable.iter().enumerate() {
            let es = self.job_expected_service(job.index(), vd1);
            if best.is_none_or(|(_, b)| es < b) {
                best = Some((i, es));
            }
        }
        let (candidate, best_es) = best?;
        let job = &self.jobs[runnable[candidate].index()];

        // Algorithm 2: Little's-Law check and the option walk.
        // `.min(i16::MAX as usize)` bounds the value, so the cast is exact.
        #[allow(clippy::cast_possible_truncation)]
        let slack = Q16::from_int(capacity.saturating_sub(occupancy).min(i16::MAX as usize) as i16);
        if self.predicted_arrivals(best_es) < slack {
            return Some(McuDecision {
                candidate,
                option: 0,
                ibo_predicted: false,
            });
        }
        let Some(deg_pos) = job.degradable else {
            return Some(McuDecision {
                candidate,
                option: 0,
                ibo_predicted: true,
            });
        };
        let deg_task = job.tasks[deg_pos];
        let mut non_deg = Q16::ZERO;
        for (pos, &task) in job.tasks.iter().enumerate() {
            if pos != deg_pos {
                non_deg = non_deg.saturating_add(self.weighted_se2e(task, 0, vd1));
            }
        }
        let options = self.tasks[deg_task].options.len();
        let mut cheapest = (0usize, Q16::MAX);
        for option in 0..options {
            let svc = self.weighted_se2e(deg_task, option, vd1);
            if svc < cheapest.1 {
                cheapest = (option, svc);
            }
            let es = non_deg.saturating_add(svc);
            if self.predicted_arrivals(es) < slack {
                return Some(McuDecision {
                    candidate,
                    option,
                    ibo_predicted: true,
                });
            }
        }
        Some(McuDecision {
            candidate,
            option: cheapest.0,
            ibo_predicted: true,
        })
    }
}

#[cfg(all(test, feature = "std"))]
mod tests {
    use super::*;
    use crate::model::{AppSpecBuilder, TaskCost};
    use crate::runtime::{BufferView, Quetzal, QuetzalConfig};
    use qz_hw::{premultiply_t_exe, PowerMonitor};
    use qz_types::{Hertz, Seconds, SplitMix64, Watts};

    fn spec() -> AppSpec {
        let mut b = AppSpecBuilder::new();
        let ml = b
            .degradable_task("ml")
            .option("hi", TaskCost::new(Seconds(0.5), Watts(0.005)))
            .option("lo", TaskCost::new(Seconds(0.05), Watts(0.004)))
            .finish()
            .unwrap();
        let annotate = b
            .fixed_task("annotate", TaskCost::new(Seconds(0.01), Watts(0.01)))
            .unwrap();
        let radio = b
            .degradable_task("radio")
            .option("full", TaskCost::new(Seconds(0.4), Watts(0.050)))
            .option("byte", TaskCost::new(Seconds(0.005), Watts(0.090)))
            .finish()
            .unwrap();
        b.job("process", vec![ml, annotate]).unwrap();
        b.job("report", vec![radio]).unwrap();
        b.build().unwrap()
    }

    fn engine(spec: &AppSpec, monitor: &PowerMonitor) -> McuEngine {
        McuEngine::new(spec, 64, 16, 1.0, |t, o| {
            let cost = spec.task(spec.task_id(t).unwrap()).cost(o);
            McuTaskProfile {
                vd2: monitor.sample_power(cost.p_exe),
                table: premultiply_t_exe(cost.t_exe),
            }
        })
        .unwrap()
    }

    #[test]
    fn rejects_non_power_of_two_windows() {
        let s = spec();
        let err = McuEngine::new(&s, 60, 16, 1.0, |_, _| McuTaskProfile {
            vd2: 0,
            table: premultiply_t_exe(Seconds(1.0)),
        });
        assert!(matches!(err, Err(McuError::WindowNotPowerOfTwo)));
    }

    #[test]
    fn no_pressure_keeps_full_quality() {
        let s = spec();
        let monitor = PowerMonitor::default();
        let mut e = engine(&s, &monitor);
        for _ in 0..16 {
            e.on_capture(false); // empty λ window
        }
        let runnable = [s.job_id(0).unwrap(), s.job_id(1).unwrap()];
        let vd1 = monitor.sample_power(Watts(0.030));
        let d = e.schedule(&runnable, 1, 10, vd1).unwrap();
        assert_eq!(d.option, 0);
        assert!(!d.ibo_predicted);
    }

    #[test]
    fn pressure_degrades() {
        let s = spec();
        let monitor = PowerMonitor::default();
        let mut e = engine(&s, &monitor);
        for _ in 0..16 {
            e.on_capture(true); // λ = capture rate
        }
        let runnable = [s.job_id(0).unwrap()];
        let vd1 = monitor.sample_power(Watts(0.0005)); // very dark
        let d = e.schedule(&runnable, 9, 10, vd1).unwrap();
        assert!(d.ibo_predicted);
        assert!(d.option > 0, "must degrade under pressure");
    }

    #[test]
    fn execution_probability_weighting_uses_shifts() {
        let s = spec();
        let monitor = PowerMonitor::default();
        let mut e = engine(&s, &monitor);
        // annotate (task 1) ran for half the jobs → its weighted S_e2e
        // halves once the window fills.
        for i in 0..64 {
            e.record_job(&[(1, i % 2 == 0)]);
        }
        let vd1 = monitor.sample_power(Watts(0.050)); // bright: S=t_exe
        let weighted = e.weighted_se2e(1, 0, vd1).to_f64();
        assert!((weighted - 0.005).abs() < 0.002, "weighted {weighted}");
    }

    /// The headline equivalence claim: over random scenarios the integer
    /// engine and the floating-point reference make the same degradation
    /// call in the vast majority of cases (divergence is confined to
    /// quantization boundaries).
    #[test]
    fn agrees_with_float_reference() {
        let s = spec();
        let monitor = PowerMonitor::default();
        let mut rng = SplitMix64::new(31);
        let mut agree = 0;
        let mut total = 0;

        for _ in 0..400 {
            let stored_frac = rng.next_f64();
            // next_below(11) < 11, so the cast is exact.
            #[allow(clippy::cast_possible_truncation)]
            let occupancy = rng.next_below(11) as usize;
            let p_in = Watts(rng.next_range(0.0005, 0.040));

            // Fresh engines with identical histories.
            let mut mcu = engine(&s, &monitor);
            let mut float_rt = Quetzal::new(
                s.clone(),
                QuetzalConfig {
                    task_window: 64,
                    arrival_window: 16,
                    capture_rate: Hertz(1.0),
                    pid_enabled: false,
                    sticky_options: false,
                    ..QuetzalConfig::default()
                },
            )
            .unwrap();
            for _ in 0..16 {
                let stored = rng.chance(stored_frac);
                mcu.on_capture(stored);
                float_rt.on_capture(stored);
            }

            let runnable = [s.job_id(0).unwrap(), s.job_id(1).unwrap()];
            let vd1 = monitor.sample_power(p_in);
            let m = mcu.schedule(&runnable, occupancy, 10, vd1).unwrap();
            let f = float_rt
                .schedule(
                    &[
                        (runnable[0], Some(Seconds(2.0))),
                        (runnable[1], Some(Seconds(1.0))),
                    ],
                    BufferView {
                        occupancy,
                        capacity: 10,
                    },
                    p_in,
                )
                .unwrap();

            total += 1;
            let f_candidate = if f.job == runnable[0] { 0 } else { 1 };
            if m.candidate == f_candidate && m.option == f.option {
                agree += 1;
            }
        }
        let rate = agree as f64 / total as f64;
        assert!(rate > 0.85, "agreement rate {rate} ({agree}/{total})");
    }

    #[test]
    fn empty_runnable_is_none() {
        let s = spec();
        let monitor = PowerMonitor::default();
        let e = engine(&s, &monitor);
        assert_eq!(e.schedule(&[], 0, 10, 100), None);
    }
}
