//! Input-power prediction (`predictInputPower()` in Algorithm 1).
//!
//! The paper measures instantaneous input power through its hardware
//! circuit and uses the measurement directly as the prediction for the
//! scheduling horizon. That is [`Instantaneous`]. Harvested power is
//! noisy, though, so the runtime also offers [`Ewma`] — an exponentially
//! weighted moving average that smooths jitter at the cost of lagging
//! cloud transitions — selectable through
//! [`QuetzalBuilder::power_predictor`](crate::runtime::QuetzalBuilder::power_predictor).

use alloc::string::String;
use core::fmt;
use qz_types::Watts;

/// Predicts the input power over the scheduling horizon from the
/// measurements taken at each scheduler invocation.
///
/// `Send` because `qz-fleet` moves whole runtimes across worker
/// threads between epochs.
pub trait PowerPredictor: fmt::Debug + Send {
    /// Feeds one measurement and returns the prediction to use now.
    fn predict(&mut self, measured: Watts) -> Watts;

    /// Captures the predictor's evolving state for a simulation
    /// snapshot. Default: [`PredictorState::Stateless`].
    fn save_state(&self) -> PredictorState {
        PredictorState::Stateless
    }

    /// Restores state captured by [`PowerPredictor::save_state`].
    ///
    /// # Errors
    ///
    /// The default implementation accepts only
    /// [`PredictorState::Stateless`]; anything else is a configuration
    /// mismatch.
    fn restore_state(&mut self, state: &PredictorState) -> Result<(), String> {
        match state {
            PredictorState::Stateless => Ok(()),
            PredictorState::Ewma(_) => Err(String::from(
                "snapshot carries EWMA state but the live predictor is stateless",
            )),
        }
    }
}

/// Serializable evolving state of a [`PowerPredictor`], captured by
/// [`PowerPredictor::save_state`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PredictorState {
    /// The predictor is constant after construction
    /// ([`Instantaneous`]).
    Stateless,
    /// [`Ewma`]: the smoothed value, once a sample has been seen.
    Ewma(Option<Watts>),
}

/// Uses each measurement directly (the paper's behaviour).
#[derive(Debug, Clone, Copy, Default)]
pub struct Instantaneous;

impl Instantaneous {
    /// Creates the passthrough predictor.
    pub fn new() -> Instantaneous {
        Instantaneous
    }
}

impl PowerPredictor for Instantaneous {
    fn predict(&mut self, measured: Watts) -> Watts {
        measured
    }
}

/// Exponentially weighted moving average:
/// `p̂ ← α·measured + (1−α)·p̂`.
///
/// # Examples
///
/// ```
/// use quetzal::power::{Ewma, PowerPredictor};
/// use qz_types::Watts;
///
/// let mut p = Ewma::new(0.5);
/// assert_eq!(p.predict(Watts(0.010)), Watts(0.010)); // first sample seeds
/// let second = p.predict(Watts(0.030));
/// assert!((second.value() - 0.020).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Ewma {
    alpha: f64,
    state: Option<Watts>,
}

impl Ewma {
    /// Creates an EWMA with smoothing factor `alpha ∈ (0, 1]` (1.0
    /// degenerates to [`Instantaneous`]).
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is outside `(0, 1]`.
    pub fn new(alpha: f64) -> Ewma {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
        Ewma { alpha, state: None }
    }

    /// The smoothing factor.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }
}

impl PowerPredictor for Ewma {
    fn predict(&mut self, measured: Watts) -> Watts {
        let next = match self.state {
            None => measured,
            Some(prev) => measured * self.alpha + prev * (1.0 - self.alpha),
        };
        self.state = Some(next);
        next
    }

    fn save_state(&self) -> PredictorState {
        PredictorState::Ewma(self.state)
    }

    fn restore_state(&mut self, state: &PredictorState) -> Result<(), String> {
        match state {
            PredictorState::Ewma(smoothed) => {
                self.state = *smoothed;
                Ok(())
            }
            PredictorState::Stateless => {
                Err(String::from("snapshot predictor state does not match Ewma"))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instantaneous_is_identity() {
        let mut p = Instantaneous::new();
        for v in [0.0, 0.01, 0.5] {
            assert_eq!(p.predict(Watts(v)), Watts(v));
        }
    }

    #[test]
    fn ewma_seeds_with_first_sample() {
        let mut p = Ewma::new(0.2);
        assert_eq!(p.predict(Watts(0.04)), Watts(0.04));
    }

    #[test]
    fn ewma_state_roundtrip_resumes_bit_exactly() {
        let mut a = Ewma::new(0.3);
        for v in [0.01, 0.05, 0.02, 0.08] {
            a.predict(Watts(v));
        }
        let state = a.save_state();
        let mut b = Ewma::new(0.3);
        b.restore_state(&state).unwrap();
        for v in [0.04, 0.01, 0.09] {
            assert_eq!(a.predict(Watts(v)), b.predict(Watts(v)));
        }
        // Kind mismatches are rejected both ways.
        assert!(b.restore_state(&PredictorState::Stateless).is_err());
        let mut inst = Instantaneous::new();
        assert!(inst.restore_state(&state).is_err());
        assert!(inst.restore_state(&PredictorState::Stateless).is_ok());
    }

    #[test]
    fn ewma_converges_to_constant_input() {
        let mut p = Ewma::new(0.3);
        p.predict(Watts(0.0));
        let mut last = Watts::ZERO;
        for _ in 0..100 {
            last = p.predict(Watts(0.02));
        }
        assert!((last.value() - 0.02).abs() < 1e-9);
    }

    #[test]
    fn ewma_smooths_spikes() {
        let mut p = Ewma::new(0.1);
        for _ in 0..50 {
            p.predict(Watts(0.010));
        }
        let spiked = p.predict(Watts(0.100)); // one 10x spike
        assert!(
            spiked.value() < 0.020,
            "spike should be damped: {}",
            spiked.value()
        );
    }

    #[test]
    fn alpha_one_degenerates_to_instantaneous() {
        let mut p = Ewma::new(1.0);
        p.predict(Watts(0.01));
        assert_eq!(p.predict(Watts(0.05)), Watts(0.05));
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn rejects_zero_alpha() {
        Ewma::new(0.0);
    }
}
