//! Invariant witnesses over recorded decision traces.
//!
//! A *witness* replays a `qz-obs` event log and machine-checks a
//! property the runtime's algorithms are supposed to guarantee. The
//! fault-injection harness (`qz-fault`) runs them over every faulted
//! trace: an adversary may cost throughput, but it must never make a
//! decision *inconsistent* — the quality-ordered IBO walk must stay
//! well-formed, and degradation must stay monotone in buffer pressure.
//!
//! Witnesses are pure functions of the trace (no runtime state), so
//! they work on logs from any source: the simulator, a firmware port,
//! or a serialized JSONL file read back in.

use alloc::format;
use alloc::string::String;
use alloc::vec::Vec;

use qz_obs::{Event, EventKind};

/// One invariant violation found in a trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WitnessViolation {
    /// Device time of the offending event, milliseconds.
    pub t_ms: u64,
    /// What went wrong, human-readable.
    pub detail: String,
}

/// Checks every `IboDecision` in the trace against the quality-ordered
/// walk contract of [`crate::ibo::IboEngine`] (Algorithm 2):
///
/// - no predicted overflow → the chosen option is the highest quality;
/// - predicted but avoidable → the chosen option is the *first* (highest
///   quality) option that does not predict an overflow;
/// - unavoidable → every option overflows and the chosen one minimizes
///   the expected service time.
///
/// Only meaningful for runtimes built on the `IboEngine` family (the
/// Quetzal presets and the FCFS/LCFS IBO baselines); threshold-style
/// policies pick options by different rules.
pub fn check_ibo_walk(events: &[Event]) -> Vec<WitnessViolation> {
    let mut violations = Vec::new();
    for e in events {
        let EventKind::IboDecision {
            ibo_predicted,
            unavoidable,
            chosen_option,
            options,
            ..
        } = &e.kind
        else {
            continue;
        };
        if options.is_empty() {
            // Non-degradable job: the engine must report option 0.
            if *chosen_option != 0 {
                violations.push(WitnessViolation {
                    t_ms: e.t_ms,
                    detail: format!(
                        "non-degradable job ran at option {chosen_option} (expected 0)"
                    ),
                });
            }
            continue;
        }
        let chosen = match options.iter().find(|o| o.option == *chosen_option) {
            Some(o) => o,
            None => {
                violations.push(WitnessViolation {
                    t_ms: e.t_ms,
                    detail: format!("chosen option {chosen_option} not in the evaluated walk"),
                });
                continue;
            }
        };
        if !*ibo_predicted {
            if *chosen_option != 0 {
                violations.push(WitnessViolation {
                    t_ms: e.t_ms,
                    detail: format!(
                        "no overflow predicted but job degraded to option {chosen_option}"
                    ),
                });
            }
            continue;
        }
        if *unavoidable {
            if let Some(o) = options.iter().find(|o| !o.predicts_overflow) {
                violations.push(WitnessViolation {
                    t_ms: e.t_ms,
                    detail: format!(
                        "decision says unavoidable but option {} does not overflow",
                        o.option
                    ),
                });
            }
            if let Some(o) = options
                .iter()
                .find(|o| o.expected_service_s < chosen.expected_service_s)
            {
                violations.push(WitnessViolation {
                    t_ms: e.t_ms,
                    detail: format!(
                        "unavoidable fallback chose E[S]={:.6}s but option {} offers {:.6}s",
                        chosen.expected_service_s, o.option, o.expected_service_s
                    ),
                });
            }
            continue;
        }
        // Predicted and avoidable: first non-overflowing option wins.
        if chosen.predicts_overflow {
            violations.push(WitnessViolation {
                t_ms: e.t_ms,
                detail: format!(
                    "avoidable overflow but chosen option {chosen_option} still overflows"
                ),
            });
        }
        if let Some(o) = options
            .iter()
            .find(|o| o.option < *chosen_option && !o.predicts_overflow)
        {
            violations.push(WitnessViolation {
                t_ms: e.t_ms,
                detail: format!(
                    "skipped higher-quality option {} that avoided the overflow",
                    o.option
                ),
            });
        }
    }
    violations
}

/// Groups `IboDecision` events whose *inputs other than occupancy* are
/// identical and checks that the chosen degradation option is monotone
/// non-decreasing in buffer occupancy — more pressure must never yield
/// a *less* degraded decision.
///
/// Holds for any policy whose choice depends on the decision inputs
/// only through the overflow predicate (the `IboEngine` family and the
/// fixed/CatNap-style baselines). Policies keyed on quantities outside
/// the event (e.g. instantaneous `P_in` thresholds) should skip it.
pub fn check_pressure_monotone(events: &[Event]) -> Vec<WitnessViolation> {
    // Key: every decision input except occupancy, serialized to bytes
    // with floats by bit pattern — exact equality is the point (same
    // model inputs must mean the same E[S] walk).
    let mut groups: alloc::collections::BTreeMap<Vec<u8>, Vec<(usize, usize, u64)>> =
        alloc::collections::BTreeMap::new();
    for e in events {
        let EventKind::IboDecision {
            job,
            lambda,
            occupancy,
            capacity,
            chosen_option,
            options,
            ..
        } = &e.kind
        else {
            continue;
        };
        let mut key = Vec::new();
        key.extend_from_slice(&job.to_le_bytes());
        key.extend_from_slice(&lambda.to_bits().to_le_bytes());
        key.extend_from_slice(&capacity.to_le_bytes());
        for o in options {
            key.extend_from_slice(&o.option.to_le_bytes());
            key.extend_from_slice(&o.expected_service_s.to_bits().to_le_bytes());
            key.push(u8::from(o.predicts_overflow));
        }
        groups
            .entry(key)
            .or_default()
            .push((*occupancy, *chosen_option, e.t_ms));
    }
    let mut violations = Vec::new();
    for decisions in groups.values_mut() {
        decisions.sort_unstable();
        for pair in decisions.windows(2) {
            let (occ_a, opt_a, _) = pair[0];
            let (occ_b, opt_b, t_ms) = pair[1];
            if occ_b > occ_a && opt_b < opt_a {
                violations.push(WitnessViolation {
                    t_ms,
                    detail: format!(
                        "option dropped {opt_a}→{opt_b} as occupancy rose {occ_a}→{occ_b} \
                         with identical model inputs"
                    ),
                });
            }
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use alloc::vec;
    use qz_obs::event::OptionEval;

    fn decision(
        t_ms: u64,
        occupancy: usize,
        ibo_predicted: bool,
        unavoidable: bool,
        chosen_option: usize,
        options: Vec<OptionEval>,
    ) -> Event {
        Event {
            t_ms,
            kind: EventKind::IboDecision {
                job: 0,
                lambda: 0.5,
                occupancy,
                capacity: 10,
                expected_service_s: 2.0,
                predicted_arrivals: 1.0,
                ibo_predicted,
                unavoidable,
                chosen_option,
                options,
            },
        }
    }

    fn opt(option: usize, es: f64, overflows: bool) -> OptionEval {
        OptionEval {
            option,
            expected_service_s: es,
            predicts_overflow: overflows,
        }
    }

    #[test]
    fn clean_walks_pass() {
        let events = vec![
            decision(1, 2, false, false, 0, vec![opt(0, 2.0, false)]),
            decision(
                2,
                8,
                true,
                false,
                1,
                vec![opt(0, 2.0, true), opt(1, 0.5, false)],
            ),
            decision(
                3,
                9,
                true,
                true,
                1,
                vec![opt(0, 2.0, true), opt(1, 0.5, true)],
            ),
        ];
        assert!(check_ibo_walk(&events).is_empty());
    }

    #[test]
    fn degrading_without_prediction_is_flagged() {
        let events = vec![decision(
            5,
            1,
            false,
            false,
            1,
            vec![opt(0, 2.0, false), opt(1, 0.5, false)],
        )];
        let v = check_ibo_walk(&events);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].t_ms, 5);
    }

    #[test]
    fn skipping_a_viable_option_is_flagged() {
        let events = vec![decision(
            7,
            8,
            true,
            false,
            2,
            vec![opt(0, 2.0, true), opt(1, 1.0, false), opt(2, 0.5, false)],
        )];
        let v = check_ibo_walk(&events);
        assert!(v.iter().any(|x| x.detail.contains("skipped")));
    }

    #[test]
    fn bad_unavoidable_fallback_is_flagged() {
        let events = vec![decision(
            9,
            9,
            true,
            true,
            0,
            vec![opt(0, 2.0, true), opt(1, 0.5, true)],
        )];
        let v = check_ibo_walk(&events);
        assert!(v.iter().any(|x| x.detail.contains("fallback")));
    }

    #[test]
    fn monotone_pressure_passes_and_reversals_fail() {
        let walk_lo = vec![opt(0, 2.0, false), opt(1, 0.5, false)];
        let walk_hi = vec![opt(0, 2.0, true), opt(1, 0.5, false)];
        // Same walk at two occupancies, higher pressure more degraded: ok.
        let ok = vec![
            decision(1, 2, false, false, 0, walk_lo.clone()),
            decision(2, 3, false, false, 0, walk_lo.clone()),
            decision(3, 8, true, false, 1, walk_hi.clone()),
            decision(4, 9, true, false, 1, walk_hi.clone()),
        ];
        assert!(check_pressure_monotone(&ok).is_empty());
        // Identical inputs, higher occupancy, *less* degraded: violation.
        let bad = vec![
            decision(1, 4, true, false, 1, walk_hi.clone()),
            decision(2, 6, true, false, 0, walk_hi),
        ];
        let v = check_pressure_monotone(&bad);
        assert_eq!(v.len(), 1);
        assert!(v[0].detail.contains("occupancy rose"));
    }
}
