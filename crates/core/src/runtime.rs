//! The Quetzal runtime facade: scheduler + IBO engine + trackers + PID.
//!
//! [`Quetzal`] owns the pieces and exposes the narrow interface a device
//! firmware (or the simulator in `qz-sim`) drives:
//!
//! - [`Quetzal::on_capture`] after every periodic capture (stored or
//!   discarded) — feeds the arrival-rate tracker.
//! - [`Quetzal::schedule`] when the device is ready to process a buffered
//!   input — runs the scheduling policy, applies the PID correction, and
//!   runs the degradation policy; returns a [`Decision`].
//! - [`Quetzal::observe_task`] / [`Quetzal::on_job_complete`] after
//!   execution — feed the estimator, execution-probability windows and
//!   the PID error loop.
//!
//! Baselines are built with [`Quetzal::builder`] by swapping the
//! scheduling policy, degradation policy, or service estimator.

use crate::ibo::{DegradationContext, DegradationPolicy, IboEngine};
use crate::model::{AppSpec, JobId, SpecError, TaskId, TaskKey};
use crate::pid::{Pid, PidConfig, PidState};
use crate::policy::{EnergyAwareSjf, JobCandidate, SchedulerInputs, SchedulingPolicy};
use crate::power::{Instantaneous, PowerPredictor, PredictorState};
use crate::service::{EnergyAwareEstimator, EstimatorState, ServiceEstimator};
use crate::trackers::{ArrivalTracker, ExecutionTracker};
use crate::window::BitWindowState;
use alloc::boxed::Box;
use alloc::format;
use alloc::string::String;
use alloc::vec;
use alloc::vec::Vec;
use qz_obs::{CandidateEval, EventKind, Observer, ObserverHandle, OptionEval};
use qz_types::{Hertz, Seconds, Watts};

/// Runtime configuration (paper Table 1 defaults).
#[derive(Debug, Clone, PartialEq)]
pub struct QuetzalConfig {
    /// Bits of per-task execution history (`<task-window>`, default 64).
    pub task_window: usize,
    /// Bits of capture/arrival history (`<arrival-window>`). The paper's
    /// Table 1 uses 256; our default is 32 because the synthetic event
    /// generator produces shorter events than the paper's surveillance
    /// dataset, and λ must track in-event arrival rates to be useful (16
    /// captures; see the Fig. 14 arrival-window sweep and EXPERIMENTS.md).
    pub arrival_window: usize,
    /// The device's fixed capture rate (default 1 FPS).
    pub capture_rate: Hertz,
    /// PID gains for prediction-error mitigation.
    pub pid: PidConfig,
    /// Disables the PID loop entirely (ablation knob; the paper always
    /// runs with it on).
    pub pid_enabled: bool,
    /// When `true` (default), Algorithm 1 evaluates each task at the
    /// degradation option the IBO engine last selected for it ("sticky"
    /// configuration) instead of always at its highest quality. Without
    /// this, a job whose degradable task is expensive at current power
    /// can starve under SJF even though the IBO engine would degrade it
    /// to a cheap option the moment it ran — pinning the buffer at
    /// capacity (see the `ablate_sticky` bench for the effect).
    pub sticky_options: bool,
    /// When set, `predictInputPower()` smooths measurements with an EWMA
    /// of this α instead of using them directly (extension; the paper
    /// uses instantaneous measurements).
    pub power_ewma_alpha: Option<f64>,
}

impl Default for QuetzalConfig {
    fn default() -> QuetzalConfig {
        QuetzalConfig {
            task_window: 64,
            arrival_window: 16,
            capture_rate: Hertz(1.0),
            pid: PidConfig::default(),
            pid_enabled: true,
            sticky_options: true,
            power_ewma_alpha: None,
        }
    }
}

/// A snapshot of the shared input buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BufferView {
    /// Inputs currently stored.
    pub occupancy: usize,
    /// Maximum inputs the buffer can hold.
    pub capacity: usize,
}

/// The runtime's scheduling decision for one job execution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Decision {
    /// The job to execute.
    pub job: JobId,
    /// Degradation option for the job's degradable task (0 = highest
    /// quality; always 0 for jobs without one).
    pub option: usize,
    /// Predicted `E[S]` for the job at the selected option, including the
    /// PID correction. Compared against the observed service time in
    /// [`Quetzal::on_job_complete`].
    pub expected_service: Seconds,
    /// Whether an IBO was predicted at the job's highest quality.
    pub ibo_predicted: bool,
    /// Whether even the cheapest option is predicted to overflow.
    pub unavoidable: bool,
    /// The arrival-rate estimate used (inputs/second).
    pub lambda: f64,
}

/// The assembled Quetzal runtime. See the [crate docs](crate) for a
/// worked example.
#[derive(Debug)]
pub struct Quetzal {
    spec: AppSpec,
    config: QuetzalConfig,
    exec: ExecutionTracker,
    arrivals: ArrivalTracker,
    pid: Pid,
    policy: Box<dyn SchedulingPolicy>,
    degradation: Box<dyn DegradationPolicy>,
    estimator: Box<dyn ServiceEstimator>,
    power_predictor: Box<dyn PowerPredictor>,
    last_prediction: Option<(JobId, Seconds)>,
    /// Each task's current degradation option (sticky: what the IBO
    /// engine last selected for it).
    current_options: Vec<u8>,
    /// Decision-tracing hook (`qz-obs`). Defaults to the disabled noop,
    /// so emission sites cost one cached-boolean test per decision.
    observer: ObserverHandle,
    /// Scheduling-round scratch, reused across calls: the candidate
    /// list rebuilt every round. In a crowded run [`Quetzal::schedule`]
    /// fires every tick (the engine's busy-scheduler regime), so these
    /// were the hottest allocation sites after the engine's own
    /// scratch.
    scratch_candidates: Vec<JobCandidate>,
    /// Scheduling-round scratch: the per-option degradable services.
    scratch_options: Vec<Seconds>,
}

impl Quetzal {
    /// Creates the full Quetzal system: Energy-aware SJF scheduling, the
    /// IBO engine, and the exact energy-aware service model.
    ///
    /// # Errors
    ///
    /// Currently infallible for a valid [`AppSpec`], but returns
    /// `Result` so configuration validation can grow without breaking
    /// callers.
    pub fn new(spec: AppSpec, config: QuetzalConfig) -> Result<Quetzal, SpecError> {
        Quetzal::builder(spec).config(config).build()
    }

    /// Starts a builder for custom policy/estimator combinations
    /// (baselines, hardware-assisted estimation, ablations).
    pub fn builder(spec: AppSpec) -> QuetzalBuilder {
        QuetzalBuilder {
            spec,
            config: QuetzalConfig::default(),
            policy: None,
            degradation: None,
            estimator: None,
            power_predictor: None,
        }
    }

    /// The application specification.
    pub fn spec(&self) -> &AppSpec {
        &self.spec
    }

    /// The active configuration.
    pub fn config(&self) -> &QuetzalConfig {
        &self.config
    }

    /// Installs a decision-tracing observer (see `qz-obs`). The runtime
    /// emits [`EventKind::SchedulerPick`], [`EventKind::IboDecision`],
    /// [`EventKind::PidUpdate`] and [`EventKind::JobComplete`]; the
    /// driver (simulator or firmware) is expected to route its own
    /// transition events through [`Quetzal::emit_event`] so one sink
    /// sees the whole stream.
    pub fn set_observer(&mut self, observer: Box<dyn Observer>) {
        self.observer.install(observer);
    }

    /// Removes the installed observer (a disabled noop takes its
    /// place), returning it so sinks can be drained.
    pub fn take_observer(&mut self) -> Box<dyn Observer> {
        self.observer.take()
    }

    /// Whether an enabled observer is installed. Drivers should guard
    /// event construction on this, exactly like the runtime does.
    #[inline]
    pub fn observing(&self) -> bool {
        self.observer.enabled()
    }

    /// Advances the device clock used to stamp emitted events,
    /// milliseconds. Drivers call this once per tick.
    #[inline]
    pub fn set_time_ms(&mut self, now_ms: u64) {
        self.observer.set_now_ms(now_ms);
    }

    /// Emits a driver-side event (power transitions, buffer admits,
    /// discards…) through the runtime's observer, stamped with the
    /// clock last set by [`Quetzal::set_time_ms`].
    pub fn emit_event(&mut self, kind: EventKind) {
        self.observer.emit(kind);
    }

    /// Records one periodic capture; `stored` is whether it survived
    /// pre-filtering and entered the input buffer.
    pub fn on_capture(&mut self, stored: bool) {
        self.arrivals.record_capture(stored);
    }

    /// Current arrival-rate estimate λ, inputs/second.
    pub fn lambda(&self) -> f64 {
        self.arrivals.lambda()
    }

    /// Tracked execution probability for a task.
    pub fn execution_probability(&self, task: TaskId) -> f64 {
        self.exec.probability(task)
    }

    /// Current PID correction added to `E[S]` predictions, seconds.
    pub fn correction(&self) -> Seconds {
        if self.config.pid_enabled {
            Seconds(self.pid.output())
        } else {
            Seconds::ZERO
        }
    }

    /// Feeds an observed per-task end-to-end service time to the
    /// estimator (used by history-based estimators such as the
    /// *Avg. S_e2e* baseline).
    pub fn observe_task(&mut self, key: TaskKey, observed: Seconds) {
        self.estimator.observe(key, observed);
    }

    /// Records a completed job: which tasks executed (for the
    /// execution-probability windows) and the observed end-to-end service
    /// time (for the PID error loop).
    pub fn on_job_complete(&mut self, job: JobId, executed: &[(TaskId, bool)], observed: Seconds) {
        self.exec.record_job(executed.iter().copied());
        if self.observer.enabled() {
            self.observer.emit(EventKind::JobComplete {
                job: job.index(),
                observed_s: observed.value(),
            });
        }
        if let Some((predicted_job, predicted)) = self.last_prediction.take() {
            if predicted_job == job {
                let error = observed.value() - predicted.value();
                let correction = self.pid.update(error);
                if self.observer.enabled() {
                    self.observer.emit(EventKind::PidUpdate {
                        job: job.index(),
                        predicted_s: predicted.value(),
                        observed_s: observed.value(),
                        error_s: error,
                        correction_s: correction,
                    });
                }
            }
        }
    }

    /// Runs one scheduling round.
    ///
    /// `runnable` lists every job with the age of its oldest queued input
    /// (`None` = empty queue). `buffer` is the shared input buffer state
    /// and `p_in` the measured input power.
    ///
    /// Returns `None` when no job has queued inputs.
    pub fn schedule(
        &mut self,
        runnable: &[(JobId, Option<Seconds>)],
        buffer: BufferView,
        p_in: Watts,
    ) -> Option<Decision> {
        // predictInputPower(): by default the measurement itself.
        let p_in = self.power_predictor.predict(p_in);
        // Reuse the round scratch across calls (see the field docs).
        let mut candidates = core::mem::take(&mut self.scratch_candidates);
        candidates.clear();
        candidates.extend(runnable.iter().filter_map(|&(job, age)| {
            age.map(|oldest_input_age| JobCandidate {
                job,
                oldest_input_age,
            })
        }));

        let selection = {
            let inputs = SchedulerInputs {
                spec: &self.spec,
                exec: &self.exec,
                estimator: self.estimator.as_ref(),
                p_in,
                current_options: &self.current_options,
            };
            self.policy.select(&inputs, &candidates)
        };
        let Some(selection) = selection else {
            self.scratch_candidates = candidates;
            return None;
        };
        let job = candidates[selection.index].job;
        let correction = self.correction();

        // Decompose the job's E[S] into non-degradable and per-option
        // degradable contributions for the reaction walk (Algorithm 2).
        let job_spec = self.spec.job(job);
        let mut non_degradable = Seconds::ZERO;
        let mut option_services = core::mem::take(&mut self.scratch_options);
        option_services.clear();
        for &task in &job_spec.tasks {
            let task_spec = self.spec.task(task);
            let prob = self.exec.probability(task);
            if task_spec.is_degradable() {
                option_services.clear();
                option_services.extend((0..task_spec.option_count()).map(|o| {
                    // o < MAX_OPTIONS (4), so the cast is exact.
                    #[allow(clippy::cast_possible_truncation)]
                    let key = TaskKey {
                        task,
                        option: o as u8,
                    };
                    self.estimator.predict(key, task_spec.cost(o), p_in) * prob
                }));
            } else {
                non_degradable +=
                    self.estimator
                        .predict(TaskKey::best(task), task_spec.best_cost(), p_in)
                        * prob;
            }
        }

        // IBO detection always starts from the job at its highest
        // quality (Algorithm 2 walks the quality-ordered list fresh on
        // every invocation), regardless of the configuration the
        // scheduler ranked the job at.
        let best_service = if option_services.is_empty() {
            selection.expected_service
        } else {
            non_degradable + option_services[0]
        };
        let corrected_best = (best_service + correction).max(Seconds::ZERO);
        let lambda = self.arrivals.lambda();
        let ctx = DegradationContext {
            lambda,
            occupancy: buffer.occupancy,
            capacity: buffer.capacity,
            expected_service: corrected_best,
            non_degradable_service: (non_degradable + correction).max(Seconds::ZERO),
            option_services: &option_services,
            p_in,
        };
        let decision = self.degradation.select_option(&ctx);

        // Trace the two decisions just made. Both event payloads are
        // recomputed from the same inputs the algorithms used, so the
        // disabled path (the common case) pays only these two branches.
        if self.observer.enabled() {
            let candidates_eval: Vec<CandidateEval> = {
                let inputs = SchedulerInputs {
                    spec: &self.spec,
                    exec: &self.exec,
                    estimator: self.estimator.as_ref(),
                    p_in,
                    current_options: &self.current_options,
                };
                candidates
                    .iter()
                    .enumerate()
                    .map(|(i, cand)| CandidateEval {
                        job: cand.job.index(),
                        expected_service_s: crate::policy::expected_service(&inputs, cand.job)
                            .value(),
                        oldest_input_age_s: cand.oldest_input_age.value(),
                        selected: i == selection.index,
                    })
                    .collect()
            };
            self.observer.emit(EventKind::SchedulerPick {
                job: job.index(),
                expected_service_s: corrected_best.value(),
                correction_s: correction.value(),
                p_in_w: p_in.value(),
                candidates: candidates_eval,
            });

            // Replay Algorithm 2's quality-ordered walk for the log.
            let options: Vec<OptionEval> = option_services
                .iter()
                .enumerate()
                .map(|(o, &svc)| {
                    let es = ctx.non_degradable_service + svc;
                    OptionEval {
                        option: o,
                        expected_service_s: es.value(),
                        predicts_overflow: ctx.predicts_overflow(es),
                    }
                })
                .collect();
            self.observer.emit(EventKind::IboDecision {
                job: job.index(),
                lambda,
                occupancy: buffer.occupancy,
                capacity: buffer.capacity,
                expected_service_s: corrected_best.value(),
                predicted_arrivals: lambda * corrected_best.value(),
                ibo_predicted: decision.ibo_predicted,
                unavoidable: decision.unavoidable,
                chosen_option: decision.option,
                options,
            });
        }

        if self.config.sticky_options {
            if let Some(task) = job_spec.degradable_task() {
                // decision.option < MAX_OPTIONS (4), so the cast is exact.
                #[allow(clippy::cast_possible_truncation)]
                let chosen = decision.option as u8;
                self.current_options[task.index()] = chosen;
            }
        }
        debug_assert!(
            decision.option == 0 || decision.option < option_services.len(),
            "degradation policy returned an out-of-range option"
        );

        // Tell the estimator what will run, so it can normalize the
        // observations that follow (used by the variable-cost extension).
        for &task in &job_spec.tasks {
            let task_spec = self.spec.task(task);
            let option = if task_spec.is_degradable() {
                decision.option
            } else {
                0
            };
            // option < MAX_OPTIONS (4), so the cast is exact.
            #[allow(clippy::cast_possible_truncation)]
            let key = TaskKey {
                task,
                option: option as u8,
            };
            self.estimator
                .note_scheduled(key, task_spec.cost(option), p_in);
        }

        let selected_service = if option_services.is_empty() {
            corrected_best
        } else {
            (non_degradable + correction + option_services[decision.option]).max(Seconds::ZERO)
        };
        // The PID scores the *model's* prediction (without its own
        // correction folded in); otherwise the controller cancels itself
        // out instead of tracking the model's bias.
        let raw_prediction = if option_services.is_empty() {
            selection.expected_service
        } else {
            non_degradable + option_services[decision.option]
        };
        self.last_prediction = Some((job, raw_prediction));
        self.scratch_candidates = candidates;
        self.scratch_options = option_services;

        Some(Decision {
            job,
            option: decision.option,
            expected_service: selected_service,
            ibo_predicted: decision.ibo_predicted,
            unavoidable: decision.unavoidable,
            lambda,
        })
    }

    /// Captures the runtime's evolving state for a simulation snapshot:
    /// tracker windows, the PID controller, estimator and predictor
    /// history, the pending PID prediction and the sticky degradation
    /// options. Spec and configuration are *not* captured — a snapshot
    /// restores into a runtime built from the same config.
    pub fn save_state(&self) -> RuntimeState {
        RuntimeState {
            exec: self.exec.save_state(),
            arrivals: self.arrivals.save_state(),
            pid: self.pid.save_state(),
            estimator: self.estimator.save_state(),
            predictor: self.power_predictor.save_state(),
            last_prediction: self
                .last_prediction
                .map(|(job, predicted)| (job.index(), predicted)),
            current_options: self.current_options.clone(),
        }
    }

    /// Restores state captured by [`Quetzal::save_state`]. The resumed
    /// runtime makes bit-identical decisions to one that never paused.
    ///
    /// # Errors
    ///
    /// Rejects state whose shape does not match this runtime's spec and
    /// configuration (window sizes, task/job counts, estimator or
    /// predictor kind).
    pub fn restore_state(&mut self, state: &RuntimeState) -> Result<(), String> {
        if state.current_options.len() != self.current_options.len() {
            return Err(format!(
                "sticky-option count mismatch: snapshot {} vs live {}",
                state.current_options.len(),
                self.current_options.len()
            ));
        }
        let last_prediction = match state.last_prediction {
            None => None,
            Some((index, predicted)) => {
                if index >= self.spec.jobs().len() {
                    return Err(format!("pending-prediction job index {index} out of range"));
                }
                // Bounded by the spec's job count, which is u8-indexed.
                #[allow(clippy::cast_possible_truncation)]
                Some((JobId(index as u8), predicted))
            }
        };
        self.exec.restore_state(&state.exec)?;
        self.arrivals.restore_state(&state.arrivals)?;
        self.estimator.restore_state(&state.estimator)?;
        self.power_predictor.restore_state(&state.predictor)?;
        self.pid.restore_state(&state.pid);
        self.last_prediction = last_prediction;
        self.current_options.copy_from_slice(&state.current_options);
        Ok(())
    }
}

/// Serializable evolving state of a [`Quetzal`] runtime, captured by
/// [`Quetzal::save_state`]. Plain data for exact serialization.
#[derive(Debug, Clone, PartialEq)]
pub struct RuntimeState {
    /// Per-task execution-probability windows.
    pub exec: Vec<BitWindowState>,
    /// The arrival-rate window.
    pub arrivals: BitWindowState,
    /// PID controller state.
    pub pid: PidState,
    /// Service-estimator history.
    pub estimator: EstimatorState,
    /// Input-power predictor state.
    pub predictor: PredictorState,
    /// Pending PID prediction: `(job index, predicted E[S])`.
    pub last_prediction: Option<(usize, Seconds)>,
    /// Each task's sticky degradation option.
    pub current_options: Vec<u8>,
}

/// Builder for [`Quetzal`] with custom components; created by
/// [`Quetzal::builder`].
#[derive(Debug)]
pub struct QuetzalBuilder {
    spec: AppSpec,
    config: QuetzalConfig,
    policy: Option<Box<dyn SchedulingPolicy>>,
    degradation: Option<Box<dyn DegradationPolicy>>,
    estimator: Option<Box<dyn ServiceEstimator>>,
    power_predictor: Option<Box<dyn PowerPredictor>>,
}

impl QuetzalBuilder {
    /// The spec this builder will assemble around (useful for
    /// constructing spec-derived components such as the
    /// hardware-assisted estimator).
    pub fn spec(&self) -> &AppSpec {
        &self.spec
    }

    /// Sets the runtime configuration.
    pub fn config(mut self, config: QuetzalConfig) -> QuetzalBuilder {
        self.config = config;
        self
    }

    /// Replaces the scheduling policy (default: [`EnergyAwareSjf`]).
    pub fn policy(mut self, policy: Box<dyn SchedulingPolicy>) -> QuetzalBuilder {
        self.policy = Some(policy);
        self
    }

    /// Replaces the degradation policy (default: [`IboEngine`]).
    pub fn degradation(mut self, degradation: Box<dyn DegradationPolicy>) -> QuetzalBuilder {
        self.degradation = Some(degradation);
        self
    }

    /// Replaces the service estimator (default:
    /// [`EnergyAwareEstimator`]).
    pub fn estimator(mut self, estimator: Box<dyn ServiceEstimator>) -> QuetzalBuilder {
        self.estimator = Some(estimator);
        self
    }

    /// Replaces the input-power predictor (default:
    /// [`Instantaneous`] — the paper uses each measurement directly).
    pub fn power_predictor(mut self, predictor: Box<dyn PowerPredictor>) -> QuetzalBuilder {
        self.power_predictor = Some(predictor);
        self
    }

    /// Assembles the runtime.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError::InvalidConfig`] for configurations the
    /// runtime cannot operate on: zero estimator windows, a
    /// non-positive or non-finite capture rate, a PID config the
    /// controller constructor would panic on, or an out-of-range EWMA
    /// coefficient. (`qz-check` flags the same conditions as `QZ040`/
    /// `QZ042` diagnostics before a simulation is ever built.)
    pub fn build(self) -> Result<Quetzal, SpecError> {
        validate_config(&self.config)?;
        let exec = ExecutionTracker::new(&self.spec, self.config.task_window);
        let arrivals = ArrivalTracker::new(self.config.arrival_window, self.config.capture_rate);
        let pid = Pid::new(self.config.pid);
        let current_options = vec![0; self.spec.tasks().len()];
        let ewma_alpha = self.config.power_ewma_alpha;
        Ok(Quetzal {
            spec: self.spec,
            config: self.config,
            exec,
            arrivals,
            pid,
            policy: self
                .policy
                .unwrap_or_else(|| Box::new(EnergyAwareSjf::new())),
            degradation: self
                .degradation
                .unwrap_or_else(|| Box::new(IboEngine::new())),
            estimator: self
                .estimator
                .unwrap_or_else(|| Box::new(EnergyAwareEstimator::new())),
            power_predictor: self.power_predictor.unwrap_or_else(|| match ewma_alpha {
                Some(alpha) => Box::new(crate::power::Ewma::new(alpha)),
                None => Box::new(Instantaneous::new()),
            }),
            last_prediction: None,
            current_options,
            observer: ObserverHandle::noop(),
            scratch_candidates: Vec::new(),
            scratch_options: Vec::new(),
        })
    }
}

/// Rejects configurations the runtime cannot operate on. Kept in exact
/// agreement with `Pid::new`'s panics and the trackers' requirements so
/// a successful `build()` can never panic on construction.
fn validate_config(config: &QuetzalConfig) -> Result<(), SpecError> {
    if config.task_window == 0 {
        return Err(SpecError::InvalidConfig {
            field: "task_window",
        });
    }
    if config.arrival_window == 0 {
        return Err(SpecError::InvalidConfig {
            field: "arrival_window",
        });
    }
    let rate = config.capture_rate.value();
    if !rate.is_finite() || rate <= 0.0 {
        return Err(SpecError::InvalidConfig {
            field: "capture_rate",
        });
    }
    let pid = &config.pid;
    if !(pid.kp.is_finite() && pid.ki.is_finite() && pid.kd.is_finite()) {
        return Err(SpecError::InvalidConfig { field: "pid.gains" });
    }
    if !(pid.tau.is_finite() && pid.tau > 0.0) {
        return Err(SpecError::InvalidConfig { field: "pid.tau" });
    }
    if !(pid.sample_time.is_finite() && pid.sample_time > 0.0) {
        return Err(SpecError::InvalidConfig {
            field: "pid.sample_time",
        });
    }
    let (lo, hi) = pid.output_limits;
    if !(lo.is_finite() && hi.is_finite()) || lo > hi {
        return Err(SpecError::InvalidConfig {
            field: "pid.output_limits",
        });
    }
    if let Some(alpha) = config.power_ewma_alpha {
        if !alpha.is_finite() || alpha <= 0.0 || alpha > 1.0 {
            return Err(SpecError::InvalidConfig {
                field: "power_ewma_alpha",
            });
        }
    }
    Ok(())
}

#[cfg(test)]
// Many assertions here pin values that are copied or computed exactly
// (literals, dyadic fractions, pass-through accessors); strict float
// comparison is the point.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;
    use crate::model::{AppSpecBuilder, TaskCost};

    fn cost(t: f64, p: f64) -> TaskCost {
        TaskCost::new(Seconds(t), Watts(p))
    }

    /// Person-detection-like spec: Job0 = degradable ML + fixed compress,
    /// Job1 = degradable radio.
    fn spec() -> (AppSpec, JobId, JobId, TaskId, TaskId, TaskId) {
        let mut b = AppSpecBuilder::new();
        let ml = b
            .degradable_task("ml")
            .option("mobilenet", cost(3.0, 0.020))
            .option("lenet", cost(0.3, 0.015))
            .finish()
            .unwrap();
        let compress = b.fixed_task("compress", cost(0.2, 0.015)).unwrap();
        let radio = b
            .degradable_task("radio")
            .option("full", cost(2.5, 0.400))
            .option("byte", cost(0.05, 0.400))
            .finish()
            .unwrap();
        let process = b.job("process", vec![ml, compress]).unwrap();
        let report = b.job("report", vec![radio]).unwrap();
        (b.build().unwrap(), process, report, ml, compress, radio)
    }

    fn quetzal() -> (Quetzal, JobId, JobId) {
        let (spec, process, report, ..) = spec();
        (
            Quetzal::new(spec, QuetzalConfig::default()).unwrap(),
            process,
            report,
        )
    }

    #[test]
    fn build_rejects_invalid_configs() {
        let cases: Vec<(QuetzalConfig, &str)> = vec![
            (
                QuetzalConfig {
                    task_window: 0,
                    ..QuetzalConfig::default()
                },
                "task_window",
            ),
            (
                QuetzalConfig {
                    arrival_window: 0,
                    ..QuetzalConfig::default()
                },
                "arrival_window",
            ),
            (
                QuetzalConfig {
                    capture_rate: Hertz(0.0),
                    ..QuetzalConfig::default()
                },
                "capture_rate",
            ),
            (
                QuetzalConfig {
                    pid: PidConfig {
                        tau: 0.0,
                        ..PidConfig::default()
                    },
                    ..QuetzalConfig::default()
                },
                "pid.tau",
            ),
            (
                QuetzalConfig {
                    pid: PidConfig {
                        kp: f64::NAN,
                        ..PidConfig::default()
                    },
                    ..QuetzalConfig::default()
                },
                "pid.gains",
            ),
            (
                QuetzalConfig {
                    pid: PidConfig {
                        output_limits: (2.0, -2.0),
                        ..PidConfig::default()
                    },
                    ..QuetzalConfig::default()
                },
                "pid.output_limits",
            ),
            (
                QuetzalConfig {
                    power_ewma_alpha: Some(1.5),
                    ..QuetzalConfig::default()
                },
                "power_ewma_alpha",
            ),
        ];
        for (config, field) in cases {
            let (spec, ..) = spec();
            assert_eq!(
                Quetzal::new(spec, config).err(),
                Some(SpecError::InvalidConfig { field }),
                "expected rejection for {field}"
            );
        }
        // The default config still builds.
        let (spec, ..) = spec();
        assert!(Quetzal::new(spec, QuetzalConfig::default()).is_ok());
    }

    #[test]
    fn schedules_nothing_when_queues_empty() {
        let (mut qz, process, report) = quetzal();
        let d = qz.schedule(
            &[(process, None), (report, None)],
            BufferView {
                occupancy: 0,
                capacity: 10,
            },
            Watts(0.02),
        );
        assert_eq!(d, None);
    }

    #[test]
    fn picks_shortest_job_no_degradation_when_safe() {
        let (mut qz, process, report) = quetzal();
        // Plenty of power, nearly empty buffer, low arrivals.
        for _ in 0..64 {
            qz.on_capture(false);
        }
        let d = qz
            .schedule(
                &[(process, Some(Seconds(4.0))), (report, Some(Seconds(1.0)))],
                BufferView {
                    occupancy: 1,
                    capacity: 10,
                },
                Watts(1.0),
            )
            .unwrap();
        // At high power report (2.5 s) < process (3.2 s).
        assert_eq!(d.job, report);
        assert_eq!(d.option, 0);
        assert!(!d.ibo_predicted);
        assert_eq!(d.lambda, 0.0);
    }

    #[test]
    fn degrades_under_ibo_pressure() {
        let (mut qz, process, _report) = quetzal();
        // Every capture stored → λ = capture rate = 1/s.
        for _ in 0..64 {
            qz.on_capture(true);
        }
        // Low power: ML hi = 3 s × 4 = 12 s; nearly full buffer (slack 2)
        // → 12 arrivals ≥ 2: degrade.
        let d = qz
            .schedule(
                &[(process, Some(Seconds(4.0)))],
                BufferView {
                    occupancy: 8,
                    capacity: 10,
                },
                Watts(0.005),
            )
            .unwrap();
        assert!(d.ibo_predicted);
        assert!(d.option > 0, "should degrade ML under IBO pressure");
    }

    #[test]
    fn does_not_degrade_without_pressure() {
        let (mut qz, process, _report) = quetzal();
        for _ in 0..256 {
            qz.on_capture(false); // nothing stored → λ = 0
        }
        let d = qz
            .schedule(
                &[(process, Some(Seconds(0.5)))],
                BufferView {
                    occupancy: 1,
                    capacity: 10,
                },
                Watts(0.005),
            )
            .unwrap();
        assert_eq!(d.option, 0);
        assert!(!d.ibo_predicted);
    }

    #[test]
    fn lambda_tracks_capture_history() {
        let (mut qz, ..) = quetzal();
        assert_eq!(qz.lambda(), 1.0, "cold start assumes every capture stored");
        for i in 0..100 {
            qz.on_capture(i % 4 == 0);
        }
        assert!((qz.lambda() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn pid_reacts_to_underprediction() {
        let (mut qz, process, _report) = quetzal();
        for _ in 0..10 {
            qz.on_capture(true);
        }
        assert_eq!(qz.correction(), Seconds::ZERO);
        for _ in 0..20 {
            let d = qz
                .schedule(
                    &[(process, Some(Seconds(1.0)))],
                    BufferView {
                        occupancy: 2,
                        capacity: 10,
                    },
                    Watts(0.05),
                )
                .unwrap();
            // Every job takes 30 s longer than predicted.
            qz.on_job_complete(
                d.job,
                &[(TaskId(0), true), (TaskId(1), true)],
                d.expected_service + Seconds(30.0),
            );
        }
        assert!(
            qz.correction().value() > 0.0,
            "persistent under-prediction must inflate E[S]: {}",
            qz.correction()
        );
    }

    #[test]
    fn pid_disabled_keeps_zero_correction() {
        let (spec, process, ..) = spec();
        let mut qz = Quetzal::new(
            spec,
            QuetzalConfig {
                pid_enabled: false,
                ..QuetzalConfig::default()
            },
        )
        .unwrap();
        for _ in 0..5 {
            let d = qz
                .schedule(
                    &[(process, Some(Seconds(1.0)))],
                    BufferView {
                        occupancy: 2,
                        capacity: 10,
                    },
                    Watts(0.05),
                )
                .unwrap();
            qz.on_job_complete(d.job, &[], d.expected_service + Seconds(100.0));
        }
        assert_eq!(qz.correction(), Seconds::ZERO);
    }

    #[test]
    fn execution_probability_feeds_expected_service() {
        let (mut qz, process, _) = quetzal();
        // compress ran for none of the last jobs.
        for _ in 0..32 {
            qz.on_job_complete(
                process,
                &[(TaskId(0), true), (TaskId(1), false)],
                Seconds(3.0),
            );
        }
        assert_eq!(qz.execution_probability(TaskId(1)), 0.0);
        for _ in 0..64 {
            qz.on_capture(false);
        }
        let d = qz
            .schedule(
                &[(process, Some(Seconds(1.0)))],
                BufferView {
                    occupancy: 1,
                    capacity: 10,
                },
                Watts(1.0),
            )
            .unwrap();
        // E[S] = 3.0 (ML, p=1) + 0.2×0 (compress, p=0).
        assert!((d.expected_service.value() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn observe_task_reaches_estimator() {
        use crate::service::AvgObservedEstimator;
        let (spec, process, ..) = spec();
        let mut qz = Quetzal::builder(spec)
            .estimator(Box::new(AvgObservedEstimator::new()))
            .build()
            .unwrap();
        for _ in 0..64 {
            qz.on_capture(false);
        }
        // Avg estimator with no history falls back to t_exe.
        let d = qz
            .schedule(
                &[(process, Some(Seconds(1.0)))],
                BufferView {
                    occupancy: 1,
                    capacity: 10,
                },
                Watts(0.001),
            )
            .unwrap();
        assert!((d.expected_service.value() - 3.2).abs() < 1e-9);
        // Teach it that ML takes 40 s observed.
        qz.observe_task(TaskKey::best(TaskId(0)), Seconds(40.0));
        let d2 = qz
            .schedule(
                &[(process, Some(Seconds(1.0)))],
                BufferView {
                    occupancy: 1,
                    capacity: 10,
                },
                Watts(0.001),
            )
            .unwrap();
        assert!(
            d2.expected_service.value() > 39.0,
            "E[S]={}",
            d2.expected_service
        );
    }

    #[test]
    fn observer_captures_decision_stream() {
        use qz_obs::{take_recorded, RecordingObserver};
        let (mut qz, process, report) = quetzal();
        assert!(!qz.observing());
        qz.set_observer(Box::new(RecordingObserver::new()));
        assert!(qz.observing());
        qz.set_time_ms(1_000);
        for _ in 0..64 {
            qz.on_capture(true);
        }
        // IBO pressure, as in `degrades_under_ibo_pressure`.
        let d = qz
            .schedule(
                &[(process, Some(Seconds(4.0))), (report, None)],
                BufferView {
                    occupancy: 8,
                    capacity: 10,
                },
                Watts(0.005),
            )
            .unwrap();
        qz.set_time_ms(2_000);
        qz.on_job_complete(
            d.job,
            &[(TaskId(0), true), (TaskId(1), true)],
            d.expected_service + Seconds(1.0),
        );
        let mut obs = qz.take_observer();
        assert!(!qz.observing());
        let events = take_recorded(obs.as_mut()).unwrap();
        let kinds: Vec<&str> = events.iter().map(|e| e.kind.name()).collect();
        assert_eq!(
            kinds,
            [
                "scheduler_pick",
                "ibo_decision",
                "job_complete",
                "pid_update"
            ]
        );
        assert_eq!(events[0].t_ms, 1_000);
        assert_eq!(events[2].t_ms, 2_000);
        match &events[0].kind {
            EventKind::SchedulerPick {
                job, candidates, ..
            } => {
                assert_eq!(*job, process.index());
                // Only `process` had a queued input.
                assert_eq!(candidates.len(), 1);
                assert!(candidates[0].selected);
            }
            other => panic!("unexpected event {other:?}"),
        }
        match &events[1].kind {
            EventKind::IboDecision {
                ibo_predicted,
                chosen_option,
                options,
                occupancy,
                capacity,
                ..
            } => {
                assert!(*ibo_predicted);
                assert_eq!(*chosen_option, d.option);
                assert_eq!((*occupancy, *capacity), (8, 10));
                // The rejected high-quality option is in the log.
                assert!(options[0].predicts_overflow);
                assert!(!options[d.option].predicts_overflow);
            }
            other => panic!("unexpected event {other:?}"),
        }
        match &events[3].kind {
            EventKind::PidUpdate { error_s, .. } => {
                assert!((*error_s - 1.0).abs() < 1e-9, "err={error_s}")
            }
            other => panic!("unexpected event {other:?}"),
        }
    }

    #[test]
    fn runtime_state_roundtrip_resumes_decisions_bit_exactly() {
        let (mut a, process, report) = quetzal();
        // Build up nontrivial history: captures, decisions, completions.
        for i in 0..40_i32 {
            a.on_capture(i % 2 == 0);
            if let Some(d) = a.schedule(
                &[(process, Some(Seconds(2.0))), (report, Some(Seconds(1.0)))],
                BufferView {
                    occupancy: usize::try_from(i % 9 + 1).unwrap(),
                    capacity: 10,
                },
                Watts(0.004 + 0.001 * f64::from(i)),
            ) {
                a.on_job_complete(
                    d.job,
                    &[(TaskId(0), true), (TaskId(1), i % 3 == 0)],
                    d.expected_service + Seconds(0.5),
                );
            }
        }
        let state = a.save_state();
        let (mut b, _, _) = quetzal();
        b.restore_state(&state).unwrap();
        assert_eq!(a.lambda(), b.lambda());
        assert_eq!(a.correction().value(), b.correction().value());
        // The resumed runtime tracks the original decision-for-decision.
        for i in 0..40_i32 {
            a.on_capture(i % 3 == 0);
            b.on_capture(i % 3 == 0);
            let view = BufferView {
                occupancy: usize::try_from(i % 9 + 1).unwrap(),
                capacity: 10,
            };
            let p = Watts(0.002 + 0.0015 * f64::from(i));
            let da = a.schedule(
                &[(process, Some(Seconds(2.0))), (report, Some(Seconds(1.0)))],
                view,
                p,
            );
            let db = b.schedule(
                &[(process, Some(Seconds(2.0))), (report, Some(Seconds(1.0)))],
                view,
                p,
            );
            assert_eq!(da, db);
            if let Some(d) = da {
                let executed = [(TaskId(0), true), (TaskId(1), true)];
                let obs = d.expected_service + Seconds(0.25);
                a.on_job_complete(d.job, &executed, obs);
                b.on_job_complete(d.job, &executed, obs);
            }
        }
        assert_eq!(a.save_state(), b.save_state());
    }

    #[test]
    fn runtime_restore_rejects_mismatched_shapes() {
        let (a, ..) = quetzal();
        let state = a.save_state();
        // Different arrival window → window capacity mismatch.
        let (spec, ..) = spec();
        let mut other = Quetzal::new(
            spec,
            QuetzalConfig {
                arrival_window: 64,
                ..QuetzalConfig::default()
            },
        )
        .unwrap();
        assert!(other.restore_state(&state).is_err());
        // Out-of-range pending-prediction job index.
        let mut bad = state;
        bad.last_prediction = Some((99, Seconds(1.0)));
        let (mut b, ..) = quetzal();
        assert!(b.restore_state(&bad).is_err());
    }

    #[test]
    fn decision_reports_selected_option_service() {
        let (mut qz, process, _) = quetzal();
        for _ in 0..64 {
            qz.on_capture(true);
        }
        let d = qz
            .schedule(
                &[(process, Some(Seconds(1.0)))],
                BufferView {
                    occupancy: 9,
                    capacity: 10,
                },
                Watts(0.005),
            )
            .unwrap();
        assert!(d.option > 0);
        // Service must reflect the degraded (cheaper) option, not option 0.
        let full_quality = 3.0 * 4.0 + 0.2 * 3.0; // ML + compress at 5 mW
        assert!(d.expected_service.value() < full_quality);
    }
}
