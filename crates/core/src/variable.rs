//! Variable execution costs — the paper's stated future-work extension.
//!
//! Quetzal assumes each task has a consistent `t_exe` and `P_exe`
//! profiled in advance; §5.2 calls supporting *variable* execution costs
//! "an interesting future research direction" and §8 sketches the
//! approach (CleanCut-style cost distributions). This module implements
//! it:
//!
//! [`VariableCostEstimator`] wraps the exact energy-aware model with a
//! learned, per-configuration *inflation factor*: the streaming
//! [`P2Quantile`](crate::quantile) of the ratio between
//! observed and model-predicted service times. Predicting at a high
//! percentile (default p90) makes the IBO engine conservative exactly
//! when a task's cost is data-dependent — a task that sometimes runs
//! 2× long is priced near its 2× tail, not its average.
//!
//! The inflation factor also absorbs systematic model error the plain
//! estimator cannot see (duty-cycling overhead, capture-path
//! interference), which is why the `ablations` bench evaluates it even
//! without injected cost jitter.

use crate::model::{TaskCost, TaskKey};
use crate::quantile::P2Quantile;
use crate::service::{EnergyAwareEstimator, EstimatorState, ServiceEstimator, SE2E_CAP};
use alloc::collections::BTreeMap;
use alloc::string::String;
use qz_types::{Seconds, Watts};

/// Bounds on the learned inflation factor: a window of sanity around the
/// base model so one pathological observation cannot wedge predictions.
const MIN_INFLATION: f64 = 0.5;
const MAX_INFLATION: f64 = 4.0;

/// An energy-aware estimator that learns per-configuration service-time
/// inflation from observations.
///
/// # Examples
///
/// ```
/// use quetzal::model::{TaskCost, TaskKey, TaskId};
/// use quetzal::service::ServiceEstimator;
/// use quetzal::variable::VariableCostEstimator;
/// use qz_types::{Seconds, Watts};
///
/// let mut est = VariableCostEstimator::new(0.9);
/// let key = TaskKey { task: TaskId::default(), option: 0 };
/// let cost = TaskCost::new(Seconds(1.0), Watts(0.01));
/// // The task keeps running ~1.8x longer than the model says:
/// for _ in 0..50 {
///     est.note_base(key, cost, Watts(1.0)); // model says 1.0 s
///     est.observe(key, Seconds(1.8));       // it took 1.8 s
/// }
/// let s = est.predict(key, cost, Watts(1.0));
/// assert!(s.value() > 1.5, "prediction should inflate toward the tail");
/// ```
#[derive(Debug, Clone)]
pub struct VariableCostEstimator {
    percentile: f64,
    /// Per-configuration inflation quantile, plus the last base
    /// prediction so observations can be normalized.
    state: BTreeMap<TaskKey, KeyState>,
}

#[derive(Debug, Clone)]
struct KeyState {
    inflation: P2Quantile,
    last_base: f64,
}

impl VariableCostEstimator {
    /// Creates an estimator predicting at the given percentile of the
    /// observed inflation distribution (the paper-faithful conservative
    /// choice is a high percentile such as 0.9).
    ///
    /// # Panics
    ///
    /// Panics if `percentile` is not strictly between 0 and 1.
    pub fn new(percentile: f64) -> VariableCostEstimator {
        assert!(
            percentile > 0.0 && percentile < 1.0,
            "percentile must be in (0, 1)"
        );
        VariableCostEstimator {
            percentile,
            state: BTreeMap::new(),
        }
    }

    /// The learned inflation factor for a configuration (1.0 before any
    /// observation).
    pub fn inflation(&self, key: TaskKey) -> f64 {
        self.state
            .get(&key)
            .and_then(|s| s.inflation.estimate())
            .map(|f| f.clamp(MIN_INFLATION, MAX_INFLATION))
            .unwrap_or(1.0)
    }

    /// Number of configurations with learned state.
    pub fn tracked(&self) -> usize {
        self.state.len()
    }
}

impl ServiceEstimator for VariableCostEstimator {
    fn predict(&self, key: TaskKey, cost: TaskCost, p_in: Watts) -> Seconds {
        let base = EnergyAwareEstimator::se2e(cost, p_in);
        (base * self.inflation(key)).min(SE2E_CAP)
    }

    fn note_scheduled(&mut self, key: TaskKey, cost: TaskCost, p_in: Watts) {
        self.note_base(key, cost, p_in);
    }

    fn observe(&mut self, key: TaskKey, observed: Seconds) {
        // Normalize against the *base* model at the power the task
        // actually experienced. The runtime observes after execution; we
        // approximate the base with the last prediction-scale seen for
        // this key, falling back to the observation itself (ratio 1).
        let entry = self.state.entry(key).or_insert_with(|| KeyState {
            inflation: P2Quantile::new(self.percentile),
            last_base: observed.value().max(1e-9),
        });
        let ratio = observed.value() / entry.last_base.max(1e-9);
        entry.inflation.observe(ratio.clamp(0.0, 10.0));
    }

    fn save_state(&self) -> EstimatorState {
        EstimatorState::VariableCost(
            self.state
                .iter()
                .map(|(&key, ks)| (key, ks.inflation.save_state(), ks.last_base))
                .collect(),
        )
    }

    fn restore_state(&mut self, state: &EstimatorState) -> Result<(), String> {
        match state {
            EstimatorState::VariableCost(entries) => {
                self.state = entries
                    .iter()
                    .map(|&(key, ref markers, last_base)| {
                        let mut inflation = P2Quantile::new(self.percentile);
                        inflation.restore_state(markers);
                        (
                            key,
                            KeyState {
                                inflation,
                                last_base,
                            },
                        )
                    })
                    .collect();
                Ok(())
            }
            _ => Err(String::from(
                "snapshot estimator state does not match VariableCostEstimator",
            )),
        }
    }
}

/// The runtime calls `predict` before running a job and `observe` after;
/// to normalize observations correctly the estimator must remember the
/// base prediction per key. This hook records it; it is called from
/// `predict` via interior state in a full integration, but since
/// `predict` takes `&self`, the runtime's `observe_task` path records
/// the base through this explicit method instead.
impl VariableCostEstimator {
    /// Records the base (un-inflated) model prediction for a key so the
    /// next observation can be normalized against it.
    pub fn note_base(&mut self, key: TaskKey, cost: TaskCost, p_in: Watts) {
        let base = EnergyAwareEstimator::se2e(cost, p_in).value().max(1e-9);
        self.state
            .entry(key)
            .or_insert_with(|| KeyState {
                inflation: P2Quantile::new(self.percentile),
                last_base: base,
            })
            .last_base = base;
    }
}

#[cfg(test)]
// With no observations the estimator returns the base cost and an
// inflation of exactly 1.0; strict float comparison is the point.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;
    use crate::model::TaskId;
    use qz_types::SplitMix64;

    fn key() -> TaskKey {
        TaskKey {
            task: TaskId::default(),
            option: 0,
        }
    }

    fn cost(t: f64, p: f64) -> TaskCost {
        TaskCost::new(Seconds(t), Watts(p))
    }

    #[test]
    fn defaults_to_base_model() {
        let est = VariableCostEstimator::new(0.9);
        let c = cost(2.0, 0.01);
        assert_eq!(est.predict(key(), c, Watts(1.0)), Seconds(2.0));
        assert_eq!(est.inflation(key()), 1.0);
        assert_eq!(est.tracked(), 0);
    }

    #[test]
    fn learns_systematic_inflation() {
        let mut est = VariableCostEstimator::new(0.9);
        let c = cost(1.0, 0.01);
        for _ in 0..100 {
            est.note_base(key(), c, Watts(1.0)); // base = 1 s
            est.observe(key(), Seconds(2.0)); // always runs 2x long
        }
        let inf = est.inflation(key());
        assert!((inf - 2.0).abs() < 0.2, "inflation {inf}");
        let s = est.predict(key(), c, Watts(1.0));
        assert!((s.value() - 2.0).abs() < 0.25);
        assert_eq!(est.tracked(), 1);
    }

    #[test]
    fn high_percentile_prices_the_tail() {
        // 80% of runs at 1x, 20% at 3x: p90 should price near 3x, p50
        // near 1x.
        let mut rng = SplitMix64::new(5);
        let mut p90 = VariableCostEstimator::new(0.9);
        let mut p50 = VariableCostEstimator::new(0.5);
        let c = cost(1.0, 0.01);
        for _ in 0..2000 {
            let observed = if rng.chance(0.2) { 3.0 } else { 1.0 };
            for est in [&mut p90, &mut p50] {
                est.note_base(key(), c, Watts(1.0));
                est.observe(key(), Seconds(observed));
            }
        }
        assert!(p90.inflation(key()) > 2.0, "p90 {}", p90.inflation(key()));
        assert!(p50.inflation(key()) < 1.5, "p50 {}", p50.inflation(key()));
    }

    #[test]
    fn inflation_is_clamped() {
        let mut est = VariableCostEstimator::new(0.9);
        let c = cost(1.0, 0.01);
        for _ in 0..50 {
            est.note_base(key(), c, Watts(1.0));
            est.observe(key(), Seconds(100.0)); // 100x — absurd
        }
        assert!(est.inflation(key()) <= MAX_INFLATION);
        for _ in 0..500 {
            est.note_base(key(), c, Watts(1.0));
            est.observe(key(), Seconds(0.0001));
        }
        assert!(est.inflation(key()) >= MIN_INFLATION);
    }

    #[test]
    fn prediction_stays_power_aware() {
        // Unlike the Avg-S_e2e baseline, the variable-cost estimator
        // still scales with input power.
        let mut est = VariableCostEstimator::new(0.9);
        let c = cost(1.0, 0.04);
        for _ in 0..50 {
            est.note_base(key(), c, Watts(0.04));
            est.observe(key(), Seconds(1.5));
        }
        let hi = est.predict(key(), c, Watts(0.04));
        let lo = est.predict(key(), c, Watts(0.01));
        assert!(lo > hi * 3.0, "lo {lo} vs hi {hi}");
    }

    #[test]
    fn state_roundtrip_resumes_bit_exactly() {
        let mut rng = SplitMix64::new(11);
        let mut a = VariableCostEstimator::new(0.9);
        let c = cost(1.0, 0.01);
        for _ in 0..200 {
            a.note_base(key(), c, Watts(1.0));
            a.observe(key(), Seconds(1.0 + rng.next_f64()));
        }
        let state = a.save_state();
        let mut b = VariableCostEstimator::new(0.9);
        b.restore_state(&state).unwrap();
        assert_eq!(b.tracked(), a.tracked());
        assert_eq!(a.inflation(key()), b.inflation(key()));
        for _ in 0..200 {
            let obs = Seconds(1.0 + rng.next_f64());
            a.note_base(key(), c, Watts(1.0));
            b.note_base(key(), c, Watts(1.0));
            a.observe(key(), obs);
            b.observe(key(), obs);
            assert_eq!(
                a.predict(key(), c, Watts(1.0)),
                b.predict(key(), c, Watts(1.0))
            );
        }
        // Foreign state kinds are rejected.
        assert!(b
            .restore_state(&crate::service::EstimatorState::Stateless)
            .is_err());
    }

    #[test]
    #[should_panic(expected = "percentile")]
    fn rejects_bad_percentile() {
        VariableCostEstimator::new(1.0);
    }
}
