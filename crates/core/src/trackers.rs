//! Runtime trackers for task execution probability and input-arrival
//! rate (paper §4.1, §5.1).

use crate::model::{AppSpec, TaskId};
use crate::window::{BitWindow, BitWindowState};
use alloc::format;
use alloc::string::String;
use alloc::vec::Vec;
use qz_types::Hertz;

/// Tracks, per task, the fraction of recently completed jobs for which
/// the task executed — Quetzal's estimate of each task's
/// `execution_probability`.
///
/// The bit-vectors are updated atomically for all of a job's tasks on
/// job completion, mirroring the paper's library behaviour.
#[derive(Debug, Clone)]
pub struct ExecutionTracker {
    windows: Vec<BitWindow>,
}

impl ExecutionTracker {
    /// Creates one window of `task_window` bits per task in the spec.
    ///
    /// # Panics
    ///
    /// Panics if `task_window` is outside [`BitWindow`]'s capacity range.
    pub fn new(spec: &AppSpec, task_window: usize) -> ExecutionTracker {
        ExecutionTracker {
            windows: spec
                .tasks()
                .iter()
                .map(|_| BitWindow::new(task_window))
                .collect(),
        }
    }

    /// Records a completed job: for each `(task, executed)` pair, appends
    /// the execution bit to that task's window.
    ///
    /// Only the completed job's tasks are updated — other tasks' histories
    /// describe "fraction of *their* job's inputs that ran them", matching
    /// the per-task window semantics of §4.1.
    pub fn record_job(&mut self, executed: impl IntoIterator<Item = (TaskId, bool)>) {
        for (task, ran) in executed {
            self.windows[task.index()].push(ran);
        }
    }

    /// The tracked execution probability for a task. Before any history
    /// exists the estimate defaults to 1.0 — the conservative choice for
    /// IBO prediction (assume every task will run).
    pub fn probability(&self, task: TaskId) -> f64 {
        self.windows[task.index()].fraction().unwrap_or(1.0)
    }

    /// Number of tasks tracked.
    pub fn len(&self) -> usize {
        self.windows.len()
    }

    /// `true` if the spec had no tasks (never the case for a valid spec).
    pub fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }

    /// Captures every task's execution window for a simulation snapshot.
    pub fn save_state(&self) -> Vec<BitWindowState> {
        self.windows.iter().map(BitWindow::save_state).collect()
    }

    /// Restores windows captured by [`ExecutionTracker::save_state`].
    ///
    /// # Errors
    ///
    /// Rejects a state with a different task count or mismatched window
    /// shapes.
    pub fn restore_state(&mut self, state: &[BitWindowState]) -> Result<(), String> {
        if state.len() != self.windows.len() {
            return Err(format!(
                "execution-tracker task count mismatch: snapshot {} vs live {}",
                state.len(),
                self.windows.len()
            ));
        }
        for (window, saved) in self.windows.iter_mut().zip(state) {
            window.restore_state(saved)?;
        }
        Ok(())
    }
}

/// Tracks the input-arrival rate λ: the fraction of recent captures that
/// were stored into the input buffer, scaled by the capture rate.
///
/// λ feeds Little's Law (`E[N] = λ · E[S]`, Eq. 2): it is the rate at
/// which new inputs will join the queue while the scheduled job runs.
#[derive(Debug, Clone)]
pub struct ArrivalTracker {
    window: BitWindow,
    capture_rate: Hertz,
}

impl ArrivalTracker {
    /// Creates a tracker over the last `arrival_window` captures at the
    /// given capture rate.
    ///
    /// # Panics
    ///
    /// Panics if `arrival_window` is outside [`BitWindow`]'s capacity
    /// range or `capture_rate` is not positive.
    pub fn new(arrival_window: usize, capture_rate: Hertz) -> ArrivalTracker {
        assert!(capture_rate.value() > 0.0, "capture rate must be positive");
        ArrivalTracker {
            window: BitWindow::new(arrival_window),
            capture_rate,
        }
    }

    /// Records one capture: `stored` is whether it passed pre-filtering
    /// and was inserted into the input buffer.
    pub fn record_capture(&mut self, stored: bool) {
        self.window.push(stored);
    }

    /// The estimated arrival rate in inputs/second. Before any capture
    /// history exists, assumes every capture is stored (conservative).
    pub fn lambda(&self) -> f64 {
        self.window.fraction().unwrap_or(1.0) * self.capture_rate.value()
    }

    /// The configured capture rate.
    pub fn capture_rate(&self) -> Hertz {
        self.capture_rate
    }

    /// Captures the arrival window for a simulation snapshot (the
    /// capture rate is configuration, not state).
    pub fn save_state(&self) -> BitWindowState {
        self.window.save_state()
    }

    /// Restores the window captured by [`ArrivalTracker::save_state`].
    ///
    /// # Errors
    ///
    /// Rejects a state whose window shape does not match.
    pub fn restore_state(&mut self, state: &BitWindowState) -> Result<(), String> {
        self.window.restore_state(state)
    }
}

#[cfg(test)]
// Many assertions here pin values that are copied or computed exactly
// (literals, dyadic fractions, pass-through accessors); strict float
// comparison is the point.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;
    use crate::model::{AppSpecBuilder, TaskCost};
    use qz_types::{Seconds, Watts};

    fn spec() -> AppSpec {
        let mut b = AppSpecBuilder::new();
        let a = b
            .fixed_task("a", TaskCost::new(Seconds(1.0), Watts(0.01)))
            .unwrap();
        let c = b
            .fixed_task("c", TaskCost::new(Seconds(1.0), Watts(0.01)))
            .unwrap();
        b.job("j", vec![a, c]).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn execution_probability_defaults_to_one() {
        let t = ExecutionTracker::new(&spec(), 64);
        assert_eq!(t.probability(TaskId(0)), 1.0);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn execution_probability_tracks_history() {
        let mut t = ExecutionTracker::new(&spec(), 64);
        // Task 0 ran 3 of 4 jobs, task 1 ran 1 of 4.
        for (a, c) in [(true, false), (true, true), (true, false), (false, false)] {
            t.record_job([(TaskId(0), a), (TaskId(1), c)]);
        }
        assert!((t.probability(TaskId(0)) - 0.75).abs() < 1e-12);
        assert!((t.probability(TaskId(1)) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn execution_window_evicts() {
        let mut t = ExecutionTracker::new(&spec(), 4);
        for _ in 0..4 {
            t.record_job([(TaskId(0), true)]);
        }
        assert_eq!(t.probability(TaskId(0)), 1.0);
        for _ in 0..4 {
            t.record_job([(TaskId(0), false)]);
        }
        assert_eq!(t.probability(TaskId(0)), 0.0);
    }

    #[test]
    fn lambda_defaults_to_capture_rate() {
        let t = ArrivalTracker::new(256, Hertz(1.0));
        assert_eq!(t.lambda(), 1.0);
        assert_eq!(t.capture_rate(), Hertz(1.0));
    }

    #[test]
    fn lambda_scales_with_stored_fraction() {
        let mut t = ArrivalTracker::new(256, Hertz(2.0));
        // Half the captures stored → λ = 0.5 × 2 Hz = 1/s.
        for i in 0..100 {
            t.record_capture(i % 2 == 0);
        }
        assert!((t.lambda() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn lambda_adapts_to_activity_burst() {
        let mut t = ArrivalTracker::new(16, Hertz(1.0));
        for _ in 0..16 {
            t.record_capture(false);
        }
        assert_eq!(t.lambda(), 0.0);
        for _ in 0..16 {
            t.record_capture(true);
        }
        assert_eq!(t.lambda(), 1.0);
    }

    #[test]
    fn tracker_state_roundtrips() {
        let mut exec = ExecutionTracker::new(&spec(), 8);
        let mut arrivals = ArrivalTracker::new(16, Hertz(2.0));
        for i in 0..20 {
            exec.record_job([(TaskId(0), i % 2 == 0), (TaskId(1), i % 5 == 0)]);
            arrivals.record_capture(i % 3 == 0);
        }
        let exec_state = exec.save_state();
        let arr_state = arrivals.save_state();
        let mut exec2 = ExecutionTracker::new(&spec(), 8);
        let mut arr2 = ArrivalTracker::new(16, Hertz(2.0));
        exec2.restore_state(&exec_state).unwrap();
        arr2.restore_state(&arr_state).unwrap();
        assert_eq!(exec.probability(TaskId(0)), exec2.probability(TaskId(0)));
        assert_eq!(exec.probability(TaskId(1)), exec2.probability(TaskId(1)));
        assert_eq!(arrivals.lambda(), arr2.lambda());
        // Mismatched shapes are rejected.
        let mut wrong = ExecutionTracker::new(&spec(), 16);
        assert!(wrong.restore_state(&exec_state).is_err());
        assert!(ExecutionTracker::new(&spec(), 8)
            .restore_state(&exec_state[..1])
            .is_err());
    }

    #[test]
    #[should_panic(expected = "capture rate")]
    fn rejects_zero_capture_rate() {
        ArrivalTracker::new(16, Hertz(0.0));
    }
}
