//! Streaming quantile estimation (the P² algorithm).
//!
//! Support machinery for the [`variable`](crate::variable) extension:
//! estimating a percentile of observed service-time inflation without
//! storing samples — O(1) memory, O(1) update, exactly what an MCU
//! runtime can afford.
//!
//! Implements Jain & Chlamtac, "The P² algorithm for dynamic calculation
//! of quantiles and histograms without storing observations"
//! (CACM 1985): five markers track the minimum, the p/2, p and
//! (1+p)/2 quantiles and the maximum; marker heights are adjusted with a
//! piecewise-parabolic (P²) interpolation as observations stream in.

/// A streaming estimator for a single quantile `p ∈ (0, 1)`.
///
/// # Examples
///
/// ```
/// use quetzal::quantile::P2Quantile;
///
/// let mut q = P2Quantile::new(0.5);
/// for v in 1..=100 {
///     q.observe(v as f64);
/// }
/// let median = q.estimate().unwrap();
/// assert!((median - 50.0).abs() < 10.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct P2Quantile {
    p: f64,
    /// Marker heights (estimated quantile values).
    heights: [f64; 5],
    /// Marker positions (1-based observation ranks).
    positions: [f64; 5],
    /// Desired marker positions.
    desired: [f64; 5],
    /// Desired position increments per observation.
    increments: [f64; 5],
    count: usize,
}

impl P2Quantile {
    /// Creates an estimator for quantile `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not strictly between 0 and 1.
    pub fn new(p: f64) -> P2Quantile {
        assert!(p > 0.0 && p < 1.0, "quantile must be in (0, 1)");
        P2Quantile {
            p,
            heights: [0.0; 5],
            positions: [1.0, 2.0, 3.0, 4.0, 5.0],
            desired: [1.0, 1.0 + 2.0 * p, 1.0 + 4.0 * p, 3.0 + 2.0 * p, 5.0],
            increments: [0.0, p / 2.0, p, (1.0 + p) / 2.0, 1.0],
            count: 0,
        }
    }

    /// The target quantile.
    pub fn p(&self) -> f64 {
        self.p
    }

    /// Number of observations so far.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Captures the estimator's marker state for a simulation snapshot
    /// (the target quantile and its derived increments are configuration,
    /// not state).
    pub fn save_state(&self) -> P2QuantileState {
        P2QuantileState {
            heights: self.heights,
            positions: self.positions,
            desired: self.desired,
            count: self.count,
        }
    }

    /// Restores marker state captured by [`P2Quantile::save_state`]
    /// verbatim; the resumed estimator produces bit-identical estimates.
    pub fn restore_state(&mut self, state: &P2QuantileState) {
        self.heights = state.heights;
        self.positions = state.positions;
        self.desired = state.desired;
        self.count = state.count;
    }

    /// Feeds one observation.
    pub fn observe(&mut self, x: f64) {
        if !x.is_finite() {
            return; // ignore garbage rather than poisoning the markers
        }
        if self.count < 5 {
            self.heights[self.count] = x;
            self.count += 1;
            if self.count == 5 {
                // Sort the initial five observations into marker heights.
                self.heights.sort_unstable_by(|a, b| a.total_cmp(b));
            }
            return;
        }
        self.count += 1;

        // 1. Find the cell containing x; update extreme markers.
        let k = if x < self.heights[0] {
            self.heights[0] = x;
            0
        } else if x >= self.heights[4] {
            self.heights[4] = x;
            3
        } else {
            // heights[k] <= x < heights[k+1]
            let mut k = 0;
            for i in 0..4 {
                if x >= self.heights[i] && x < self.heights[i + 1] {
                    k = i;
                    break;
                }
            }
            k
        };

        // 2. Increment positions of markers above the cell.
        for i in (k + 1)..5 {
            self.positions[i] += 1.0;
        }
        for i in 0..5 {
            self.desired[i] += self.increments[i];
        }

        // 3. Adjust interior markers if they are off their desired
        //    positions by more than one rank.
        for i in 1..4 {
            let d = self.desired[i] - self.positions[i];
            let right_gap = self.positions[i + 1] - self.positions[i];
            let left_gap = self.positions[i - 1] - self.positions[i];
            if (d >= 1.0 && right_gap > 1.0) || (d <= -1.0 && left_gap < -1.0) {
                let d = if d > 0.0 { 1.0 } else { -1.0 };
                let candidate = self.parabolic(i, d);
                let new_height =
                    if self.heights[i - 1] < candidate && candidate < self.heights[i + 1] {
                        candidate
                    } else {
                        self.linear(i, d)
                    };
                self.heights[i] = new_height;
                self.positions[i] += d;
            }
        }
    }

    /// The current quantile estimate, or `None` before any observation.
    /// With fewer than five observations, returns the appropriate order
    /// statistic of what has been seen.
    pub fn estimate(&self) -> Option<f64> {
        match self.count {
            0 => None,
            n @ 1..=4 => {
                let mut seen = [0.0; 4];
                seen[..n].copy_from_slice(&self.heights[..n]);
                let slice = &mut seen[..n];
                slice.sort_unstable_by(|a, b| a.total_cmp(b));
                // `round_half_away` of a value in [0, 3] (n <= 4 and
                // p in [0, 1]), so the narrowing is exact.
                #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
                let idx = qz_types::round_half_away((n as f64 - 1.0) * self.p) as usize;
                Some(slice[idx.min(n - 1)])
            }
            _ => Some(self.heights[2]),
        }
    }

    /// Piecewise-parabolic height prediction for marker `i` moved by `d`.
    fn parabolic(&self, i: usize, d: f64) -> f64 {
        let q = &self.heights;
        let n = &self.positions;
        q[i] + d / (n[i + 1] - n[i - 1])
            * ((n[i] - n[i - 1] + d) * (q[i + 1] - q[i]) / (n[i + 1] - n[i])
                + (n[i + 1] - n[i] - d) * (q[i] - q[i - 1]) / (n[i] - n[i - 1]))
    }

    /// Linear fallback when the parabola leaves the bracketing heights.
    fn linear(&self, i: usize, d: f64) -> f64 {
        let j = if d > 0.0 { i + 1 } else { i - 1 };
        self.heights[i]
            + d * (self.heights[j] - self.heights[i]) / (self.positions[j] - self.positions[i])
    }
}

/// Marker state of a [`P2Quantile`], captured by
/// [`P2Quantile::save_state`]. Plain data for exact serialization.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct P2QuantileState {
    /// Marker heights (estimated quantile values).
    pub heights: [f64; 5],
    /// Marker positions (1-based observation ranks).
    pub positions: [f64; 5],
    /// Desired marker positions.
    pub desired: [f64; 5],
    /// Observations so far.
    pub count: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use qz_types::SplitMix64;

    fn exact_quantile(samples: &mut [f64], p: f64) -> f64 {
        samples.sort_unstable_by(|a, b| a.total_cmp(b));
        // p in [0, 1] and len >= 1, so the product is a small non-negative
        // integer after rounding.
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let idx = ((samples.len() as f64 - 1.0) * p).round() as usize;
        samples[idx]
    }

    #[test]
    fn empty_has_no_estimate() {
        assert_eq!(P2Quantile::new(0.5).estimate(), None);
        assert_eq!(P2Quantile::new(0.5).count(), 0);
    }

    #[test]
    fn small_counts_use_order_statistics() {
        let mut q = P2Quantile::new(0.5);
        q.observe(3.0);
        assert_eq!(q.estimate(), Some(3.0));
        q.observe(1.0);
        q.observe(2.0);
        let est = q.estimate().unwrap();
        assert!((1.0..=3.0).contains(&est));
    }

    #[test]
    fn state_roundtrip_resumes_bit_exactly() {
        let mut a = P2Quantile::new(0.9);
        let mut rng = SplitMix64::new(7);
        for _ in 0..500 {
            a.observe(rng.next_f64() * 10.0);
        }
        let mut b = P2Quantile::new(0.9);
        b.restore_state(&a.save_state());
        assert_eq!(a, b);
        for _ in 0..500 {
            let x = rng.next_f64() * 10.0;
            a.observe(x);
            b.observe(x);
            assert_eq!(a.estimate(), b.estimate());
        }
    }

    #[test]
    fn median_of_uniform_stream() {
        let mut q = P2Quantile::new(0.5);
        let mut rng = SplitMix64::new(42);
        for _ in 0..10_000 {
            q.observe(rng.next_f64() * 100.0);
        }
        let m = q.estimate().unwrap();
        assert!((m - 50.0).abs() < 3.0, "median estimate {m}");
    }

    #[test]
    fn p90_of_uniform_stream() {
        let mut q = P2Quantile::new(0.9);
        let mut rng = SplitMix64::new(7);
        for _ in 0..10_000 {
            q.observe(rng.next_f64());
        }
        let e = q.estimate().unwrap();
        assert!((e - 0.9).abs() < 0.03, "p90 estimate {e}");
    }

    #[test]
    fn heavy_tail_p95() {
        // Exponential-ish tail: p95 of Exp(1) is ~3.0.
        let mut q = P2Quantile::new(0.95);
        let mut rng = SplitMix64::new(9);
        let mut reference = Vec::new();
        for _ in 0..20_000 {
            let x = -(1.0 - rng.next_f64()).ln();
            q.observe(x);
            reference.push(x);
        }
        let exact = exact_quantile(&mut reference, 0.95);
        let est = q.estimate().unwrap();
        assert!(
            (est / exact - 1.0).abs() < 0.1,
            "est {est} vs exact {exact}"
        );
    }

    #[test]
    fn ignores_non_finite() {
        let mut q = P2Quantile::new(0.5);
        for v in [1.0, f64::NAN, 2.0, f64::INFINITY, 3.0] {
            q.observe(v);
        }
        assert_eq!(q.count(), 3);
        assert!(q.estimate().unwrap().is_finite());
    }

    #[test]
    #[should_panic(expected = "quantile must be in")]
    fn rejects_p_zero() {
        P2Quantile::new(0.0);
    }

    #[test]
    #[should_panic(expected = "quantile must be in")]
    fn rejects_p_one() {
        P2Quantile::new(1.0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn estimate_within_observed_range(
            values in proptest::collection::vec(-1e3f64..1e3, 5..300),
            p100 in 5u32..95,
        ) {
            let p = p100 as f64 / 100.0;
            let mut q = P2Quantile::new(p);
            let mut lo = f64::INFINITY;
            let mut hi = f64::NEG_INFINITY;
            for &v in &values {
                q.observe(v);
                lo = lo.min(v);
                hi = hi.max(v);
            }
            let est = q.estimate().unwrap();
            prop_assert!(est >= lo - 1e-9 && est <= hi + 1e-9, "est {} not in [{}, {}]", est, lo, hi);
        }

        #[test]
        fn tracks_sorted_reference_loosely(
            seed in any::<u64>(),
        ) {
            let mut rng = SplitMix64::new(seed);
            let mut q = P2Quantile::new(0.75);
            let mut all = Vec::new();
            for _ in 0..2000 {
                let v = rng.next_f64() * 10.0;
                q.observe(v);
                all.push(v);
            }
            let exact = exact_quantile(&mut all, 0.75);
            let est = q.estimate().unwrap();
            prop_assert!((est - exact).abs() < 0.8, "est {} vs exact {}", est, exact);
        }
    }
}
