//! Automatic failure bisection: find the exact first tick at which a
//! faulted campaign's state diverges from its fault-free twin.
//!
//! A violating campaign tells you *that* an invariant broke, somewhere
//! in a long run. This module tells you *when* the trouble started.
//! The faulted run and the fault-free twin are advanced in lockstep,
//! each feeding a `qz-snap` [`History`] ring at the same stride; the
//! first stride boundary where the two engine states disagree (the
//! injector's own state excluded — it is *supposed* to differ) brackets
//! the divergence to one stride. Within that bracket the exact tick is
//! found by binary search over simulated time: restore both twins to
//! the last-equal anchor, replay to the midpoint, compare, repeat. Both
//! phases lean on the engine's snapshot contract — restore-and-replay
//! is bit-identical to straight-through execution — so the reported
//! tick is the same one a millisecond-by-millisecond linear scan finds
//! (a property the test suite checks directly).

use crate::campaign::{injection_time, repro_line_for, CampaignConfig};
use crate::inject::AdversarialInjector;
use qz_app::build_simulation;
use qz_sim::{SimState, Simulation};
use qz_snap::History;
use qz_traces::SensingEnvironment;
use qz_types::{SimDuration, SimTime};
use std::fmt::Write as _;

/// Snapshot-ring shape the bisection uses for both twins.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BisectConfig {
    /// Capture stride for the coarse pass (also the widest a bracket
    /// can be before refinement).
    pub stride: SimDuration,
    /// Ring capacity per twin (the run's initial state is pinned
    /// besides, so the bracket survives even when old boundaries are
    /// evicted).
    pub capacity: usize,
}

impl Default for BisectConfig {
    /// 10 s stride, 64 ring slots per twin.
    fn default() -> BisectConfig {
        BisectConfig {
            stride: SimDuration::from_secs(10),
            capacity: 64,
        }
    }
}

/// The outcome of one bisection.
#[derive(Debug, Clone, PartialEq)]
pub struct BisectReport {
    /// Global campaign index bisected.
    pub campaign: usize,
    /// The campaign's derived fault-schedule seed.
    pub fault_seed: u64,
    /// First simulated instant at which the faulted twin's engine state
    /// differs from the fault-free twin's.
    pub first_divergent_tick: SimTime,
    /// The stride bracket the coarse pass produced (refinement searched
    /// inside it).
    pub bracket: (SimTime, SimTime),
    /// Restore-and-replay probes the refinement spent.
    pub probes: usize,
    /// Single-line command reproducing the campaign.
    pub repro: String,
}

impl BisectReport {
    /// Renders the report as human-readable text.
    pub fn render_text(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "bisect: campaign {} (fault seed {:#x}) first diverges from its \
             fault-free twin at t={}ms",
            self.campaign,
            self.fault_seed,
            self.first_divergent_tick.as_millis()
        );
        let _ = writeln!(
            s,
            "bracket: ({}ms, {}ms] narrowed in {} restore-and-replay probes",
            self.bracket.0.as_millis(),
            self.bracket.1.as_millis(),
            self.probes
        );
        let _ = writeln!(s, "repro: {}", self.repro);
        s
    }
}

/// Captures `sim` into `ring` and returns a clone of the state just
/// captured (the ring keeps the original).
fn capture_into(ring: &mut History, sim: &mut Simulation<'_>) -> Result<SimState, String> {
    ring.capture(sim)?;
    Ok(ring
        .nearest_at_or_before(sim.time())
        .expect("capture just succeeded")
        .1
        .clone())
}

/// Bisects campaign offset `offset` of `cfg` (global index
/// `cfg.start + offset`): finds the exact first tick at which the
/// faulted run's state diverges from the fault-free twin's.
///
/// # Errors
///
/// Fails when the two runs never diverge (the campaign's faults were
/// all inconsequential — nothing to bisect), or when a snapshot
/// capture/restore is rejected.
///
/// # Panics
///
/// Panics if the experiment config fails `qz-check` validation (the
/// same contract as [`qz_app::build_simulation`]).
pub fn bisect_campaign(
    cfg: &CampaignConfig,
    offset: usize,
    bc: &BisectConfig,
) -> Result<BisectReport, String> {
    let env = SensingEnvironment::generate(cfg.env, cfg.events, cfg.env_seed());
    let mut tweaks = cfg.tweaks.clone();
    tweaks.seed = cfg.sim_seed();
    let at = injection_time(cfg);
    let fault_seed = cfg.fault_seed(offset);

    let mut faulted = build_simulation(cfg.system, &cfg.profile, &env, &tweaks);
    faulted.set_fault_injector(Box::new(AdversarialInjector::activating_at(
        cfg.plan.clone(),
        fault_seed,
        at,
    )));
    let mut clean = build_simulation(cfg.system, &cfg.profile, &env, &tweaks);
    let mut ring_f = History::new(bc.stride, bc.capacity);
    let mut ring_c = History::new(bc.stride, bc.capacity);

    // Coarse pass: advance both twins in lockstep, snapshotting into
    // both rings at every stride boundary, until the states split. The
    // last-equal pair of ring entries become the refinement anchors.
    let mut lo_f = capture_into(&mut ring_f, &mut faulted)?;
    let mut lo_c = capture_into(&mut ring_c, &mut clean)?;
    if !lo_f.eq_ignoring_injector(&lo_c) {
        return Err(String::from(
            "twins differ at t=0 before any fault could fire",
        ));
    }
    let mut lo = SimTime::ZERO;
    let hi = loop {
        let both_done = faulted.is_done() && clean.is_done();
        let t = lo + bc.stride;
        faulted.step_until(t);
        clean.step_until(t);
        let f = capture_into(&mut ring_f, &mut faulted)?;
        let c = capture_into(&mut ring_c, &mut clean)?;
        if !f.eq_ignoring_injector(&c) {
            break t;
        }
        if both_done {
            return Err(String::from(
                "the faulted run never diverged from its fault-free twin \
                 (no consequential fault fired)",
            ));
        }
        lo = t;
        lo_f = f;
        lo_c = c;
    };
    let bracket = (lo, hi);

    // Refinement: binary search over simulated time inside the bracket.
    // Each probe restores both twins to the last-equal anchor and
    // replays to the midpoint — bit-exact by the snapshot contract.
    let mut probes = 0usize;
    let mut hi = hi;
    while hi.as_millis() - lo.as_millis() > 1 {
        let mid = SimTime::from_millis((lo.as_millis() + hi.as_millis()) / 2);
        faulted.restore_state(&lo_f)?;
        clean.restore_state(&lo_c)?;
        faulted.step_until(mid);
        clean.step_until(mid);
        probes += 1;
        let f = faulted.save_state()?;
        let c = clean.save_state()?;
        if f.eq_ignoring_injector(&c) {
            lo = mid;
            lo_f = f;
            lo_c = c;
        } else {
            hi = mid;
        }
    }

    Ok(BisectReport {
        campaign: cfg.start + offset,
        fault_seed,
        first_divergent_tick: hi,
        bracket,
        probes,
        repro: repro_line_for(cfg, cfg.start + offset),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::FaultPlan;
    use qz_app::SimTweaks;

    fn violent() -> CampaignConfig {
        CampaignConfig {
            events: 4,
            campaigns: 2,
            plan: FaultPlan::heavy(),
            tweaks: SimTweaks {
                drain: SimDuration::from_secs(30),
                ..SimTweaks::default()
            },
            ..CampaignConfig::default()
        }
    }

    /// Millisecond-by-millisecond lockstep scan — the ground truth the
    /// binary search must reproduce.
    fn linear_first_divergence(cfg: &CampaignConfig, offset: usize, upto: SimTime) -> SimTime {
        let env = SensingEnvironment::generate(cfg.env, cfg.events, cfg.env_seed());
        let mut tweaks = cfg.tweaks.clone();
        tweaks.seed = cfg.sim_seed();
        let mut faulted = build_simulation(cfg.system, &cfg.profile, &env, &tweaks);
        faulted.set_fault_injector(Box::new(AdversarialInjector::activating_at(
            cfg.plan.clone(),
            cfg.fault_seed(offset),
            injection_time(cfg),
        )));
        let mut clean = build_simulation(cfg.system, &cfg.profile, &env, &tweaks);
        let mut t = SimTime::ZERO;
        while t <= upto {
            t = SimTime::from_millis(t.as_millis() + 1);
            faulted.step_until(t);
            clean.step_until(t);
            let f = faulted.save_state().unwrap();
            let c = clean.save_state().unwrap();
            if !f.eq_ignoring_injector(&c) {
                return t;
            }
        }
        panic!("no divergence up to {}ms", upto.as_millis());
    }

    #[test]
    fn bisect_matches_a_linear_scan_exactly() {
        let cfg = violent();
        let bc = BisectConfig {
            stride: SimDuration::from_secs(5),
            capacity: 16,
        };
        let report = bisect_campaign(&cfg, 0, &bc).expect("heavy plan diverges");
        assert_eq!(
            report.first_divergent_tick,
            linear_first_divergence(&cfg, 0, report.first_divergent_tick),
            "binary search must land on the linear scan's tick"
        );
        assert!(report.bracket.0 < report.first_divergent_tick);
        assert!(report.first_divergent_tick <= report.bracket.1);
        assert!(report.probes > 0, "a 5 s bracket needs refinement");
        assert!(report.repro.starts_with("qz fault --system"));
        let text = report.render_text();
        assert!(text.contains("first diverges"), "{text}");
    }

    #[test]
    fn bisect_is_deterministic_across_runs_and_strides() {
        let cfg = violent();
        let a = bisect_campaign(&cfg, 1, &BisectConfig::default()).unwrap();
        let b = bisect_campaign(&cfg, 1, &BisectConfig::default()).unwrap();
        assert_eq!(a, b);
        // A different stride brackets differently but lands on the
        // identical divergent tick.
        let c = bisect_campaign(
            &cfg,
            1,
            &BisectConfig {
                stride: SimDuration::from_secs(3),
                capacity: 32,
            },
        )
        .unwrap();
        assert_eq!(a.first_divergent_tick, c.first_divergent_tick);
    }

    #[test]
    fn faultless_campaign_has_nothing_to_bisect() {
        let cfg = CampaignConfig {
            plan: FaultPlan::none(),
            ..violent()
        };
        let err = bisect_campaign(&cfg, 0, &BisectConfig::default()).unwrap_err();
        assert!(err.contains("never diverged"), "{err}");
    }
}
