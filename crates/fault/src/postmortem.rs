//! Flight-recorder postmortems for violated campaigns.
//!
//! A violation row in a [`FaultReport`] already carries the single-line
//! repro command; this module turns it into *evidence*: the campaign is
//! deterministically re-run (same seeds, same injector) to recover its
//! full `qz-obs` event stream, and the tail of that stream — plus the
//! periodic state digests — is written as a self-describing
//! `qz-flight/v1` JSON dump. Everything in the dump derives from
//! simulated state, so the bytes are identical on every machine (pinned
//! by the `flight_recorder` golden test).

use crate::campaign::{injection_time, CampaignConfig, CampaignRow, FaultReport};
use crate::inject::AdversarialInjector;
use crate::oracle::run_one;
use qz_app::build_simulation;
use qz_prof::{FlightMeta, FlightRecorder, DEFAULT_RING_CAPACITY};
use qz_traces::SensingEnvironment;
use qz_types::SimTime;
use std::path::{Path, PathBuf};

/// Builds the postmortem dump for one campaign row by re-running that
/// campaign deterministically and feeding its event stream through a
/// [`FlightRecorder`]. The dump embeds a `resume` snapshot — the
/// `qz-snap/v1` engine state right before the last state digest's tick
/// — so the final stretch of the crashed run can be replayed directly
/// instead of from tick zero.
///
/// # Panics
///
/// Panics when `qz-check` rejects the configuration (same contract as
/// [`crate::run_campaigns`], which already validated it).
pub fn postmortem_json(cfg: &CampaignConfig, report: &FaultReport, row: &CampaignRow) -> String {
    let env = SensingEnvironment::generate(cfg.env, cfg.events, cfg.env_seed());
    let mut tweaks = cfg.tweaks.clone();
    tweaks.seed = cfg.sim_seed();
    let at = injection_time(cfg);
    let injector = AdversarialInjector::activating_at(cfg.plan.clone(), row.fault_seed, at);
    let (faulted, _) = run_one(cfg.system, &cfg.profile, &env, &tweaks, Some(injector));
    let source = if row.violations.is_empty() {
        String::from("qz-fault differential oracle: clean campaign (requested dump)")
    } else {
        let invariants: Vec<&str> = row.violations.iter().map(|v| v.invariant).collect();
        format!(
            "qz-fault differential oracle: {} violated",
            invariants.join(", ")
        )
    };
    let meta = FlightMeta {
        source,
        repro: report.repro_line(row),
    };
    let recorder = FlightRecorder::from_events(meta, &faulted.events, DEFAULT_RING_CAPACITY);
    // Resume snapshot: deterministically re-run to the last digest's
    // tick and capture the engine state there. `step_until` leaves the
    // digest tick itself unprocessed, so resuming replays it first.
    let resume = recorder.digests().back().map(|d| {
        let mut sim = build_simulation(cfg.system, &cfg.profile, &env, &tweaks);
        sim.set_fault_injector(Box::new(AdversarialInjector::activating_at(
            cfg.plan.clone(),
            row.fault_seed,
            at,
        )));
        sim.step_until(SimTime::from_millis(d.t_ms));
        qz_snap::to_json(
            &sim.save_state()
                .expect("the adversarial injector supports snapshots"),
        )
    });
    recorder.to_json_with(None, resume.as_deref())
}

/// Writes one postmortem file per violated campaign into `dir`
/// (creating it), named `postmortem_c<campaign>.json`. Returns the
/// written paths, campaign order. No violations → no files.
///
/// # Errors
///
/// The first I/O error, with the offending path.
pub fn write_postmortems(
    cfg: &CampaignConfig,
    report: &FaultReport,
    dir: &Path,
) -> Result<Vec<PathBuf>, String> {
    let mut written = Vec::new();
    for row in &report.rows {
        if row.violations.is_empty() {
            continue;
        }
        if written.is_empty() {
            std::fs::create_dir_all(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
        }
        let path = dir.join(format!("postmortem_c{}.json", row.campaign));
        std::fs::write(&path, postmortem_json(cfg, report, row))
            .map_err(|e| format!("{}: {e}", path.display()))?;
        written.push(path);
    }
    Ok(written)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::run_campaigns;
    use crate::plan::FaultPlan;
    use qz_app::SimTweaks;
    use qz_fleet::Executor;
    use qz_prof::FLIGHT_SCHEMA;
    use qz_types::SimDuration;

    fn small() -> CampaignConfig {
        CampaignConfig {
            events: 4,
            campaigns: 2,
            plan: FaultPlan::heavy(),
            tweaks: SimTweaks {
                drain: SimDuration::from_secs(30),
                ..SimTweaks::default()
            },
            ..CampaignConfig::default()
        }
    }

    #[test]
    fn postmortem_dump_is_deterministic_and_self_describing() {
        let cfg = small();
        let report = run_campaigns(&cfg, Executor::new(2)).expect("campaigns run");
        let row = &report.rows[0];
        let a = postmortem_json(&cfg, &report, row);
        let b = postmortem_json(&cfg, &report, row);
        assert_eq!(a, b, "re-running the same campaign must dump identically");
        assert!(a.contains(FLIGHT_SCHEMA));
        assert!(a.contains("qz fault --system"), "repro line embedded");
        assert!(a.contains("\"ring\""));
        assert!(
            a.contains("\"resume\":{\"schema\":\"qz-snap/v1\""),
            "a resume snapshot at the last state digest is embedded"
        );
    }

    #[test]
    fn resume_snapshot_actually_resumes() {
        let cfg = small();
        let report = run_campaigns(&cfg, Executor::new(1)).expect("campaigns run");
        let row = &report.rows[1];
        let dump = postmortem_json(&cfg, &report, row);
        // Pull the spliced resume document back out of the dump: it
        // sits between the `resume` key and the `ring_dropped` key.
        let start = dump.find("\"resume\":").expect("resume embedded") + "\"resume\":".len();
        let end = dump
            .find(",\"ring_dropped\"")
            .expect("ring_dropped follows");
        let resume = &dump[start..end];

        // Restoring it into the campaign's configuration and finishing
        // must land on the same metrics as the straight-through re-run.
        let env = SensingEnvironment::generate(cfg.env, cfg.events, cfg.env_seed());
        let mut tweaks = cfg.tweaks.clone();
        tweaks.seed = cfg.sim_seed();
        let mut sim = build_simulation(cfg.system, &cfg.profile, &env, &tweaks);
        let state = qz_snap::from_json(resume, sim.runtime().spec()).expect("resume parses");
        sim.set_fault_injector(Box::new(AdversarialInjector::new(
            cfg.plan.clone(),
            row.fault_seed,
        )));
        sim.restore_state(&state).expect("resume restores");
        while sim.step() {}
        let (straight, _) = run_one(
            cfg.system,
            &cfg.profile,
            &env,
            &tweaks,
            Some(AdversarialInjector::new(cfg.plan.clone(), row.fault_seed)),
        );
        assert_eq!(sim.metrics(), &straight.metrics);
    }

    #[test]
    fn clean_report_writes_no_postmortems() {
        let cfg = small();
        let report = run_campaigns(&cfg, Executor::new(1)).expect("campaigns run");
        // The standard suite holds these invariants, so no files appear.
        if report.total_violations() == 0 {
            let dir = std::env::temp_dir().join("qz_fault_postmortem_none");
            let _ = std::fs::remove_dir_all(&dir);
            let written = write_postmortems(&cfg, &report, &dir).expect("write ok");
            assert!(written.is_empty());
            assert!(!dir.exists(), "directory only created when needed");
        }
    }
}
