//! Campaign orchestration: N independently-seeded faulted runs of one
//! configuration, each judged by the differential oracle, reduced into
//! one deterministic report.
//!
//! Determinism contract: every campaign's trajectory is a pure
//! function of `(CampaignConfig)` — the environment, simulator, and
//! fault schedules derive from the master seed via
//! [`SplitMix64::derive_stream`], campaigns are fanned out on the
//! [`Executor`] whose `map` returns input-ordered results, and the
//! report renderers emit nothing non-deterministic. A report is
//! byte-identical for a given config at any thread count.

use crate::inject::{AdversarialInjector, FaultStats};
use crate::invariants::{check_all, DiffInputs, Violation};
use crate::oracle::{oracle_environment, oracle_tweaks, run_one, RunOutcome};
use crate::plan::FaultPlan;
use qz_app::{apollo4, build_simulation, DeviceProfile, SimTweaks};
use qz_baselines::BaselineKind;
use qz_fleet::Executor;
use qz_obs::{Event, RecordingObserver};
use qz_sim::SimState;
use qz_traces::{EnvironmentKind, SensingEnvironment};
use qz_types::{SimDuration, SimTime, SplitMix64};
use std::fmt::Write as _;

/// One fault campaign family: a configuration plus how many seeds to
/// throw at it.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignConfig {
    /// The scheduling system under test.
    pub system: BaselineKind,
    /// Hardware profile.
    pub profile: DeviceProfile,
    /// Sensing environment kind.
    pub env: EnvironmentKind,
    /// Events in the generated environment.
    pub events: usize,
    /// Number of faulted runs to judge.
    pub campaigns: usize,
    /// Index of the first campaign (so `--start N --campaigns 1`
    /// reproduces campaign N of a larger sweep exactly).
    pub start: usize,
    /// Master seed; environment, simulator, and per-campaign fault
    /// streams derive from it.
    pub seed: u64,
    /// The fault plan every campaign runs.
    pub plan: FaultPlan,
    /// Instant the adversary activates. Before it every run is
    /// bit-identical to the fault-free reference, which lets the
    /// snapshot execution mode fork all faulted runs from one shared
    /// prefix snapshot instead of replaying the prefix per campaign.
    /// `ZERO` (the default) means faults can fire from the first tick.
    pub injection_at: SimDuration,
    /// Simulator knobs shared by every run (the seed field is
    /// overwritten by the derived stream).
    pub tweaks: SimTweaks,
}

impl Default for CampaignConfig {
    /// Quetzal on Apollo 4 in the crowded environment: 12 events,
    /// 8 campaigns of the standard plan.
    fn default() -> CampaignConfig {
        CampaignConfig {
            system: BaselineKind::Quetzal,
            profile: apollo4(),
            env: EnvironmentKind::Crowded,
            events: 12,
            campaigns: 8,
            start: 0,
            seed: 0xFA017,
            plan: FaultPlan::standard(),
            injection_at: SimDuration::ZERO,
            tweaks: SimTweaks::default(),
        }
    }
}

/// How [`run_campaigns_with`] executes the faulted runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CampaignMode {
    /// Every faulted run replays from tick zero with the injector gated
    /// until [`CampaignConfig::injection_at`].
    Replay,
    /// The fault-free prefix up to [`CampaignConfig::injection_at`] is
    /// simulated once, snapshotted, and every faulted run forks from
    /// that snapshot. Byte-identical reports to [`CampaignMode::Replay`]
    /// by the engine's snapshot contract; the prefix cost is paid once
    /// instead of once per campaign.
    Snapshot,
}

impl CampaignConfig {
    /// Seed for the generated sensing environment.
    pub fn env_seed(&self) -> u64 {
        SplitMix64::derive_stream(self.seed, 0)
    }

    /// Seed for the simulator's classification draws.
    pub fn sim_seed(&self) -> u64 {
        SplitMix64::derive_stream(self.seed, 1)
    }

    /// Seed for campaign `c`'s fault schedule (`c` is the offset within
    /// this config; the global index is `start + c`).
    pub fn fault_seed(&self, c: usize) -> u64 {
        SplitMix64::derive_stream(self.seed, 2 + (self.start + c) as u64)
    }

    /// The [`qz_check::FaultCheckInput`] scalars for this config's
    /// survivability preflight.
    pub fn check_input(&self) -> qz_check::FaultCheckInput {
        let d = &self.profile.device;
        let power = qz_sim::PowerConfig {
            harvester_cells: self.tweaks.harvester_cells,
            ..qz_sim::PowerConfig::default()
        };
        let latencies = [
            self.profile.ml_high.t_exe,
            self.profile.ml_low.t_exe,
            self.profile.annotate.t_exe,
            self.profile.radio_full.t_exe,
            self.profile.radio_byte.t_exe,
        ];
        let mean_latency =
            latencies.iter().map(|t| t.value()).sum::<f64>() / latencies.len() as f64;
        qz_check::FaultCheckInput {
            checkpoint_energy_j: d.checkpoint_energy.value(),
            restore_energy_j: d.restore_energy.value(),
            checkpoint_reserve_j: d.checkpoint_reserve().value(),
            harvest_ceiling_w: f64::from(power.harvester_cells)
                * power.cell_rating.value()
                * power.converter_efficiency,
            failure_rate_per_s: self.plan.failure_rate_per_s(),
            corruption_prob: self.plan.checkpoint_corruption,
            jit_checkpointing: matches!(
                self.tweaks.checkpoint_policy,
                qz_sim::CheckpointPolicy::JustInTime
            ),
            mean_task_latency_s: mean_latency,
        }
    }
}

/// Why a campaign family could not start.
#[derive(Debug)]
pub enum FaultError {
    /// The `QZ06x` survivability preflight found errors: the injected
    /// failure density livelocks the device, so the campaign would only
    /// confirm a foregone conclusion. The report carries the
    /// diagnostics.
    Infeasible(qz_check::Report),
    /// The config is structurally unusable (zero campaigns or events).
    BadConfig(String),
}

impl core::fmt::Display for FaultError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            FaultError::Infeasible(report) => {
                write!(f, "fault preflight failed:\n{}", report.render_text())
            }
            FaultError::BadConfig(why) => write!(f, "bad fault config: {why}"),
        }
    }
}

impl std::error::Error for FaultError {}

/// Runs the survivability preflight on its own — the same check
/// [`run_campaigns`] performs — so callers can surface warnings even
/// when the run proceeds.
pub fn preflight(cfg: &CampaignConfig) -> qz_check::Report {
    qz_check::check_faults(&cfg.check_input())
}

/// One judged campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignRow {
    /// Global campaign index (`start + offset`).
    pub campaign: usize,
    /// The derived fault-schedule seed this campaign ran under.
    pub fault_seed: u64,
    /// Total injected faults, across every class.
    pub faults: u64,
    /// Forced power failures among them.
    pub faults_power: u64,
    /// Corrupted checkpoints among them.
    pub faults_checkpoint: u64,
    /// Lowest stored energy the injector observed, joules.
    pub min_stored_j: f64,
    /// Every invariant violation the differential oracle found.
    pub violations: Vec<Violation>,
}

/// The outcome of one campaign family.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultReport {
    /// System label (e.g. `QZ`).
    pub system: String,
    /// CLI tokens that reproduce this family (system/device/env).
    repro: ReproTokens,
    /// Injection gate in whole seconds (0 = faults from the first tick).
    inject_at_s: u64,
    /// Events in the shared environment.
    pub events: usize,
    /// Plan preset label.
    pub preset: String,
    /// Master seed.
    pub seed: u64,
    /// Clean-run frames attempted (differential reference).
    pub clean_frames: u64,
    /// Oracle-run frames attempted (differential ceiling).
    pub oracle_frames: u64,
    /// Per-campaign rows, ordered by campaign index.
    pub rows: Vec<CampaignRow>,
}

/// The CLI-parsable tokens a repro line needs.
#[derive(Debug, Clone, PartialEq)]
struct ReproTokens {
    system: String,
    device: String,
    env: String,
}

/// The `qz fault --system` token for a kind, matching the CLI parser.
pub fn cli_system_token(kind: BaselineKind) -> String {
    match kind {
        BaselineKind::Quetzal => "qz".into(),
        BaselineKind::QuetzalHw => "qz-hw".into(),
        BaselineKind::NoAdapt => "na".into(),
        BaselineKind::AlwaysDegrade => "ad".into(),
        BaselineKind::CatNap => "cn".into(),
        BaselineKind::FixedThreshold(p) => format!("th{:.0}", p * 100.0),
        BaselineKind::PowerThreshold(_) => "pzo".into(),
        BaselineKind::AvgSe2e => "avgse2e".into(),
        BaselineKind::QuetzalVar(_) => "qz".into(), // no CLI spelling; nearest kin
        BaselineKind::FcfsIbo => "fcfs".into(),
        BaselineKind::LcfsIbo => "lcfs".into(),
        // Kinds added after this crate default to the primary system.
        _ => "qz".into(),
    }
}

/// The `--env` token for an environment kind.
pub fn cli_env_token(env: EnvironmentKind) -> &'static str {
    match env {
        EnvironmentKind::MoreCrowded => "more-crowded",
        EnvironmentKind::Crowded => "crowded",
        EnvironmentKind::LessCrowded => "less-crowded",
        EnvironmentKind::Short => "short",
        EnvironmentKind::Quiet => "quiet",
        // Kinds added after this crate default to the mid-load mix.
        _ => "crowded",
    }
}

/// The `--device` token for a profile (by its platform name).
pub fn cli_device_token(profile_name: &str) -> &'static str {
    if profile_name.to_ascii_lowercase().starts_with("msp430") {
        "msp430"
    } else {
        "apollo4"
    }
}

/// Formats a float for the report: fixed six decimals, so output is
/// reproducible and diff-friendly.
fn num(v: f64) -> String {
    format!("{v:.6}")
}

impl FaultReport {
    /// Total invariant violations across every campaign.
    pub fn total_violations(&self) -> usize {
        self.rows.iter().map(|r| r.violations.len()).sum()
    }

    /// Total injected faults across every campaign.
    pub fn total_faults(&self) -> u64 {
        self.rows.iter().map(|r| r.faults).sum()
    }

    /// The single-line command that reproduces campaign `row` alone.
    pub fn repro_line(&self, row: &CampaignRow) -> String {
        let inject = if self.inject_at_s == 0 {
            String::new()
        } else {
            format!(" --inject-at {}", self.inject_at_s)
        };
        format!(
            "qz fault --system {} --device {} --env {} --events {} --preset {} \
             --seed {:#x} --start {} --campaigns 1{inject}",
            self.repro.system,
            self.repro.device,
            self.repro.env,
            self.events,
            self.preset,
            self.seed,
            row.campaign
        )
    }

    /// The report as a JSON document. Keys are emitted in a fixed
    /// order; floats use six decimals — byte-identical across thread
    /// counts by construction.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        let _ = writeln!(s, "  \"system\": \"{}\",", self.system);
        let _ = writeln!(s, "  \"preset\": \"{}\",", self.preset);
        let _ = writeln!(s, "  \"seed\": {},", self.seed);
        let _ = writeln!(s, "  \"events\": {},", self.events);
        let _ = writeln!(s, "  \"campaigns\": {},", self.rows.len());
        let _ = writeln!(s, "  \"clean_frames\": {},", self.clean_frames);
        let _ = writeln!(s, "  \"oracle_frames\": {},", self.oracle_frames);
        let _ = writeln!(s, "  \"faults_injected\": {},", self.total_faults());
        let _ = writeln!(s, "  \"violations\": {},", self.total_violations());
        s.push_str("  \"per_campaign\": [\n");
        for (i, r) in self.rows.iter().enumerate() {
            let comma = if i + 1 < self.rows.len() { "," } else { "" };
            let mut viol = String::new();
            for (j, v) in r.violations.iter().enumerate() {
                let vcomma = if j + 1 < r.violations.len() { ", " } else { "" };
                let _ = write!(
                    viol,
                    "{{\"invariant\": \"{}\", \"detail\": \"{}\"}}{vcomma}",
                    v.invariant,
                    json_escape(&v.detail)
                );
            }
            let _ = writeln!(
                s,
                "    {{\"campaign\": {}, \"fault_seed\": {}, \"faults\": {}, \
                 \"faults_power\": {}, \"faults_checkpoint\": {}, \"min_stored_j\": {}, \
                 \"violations\": [{viol}]}}{comma}",
                r.campaign,
                r.fault_seed,
                r.faults,
                r.faults_power,
                r.faults_checkpoint,
                num(r.min_stored_j),
            );
        }
        s.push_str("  ]\n}\n");
        s
    }

    /// A human-oriented summary: one line per campaign, plus a repro
    /// command for every violating campaign.
    pub fn render_text(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "fault: {} campaigns of preset `{}` against {} (seed {:#x})",
            self.rows.len(),
            self.preset,
            self.system,
            self.seed
        );
        let _ = writeln!(
            s,
            "differential: clean run attempted {} frames, always-on oracle {}",
            self.clean_frames, self.oracle_frames
        );
        for r in &self.rows {
            let verdict = if r.violations.is_empty() {
                "ok".to_string()
            } else {
                format!("{} VIOLATIONS", r.violations.len())
            };
            let _ = writeln!(
                s,
                "  campaign {:>4}: {:>5} faults ({} power, {} corrupt), floor {} J — {verdict}",
                r.campaign,
                r.faults,
                r.faults_power,
                r.faults_checkpoint,
                num(r.min_stored_j),
            );
            for v in &r.violations {
                let _ = writeln!(s, "    [{}] {}", v.invariant, v.detail);
            }
            if !r.violations.is_empty() {
                let _ = writeln!(s, "    repro: {}", self.repro_line(r));
            }
        }
        let _ = writeln!(
            s,
            "total: {} faults injected, {} invariant violations",
            self.total_faults(),
            self.total_violations()
        );
        s
    }
}

/// Minimal JSON string escaping for violation details.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// The single-line `qz fault` command reproducing global campaign
/// `campaign` of `cfg` on its own — the same line a [`FaultReport`]
/// prints for a violating row.
pub fn repro_line_for(cfg: &CampaignConfig, campaign: usize) -> String {
    let inject_s = cfg.injection_at.as_millis() / 1000;
    let inject = if inject_s == 0 {
        String::new()
    } else {
        format!(" --inject-at {inject_s}")
    };
    format!(
        "qz fault --system {} --device {} --env {} --events {} --preset {} \
         --seed {:#x} --start {} --campaigns 1{inject}",
        cli_system_token(cfg.system),
        cli_device_token(cfg.profile.name),
        cli_env_token(cfg.env),
        cfg.events,
        cfg.plan.label,
        cfg.seed,
        campaign
    )
}

/// The injection gate as an absolute simulation instant.
pub(crate) fn injection_time(cfg: &CampaignConfig) -> SimTime {
    SimTime::from_millis(cfg.injection_at.as_millis())
}

/// Runs the fault-free reference and captures a snapshot at the
/// injection gate on the way (the shared prefix every faulted fork
/// resumes from).
fn run_clean_with_snapshot(
    cfg: &CampaignConfig,
    env: &SensingEnvironment,
    tweaks: &SimTweaks,
    at: SimTime,
) -> (RunOutcome, SimState) {
    let mut sim = build_simulation(cfg.system, &cfg.profile, env, tweaks);
    sim.set_observer(Box::new(RecordingObserver::new()));
    sim.step_until(at);
    let snap = sim
        .save_state()
        .expect("a fault-free run has no injector and always snapshots");
    while sim.step() {}
    let mut observer = sim.take_observer();
    let events = qz_obs::take_recorded(observer.as_mut()).unwrap_or_default();
    (
        RunOutcome {
            metrics: sim.metrics().clone(),
            events,
        },
        snap,
    )
}

/// Runs one faulted campaign from tick zero (the injector gated until
/// the injection instant).
pub(crate) fn run_faulted_replay(
    cfg: &CampaignConfig,
    env: &SensingEnvironment,
    tweaks: &SimTweaks,
    fault_seed: u64,
    at: SimTime,
) -> (RunOutcome, FaultStats) {
    let injector = AdversarialInjector::activating_at(cfg.plan.clone(), fault_seed, at);
    let (outcome, stats) = run_one(cfg.system, &cfg.profile, env, tweaks, Some(injector));
    (outcome, stats.expect("injector was installed"))
}

/// Runs one faulted campaign by forking the shared prefix snapshot:
/// restore, arm the injector, simulate only the suffix. The recorded
/// events are spliced after the clean run's prefix so the outcome is
/// byte-identical to [`run_faulted_replay`].
fn run_faulted_fork(
    cfg: &CampaignConfig,
    env: &SensingEnvironment,
    tweaks: &SimTweaks,
    snap: &SimState,
    prefix: &[Event],
    fault_seed: u64,
    at: SimTime,
) -> (RunOutcome, FaultStats) {
    let mut sim = build_simulation(cfg.system, &cfg.profile, env, tweaks);
    sim.restore_state(snap)
        .expect("the prefix snapshot restores into its own configuration");
    sim.set_observer(Box::new(RecordingObserver::new()));
    sim.set_fault_injector(Box::new(AdversarialInjector::activating_at(
        cfg.plan.clone(),
        fault_seed,
        at,
    )));
    while sim.step() {}
    let stats = sim
        .take_fault_injector()
        .and_then(|mut f| {
            f.as_any_mut().and_then(|any| {
                any.downcast_ref::<AdversarialInjector>()
                    .map(|a| a.stats().clone())
            })
        })
        .expect("injector was installed");
    let mut observer = sim.take_observer();
    let suffix = qz_obs::take_recorded(observer.as_mut()).unwrap_or_default();
    let mut events = prefix.to_vec();
    events.extend(suffix);
    (
        RunOutcome {
            metrics: sim.metrics().clone(),
            events,
        },
        stats,
    )
}

/// Runs the whole campaign family on `exec`'s thread crew in the
/// default [`CampaignMode::Snapshot`] execution mode and returns the
/// report. The report is byte-identical for a given config at any
/// thread count and in either execution mode.
///
/// # Errors
///
/// [`FaultError::BadConfig`] when the config has zero campaigns or
/// events; [`FaultError::Infeasible`] when the `QZ06x` survivability
/// preflight finds errors.
///
/// # Panics
///
/// Panics if the experiment config itself fails `qz-check` validation
/// (the same contract as [`qz_app::build_simulation`]).
pub fn run_campaigns(cfg: &CampaignConfig, exec: Executor) -> Result<FaultReport, FaultError> {
    run_campaigns_with(cfg, exec, CampaignMode::Snapshot)
}

/// [`run_campaigns`] with an explicit execution mode (the benchmark
/// harness runs both and asserts the reports are byte-identical).
///
/// # Errors
///
/// As for [`run_campaigns`].
///
/// # Panics
///
/// As for [`run_campaigns`].
pub fn run_campaigns_with(
    cfg: &CampaignConfig,
    exec: Executor,
    mode: CampaignMode,
) -> Result<FaultReport, FaultError> {
    if cfg.campaigns == 0 {
        return Err(FaultError::BadConfig(
            "fault needs at least one campaign".into(),
        ));
    }
    if cfg.events == 0 {
        return Err(FaultError::BadConfig(
            "environment needs at least one event".into(),
        ));
    }
    let report = preflight(cfg);
    if report.has_errors() {
        return Err(FaultError::Infeasible(report));
    }

    let env = SensingEnvironment::generate(cfg.env, cfg.events, cfg.env_seed());
    let mut tweaks = cfg.tweaks.clone();
    tweaks.seed = cfg.sim_seed();
    let at = injection_time(cfg);

    // The two references are shared by every campaign: one fault-free
    // run, one always-on oracle over the same event trace. In snapshot
    // mode the fault-free run doubles as the prefix-snapshot source.
    let (clean, snap) = match mode {
        CampaignMode::Replay => {
            let (clean, _) = run_one(cfg.system, &cfg.profile, &env, &tweaks, None);
            (clean, None)
        }
        CampaignMode::Snapshot => {
            let (clean, snap) = run_clean_with_snapshot(cfg, &env, &tweaks, at);
            (clean, Some(snap))
        }
    };
    // Events the forks never see: everything from ticks before the
    // gate (the snapshot captures the state with all of them applied).
    let prefix: Vec<Event> = if snap.is_some() {
        clean
            .events
            .iter()
            .filter(|e| e.t_ms < at.as_millis())
            .cloned()
            .collect()
    } else {
        Vec::new()
    };
    let oracle_env = oracle_environment(&env);
    let (oracle, _) = run_one(
        cfg.system,
        &cfg.profile,
        &oracle_env,
        &oracle_tweaks(&tweaks),
        None,
    );

    let jit = matches!(
        cfg.tweaks.checkpoint_policy,
        qz_sim::CheckpointPolicy::JustInTime
    );
    let rows: Vec<CampaignRow> = exec.map((0..cfg.campaigns).collect(), |_, c| {
        let fault_seed = cfg.fault_seed(c);
        let (faulted, stats) = match &snap {
            None => run_faulted_replay(cfg, &env, &tweaks, fault_seed, at),
            Some(s) => run_faulted_fork(cfg, &env, &tweaks, s, &prefix, fault_seed, at),
        };
        let violations = check_all(&DiffInputs {
            faulted: &faulted,
            clean: &clean,
            oracle: &oracle,
            stats: &stats,
            jit,
            system: cfg.system,
        });
        let m = &faulted.metrics;
        CampaignRow {
            campaign: cfg.start + c,
            fault_seed,
            faults: m.faults_total(),
            faults_power: m.faults_power,
            faults_checkpoint: m.faults_checkpoint,
            min_stored_j: if stats.min_stored_j.is_finite() {
                stats.min_stored_j
            } else {
                0.0
            },
            violations,
        }
    });

    Ok(FaultReport {
        system: cfg.system.label(),
        repro: ReproTokens {
            system: cli_system_token(cfg.system),
            device: cli_device_token(cfg.profile.name).to_string(),
            env: cli_env_token(cfg.env).to_string(),
        },
        inject_at_s: cfg.injection_at.as_millis() / 1000,
        events: cfg.events,
        preset: cfg.plan.label.to_string(),
        seed: cfg.seed,
        clean_frames: clean.metrics.frames_total,
        oracle_frames: oracle.metrics.frames_total,
        rows,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use qz_types::SimDuration;

    fn small() -> CampaignConfig {
        CampaignConfig {
            events: 4,
            campaigns: 3,
            tweaks: SimTweaks {
                drain: SimDuration::from_secs(30),
                ..SimTweaks::default()
            },
            ..CampaignConfig::default()
        }
    }

    #[test]
    fn small_campaign_runs_clean() {
        let report = run_campaigns(&small(), Executor::new(2)).expect("campaigns run");
        assert_eq!(report.rows.len(), 3);
        assert!(report.total_faults() > 0, "standard plan must fire");
        assert_eq!(
            report.total_violations(),
            0,
            "violations:\n{}",
            report.render_text()
        );
        assert!(report.oracle_frames >= report.clean_frames);
    }

    #[test]
    fn thread_count_does_not_change_the_report() {
        let cfg = small();
        let one = run_campaigns(&cfg, Executor::new(1)).expect("1 thread");
        let four = run_campaigns(&cfg, Executor::new(4)).expect("4 threads");
        assert_eq!(one.to_json(), four.to_json());
    }

    #[test]
    fn start_offset_reproduces_a_single_campaign() {
        let cfg = small();
        let full = run_campaigns(&cfg, Executor::new(1)).expect("full run");
        let solo_cfg = CampaignConfig {
            start: 2,
            campaigns: 1,
            ..cfg
        };
        let solo = run_campaigns(&solo_cfg, Executor::new(1)).expect("solo run");
        assert_eq!(solo.rows.len(), 1);
        assert_eq!(solo.rows[0], full.rows[2]);
    }

    #[test]
    fn zero_campaigns_is_rejected() {
        let cfg = CampaignConfig {
            campaigns: 0,
            ..small()
        };
        assert!(matches!(
            run_campaigns(&cfg, Executor::new(1)),
            Err(FaultError::BadConfig(_))
        ));
    }

    #[test]
    fn saturating_plan_is_rejected_by_preflight() {
        let cfg = CampaignConfig {
            plan: FaultPlan {
                power_failure_per_tick: 0.1, // 100/s × 1 mJ = 100 mW ≥ 48 mW
                ..FaultPlan::heavy()
            },
            ..small()
        };
        match run_campaigns(&cfg, Executor::new(1)) {
            Err(FaultError::Infeasible(report)) => assert!(report.has_errors()),
            other => panic!("expected infeasible, got {other:?}"),
        }
    }

    #[test]
    fn repro_line_uses_cli_tokens() {
        let report = run_campaigns(&small(), Executor::new(1)).expect("campaigns run");
        let line = report.repro_line(&report.rows[1]);
        assert!(line.starts_with("qz fault --system qz --device apollo4 --env crowded"));
        assert!(line.contains("--start 1 --campaigns 1"));
        assert!(line.contains("--preset standard"));
    }

    #[test]
    fn json_is_stable_and_balanced() {
        let report = run_campaigns(&small(), Executor::new(1)).expect("campaigns run");
        let a = report.to_json();
        assert_eq!(a, report.to_json());
        assert!(a.contains("\"campaigns\": 3"));
        assert_eq!(a.matches('{').count(), a.matches('}').count());
        assert_eq!(a.matches('[').count(), a.matches(']').count());
    }

    #[test]
    fn snapshot_and_replay_modes_report_identically() {
        let cfg = CampaignConfig {
            injection_at: SimDuration::from_secs(15),
            plan: FaultPlan::heavy(),
            ..small()
        };
        let replay = run_campaigns_with(&cfg, Executor::new(2), CampaignMode::Replay)
            .expect("replay mode runs");
        let snapshot = run_campaigns_with(&cfg, Executor::new(2), CampaignMode::Snapshot)
            .expect("snapshot mode runs");
        assert_eq!(replay, snapshot);
        assert_eq!(replay.to_json(), snapshot.to_json());
        assert!(replay.total_faults() > 0, "gated heavy plan still fires");
    }

    #[test]
    fn fork_equals_replay_for_every_campaign() {
        let cfg = CampaignConfig {
            injection_at: SimDuration::from_secs(15),
            plan: FaultPlan::heavy(),
            ..small()
        };
        let env = SensingEnvironment::generate(cfg.env, cfg.events, cfg.env_seed());
        let mut tweaks = cfg.tweaks.clone();
        tweaks.seed = cfg.sim_seed();
        let at = injection_time(&cfg);
        let (clean, snap) = run_clean_with_snapshot(&cfg, &env, &tweaks, at);
        let prefix: Vec<Event> = clean
            .events
            .iter()
            .filter(|e| e.t_ms < at.as_millis())
            .cloned()
            .collect();
        assert!(!prefix.is_empty(), "15 s of prefix produces events");
        for c in 0..cfg.campaigns {
            let seed = cfg.fault_seed(c);
            let (replayed, rs) = run_faulted_replay(&cfg, &env, &tweaks, seed, at);
            let (forked, fs) = run_faulted_fork(&cfg, &env, &tweaks, &snap, &prefix, seed, at);
            assert_eq!(replayed, forked, "campaign {c}: fork must be bit-exact");
            assert_eq!(rs, fs, "campaign {c}: injector stats must match");
        }
    }

    #[test]
    fn inject_at_appears_in_the_repro_line() {
        let cfg = CampaignConfig {
            injection_at: SimDuration::from_secs(15),
            plan: FaultPlan::heavy(),
            ..small()
        };
        let report = run_campaigns(&cfg, Executor::new(1)).expect("campaigns run");
        let line = report.repro_line(&report.rows[0]);
        assert!(line.ends_with("--campaigns 1 --inject-at 15"), "{line}");
        assert_eq!(line, repro_line_for(&cfg, 0));
        // Ungated configs keep the historical repro line exactly.
        let plain = run_campaigns(&small(), Executor::new(1)).expect("campaigns run");
        let line = plain.repro_line(&plain.rows[0]);
        assert!(line.ends_with("--start 0 --campaigns 1"), "{line}");
    }

    #[test]
    fn default_config_passes_preflight() {
        for plan in [
            FaultPlan::smoke(),
            FaultPlan::standard(),
            FaultPlan::heavy(),
        ] {
            let cfg = CampaignConfig {
                plan,
                ..CampaignConfig::default()
            };
            let r = preflight(&cfg);
            assert!(!r.has_errors(), "{}", r.render_text());
        }
    }
}
