//! # qz-fault — deterministic fault injection + differential oracle
//!
//! Intermittent-execution bugs hide in the gaps between power
//! failures: a checkpoint taken mid-task, a reboot mid-transmit, an
//! ADC misread feeding the `P_exe/P_in` ratio circuit garbage. This
//! crate attacks those gaps deliberately. A seeded
//! [`AdversarialInjector`] perturbs a running [`qz_sim`] simulation —
//! worst-case-phase power failures, checkpoint corruption, sensor
//! misreads, clock jitter, input bursts, uplink jams — and a
//! **differential oracle harness** replays every faulted run against
//! two references built from the *same* event trace:
//!
//! - the fault-free run of the identical configuration, and
//! - an always-on oracle (constant full sun, 1 F storage) that never
//!   browns out.
//!
//! Four invariants are machine-checked on every campaign
//! ([`invariants`]): replayed work is idempotent, no buffer entry is
//! lost or duplicated across reboots, energy accounting never goes
//! negative, and degradation decisions stay monotone in buffer
//! pressure (via the [`quetzal`] trace witnesses). Violations print a
//! single-line `--seed` repro command.
//!
//! Module map:
//!
//! - [`plan`] — per-class fault probabilities/amplitudes + presets
//!   (`smoke`, `standard`, `heavy`).
//! - [`inject`] — the seeded injector (six independent
//!   [`qz_types::SplitMix64`] streams, one per fault class).
//! - [`oracle`] — the three run drivers (faulted / clean / oracle).
//! - [`invariants`] — the four differential invariants.
//! - [`campaign`] — campaign fan-out on the [`qz_fleet::Executor`],
//!   `QZ06x` survivability preflight, deterministic reports. Faulted
//!   runs fork from a shared prefix snapshot at the injection instant
//!   ([`CampaignMode::Snapshot`], the default) instead of replaying the
//!   fault-free prefix once per campaign.
//! - [`postmortem`] — `qz-flight/v1` crash-dump evidence for violated
//!   campaigns (deterministic re-run → event ring + state digests +
//!   an embedded `qz-snap/v1` resume snapshot).
//! - [`bisect`] — automatic failure bisection: binary-search a
//!   `qz-snap` snapshot ring for the exact first tick at which a
//!   faulted run's state diverges from its fault-free twin.
//!
//! # Quickstart
//!
//! ```
//! use qz_fault::{run_campaigns, CampaignConfig, FaultPlan};
//! use qz_fleet::Executor;
//!
//! let cfg = CampaignConfig {
//!     events: 4,
//!     campaigns: 2,
//!     plan: FaultPlan::smoke(),
//!     tweaks: qz_app::SimTweaks {
//!         drain: qz_types::SimDuration::from_secs(30),
//!         ..qz_app::SimTweaks::default()
//!     },
//!     ..CampaignConfig::default()
//! };
//! let report = run_campaigns(&cfg, Executor::new(2)).unwrap();
//! assert_eq!(report.total_violations(), 0, "{}", report.render_text());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bisect;
pub mod campaign;
pub mod inject;
pub mod invariants;
pub mod oracle;
pub mod plan;
pub mod postmortem;

pub use bisect::{bisect_campaign, BisectConfig, BisectReport};
pub use campaign::{
    cli_device_token, cli_env_token, cli_system_token, preflight, repro_line_for, run_campaigns,
    run_campaigns_with, CampaignConfig, CampaignMode, CampaignRow, FaultError, FaultReport,
};
pub use inject::{AdversarialInjector, FaultStats};
pub use invariants::{check_all, DiffInputs, Violation};
pub use oracle::{oracle_environment, oracle_tweaks, run_one, RunOutcome};
pub use plan::FaultPlan;
pub use postmortem::{postmortem_json, write_postmortems};
