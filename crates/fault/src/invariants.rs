//! The four machine-checked invariants of the differential oracle.
//!
//! Every faulted run is judged against the fault-free run and the
//! always-on oracle of the same configuration (see [`crate::oracle`]):
//!
//! 1. **Replay idempotence** — under just-in-time checkpointing with no
//!    injected corruption, power failures replay nothing
//!    (`reexecuted == 0`, one checkpoint per failure), and no run
//!    observes more frames than the always-on oracle attempted.
//! 2. **Buffer conservation** — no entry is lost or duplicated across
//!    reboots: `arrivals == stored + ibo_discards`, every frame is
//!    missed/filtered/arrived, and everything stored is classified,
//!    reported, or still pending (± one in-flight entry).
//! 3. **Energy accounting** — stored energy never goes negative at any
//!    tick, and the end-of-run energy totals are finite and
//!    non-negative.
//! 4. **Decision monotonicity** — the recorded degradation decisions
//!    satisfy the quality-ordered IBO walk (for `IboEngine`-family
//!    systems) and never get *less* degraded as buffer pressure rises
//!    with identical model inputs (all systems except instantaneous
//!    power-threshold rules).

use crate::inject::FaultStats;
use crate::oracle::RunOutcome;
use qz_baselines::BaselineKind;

/// One invariant violation, labeled with the invariant that failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Which invariant failed (`replay_idempotent`,
    /// `buffer_conservation`, `energy_accounting`,
    /// `decision_monotone`).
    pub invariant: &'static str,
    /// What went wrong, human-readable.
    pub detail: String,
}

impl Violation {
    fn new(invariant: &'static str, detail: String) -> Violation {
        Violation { invariant, detail }
    }
}

/// Everything one differential judgment needs.
#[derive(Debug)]
pub struct DiffInputs<'a> {
    /// The faulted run under judgment.
    pub faulted: &'a RunOutcome,
    /// The fault-free run of the same configuration.
    pub clean: &'a RunOutcome,
    /// The always-on oracle run.
    pub oracle: &'a RunOutcome,
    /// The injector's accumulated statistics.
    pub stats: &'a FaultStats,
    /// `true` when the device checkpoints just-in-time.
    pub jit: bool,
    /// The system under test (selects which witnesses apply).
    pub system: BaselineKind,
}

/// Whether the system's degradation decisions come from the
/// quality-ordered `IboEngine` walk (Algorithm 2).
fn ibo_engine_family(kind: BaselineKind) -> bool {
    matches!(
        kind,
        BaselineKind::Quetzal
            | BaselineKind::QuetzalHw
            | BaselineKind::QuetzalVar(_)
            | BaselineKind::AvgSe2e
            | BaselineKind::FcfsIbo
            | BaselineKind::LcfsIbo
    )
}

/// Runs all four invariants and returns every violation found.
pub fn check_all(inputs: &DiffInputs<'_>) -> Vec<Violation> {
    let mut v = Vec::new();
    replay_idempotent(inputs, &mut v);
    buffer_conservation(inputs, &mut v);
    energy_accounting(inputs, &mut v);
    decision_monotone(inputs, &mut v);
    v
}

/// Invariant 1: interrupted work replays idempotently.
fn replay_idempotent(inputs: &DiffInputs<'_>, out: &mut Vec<Violation>) {
    const INV: &str = "replay_idempotent";
    let m = &inputs.faulted.metrics;
    if inputs.jit {
        // JIT checkpoints exactly at failure, so an uncorrupted restore
        // resumes with zero lost progress.
        if m.faults_checkpoint == 0 && m.reexecuted.as_millis() > 0 {
            out.push(Violation::new(
                INV,
                format!(
                    "JIT run with no corrupted checkpoints re-executed {} ms",
                    m.reexecuted.as_millis()
                ),
            ));
        }
        if m.checkpoints != m.power_failures {
            out.push(Violation::new(
                INV,
                format!(
                    "JIT checkpoints ({}) != power failures ({})",
                    m.checkpoints, m.power_failures
                ),
            ));
        }
    }
    // Reboots must not manufacture observations: net of injected burst
    // frames, the faulted run cannot attempt more captures — or see
    // more interesting frames — than the always-on oracle.
    let organic_frames = m.frames_total.saturating_sub(m.faults_burst);
    if organic_frames > inputs.oracle.metrics.frames_total {
        out.push(Violation::new(
            INV,
            format!(
                "faulted run attempted {organic_frames} organic frames, oracle only {}",
                inputs.oracle.metrics.frames_total
            ),
        ));
    }
    if m.interesting_total > inputs.oracle.metrics.interesting_total {
        out.push(Violation::new(
            INV,
            format!(
                "faulted run saw {} interesting frames, oracle only {}",
                m.interesting_total, inputs.oracle.metrics.interesting_total
            ),
        ));
    }
}

/// Invariant 2: no buffer entry is lost or duplicated across reboots.
fn buffer_conservation(inputs: &DiffInputs<'_>, out: &mut Vec<Violation>) {
    const INV: &str = "buffer_conservation";
    for (run, name) in [
        (inputs.faulted, "faulted"),
        (inputs.clean, "clean"),
        (inputs.oracle, "oracle"),
    ] {
        let m = &run.metrics;
        if m.arrivals != m.stored + m.ibo_discards {
            out.push(Violation::new(
                INV,
                format!(
                    "{name}: arrivals ({}) != stored ({}) + discards ({})",
                    m.arrivals, m.stored, m.ibo_discards
                ),
            ));
        }
        if m.frames_total < m.frames_missed_off + m.frames_filtered + m.arrivals {
            out.push(Violation::new(
                INV,
                format!(
                    "{name}: frames_total ({}) under-counts missed+filtered+arrived ({})",
                    m.frames_total,
                    m.frames_missed_off + m.frames_filtered + m.arrivals
                ),
            ));
        }
        // Everything stored leaves exactly once: classified away,
        // reported, or still pending. At most one entry may sit
        // in-flight inside an interrupted job at end-of-run.
        let processed = m.false_negatives + m.true_negatives + m.total_reports() + m.pending;
        if processed > m.stored || m.stored - processed > 1 {
            out.push(Violation::new(
                INV,
                format!(
                    "{name}: stored ({}) vs classified+reported+pending ({processed}) \
                     — an entry was lost or duplicated",
                    m.stored
                ),
            ));
        }
    }
}

/// Invariant 3: energy accounting never goes negative.
fn energy_accounting(inputs: &DiffInputs<'_>, out: &mut Vec<Violation>) {
    const INV: &str = "energy_accounting";
    let s = inputs.stats;
    if s.negative_energy_ticks > 0 {
        out.push(Violation::new(
            INV,
            format!(
                "stored energy was negative at {} ticks (floor {:.9} J)",
                s.negative_energy_ticks, s.min_stored_j
            ),
        ));
    }
    let m = &inputs.faulted.metrics;
    for (name, joules) in [
        ("energy_harvested", m.energy_harvested.value()),
        ("energy_wasted", m.energy_wasted.value()),
    ] {
        if !joules.is_finite() || joules < 0.0 {
            out.push(Violation::new(
                INV,
                format!("{name} is {joules} (must be finite and non-negative)"),
            ));
        }
    }
}

/// Invariant 4: degradation decisions stay consistent and monotone in
/// buffer pressure.
fn decision_monotone(inputs: &DiffInputs<'_>, out: &mut Vec<Violation>) {
    const INV: &str = "decision_monotone";
    if ibo_engine_family(inputs.system) {
        for w in quetzal::check_ibo_walk(&inputs.faulted.events) {
            out.push(Violation::new(
                INV,
                format!("t={}ms ibo walk: {}", w.t_ms, w.detail),
            ));
        }
    }
    // Power-threshold rules key on instantaneous P_in, which the event
    // does not carry — occupancy-monotonicity is not theirs to keep.
    if !matches!(inputs.system, BaselineKind::PowerThreshold(_)) {
        for w in quetzal::check_pressure_monotone(&inputs.faulted.events) {
            out.push(Violation::new(
                INV,
                format!("t={}ms pressure: {}", w.t_ms, w.detail),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qz_sim::Metrics;

    /// A self-consistent metrics block (all conservation laws hold).
    fn consistent() -> Metrics {
        Metrics {
            frames_total: 100,
            frames_filtered: 40,
            arrivals: 60,
            stored: 50,
            ibo_discards: 10,
            false_negatives: 5,
            true_negatives: 20,
            reports_interesting_high: 15,
            reports_interesting_low: 5,
            pending: 5,
            checkpoints: 3,
            power_failures: 3,
            interesting_total: 30,
            ..Metrics::default()
        }
    }

    fn outcome(metrics: Metrics) -> RunOutcome {
        RunOutcome {
            metrics,
            events: Vec::new(),
        }
    }

    fn judge(faulted: Metrics, oracle: Metrics) -> Vec<Violation> {
        let faulted = outcome(faulted);
        let clean = outcome(consistent());
        let oracle = outcome(oracle);
        let stats = FaultStats::default();
        check_all(&DiffInputs {
            faulted: &faulted,
            clean: &clean,
            oracle: &oracle,
            stats: &stats,
            jit: true,
            system: BaselineKind::Quetzal,
        })
    }

    fn oracle_metrics() -> Metrics {
        Metrics {
            frames_total: 200,
            frames_filtered: 80,
            arrivals: 120,
            stored: 120,
            false_negatives: 10,
            true_negatives: 50,
            reports_interesting_high: 55,
            pending: 5,
            interesting_total: 60,
            ..Metrics::default()
        }
    }

    #[test]
    fn consistent_run_passes() {
        let v = judge(consistent(), oracle_metrics());
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn lost_entry_is_flagged() {
        let mut m = consistent();
        m.stored -= 2; // two arrivals vanish
        let v = judge(m, oracle_metrics());
        assert!(v.iter().any(|x| x.invariant == "buffer_conservation"));
    }

    #[test]
    fn duplicated_entry_is_flagged() {
        let mut m = consistent();
        m.reports_interesting_high += 3; // more leaves than entries
        let v = judge(m, oracle_metrics());
        assert!(v.iter().any(|x| x.invariant == "buffer_conservation"));
    }

    #[test]
    fn jit_replay_is_flagged() {
        let mut m = consistent();
        m.reexecuted = qz_types::SimDuration::from_millis(500);
        let v = judge(m, oracle_metrics());
        assert!(v.iter().any(|x| x.invariant == "replay_idempotent"));
    }

    #[test]
    fn more_frames_than_oracle_is_flagged() {
        let mut m = consistent();
        m.frames_total = 500;
        m.frames_filtered = 440;
        let v = judge(m, oracle_metrics());
        assert!(v
            .iter()
            .any(|x| x.invariant == "replay_idempotent" && x.detail.contains("organic")));
    }

    #[test]
    fn negative_energy_is_flagged() {
        let faulted = outcome(consistent());
        let clean = outcome(consistent());
        let oracle = outcome(oracle_metrics());
        let stats = FaultStats {
            ticks: 100,
            min_stored_j: -0.002,
            negative_energy_ticks: 4,
            vulnerable_ticks: 0,
        };
        let v = check_all(&DiffInputs {
            faulted: &faulted,
            clean: &clean,
            oracle: &oracle,
            stats: &stats,
            jit: true,
            system: BaselineKind::Quetzal,
        });
        assert!(v.iter().any(|x| x.invariant == "energy_accounting"));
    }

    #[test]
    fn witness_families_are_selected_by_system() {
        assert!(ibo_engine_family(BaselineKind::Quetzal));
        assert!(ibo_engine_family(BaselineKind::FcfsIbo));
        assert!(!ibo_engine_family(BaselineKind::CatNap));
        assert!(!ibo_engine_family(BaselineKind::PowerThreshold(
            qz_types::Watts(0.03)
        )));
    }
}
