//! Fault plans: per-class injection probabilities and amplitudes.
//!
//! A plan is pure data — which adversities to inject and how hard —
//! while the [`crate::inject::AdversarialInjector`] owns the seeded
//! randomness that turns the plan into a concrete schedule. Keeping
//! the two separate means one plan can drive hundreds of independently
//! seeded campaigns, and a campaign is reproducible from
//! `(plan, seed)` alone.

use qz_types::SimDuration;

/// Per-class fault probabilities and amplitudes for one campaign.
///
/// Probabilities are per *opportunity*: power failures per 1 ms tick
/// (while powered on), checkpoint corruption per restore, ADC misreads
/// per scheduler power reading, clock jitter per task start, bursts per
/// capture boundary, jams per transmit attempt.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Preset name (`smoke`, `standard`, `heavy`, or `none`).
    pub label: &'static str,
    /// Power-failure probability per powered-on tick.
    pub power_failure_per_tick: f64,
    /// Multiplier on the failure probability inside a *vulnerable
    /// window*: mid-task (20–80 % progress), mid-transmit, or within a
    /// tick of a checkpoint — the worst-case phase alignments an
    /// adversary would target.
    pub phase_boost: f64,
    /// Probability a restore finds its checkpoint corrupted (forcing a
    /// from-scratch replay of the interrupted task).
    pub checkpoint_corruption: f64,
    /// Probability the scheduler's `P_in` reading is misread.
    pub adc_misread: f64,
    /// Relative misread amplitude: a misread scales the true reading by
    /// a uniform factor in `[1 − a, 1 + a]`, so amplitudes near 1 drive
    /// the `P_exe/P_in` ratio circuit toward its div-by-near-zero edge.
    pub adc_amplitude: f64,
    /// Probability a task start's latency is jittered.
    pub clock_jitter: f64,
    /// Relative jitter amplitude (uniform scale in `[1 − a, 1 + a]`).
    pub clock_amplitude: f64,
    /// Probability of an input-burst anomaly at a capture boundary.
    pub burst: f64,
    /// Maximum extra frames one burst injects (uniform in `1..=max`).
    pub burst_max: u32,
    /// Probability a transmit attempt is jammed into backoff.
    pub uplink_jam: f64,
    /// Longest jam-induced backoff.
    pub jam_max: SimDuration,
}

impl FaultPlan {
    /// The all-zero plan: an installed injector that never fires.
    /// A campaign under this plan must be byte-identical to a clean run
    /// (pinned by the differential tests).
    pub fn none() -> FaultPlan {
        FaultPlan {
            label: "none",
            power_failure_per_tick: 0.0,
            phase_boost: 1.0,
            checkpoint_corruption: 0.0,
            adc_misread: 0.0,
            adc_amplitude: 0.0,
            clock_jitter: 0.0,
            clock_amplitude: 0.0,
            burst: 0.0,
            burst_max: 0,
            uplink_jam: 0.0,
            jam_max: SimDuration::ZERO,
        }
    }

    /// Light adversity for CI smoke campaigns: every fault class fires,
    /// but rarely enough that short runs stay mostly productive.
    pub fn smoke() -> FaultPlan {
        FaultPlan {
            label: "smoke",
            power_failure_per_tick: 5e-5,
            phase_boost: 10.0,
            checkpoint_corruption: 0.05,
            adc_misread: 0.002,
            adc_amplitude: 0.5,
            clock_jitter: 0.002,
            clock_amplitude: 0.2,
            burst: 0.01,
            burst_max: 2,
            uplink_jam: 0.05,
            jam_max: SimDuration::from_millis(200),
        }
    }

    /// The default campaign plan: failures every few seconds with a
    /// strong bias toward vulnerable windows, moderate corruption and
    /// sensor noise.
    pub fn standard() -> FaultPlan {
        FaultPlan {
            label: "standard",
            power_failure_per_tick: 2e-4,
            phase_boost: 25.0,
            checkpoint_corruption: 0.15,
            adc_misread: 0.01,
            adc_amplitude: 0.9,
            clock_jitter: 0.01,
            clock_amplitude: 0.5,
            burst: 0.05,
            burst_max: 3,
            uplink_jam: 0.15,
            jam_max: SimDuration::from_millis(400),
        }
    }

    /// Near-torture adversity: roughly one failure per second, half of
    /// all restores corrupted, deep sensor and clock noise.
    pub fn heavy() -> FaultPlan {
        FaultPlan {
            label: "heavy",
            power_failure_per_tick: 1e-3,
            phase_boost: 50.0,
            checkpoint_corruption: 0.5,
            adc_misread: 0.05,
            adc_amplitude: 0.95,
            clock_jitter: 0.05,
            clock_amplitude: 0.9,
            burst: 0.15,
            burst_max: 5,
            uplink_jam: 0.4,
            jam_max: SimDuration::from_millis(800),
        }
    }

    /// Looks up a preset by name (case-insensitive).
    pub fn preset(name: &str) -> Option<FaultPlan> {
        match name.to_ascii_lowercase().as_str() {
            "none" => Some(FaultPlan::none()),
            "smoke" => Some(FaultPlan::smoke()),
            "standard" => Some(FaultPlan::standard()),
            "heavy" => Some(FaultPlan::heavy()),
            _ => None,
        }
    }

    /// Expected power-failure rate in failures/second (ticks are 1 ms),
    /// ignoring the phase boost: vulnerable windows are narrow, so the
    /// steady-state churn tracks the base rate.
    pub fn failure_rate_per_s(&self) -> f64 {
        self.power_failure_per_tick * 1000.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_resolve_by_name() {
        for name in ["none", "smoke", "standard", "heavy", "HEAVY"] {
            let plan = FaultPlan::preset(name).expect("known preset");
            assert_eq!(plan.label, name.to_ascii_lowercase());
        }
        assert!(FaultPlan::preset("torture").is_none());
    }

    #[test]
    fn presets_escalate() {
        let (s, m, h) = (
            FaultPlan::smoke(),
            FaultPlan::standard(),
            FaultPlan::heavy(),
        );
        assert!(s.power_failure_per_tick < m.power_failure_per_tick);
        assert!(m.power_failure_per_tick < h.power_failure_per_tick);
        assert!(s.checkpoint_corruption < m.checkpoint_corruption);
        assert!(m.checkpoint_corruption < h.checkpoint_corruption);
    }

    #[test]
    fn failure_rate_converts_ticks_to_seconds() {
        assert!((FaultPlan::standard().failure_rate_per_s() - 0.2).abs() < 1e-12);
    }
}
