//! Run drivers for the three-way differential: faulted, fault-free,
//! and always-on oracle executions of the *same* configuration.
//!
//! The differential harness compares each faulted run against two
//! references built from the identical event trace:
//!
//! - the **fault-free run** — same device, same seeds, no injector —
//!   which bounds what the configuration does on its own; and
//! - the **always-on oracle** — same events under constant full sun
//!   with a 1 F supercapacitor, so it never browns out and attempts
//!   every capture boundary. Its counters are the ceiling any
//!   intermittently-powered run must stay under.

use crate::inject::{AdversarialInjector, FaultStats};
use qz_app::{build_simulation, DeviceProfile, SimTweaks};
use qz_baselines::BaselineKind;
use qz_obs::{Event, RecordingObserver};
use qz_sim::Metrics;
use qz_traces::{SensingEnvironment, SolarTrace};
use qz_types::Farads;

/// One completed run: its metrics and full decision-event trace.
#[derive(Debug, Clone, PartialEq)]
pub struct RunOutcome {
    /// End-of-run counters.
    pub metrics: Metrics,
    /// The recorded `qz-obs` event stream (inputs to the witnesses).
    pub events: Vec<Event>,
}

/// The same sensing events under constant full sun — the harvest side
/// of the always-on oracle.
pub fn oracle_environment(env: &SensingEnvironment) -> SensingEnvironment {
    SensingEnvironment::with_parts(env.kind(), env.events().clone(), SolarTrace::constant(1.0))
}

/// The same tweaks with a 1 F supercapacitor: at full sun the oracle's
/// stored energy never reaches the brownout threshold, so it behaves as
/// a continuously-powered device.
pub fn oracle_tweaks(tweaks: &SimTweaks) -> SimTweaks {
    SimTweaks {
        supercap_capacitance: Some(Farads(1.0)),
        ..tweaks.clone()
    }
}

/// Runs one simulation to completion with the event recorder installed
/// and, optionally, a fault injector; returns the outcome plus the
/// injector's accumulated statistics when one was installed.
///
/// # Panics
///
/// Panics when `qz-check` rejects the configuration (same contract as
/// [`qz_app::build_simulation`]).
pub fn run_one(
    kind: BaselineKind,
    profile: &DeviceProfile,
    env: &SensingEnvironment,
    tweaks: &SimTweaks,
    injector: Option<AdversarialInjector>,
) -> (RunOutcome, Option<FaultStats>) {
    let mut sim = build_simulation(kind, profile, env, tweaks);
    sim.set_observer(Box::new(RecordingObserver::new()));
    if let Some(inj) = injector {
        sim.set_fault_injector(Box::new(inj));
    }
    while sim.step() {}
    let stats = sim.take_fault_injector().and_then(|mut f| {
        f.as_any_mut().and_then(|any| {
            any.downcast_ref::<AdversarialInjector>()
                .map(|a| a.stats().clone())
        })
    });
    let mut observer = sim.take_observer();
    let events = qz_obs::take_recorded(observer.as_mut()).unwrap_or_default();
    (
        RunOutcome {
            metrics: sim.metrics().clone(),
            events,
        },
        stats,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::FaultPlan;
    use qz_app::apollo4;
    use qz_traces::EnvironmentKind;

    fn short_tweaks() -> SimTweaks {
        SimTweaks {
            drain: qz_types::SimDuration::from_secs(30),
            ..SimTweaks::default()
        }
    }

    fn env() -> SensingEnvironment {
        SensingEnvironment::generate(EnvironmentKind::Crowded, 5, 77)
    }

    #[test]
    fn oracle_never_browns_out_and_attempts_every_frame() {
        let env = env();
        let t = short_tweaks();
        let (clean, _) = run_one(BaselineKind::Quetzal, &apollo4(), &env, &t, None);
        let (oracle, _) = run_one(
            BaselineKind::Quetzal,
            &apollo4(),
            &oracle_environment(&env),
            &oracle_tweaks(&t),
            None,
        );
        assert_eq!(oracle.metrics.power_failures, 0);
        assert!(oracle.metrics.frames_total >= clean.metrics.frames_total);
        assert!(oracle.metrics.interesting_total >= clean.metrics.interesting_total);
    }

    #[test]
    fn none_plan_matches_the_clean_run_exactly() {
        let env = env();
        let t = short_tweaks();
        let (clean, stats) = run_one(BaselineKind::Quetzal, &apollo4(), &env, &t, None);
        assert!(stats.is_none());
        let (nulled, stats) = run_one(
            BaselineKind::Quetzal,
            &apollo4(),
            &env,
            &t,
            Some(AdversarialInjector::new(FaultPlan::none(), 9)),
        );
        let stats = stats.expect("injector installed");
        assert_eq!(clean.metrics, nulled.metrics);
        assert_eq!(clean.events, nulled.events);
        assert!(stats.ticks > 0);
        assert_eq!(stats.negative_energy_ticks, 0);
    }

    #[test]
    fn faulted_run_records_injections() {
        let env = env();
        let t = short_tweaks();
        let (faulted, stats) = run_one(
            BaselineKind::Quetzal,
            &apollo4(),
            &env,
            &t,
            Some(AdversarialInjector::new(FaultPlan::heavy(), 5)),
        );
        let stats = stats.expect("injector installed");
        assert!(faulted.metrics.faults_total() > 0, "heavy plan must fire");
        assert!(stats.ticks > 0);
        assert!(
            faulted
                .events
                .iter()
                .any(|e| matches!(e.kind, qz_obs::EventKind::FaultInjected { .. })),
            "fault events must appear in the trace"
        );
    }
}
