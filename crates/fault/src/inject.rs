//! The adversarial injector: a seeded [`FaultInjector`] that turns a
//! [`FaultPlan`] into a concrete, reproducible fault schedule.
//!
//! Each fault class draws from its own [`SplitMix64`] stream derived
//! from the campaign seed, so firing one class more often never
//! perturbs another class's schedule — the same property the simulator
//! relies on for its classification draws. Power failures are biased
//! toward *vulnerable windows* (mid-task, mid-transmit, right after a
//! checkpoint): the phase alignments where intermittent-execution bugs
//! hide.

use crate::plan::FaultPlan;
use qz_sim::{FaultContext, FaultInjector};
use qz_types::{SimDuration, SimTime, SplitMix64, Watts};

/// Stream indices for the per-class generators.
const STREAM_POWER: u64 = 0;
const STREAM_CORRUPT: u64 = 1;
const STREAM_ADC: u64 = 2;
const STREAM_CLOCK: u64 = 3;
const STREAM_BURST: u64 = 4;
const STREAM_JAM: u64 = 5;

/// Counters the injector accumulates alongside the simulator's own
/// fault metrics: energy-floor tracking for the non-negativity
/// invariant, plus how often the adversary found a vulnerable window.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultStats {
    /// Ticks observed (on or off).
    pub ticks: u64,
    /// Lowest stored energy seen at any tick, joules.
    pub min_stored_j: f64,
    /// Ticks at which stored energy was negative (beyond float noise).
    pub negative_energy_ticks: u64,
    /// Ticks that sat inside a vulnerable window.
    pub vulnerable_ticks: u64,
}

impl Default for FaultStats {
    fn default() -> FaultStats {
        FaultStats {
            ticks: 0,
            min_stored_j: f64::INFINITY,
            negative_energy_ticks: 0,
            vulnerable_ticks: 0,
        }
    }
}

/// A seeded, plan-driven fault injector.
#[derive(Debug)]
pub struct AdversarialInjector {
    plan: FaultPlan,
    power: SplitMix64,
    corrupt: SplitMix64,
    adc: SplitMix64,
    clock: SplitMix64,
    burst: SplitMix64,
    jam: SplitMix64,
    stats: FaultStats,
}

impl AdversarialInjector {
    /// Builds an injector for `plan` with per-class streams derived
    /// from `seed`.
    pub fn new(plan: FaultPlan, seed: u64) -> AdversarialInjector {
        let stream = |s| SplitMix64::new(SplitMix64::derive_stream(seed, s));
        AdversarialInjector {
            plan,
            power: stream(STREAM_POWER),
            corrupt: stream(STREAM_CORRUPT),
            adc: stream(STREAM_ADC),
            clock: stream(STREAM_CLOCK),
            burst: stream(STREAM_BURST),
            jam: stream(STREAM_JAM),
            stats: FaultStats::default(),
        }
    }

    /// The accumulated statistics.
    pub fn stats(&self) -> &FaultStats {
        &self.stats
    }

    /// Whether the context sits in a window the adversary targets:
    /// mid-task (20–80 % progress), mid-transmit, or within one tick of
    /// a checkpoint.
    fn vulnerable(ctx: &FaultContext) -> bool {
        let mid_task = matches!(
            ctx.phase,
            qz_sim::FaultPhase::Task { progress, .. } if (0.2..0.8).contains(&progress)
        );
        mid_task || ctx.transmitting || ctx.just_checkpointed
    }
}

impl FaultInjector for AdversarialInjector {
    fn on_tick(&mut self, ctx: &FaultContext) {
        self.stats.ticks += 1;
        let stored = ctx.stored.value();
        if stored < self.stats.min_stored_j {
            self.stats.min_stored_j = stored;
        }
        if stored < -1e-9 {
            self.stats.negative_energy_ticks += 1;
        }
        if Self::vulnerable(ctx) {
            self.stats.vulnerable_ticks += 1;
        }
    }

    fn force_power_failure(&mut self, ctx: &FaultContext) -> bool {
        let boost = if Self::vulnerable(ctx) {
            self.plan.phase_boost
        } else {
            1.0
        };
        self.power.chance(self.plan.power_failure_per_tick * boost)
    }

    fn corrupt_checkpoint(&mut self, _ctx: &FaultContext) -> bool {
        self.corrupt.chance(self.plan.checkpoint_corruption)
    }

    fn adc_misread(&mut self, _t: SimTime, p_in: Watts) -> Option<Watts> {
        if !self.adc.chance(self.plan.adc_misread) {
            return None;
        }
        let a = self.plan.adc_amplitude;
        Some(p_in * self.adc.next_range(1.0 - a, 1.0 + a))
    }

    fn clock_jitter(&mut self, _t: SimTime) -> Option<f64> {
        if !self.clock.chance(self.plan.clock_jitter) {
            return None;
        }
        let a = self.plan.clock_amplitude;
        Some(self.clock.next_range(1.0 - a, 1.0 + a))
    }

    fn extra_burst(&mut self, _t: SimTime) -> u32 {
        if self.plan.burst_max == 0 || !self.burst.chance(self.plan.burst) {
            return 0;
        }
        // Truncation-safe: burst_max is u32, the draw is below it.
        #[allow(clippy::cast_possible_truncation)]
        let n = self.burst.next_below(u64::from(self.plan.burst_max)) as u32;
        n + 1
    }

    fn jam_uplink(&mut self, _t: SimTime) -> Option<SimDuration> {
        if self.plan.jam_max.as_millis() == 0 || !self.jam.chance(self.plan.uplink_jam) {
            return None;
        }
        let ms = self.jam.next_below(self.plan.jam_max.as_millis()) + 1;
        Some(SimDuration::from_millis(ms))
    }

    fn as_any_mut(&mut self) -> Option<&mut dyn core::any::Any> {
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qz_sim::FaultPhase;
    use qz_types::Joules;

    fn ctx(phase: FaultPhase, transmitting: bool, just_checkpointed: bool) -> FaultContext {
        FaultContext {
            now: SimTime::ZERO,
            phase,
            stored: Joules(0.1),
            reserve: Joules(0.625e-3),
            occupancy: 0,
            capacity: 10,
            transmitting,
            just_checkpointed,
        }
    }

    #[test]
    fn zero_plan_never_fires() {
        let mut inj = AdversarialInjector::new(FaultPlan::none(), 7);
        let c = ctx(FaultPhase::Idle, false, false);
        for t in 0..10_000 {
            inj.on_tick(&c);
            assert!(!inj.force_power_failure(&c));
            assert!(!inj.corrupt_checkpoint(&c));
            assert!(inj.adc_misread(SimTime::ZERO, Watts(0.01)).is_none());
            assert!(inj.clock_jitter(SimTime::ZERO).is_none());
            assert_eq!(inj.extra_burst(SimTime::ZERO), 0);
            assert!(inj.jam_uplink(SimTime::ZERO).is_none());
            let _ = t;
        }
        assert_eq!(inj.stats().ticks, 10_000);
        assert_eq!(inj.stats().negative_energy_ticks, 0);
    }

    #[test]
    fn same_seed_same_schedule() {
        let draw = |seed| {
            let mut inj = AdversarialInjector::new(FaultPlan::heavy(), seed);
            let c = ctx(FaultPhase::Idle, false, false);
            (0..5_000)
                .map(|_| inj.force_power_failure(&c))
                .collect::<Vec<_>>()
        };
        assert_eq!(draw(42), draw(42));
        assert_ne!(draw(42), draw(43));
    }

    #[test]
    fn vulnerable_windows_attract_failures() {
        let fire_count = |phase, transmitting| {
            let mut inj = AdversarialInjector::new(FaultPlan::standard(), 11);
            let c = ctx(phase, transmitting, false);
            (0..100_000).filter(|_| inj.force_power_failure(&c)).count()
        };
        let idle = fire_count(FaultPhase::Idle, false);
        let mid = fire_count(
            FaultPhase::Task {
                index: 0,
                progress: 0.5,
            },
            false,
        );
        assert!(
            mid > idle * 5,
            "mid-task fired {mid}, idle fired {idle}: expected a strong boost"
        );
    }

    #[test]
    fn task_edges_are_not_boosted() {
        let early = ctx(
            FaultPhase::Task {
                index: 0,
                progress: 0.05,
            },
            false,
            false,
        );
        assert!(!AdversarialInjector::vulnerable(&early));
        assert!(AdversarialInjector::vulnerable(&ctx(
            FaultPhase::Idle,
            true,
            false
        )));
        assert!(AdversarialInjector::vulnerable(&ctx(
            FaultPhase::Idle,
            false,
            true
        )));
    }

    #[test]
    fn burst_and_jam_respect_bounds() {
        let mut inj = AdversarialInjector::new(FaultPlan::heavy(), 3);
        for _ in 0..50_000 {
            let b = inj.extra_burst(SimTime::ZERO);
            assert!(b <= FaultPlan::heavy().burst_max);
            if let Some(wait) = inj.jam_uplink(SimTime::ZERO) {
                assert!(wait.as_millis() >= 1);
                assert!(wait <= FaultPlan::heavy().jam_max);
            }
        }
    }

    #[test]
    fn stats_track_energy_floor() {
        let mut inj = AdversarialInjector::new(FaultPlan::none(), 1);
        let mut c = ctx(FaultPhase::Idle, false, false);
        c.stored = Joules(0.2);
        inj.on_tick(&c);
        c.stored = Joules(0.05);
        inj.on_tick(&c);
        assert!((inj.stats().min_stored_j - 0.05).abs() < 1e-15);
        c.stored = Joules(-0.01);
        inj.on_tick(&c);
        assert_eq!(inj.stats().negative_energy_ticks, 1);
    }
}
