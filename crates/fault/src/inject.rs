//! The adversarial injector: a seeded [`FaultInjector`] that turns a
//! [`FaultPlan`] into a concrete, reproducible fault schedule.
//!
//! Each fault class draws from its own [`SplitMix64`] stream derived
//! from the campaign seed, so firing one class more often never
//! perturbs another class's schedule — the same property the simulator
//! relies on for its classification draws. Power failures are biased
//! toward *vulnerable windows* (mid-task, mid-transmit, right after a
//! checkpoint): the phase alignments where intermittent-execution bugs
//! hide.

use crate::plan::FaultPlan;
use qz_sim::{FaultContext, FaultInjector, InjectorState};
use qz_types::{SimDuration, SimTime, SplitMix64, Watts};

/// Stream indices for the per-class generators.
const STREAM_POWER: u64 = 0;
const STREAM_CORRUPT: u64 = 1;
const STREAM_ADC: u64 = 2;
const STREAM_CLOCK: u64 = 3;
const STREAM_BURST: u64 = 4;
const STREAM_JAM: u64 = 5;

/// Counters the injector accumulates alongside the simulator's own
/// fault metrics: energy-floor tracking for the non-negativity
/// invariant, plus how often the adversary found a vulnerable window.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultStats {
    /// Ticks observed (on or off).
    pub ticks: u64,
    /// Lowest stored energy seen at any tick, joules.
    pub min_stored_j: f64,
    /// Ticks at which stored energy was negative (beyond float noise).
    pub negative_energy_ticks: u64,
    /// Ticks that sat inside a vulnerable window.
    pub vulnerable_ticks: u64,
}

impl Default for FaultStats {
    fn default() -> FaultStats {
        FaultStats {
            ticks: 0,
            min_stored_j: f64::INFINITY,
            negative_energy_ticks: 0,
            vulnerable_ticks: 0,
        }
    }
}

/// Number of words in the serialized [`InjectorState`]: six stream
/// states plus the four [`FaultStats`] counters.
const STATE_WORDS: usize = 10;

/// A seeded, plan-driven fault injector.
#[derive(Debug)]
pub struct AdversarialInjector {
    plan: FaultPlan,
    /// First instant the adversary is allowed to act. Before it, every
    /// hook returns its inert default *without drawing*, so a gated run
    /// is bit-identical to a fault-free run up to the gate — which is
    /// what lets campaigns fork all their faulted runs from one shared
    /// prefix snapshot.
    active_from: SimTime,
    power: SplitMix64,
    corrupt: SplitMix64,
    adc: SplitMix64,
    clock: SplitMix64,
    burst: SplitMix64,
    jam: SplitMix64,
    stats: FaultStats,
}

impl AdversarialInjector {
    /// Builds an injector for `plan` with per-class streams derived
    /// from `seed`, active from the first tick.
    pub fn new(plan: FaultPlan, seed: u64) -> AdversarialInjector {
        AdversarialInjector::activating_at(plan, seed, SimTime::ZERO)
    }

    /// Builds an injector that stays inert — no draws, no statistics —
    /// until simulated time reaches `active_from`.
    pub fn activating_at(plan: FaultPlan, seed: u64, active_from: SimTime) -> AdversarialInjector {
        let stream = |s| SplitMix64::new(SplitMix64::derive_stream(seed, s));
        AdversarialInjector {
            plan,
            active_from,
            power: stream(STREAM_POWER),
            corrupt: stream(STREAM_CORRUPT),
            adc: stream(STREAM_ADC),
            clock: stream(STREAM_CLOCK),
            burst: stream(STREAM_BURST),
            jam: stream(STREAM_JAM),
            stats: FaultStats::default(),
        }
    }

    /// The accumulated statistics.
    pub fn stats(&self) -> &FaultStats {
        &self.stats
    }

    /// Whether the gate is still closed at `now`.
    fn gated(&self, now: SimTime) -> bool {
        now < self.active_from
    }

    /// Whether the context sits in a window the adversary targets:
    /// mid-task (20–80 % progress), mid-transmit, or within one tick of
    /// a checkpoint.
    fn vulnerable(ctx: &FaultContext) -> bool {
        let mid_task = matches!(
            ctx.phase,
            qz_sim::FaultPhase::Task { progress, .. } if (0.2..0.8).contains(&progress)
        );
        mid_task || ctx.transmitting || ctx.just_checkpointed
    }
}

impl FaultInjector for AdversarialInjector {
    fn on_tick(&mut self, ctx: &FaultContext) {
        if self.gated(ctx.now) {
            return;
        }
        self.stats.ticks += 1;
        let stored = ctx.stored.value();
        if stored < self.stats.min_stored_j {
            self.stats.min_stored_j = stored;
        }
        if stored < -1e-9 {
            self.stats.negative_energy_ticks += 1;
        }
        if Self::vulnerable(ctx) {
            self.stats.vulnerable_ticks += 1;
        }
    }

    fn force_power_failure(&mut self, ctx: &FaultContext) -> bool {
        if self.gated(ctx.now) {
            return false;
        }
        let boost = if Self::vulnerable(ctx) {
            self.plan.phase_boost
        } else {
            1.0
        };
        self.power.chance(self.plan.power_failure_per_tick * boost)
    }

    fn corrupt_checkpoint(&mut self, ctx: &FaultContext) -> bool {
        if self.gated(ctx.now) {
            return false;
        }
        self.corrupt.chance(self.plan.checkpoint_corruption)
    }

    fn adc_misread(&mut self, t: SimTime, p_in: Watts) -> Option<Watts> {
        if self.gated(t) || !self.adc.chance(self.plan.adc_misread) {
            return None;
        }
        let a = self.plan.adc_amplitude;
        Some(p_in * self.adc.next_range(1.0 - a, 1.0 + a))
    }

    fn clock_jitter(&mut self, t: SimTime) -> Option<f64> {
        if self.gated(t) || !self.clock.chance(self.plan.clock_jitter) {
            return None;
        }
        let a = self.plan.clock_amplitude;
        Some(self.clock.next_range(1.0 - a, 1.0 + a))
    }

    fn extra_burst(&mut self, t: SimTime) -> u32 {
        if self.gated(t) || self.plan.burst_max == 0 || !self.burst.chance(self.plan.burst) {
            return 0;
        }
        // Truncation-safe: burst_max is u32, the draw is below it.
        #[allow(clippy::cast_possible_truncation)]
        let n = self.burst.next_below(u64::from(self.plan.burst_max)) as u32;
        n + 1
    }

    fn jam_uplink(&mut self, t: SimTime) -> Option<SimDuration> {
        if self.gated(t)
            || self.plan.jam_max.as_millis() == 0
            || !self.jam.chance(self.plan.uplink_jam)
        {
            return None;
        }
        let ms = self.jam.next_below(self.plan.jam_max.as_millis()) + 1;
        Some(SimDuration::from_millis(ms))
    }

    fn as_any_mut(&mut self) -> Option<&mut dyn core::any::Any> {
        Some(self)
    }

    fn save_state(&self) -> Option<InjectorState> {
        Some(InjectorState {
            words: vec![
                self.power.state(),
                self.corrupt.state(),
                self.adc.state(),
                self.clock.state(),
                self.burst.state(),
                self.jam.state(),
                self.stats.ticks,
                self.stats.min_stored_j.to_bits(),
                self.stats.negative_energy_ticks,
                self.stats.vulnerable_ticks,
            ],
        })
    }

    fn restore_state(&mut self, state: &InjectorState) -> Result<(), String> {
        if state.words.len() != STATE_WORDS {
            return Err(format!(
                "adversarial injector expects {STATE_WORDS} state words, snapshot has {}",
                state.words.len()
            ));
        }
        let w = &state.words;
        self.power = SplitMix64::from_state(w[0]);
        self.corrupt = SplitMix64::from_state(w[1]);
        self.adc = SplitMix64::from_state(w[2]);
        self.clock = SplitMix64::from_state(w[3]);
        self.burst = SplitMix64::from_state(w[4]);
        self.jam = SplitMix64::from_state(w[5]);
        self.stats = FaultStats {
            ticks: w[6],
            min_stored_j: f64::from_bits(w[7]),
            negative_energy_ticks: w[8],
            vulnerable_ticks: w[9],
        };
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qz_sim::FaultPhase;
    use qz_types::Joules;

    fn ctx(phase: FaultPhase, transmitting: bool, just_checkpointed: bool) -> FaultContext {
        FaultContext {
            now: SimTime::ZERO,
            phase,
            stored: Joules(0.1),
            reserve: Joules(0.625e-3),
            occupancy: 0,
            capacity: 10,
            transmitting,
            just_checkpointed,
        }
    }

    #[test]
    fn zero_plan_never_fires() {
        let mut inj = AdversarialInjector::new(FaultPlan::none(), 7);
        let c = ctx(FaultPhase::Idle, false, false);
        for t in 0..10_000 {
            inj.on_tick(&c);
            assert!(!inj.force_power_failure(&c));
            assert!(!inj.corrupt_checkpoint(&c));
            assert!(inj.adc_misread(SimTime::ZERO, Watts(0.01)).is_none());
            assert!(inj.clock_jitter(SimTime::ZERO).is_none());
            assert_eq!(inj.extra_burst(SimTime::ZERO), 0);
            assert!(inj.jam_uplink(SimTime::ZERO).is_none());
            let _ = t;
        }
        assert_eq!(inj.stats().ticks, 10_000);
        assert_eq!(inj.stats().negative_energy_ticks, 0);
    }

    #[test]
    fn same_seed_same_schedule() {
        let draw = |seed| {
            let mut inj = AdversarialInjector::new(FaultPlan::heavy(), seed);
            let c = ctx(FaultPhase::Idle, false, false);
            (0..5_000)
                .map(|_| inj.force_power_failure(&c))
                .collect::<Vec<_>>()
        };
        assert_eq!(draw(42), draw(42));
        assert_ne!(draw(42), draw(43));
    }

    #[test]
    fn vulnerable_windows_attract_failures() {
        let fire_count = |phase, transmitting| {
            let mut inj = AdversarialInjector::new(FaultPlan::standard(), 11);
            let c = ctx(phase, transmitting, false);
            (0..100_000).filter(|_| inj.force_power_failure(&c)).count()
        };
        let idle = fire_count(FaultPhase::Idle, false);
        let mid = fire_count(
            FaultPhase::Task {
                index: 0,
                progress: 0.5,
            },
            false,
        );
        assert!(
            mid > idle * 5,
            "mid-task fired {mid}, idle fired {idle}: expected a strong boost"
        );
    }

    #[test]
    fn task_edges_are_not_boosted() {
        let early = ctx(
            FaultPhase::Task {
                index: 0,
                progress: 0.05,
            },
            false,
            false,
        );
        assert!(!AdversarialInjector::vulnerable(&early));
        assert!(AdversarialInjector::vulnerable(&ctx(
            FaultPhase::Idle,
            true,
            false
        )));
        assert!(AdversarialInjector::vulnerable(&ctx(
            FaultPhase::Idle,
            false,
            true
        )));
    }

    #[test]
    fn burst_and_jam_respect_bounds() {
        let mut inj = AdversarialInjector::new(FaultPlan::heavy(), 3);
        for _ in 0..50_000 {
            let b = inj.extra_burst(SimTime::ZERO);
            assert!(b <= FaultPlan::heavy().burst_max);
            if let Some(wait) = inj.jam_uplink(SimTime::ZERO) {
                assert!(wait.as_millis() >= 1);
                assert!(wait <= FaultPlan::heavy().jam_max);
            }
        }
    }

    #[test]
    fn snapshot_roundtrip_resumes_every_stream() {
        let mut inj = AdversarialInjector::new(FaultPlan::heavy(), 42);
        let c = ctx(FaultPhase::Idle, false, false);
        for _ in 0..2_500 {
            inj.on_tick(&c);
            let _ = inj.force_power_failure(&c);
            let _ = inj.corrupt_checkpoint(&c);
            let _ = inj.adc_misread(SimTime::ZERO, Watts(0.01));
            let _ = inj.clock_jitter(SimTime::ZERO);
            let _ = inj.extra_burst(SimTime::ZERO);
            let _ = inj.jam_uplink(SimTime::ZERO);
        }
        let snap = inj.save_state().expect("adversarial injector snapshots");
        assert_eq!(snap.words.len(), 10);

        // A twin restored from the snapshot produces the identical
        // suffix schedule on every stream, and carries the stats over.
        let mut twin = AdversarialInjector::new(FaultPlan::heavy(), 1);
        twin.restore_state(&snap).unwrap();
        assert_eq!(twin.stats(), inj.stats());
        for _ in 0..2_500 {
            assert_eq!(twin.force_power_failure(&c), inj.force_power_failure(&c));
            assert_eq!(twin.corrupt_checkpoint(&c), inj.corrupt_checkpoint(&c));
            assert_eq!(
                twin.adc_misread(SimTime::ZERO, Watts(0.01)),
                inj.adc_misread(SimTime::ZERO, Watts(0.01))
            );
            assert_eq!(
                twin.clock_jitter(SimTime::ZERO),
                inj.clock_jitter(SimTime::ZERO)
            );
            assert_eq!(
                twin.extra_burst(SimTime::ZERO),
                inj.extra_burst(SimTime::ZERO)
            );
            assert_eq!(
                twin.jam_uplink(SimTime::ZERO),
                inj.jam_uplink(SimTime::ZERO)
            );
        }
    }

    #[test]
    fn wrong_word_count_is_rejected() {
        let mut inj = AdversarialInjector::new(FaultPlan::standard(), 7);
        let err = inj
            .restore_state(&InjectorState {
                words: vec![1, 2, 3],
            })
            .unwrap_err();
        assert!(err.contains("10 state words"), "{err}");
    }

    #[test]
    fn gate_suppresses_draws_and_stats_until_activation() {
        let at = SimTime::from_secs(10);
        let mut gated = AdversarialInjector::activating_at(FaultPlan::heavy(), 5, at);
        let mut early = ctx(FaultPhase::Idle, true, true);
        for t in 0..10_000u64 {
            early.now = SimTime::from_millis(t);
            gated.on_tick(&early);
            assert!(!gated.force_power_failure(&early));
            assert!(!gated.corrupt_checkpoint(&early));
            assert!(gated.adc_misread(early.now, Watts(0.01)).is_none());
            assert!(gated.clock_jitter(early.now).is_none());
            assert_eq!(gated.extra_burst(early.now), 0);
            assert!(gated.jam_uplink(early.now).is_none());
        }
        assert_eq!(gated.stats().ticks, 0, "gated ticks accumulate nothing");

        // After the gate, the schedule is the one a fresh injector
        // would produce: the gate made no draws.
        let mut fresh = AdversarialInjector::new(FaultPlan::heavy(), 5);
        let mut c = ctx(FaultPhase::Idle, false, false);
        c.now = at;
        for _ in 0..5_000 {
            assert_eq!(gated.force_power_failure(&c), fresh.force_power_failure(&c));
        }
    }

    #[test]
    fn stats_track_energy_floor() {
        let mut inj = AdversarialInjector::new(FaultPlan::none(), 1);
        let mut c = ctx(FaultPhase::Idle, false, false);
        c.stored = Joules(0.2);
        inj.on_tick(&c);
        c.stored = Joules(0.05);
        inj.on_tick(&c);
        assert!((inj.stats().min_stored_j - 0.05).abs() < 1e-15);
        c.stored = Joules(-0.01);
        inj.on_tick(&c);
        assert_eq!(inj.stats().negative_energy_ticks, 1);
    }
}
