//! Queueing-theory models underpinning Quetzal's IBO prediction.
//!
//! The paper grounds its design in queueing theory (§3, citing
//! Harchol-Balter's *Performance Modeling and Design of Computer
//! Systems*): the input buffer is a queue with arrival rate λ, Little's
//! Law `E[N] = λ·E[S]` predicts occupancy, and SJF is chosen because it
//! minimizes mean waiting time. This crate implements the standard
//! results the design leans on, so the simulator can be validated
//! against closed forms and the IBO engine's assumptions can be examined
//! quantitatively:
//!
//! - [`littles_law`] — the `E[N] = λ·E[S]` identity used by Algorithm 2.
//! - [`MM1`] — the M/M/1 queue (exponential interarrivals and service).
//! - [`MG1`] — the M/G/1 queue via the Pollaczek–Khinchine formula
//!   (general service distributions; an M/D/1 constructor covers the
//!   deterministic service times of profiled tasks).
//! - [`MM1K`] — the finite-capacity M/M/1/K queue, whose *blocking
//!   probability* is the analytic analogue of the input-buffer-overflow
//!   rate.
//!
//! The `queueing_validation` integration test compares the device
//! simulator's measured occupancy and loss rates against these formulas
//! in regimes where the assumptions approximately hold.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Little's Law: the long-run average number in the system.
///
/// # Examples
///
/// ```
/// use qz_queueing::littles_law;
/// // 0.5 arrivals/s held for 4 s each → 2 in the system on average.
/// assert_eq!(littles_law(0.5, 4.0), 2.0);
/// ```
pub fn littles_law(lambda: f64, expected_service: f64) -> f64 {
    lambda * expected_service
}

/// Validates a (λ, μ) pair and returns the utilization ρ = λ/μ.
fn utilization(lambda: f64, mu: f64) -> f64 {
    assert!(
        lambda >= 0.0 && lambda.is_finite(),
        "lambda must be non-negative and finite"
    );
    assert!(mu > 0.0 && mu.is_finite(), "mu must be positive and finite");
    lambda / mu
}

/// The M/M/1 queue: Poisson arrivals at rate λ, exponential service at
/// rate μ, infinite buffer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MM1 {
    /// Arrival rate λ (per second).
    pub lambda: f64,
    /// Service rate μ (per second).
    pub mu: f64,
}

impl MM1 {
    /// Creates the queue.
    ///
    /// # Panics
    ///
    /// Panics if λ is negative or μ is not positive.
    pub fn new(lambda: f64, mu: f64) -> MM1 {
        let _ = utilization(lambda, mu);
        MM1 { lambda, mu }
    }

    /// Utilization ρ = λ/μ.
    pub fn rho(&self) -> f64 {
        self.lambda / self.mu
    }

    /// `true` when the queue has a steady state (ρ < 1).
    pub fn is_stable(&self) -> bool {
        self.rho() < 1.0
    }

    /// Expected number in the system, `E[N] = ρ/(1−ρ)`.
    ///
    /// Returns `f64::INFINITY` for ρ ≥ 1.
    pub fn expected_number(&self) -> f64 {
        let rho = self.rho();
        if rho >= 1.0 {
            f64::INFINITY
        } else {
            rho / (1.0 - rho)
        }
    }

    /// Expected time in the system, `E[T] = 1/(μ−λ)` (via Little's Law).
    pub fn expected_time(&self) -> f64 {
        if self.rho() >= 1.0 {
            f64::INFINITY
        } else {
            1.0 / (self.mu - self.lambda)
        }
    }
}

/// The M/G/1 queue: Poisson arrivals, a general service distribution
/// described by its mean and squared coefficient of variation
/// `C² = Var[S]/E[S]²`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MG1 {
    /// Arrival rate λ (per second).
    pub lambda: f64,
    /// Mean service time `E[S]` (seconds).
    pub mean_service: f64,
    /// Squared coefficient of variation of the service time.
    pub cs2: f64,
}

impl MG1 {
    /// Creates the queue.
    ///
    /// # Panics
    ///
    /// Panics if λ is negative, the mean service is not positive, or
    /// `cs2` is negative.
    pub fn new(lambda: f64, mean_service: f64, cs2: f64) -> MG1 {
        let _ = utilization(lambda, 1.0 / mean_service);
        assert!(cs2 >= 0.0 && cs2.is_finite(), "cs2 must be non-negative");
        MG1 {
            lambda,
            mean_service,
            cs2,
        }
    }

    /// M/D/1: deterministic service (C² = 0) — the right model for
    /// Quetzal's profiled, constant-cost tasks at fixed power.
    pub fn deterministic(lambda: f64, service: f64) -> MG1 {
        MG1::new(lambda, service, 0.0)
    }

    /// M/M/1 as an M/G/1 special case (C² = 1).
    pub fn exponential(lambda: f64, mean_service: f64) -> MG1 {
        MG1::new(lambda, mean_service, 1.0)
    }

    /// Utilization `ρ = λ·E[S]`.
    pub fn rho(&self) -> f64 {
        self.lambda * self.mean_service
    }

    /// Pollaczek–Khinchine: expected number in the system,
    /// `E[N] = ρ + ρ²(1+C²) / (2(1−ρ))`.
    ///
    /// Returns `f64::INFINITY` for ρ ≥ 1.
    pub fn expected_number(&self) -> f64 {
        let rho = self.rho();
        if rho >= 1.0 {
            f64::INFINITY
        } else {
            rho + rho * rho * (1.0 + self.cs2) / (2.0 * (1.0 - rho))
        }
    }

    /// Expected waiting time in the queue (excluding service),
    /// `E[W] = λ·E[S²] / (2(1−ρ))`.
    pub fn expected_wait(&self) -> f64 {
        let rho = self.rho();
        if rho >= 1.0 {
            return f64::INFINITY;
        }
        let es2 = self.mean_service * self.mean_service * (1.0 + self.cs2);
        self.lambda * es2 / (2.0 * (1.0 - rho))
    }
}

/// The finite-capacity M/M/1/K queue: at most `K` customers in the
/// system; arrivals finding it full are *lost* — the analytic analogue of
/// an input buffer overflow.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MM1K {
    /// Arrival rate λ (per second).
    pub lambda: f64,
    /// Service rate μ (per second).
    pub mu: f64,
    /// System capacity (buffer slots, including the one in service).
    pub k: usize,
}

impl MM1K {
    /// Creates the queue.
    ///
    /// # Panics
    ///
    /// Panics if λ is negative, μ is not positive, or `k` is zero.
    pub fn new(lambda: f64, mu: f64, k: usize) -> MM1K {
        let _ = utilization(lambda, mu);
        assert!(k > 0, "capacity must be positive");
        MM1K { lambda, mu, k }
    }

    /// Utilization ρ = λ/μ (may exceed 1; the finite queue still has a
    /// steady state).
    pub fn rho(&self) -> f64 {
        self.lambda / self.mu
    }

    /// Steady-state probability of exactly `n` in the system.
    ///
    /// # Panics
    ///
    /// Panics if `n > k`.
    // Buffer sizes are tiny (tens of slots), so the i32 exponent casts
    // are exact.
    #[allow(clippy::cast_possible_truncation)]
    pub fn probability_of(&self, n: usize) -> f64 {
        assert!(n <= self.k, "state out of range");
        let rho = self.rho();
        if (rho - 1.0).abs() < 1e-12 {
            return 1.0 / (self.k + 1) as f64;
        }
        (1.0 - rho) * rho.powi(n as i32) / (1.0 - rho.powi(self.k as i32 + 1))
    }

    /// Blocking probability: the fraction of arrivals lost because the
    /// buffer is full — the closed-form IBO rate for Poisson arrivals and
    /// exponential service.
    pub fn blocking_probability(&self) -> f64 {
        self.probability_of(self.k)
    }

    /// Expected number in the system.
    pub fn expected_number(&self) -> f64 {
        (0..=self.k)
            .map(|n| n as f64 * self.probability_of(n))
            .sum()
    }

    /// Throughput of *accepted* arrivals, `λ·(1 − P_block)`.
    pub fn accepted_rate(&self) -> f64 {
        self.lambda * (1.0 - self.blocking_probability())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    // Small-integer products are exact in binary floating point.
    #[allow(clippy::float_cmp)]
    fn littles_law_identity() {
        assert_eq!(littles_law(2.0, 3.0), 6.0);
        assert_eq!(littles_law(0.0, 100.0), 0.0);
    }

    #[test]
    fn mm1_textbook_values() {
        // ρ = 0.5 → E[N] = 1, E[T] = 1/(μ−λ) = 2/μ.
        let q = MM1::new(0.5, 1.0);
        assert!(q.is_stable());
        assert!((q.expected_number() - 1.0).abs() < 1e-12);
        assert!((q.expected_time() - 2.0).abs() < 1e-12);
        // Little's Law ties them together.
        assert!((littles_law(q.lambda, q.expected_time()) - q.expected_number()).abs() < 1e-12);
    }

    #[test]
    fn mm1_saturates_at_unit_utilization() {
        let q = MM1::new(1.0, 1.0);
        assert!(!q.is_stable());
        assert!(q.expected_number().is_infinite());
        assert!(q.expected_time().is_infinite());
    }

    #[test]
    fn md1_halves_the_queueing_term() {
        // Classic result: the M/D/1 queue has half the waiting time of
        // the M/M/1 queue at the same utilization.
        let md1 = MG1::deterministic(0.8, 1.0);
        let mm1 = MG1::exponential(0.8, 1.0);
        assert!((md1.expected_wait() / mm1.expected_wait() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn mg1_exponential_matches_mm1() {
        let via_pk = MG1::exponential(0.6, 1.0).expected_number();
        let direct = MM1::new(0.6, 1.0).expected_number();
        assert!((via_pk - direct).abs() < 1e-12);
    }

    #[test]
    fn mm1k_probabilities_sum_to_one() {
        for rho10 in [3, 8, 10, 15] {
            let q = MM1K::new(rho10 as f64 / 10.0, 1.0, 10);
            let total: f64 = (0..=q.k).map(|n| q.probability_of(n)).sum();
            assert!((total - 1.0).abs() < 1e-9, "rho={rho10}: sum={total}");
        }
    }

    #[test]
    fn mm1k_blocking_grows_with_load() {
        let light = MM1K::new(0.2, 1.0, 10).blocking_probability();
        let heavy = MM1K::new(2.0, 1.0, 10).blocking_probability();
        assert!(light < 1e-6, "light load barely blocks: {light}");
        assert!(heavy > 0.4, "overload blocks about (rho-1)/rho: {heavy}");
    }

    #[test]
    fn mm1k_overload_blocking_approaches_flow_balance() {
        // In deep overload the accepted rate equals the service rate:
        // P_block → 1 − μ/λ.
        let q = MM1K::new(4.0, 1.0, 10);
        assert!((q.blocking_probability() - 0.75).abs() < 1e-3);
        assert!((q.accepted_rate() - 1.0).abs() < 1e-2);
    }

    #[test]
    fn mm1k_at_unit_load_is_uniform() {
        let q = MM1K::new(1.0, 1.0, 4);
        for n in 0..=4 {
            assert!((q.probability_of(n) - 0.2).abs() < 1e-12);
        }
        assert!((q.expected_number() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn mm1k_large_k_approaches_mm1() {
        let finite = MM1K::new(0.5, 1.0, 200);
        let infinite = MM1::new(0.5, 1.0);
        assert!((finite.expected_number() - infinite.expected_number()).abs() < 1e-6);
        assert!(finite.blocking_probability() < 1e-30);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn mm1k_rejects_zero_capacity() {
        MM1K::new(1.0, 1.0, 0);
    }

    #[test]
    #[should_panic(expected = "mu must be positive")]
    fn rejects_zero_service_rate() {
        MM1::new(1.0, 0.0);
    }

    proptest! {
        #[test]
        fn pk_number_at_least_utilization(lambda in 0.01f64..0.99, cs2 in 0.0f64..4.0) {
            let q = MG1::new(lambda, 1.0, cs2);
            prop_assert!(q.expected_number() >= q.rho() - 1e-12);
        }

        #[test]
        fn variability_only_hurts(lambda in 0.01f64..0.95, a in 0.0f64..2.0, b in 0.0f64..2.0) {
            // P-K is monotone in C²: more service variability, longer queues.
            let (lo, hi) = if a < b { (a, b) } else { (b, a) };
            let q_lo = MG1::new(lambda, 1.0, lo).expected_number();
            let q_hi = MG1::new(lambda, 1.0, hi).expected_number();
            prop_assert!(q_lo <= q_hi + 1e-12);
        }

        #[test]
        fn blocking_in_unit_interval(lambda in 0.0f64..5.0, k in 1usize..40) {
            let q = MM1K::new(lambda, 1.0, k);
            let p = q.blocking_probability();
            prop_assert!((0.0..=1.0).contains(&p));
            prop_assert!(q.expected_number() <= k as f64 + 1e-9);
        }

        #[test]
        fn smaller_buffers_block_more(lambda in 0.1f64..3.0, k in 2usize..20) {
            let small = MM1K::new(lambda, 1.0, k - 1).blocking_probability();
            let large = MM1K::new(lambda, 1.0, k).blocking_probability();
            prop_assert!(large <= small + 1e-12);
        }
    }
}
