//! A fluent builder for simulated applications.
//!
//! Assembling a simulated app otherwise means keeping three structures
//! in sync: the [`AppSpec`] (task costs and job
//! grouping), the behaviour vector (what each task does to an input) and
//! the route vector (where inputs go after each job).
//! [`SimAppBuilder`] couples them so a task's cost and behaviour are
//! declared together:
//!
//! ```
//! use qz_sim::builder::SimAppBuilder;
//! use qz_sim::{ClassRates, ReportQuality};
//! use quetzal::model::TaskCost;
//! use qz_types::{Seconds, Watts};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = SimAppBuilder::new();
//! let ml = b
//!     .classifier("ml")
//!     .option("hi", TaskCost::new(Seconds(0.5), Watts(0.005)), ClassRates::new(0.05, 0.05))
//!     .option("lo", TaskCost::new(Seconds(0.05), Watts(0.004)), ClassRates::new(0.25, 0.20))
//!     .finish()?;
//! let tx = b
//!     .transmitter("radio")
//!     .option("full", TaskCost::new(Seconds(0.4), Watts(0.050)), ReportQuality::High)
//!     .option("byte", TaskCost::new(Seconds(0.005), Watts(0.090)), ReportQuality::Low)
//!     .finish()?;
//! let process = b.job("process", vec![ml])?;
//! let report = b.job("report", vec![tx])?;
//! let app = b.entry(process).forward(process, report).build()?;
//! assert_eq!(app.spec.jobs().len(), 2);
//! # Ok(())
//! # }
//! ```

use crate::pipeline::{ClassRates, PipelineError, ReportQuality, Route, TaskBehavior};
use core::fmt;
use quetzal::model::{AppSpec, AppSpecBuilder, JobId, SpecError, TaskCost, TaskId};

/// Errors from assembling a [`SimApp`].
#[derive(Debug)]
#[non_exhaustive]
pub enum BuildError {
    /// The underlying spec rejected a task or job.
    Spec(SpecError),
    /// The behaviour/route binding was inconsistent.
    Pipeline(PipelineError),
    /// `build` was called without declaring an entry job.
    NoEntryJob,
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::Spec(e) => write!(f, "invalid app spec: {e}"),
            BuildError::Pipeline(e) => write!(f, "invalid pipeline binding: {e}"),
            BuildError::NoEntryJob => write!(f, "declare an entry job with `.entry(job)`"),
        }
    }
}

impl std::error::Error for BuildError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BuildError::Spec(e) => Some(e),
            BuildError::Pipeline(e) => Some(e),
            BuildError::NoEntryJob => None,
        }
    }
}

impl From<SpecError> for BuildError {
    fn from(e: SpecError) -> BuildError {
        BuildError::Spec(e)
    }
}

impl From<PipelineError> for BuildError {
    fn from(e: PipelineError) -> BuildError {
        BuildError::Pipeline(e)
    }
}

/// The assembled application: everything
/// [`Simulation::new`](crate::Simulation::new) needs.
#[derive(Debug, Clone, PartialEq)]
pub struct SimApp {
    /// The runtime-facing spec (clone it into each runtime build).
    pub spec: AppSpec,
    /// Per-task behaviours, in task order.
    pub behaviors: Vec<TaskBehavior>,
    /// Per-job routes, in job order.
    pub routes: Vec<Route>,
    /// The job receiving fresh captures.
    pub entry: JobId,
}

/// Builds a [`SimApp`]; see the module docs for a full example.
#[derive(Debug, Default)]
pub struct SimAppBuilder {
    spec: AppSpecBuilder,
    behaviors: Vec<TaskBehavior>,
    routes: Vec<(JobId, JobId)>, // forward edges
    jobs: usize,
    entry: Option<JobId>,
}

impl SimAppBuilder {
    /// Starts an empty application.
    pub fn new() -> SimAppBuilder {
        SimAppBuilder::default()
    }

    /// Adds a plain compute task (fixed cost, no input-routing effect).
    ///
    /// # Errors
    ///
    /// Propagates [`SpecError`] from the spec builder.
    pub fn compute(&mut self, name: &str, cost: TaskCost) -> Result<TaskId, BuildError> {
        let id = self.spec.fixed_task(name, cost)?;
        self.behaviors.push(TaskBehavior::Compute);
        Ok(id)
    }

    /// Starts a degradable classifier task; add quality-ordered options.
    pub fn classifier<'a>(&'a mut self, name: &'a str) -> ClassifierBuilder<'a> {
        ClassifierBuilder {
            owner: self,
            name,
            options: Vec::new(),
        }
    }

    /// Starts a degradable transmitter task; add quality-ordered options.
    pub fn transmitter<'a>(&'a mut self, name: &'a str) -> TransmitterBuilder<'a> {
        TransmitterBuilder {
            owner: self,
            name,
            options: Vec::new(),
        }
    }

    /// Groups tasks into a job (each job may contain at most one
    /// degradable task).
    ///
    /// # Errors
    ///
    /// Propagates [`SpecError`] from the spec builder.
    pub fn job(&mut self, name: &str, tasks: Vec<TaskId>) -> Result<JobId, BuildError> {
        let id = self.spec.job(name, tasks)?;
        self.jobs += 1;
        Ok(id)
    }

    /// Declares the job whose queue receives fresh captures.
    pub fn entry(mut self, job: JobId) -> SimAppBuilder {
        self.entry = Some(job);
        self
    }

    /// Routes `from`'s surviving inputs into `to`'s queue (jobs without a
    /// forward edge finish their inputs).
    pub fn forward(mut self, from: JobId, to: JobId) -> SimAppBuilder {
        self.routes.push((from, to));
        self
    }

    /// Validates everything and produces the [`SimApp`].
    ///
    /// # Errors
    ///
    /// Returns [`BuildError`] if the spec, binding, or entry declaration
    /// is inconsistent.
    pub fn build(self) -> Result<SimApp, BuildError> {
        let entry = self.entry.ok_or(BuildError::NoEntryJob)?;
        let spec = self.spec.build()?;
        let mut routes = vec![Route::Finish; spec.jobs().len()];
        for (from, to) in self.routes {
            routes[from.index()] = Route::Forward(to);
        }
        // Validate the binding once through the canonical checker.
        crate::pipeline::PipelineSpec::new(&spec, entry, self.behaviors.clone(), routes.clone())?;
        Ok(SimApp {
            spec,
            behaviors: self.behaviors,
            routes,
            entry,
        })
    }
}

/// In-progress classifier task; created by [`SimAppBuilder::classifier`].
#[derive(Debug)]
pub struct ClassifierBuilder<'a> {
    owner: &'a mut SimAppBuilder,
    name: &'a str,
    options: Vec<(String, TaskCost, ClassRates)>,
}

impl ClassifierBuilder<'_> {
    /// Appends the next-lower-quality option with its error rates.
    pub fn option(mut self, name: &str, cost: TaskCost, rates: ClassRates) -> Self {
        self.options.push((name.to_owned(), cost, rates));
        self
    }

    /// Registers the task.
    ///
    /// # Errors
    ///
    /// Propagates [`SpecError`] from the spec builder.
    pub fn finish(self) -> Result<TaskId, BuildError> {
        let mut t = self.owner.spec.degradable_task(self.name);
        for (name, cost, _) in &self.options {
            t = t.option(name, *cost);
        }
        let id = t.finish()?;
        self.owner.behaviors.push(TaskBehavior::Classify(
            self.options.into_iter().map(|(_, _, r)| r).collect(),
        ));
        Ok(id)
    }
}

/// In-progress transmitter task; created by
/// [`SimAppBuilder::transmitter`].
#[derive(Debug)]
pub struct TransmitterBuilder<'a> {
    owner: &'a mut SimAppBuilder,
    name: &'a str,
    options: Vec<(String, TaskCost, ReportQuality)>,
}

impl TransmitterBuilder<'_> {
    /// Appends the next-lower-quality option with its report quality.
    pub fn option(mut self, name: &str, cost: TaskCost, quality: ReportQuality) -> Self {
        self.options.push((name.to_owned(), cost, quality));
        self
    }

    /// Registers the task.
    ///
    /// # Errors
    ///
    /// Propagates [`SpecError`] from the spec builder.
    pub fn finish(self) -> Result<TaskId, BuildError> {
        let mut t = self.owner.spec.degradable_task(self.name);
        for (name, cost, _) in &self.options {
            t = t.option(name, *cost);
        }
        let id = t.finish()?;
        self.owner.behaviors.push(TaskBehavior::Transmit(
            self.options.into_iter().map(|(_, _, q)| q).collect(),
        ));
        Ok(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qz_types::{Seconds, Watts};

    fn cost() -> TaskCost {
        TaskCost::new(Seconds(0.1), Watts(0.01))
    }

    fn two_stage() -> Result<SimApp, BuildError> {
        let mut b = SimAppBuilder::new();
        let ml = b
            .classifier("ml")
            .option("hi", cost(), ClassRates::new(0.05, 0.05))
            .option("lo", cost(), ClassRates::new(0.25, 0.20))
            .finish()?;
        let note = b.compute("note", cost())?;
        let tx = b
            .transmitter("tx")
            .option("full", cost(), ReportQuality::High)
            .option("byte", cost(), ReportQuality::Low)
            .finish()?;
        let process = b.job("process", vec![ml, note])?;
        let report = b.job("report", vec![tx])?;
        b.entry(process).forward(process, report).build()
    }

    #[test]
    fn builds_consistent_app() {
        let app = two_stage().unwrap();
        assert_eq!(app.spec.tasks().len(), 3);
        assert_eq!(app.behaviors.len(), 3);
        assert_eq!(app.routes.len(), 2);
        assert_eq!(app.routes[0], Route::Forward(app.spec.job_id(1).unwrap()));
        assert_eq!(app.routes[1], Route::Finish);
        assert!(matches!(app.behaviors[0], TaskBehavior::Classify(ref r) if r.len() == 2));
        assert!(matches!(app.behaviors[1], TaskBehavior::Compute));
        assert!(matches!(app.behaviors[2], TaskBehavior::Transmit(ref q) if q.len() == 2));
    }

    #[test]
    fn requires_entry_job() {
        let mut b = SimAppBuilder::new();
        let t = b.compute("t", cost()).unwrap();
        b.job("j", vec![t]).unwrap();
        assert!(matches!(b.build(), Err(BuildError::NoEntryJob)));
    }

    #[test]
    fn propagates_spec_errors() {
        let mut b = SimAppBuilder::new();
        let r = b.classifier("c").finish(); // no options
        assert!(matches!(r, Err(BuildError::Spec(_))));
    }

    #[test]
    fn runs_through_the_simulator() {
        use crate::{SimConfig, Simulation};
        use quetzal::{Quetzal, QuetzalConfig};

        let app = two_stage().unwrap();
        let env =
            qz_traces::SensingEnvironment::generate(qz_traces::EnvironmentKind::LessCrowded, 5, 3);
        let runtime = Quetzal::new(app.spec.clone(), QuetzalConfig::default()).unwrap();
        let m = Simulation::new(
            SimConfig::default(),
            &env,
            runtime,
            app.entry,
            app.behaviors,
            app.routes,
        )
        .unwrap()
        .run();
        assert!(m.frames_total > 0);
    }

    #[test]
    fn error_display() {
        assert!(BuildError::NoEntryJob.to_string().contains("entry"));
    }
}
