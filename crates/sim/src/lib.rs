//! Fixed-increment intermittent-computing device simulator.
//!
//! Mirrors the paper's custom simulator (§6.3): time advances in 1 ms
//! steps; the device is a set of tasks characterized by latency and
//! energy; an energy-storage element gains harvested energy every step
//! and loses the executing task's energy; a just-in-time checkpointing
//! system preserves task progress across power failures; and every
//! scheduling or degradation decision incurs its modeled overhead before
//! a job runs.
//!
//! The simulated firmware is the paper's periodic sensing pipeline
//! (Fig. 1): a camera captures frames at a fixed rate; a pixel-diff
//! prefilter discards unchanged frames; changed frames are JPEG-
//! compressed and stored into the shared input buffer; buffered inputs
//! are processed by jobs (ML classification, then radio reporting for
//! positives). If a changed frame arrives to a full buffer it is lost —
//! an **input buffer overflow** — and the simulator records whether the
//! lost frame was interesting.
//!
//! The device runs any [`quetzal::Quetzal`] runtime composition, so the
//! same engine hosts Quetzal proper and every baseline (see
//! `qz-baselines`).
//!
//! Module map:
//!
//! - [`buffer`] — the shared input buffer with per-job queues.
//! - [`pipeline`] — binds spec tasks to simulation behaviours
//!   (compute / classify / transmit) and jobs to routing.
//! - [`config`] — device cost tables and simulation parameters.
//! - [`metrics`] — everything the evaluation counts.
//! - [`fault`] — seeded adversarial fault-injection hooks.
//! - [`engine`] — the tick loop.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod buffer;
pub mod builder;
pub mod config;
pub mod engine;
pub mod fault;
pub mod intermittent;
pub mod metrics;
pub mod pipeline;
pub mod telemetry;
pub mod uplink;

pub use buffer::{BufferEntry, InputBuffer, InputBufferState};
pub use builder::{SimApp, SimAppBuilder};
pub use config::{DeviceConfig, EngineKind, PowerConfig, SimConfig};
pub use engine::{ActiveJobState, SimError, SimState, Simulation};
pub use fault::{FaultContext, FaultInjector, FaultPhase, InjectorState};
pub use intermittent::{CheckpointPolicy, ProgressKeeper, ProgressKeeperState};
pub use metrics::Metrics;
pub use pipeline::{ClassRates, PipelineSpec, ReportQuality, Route, TaskBehavior};
pub use telemetry::{Telemetry, TelemetrySample};
pub use uplink::{TxDecision, TxRecord, UplinkConfig, UplinkPort, UplinkState};
