//! Fault-injection hooks for the simulation engine.
//!
//! The engine consults an installed [`FaultInjector`] at the few points
//! where an adversary could plausibly perturb a real deployment: power
//! failures at arbitrary phase alignment, checkpoint corruption on
//! restore, ADC misreads on the `P_in` sense path, clock jitter on task
//! latencies, input-burst anomalies at capture boundaries, and uplink
//! jamming at transmit attempts. Every hook is *pull-based*: with no
//! injector installed (the default) the engine takes the exact same
//! branch structure and draws no extra randomness, so fault-free runs
//! are bit-identical to builds that never heard of this module.
//!
//! Concrete adversaries live in the `qz-fault` crate; this module only
//! defines the trait and the per-tick context the engine exposes, so
//! `qz-sim` stays dependency-free.

use qz_types::{Joules, SimDuration, SimTime, Watts};

/// Opaque serialized state of a [`FaultInjector`], captured by
/// [`FaultInjector::save_state`]: a flat vector of words whose layout
/// is private to the implementing injector (RNG stream states packed
/// alongside bit patterns of accumulated statistics).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InjectorState {
    /// Implementation-defined state words.
    pub words: Vec<u64>,
}

/// What the device was doing when a fault hook fired — the "phase
/// alignment" an adversarial schedule targets.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultPhase {
    /// No job active (sleeping between inputs).
    Idle,
    /// Paying the scheduler/degradation-engine overhead.
    Overhead,
    /// Executing the task at `index`, `progress` fraction complete
    /// (0 = just started, 1 = about to finish).
    Task {
        /// Task index within the active job.
        index: usize,
        /// Fraction of the task's latency already executed.
        progress: f64,
    },
    /// Waiting out an uplink backoff (radio asleep, slot held).
    TxWait,
    /// Powered off, recharging.
    Off,
}

/// Snapshot of engine state passed to fault hooks each tick.
#[derive(Debug, Clone, Copy)]
pub struct FaultContext {
    /// Current simulation time.
    pub now: SimTime,
    /// What the device is executing right now.
    pub phase: FaultPhase,
    /// Usable stored energy (relative to the turn-off threshold).
    pub stored: Joules,
    /// The checkpoint reserve the engine protects.
    pub reserve: Joules,
    /// Buffer occupancy (queued + in flight).
    pub occupancy: usize,
    /// Buffer capacity.
    pub capacity: usize,
    /// `true` while a transmit task is active or parked in backoff —
    /// the mid-radio-grant window.
    pub transmitting: bool,
    /// `true` if a checkpoint completed within the last tick — the
    /// mid-checkpoint window.
    pub just_checkpointed: bool,
}

/// A seeded adversary the engine consults while stepping.
///
/// Every method has a no-op default so implementations opt into only
/// the fault classes they model. Implementations must be deterministic
/// given their seed: the engine calls hooks in a fixed order at fixed
/// points, so a faulted run is exactly reproducible.
pub trait FaultInjector: core::fmt::Debug + Send {
    /// Called once per tick before any fault decision, with the current
    /// context. Use it to track state (e.g. minimum observed energy).
    fn on_tick(&mut self, _ctx: &FaultContext) {}

    /// Force an immediate power failure this tick (only consulted while
    /// the device is on). The engine drains stored energy down to the
    /// checkpoint reserve and runs the normal failure path.
    fn force_power_failure(&mut self, _ctx: &FaultContext) -> bool {
        false
    }

    /// Corrupt the restored checkpoint right after a power-on (only
    /// consulted when a mid-task job was carried across the outage).
    /// The engine responds by replaying the task from the start.
    fn corrupt_checkpoint(&mut self, _ctx: &FaultContext) -> bool {
        false
    }

    /// Perturb the `P_in` reading the scheduler sees (the ADC on the
    /// ratio circuit). Return `Some(reading)` to substitute a value, or
    /// `None` to leave the true reading untouched.
    fn adc_misread(&mut self, _now: SimTime, _p_in: Watts) -> Option<Watts> {
        None
    }

    /// Scale the next task's latency (timer drift). Return
    /// `Some(factor)` to multiply the jittered latency, `None` for no
    /// drift. Factors are clamped to a sane floor by the engine.
    fn clock_jitter(&mut self, _now: SimTime) -> Option<f64> {
        None
    }

    /// Extra anomalous frames arriving at this capture boundary (an
    /// input burst). Each is treated as a changed-but-uninteresting
    /// frame: it pays the capture/diff/compress energy and contends for
    /// a buffer slot.
    fn extra_burst(&mut self, _now: SimTime) -> u32 {
        0
    }

    /// Jam the uplink at a transmit attempt: return `Some(wait)` to
    /// park the job in a backoff hold as if carrier sense failed,
    /// `None` to let the attempt proceed.
    fn jam_uplink(&mut self, _now: SimTime) -> Option<SimDuration> {
        None
    }

    /// Downcast support so harnesses can recover a concrete injector
    /// (and its accumulated statistics) after a run.
    fn as_any_mut(&mut self) -> Option<&mut dyn core::any::Any> {
        None
    }

    /// Captures the injector's evolving state (RNG streams, accumulated
    /// statistics) for a simulation snapshot. `None` (the default)
    /// means the injector does not support snapshotting, which makes
    /// [`Simulation::save_state`](crate::Simulation::save_state) fail
    /// while it is installed.
    fn save_state(&self) -> Option<InjectorState> {
        None
    }

    /// Restores state captured by [`FaultInjector::save_state`].
    ///
    /// # Errors
    ///
    /// The default implementation (paired with the default `save_state`)
    /// always errs: an injector that cannot capture state cannot resume
    /// from one either.
    fn restore_state(&mut self, _state: &InjectorState) -> Result<(), String> {
        Err(String::from(
            "this fault injector does not support snapshots",
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The default hooks must all be inert.
    #[derive(Debug)]
    struct Inert;
    impl FaultInjector for Inert {}

    #[test]
    fn default_hooks_do_nothing() {
        let mut f = Inert;
        let ctx = FaultContext {
            now: SimTime::ZERO,
            phase: FaultPhase::Idle,
            stored: Joules(0.01),
            reserve: Joules(0.001),
            occupancy: 0,
            capacity: 10,
            transmitting: false,
            just_checkpointed: false,
        };
        f.on_tick(&ctx);
        assert!(!f.force_power_failure(&ctx));
        assert!(!f.corrupt_checkpoint(&ctx));
        assert!(f.adc_misread(ctx.now, Watts(0.01)).is_none());
        assert!(f.clock_jitter(ctx.now).is_none());
        assert_eq!(f.extra_burst(ctx.now), 0);
        assert!(f.jam_uplink(ctx.now).is_none());
        assert!(f.as_any_mut().is_none());
        assert!(f.save_state().is_none());
        assert!(f.restore_state(&InjectorState { words: vec![] }).is_err());
    }
}
