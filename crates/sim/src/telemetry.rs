//! Periodic device-state telemetry.
//!
//! Recording the simulated device's internal state over time — stored
//! energy, buffer occupancy, power state, the runtime's λ estimate and
//! PID correction — is how the Fig. 1/Fig. 2-style timelines are
//! produced and how scheduling pathologies are diagnosed (the tuning
//! notes in `DESIGN.md` all came from these traces). Enable with
//! [`Simulation::record_telemetry`](crate::Simulation::record_telemetry)
//! and export with [`Telemetry::write_csv`].
//!
//! Telemetry rides the same observer hook as decision tracing: each
//! sample doubles as a [`qz_obs::Snapshot`] event, and a [`Telemetry`]
//! can be reconstructed from a recorded event log with
//! [`Telemetry::from_events`].

use core::fmt;
use qz_obs::{Event, EventKind, Snapshot};
use qz_types::{Joules, SimDuration, SimTime};
use std::io::Write;

/// One periodic snapshot of device state.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TelemetrySample {
    /// Sample instant.
    pub t: SimTime,
    /// Environment irradiance fraction at `t`.
    pub irradiance: f64,
    /// Usable stored energy.
    pub stored: Joules,
    /// Whether the device was powered on.
    pub on: bool,
    /// Buffer occupancy (queued + in flight).
    pub occupancy: usize,
    /// The runtime's arrival-rate estimate λ.
    pub lambda: f64,
    /// The runtime's PID correction, seconds.
    pub correction: f64,
    /// Degradation option of the executing job (`None` when idle).
    pub active_option: Option<usize>,
    /// Cumulative IBO discards so far.
    pub ibo_discards: u64,
}

impl TelemetrySample {
    /// `true` if a job was executing at the sample instant.
    pub fn is_busy(&self) -> bool {
        self.active_option.is_some()
    }

    /// The sample as an observer [`Snapshot`] payload.
    pub fn to_snapshot(self) -> Snapshot {
        Snapshot {
            irradiance: self.irradiance,
            stored_j: self.stored.value(),
            on: self.on,
            occupancy: self.occupancy,
            lambda: self.lambda,
            correction_s: self.correction,
            active_option: self.active_option,
            ibo_discards: self.ibo_discards,
        }
    }

    /// Rebuilds a sample from a [`Snapshot`] event payload.
    pub fn from_snapshot(t: SimTime, snap: &Snapshot) -> TelemetrySample {
        TelemetrySample {
            t,
            irradiance: snap.irradiance,
            stored: Joules(snap.stored_j),
            on: snap.on,
            occupancy: snap.occupancy,
            lambda: snap.lambda,
            correction: snap.correction_s,
            active_option: snap.active_option,
            ibo_discards: snap.ibo_discards,
        }
    }
}

/// A recorded sequence of periodic snapshots.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Telemetry {
    samples: Vec<TelemetrySample>,
}

impl Telemetry {
    /// Rebuilds telemetry from the `Snapshot` events in a recorded
    /// event log (other event kinds are skipped).
    pub fn from_events(events: &[Event]) -> Telemetry {
        let samples = events
            .iter()
            .filter_map(|e| match &e.kind {
                EventKind::Snapshot(snap) => Some(TelemetrySample::from_snapshot(
                    SimTime::from_millis(e.t_ms),
                    snap,
                )),
                _ => None,
            })
            .collect();
        Telemetry { samples }
    }

    /// All samples, in time order.
    pub fn samples(&self) -> &[TelemetrySample] {
        &self.samples
    }

    /// Builds a telemetry log from already-recorded samples (snapshot
    /// restore).
    pub fn from_samples(samples: Vec<TelemetrySample>) -> Telemetry {
        Telemetry { samples }
    }

    /// Number of samples recorded.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// `true` when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Appends a sample (called by the engine).
    pub(crate) fn push(&mut self, sample: TelemetrySample) {
        self.samples.push(sample);
    }

    /// Pre-reserves room for `n` further samples so the steady-state
    /// recording path never reallocates mid-run (the engine sizes this
    /// from horizon / interval when the recorder is installed).
    pub(crate) fn reserve(&mut self, n: usize) {
        self.samples.reserve(n);
    }

    /// Fraction of samples with the device powered on.
    pub fn on_fraction(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().filter(|s| s.on).count() as f64 / self.samples.len() as f64
    }

    /// Maximum buffer occupancy observed at any sample.
    pub fn peak_occupancy(&self) -> usize {
        self.samples.iter().map(|s| s.occupancy).max().unwrap_or(0)
    }

    /// Writes the samples as CSV
    /// (`t_s,irradiance,stored_mj,on,occupancy,lambda,correction,option,ibo`).
    /// The `option` column is `-1` while the device is idle.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the writer.
    pub fn write_csv<W: Write>(&self, mut w: W) -> std::io::Result<()> {
        use core::fmt::Write as _;
        // Rows accumulate in a reusable arena and flush in blocks —
        // identical bytes to row-at-a-time writes, fewer writer calls
        // (mirrors qz-obs's export arena).
        const BLOCK_ROWS: usize = 64;
        let mut arena = String::new();
        arena.push_str("t_s,irradiance,stored_mj,on,occupancy,lambda,correction,option,ibo\n");
        for (i, s) in self.samples.iter().enumerate() {
            let _ = writeln!(
                arena,
                "{},{:.4},{:.3},{},{},{:.3},{:.3},{},{}",
                s.t.as_millis() as f64 / 1e3,
                s.irradiance,
                s.stored.value() * 1e3,
                u8::from(s.on),
                s.occupancy,
                s.lambda,
                s.correction,
                s.active_option.map_or(-1, |o| o as i64),
                s.ibo_discards,
            );
            if (i + 1) % BLOCK_ROWS == 0 {
                w.write_all(arena.as_bytes())?;
                arena.clear();
            }
        }
        w.write_all(arena.as_bytes())?;
        Ok(())
    }
}

impl fmt::Display for Telemetry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} samples, on {:.0}%, peak occupancy {}",
            self.len(),
            self.on_fraction() * 100.0,
            self.peak_occupancy()
        )
    }
}

/// Recording configuration held by the engine.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct Recorder {
    pub interval: SimDuration,
    pub telemetry: Telemetry,
}

impl Recorder {
    pub fn new(interval: SimDuration) -> Recorder {
        assert!(!interval.is_zero(), "telemetry interval must be positive");
        Recorder {
            interval,
            telemetry: Telemetry::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(t_s: u64, on: bool, occ: usize, option: Option<usize>) -> TelemetrySample {
        TelemetrySample {
            t: SimTime::from_secs(t_s),
            irradiance: 0.5,
            stored: Joules(0.1),
            on,
            occupancy: occ,
            lambda: 0.4,
            correction: 0.1,
            active_option: option,
            ibo_discards: 2,
        }
    }

    #[test]
    // One of two samples busy gives on_fraction exactly 1/2, a dyadic
    // value with no rounding, so strict float comparison is the point.
    #[allow(clippy::float_cmp)]
    fn accumulates_and_summarizes() {
        let mut t = Telemetry::default();
        assert!(t.is_empty());
        t.push(sample(0, true, 3, Some(0)));
        t.push(sample(1, false, 7, None));
        assert_eq!(t.len(), 2);
        assert_eq!(t.on_fraction(), 0.5);
        assert_eq!(t.peak_occupancy(), 7);
        assert!(t.samples()[0].is_busy());
        assert!(!t.samples()[1].is_busy());
        assert!(t.to_string().contains("2 samples"));
    }

    #[test]
    fn csv_roundtrip_shape() {
        let mut t = Telemetry::default();
        t.push(sample(0, true, 3, Some(1)));
        t.push(sample(1, false, 0, None));
        let mut buf = Vec::new();
        t.write_csv(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("t_s,"));
        assert!(lines[1].contains(",1,3,"), "{}", lines[1]);
        assert!(lines[2].ends_with(",-1,2"), "{}", lines[2]);
    }

    #[test]
    fn snapshot_round_trip_preserves_sample() {
        let s = sample(7, true, 5, Some(1));
        let event = Event {
            t_ms: s.t.as_millis(),
            kind: EventKind::Snapshot(s.to_snapshot()),
        };
        let rebuilt = Telemetry::from_events(&[
            event,
            Event {
                t_ms: 8_000,
                kind: EventKind::Checkpoint,
            },
        ]);
        assert_eq!(rebuilt.len(), 1);
        assert_eq!(rebuilt.samples()[0], s);
    }

    #[test]
    #[should_panic(expected = "interval")]
    fn recorder_rejects_zero_interval() {
        Recorder::new(SimDuration::ZERO);
    }
}
