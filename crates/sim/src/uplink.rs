//! Device-side model of a shared, slotted uplink channel.
//!
//! The paper evaluates one device in isolation; a deployment shares a
//! LoRa-class gateway between many of them. This module is the *device
//! half* of that model: before a radio task may execute, the simulation
//! consults an [`UplinkPort`] which enforces
//!
//! 1. a **duty-cycle budget** — regulators (e.g. EU 868 MHz rules) cap
//!    time-on-air per device to a fraction of each accounting window;
//!    an exhausted budget defers the transmission to the next window;
//! 2. **carrier sensing against fleet load** — the port holds a busy
//!    probability `p_busy` (set by the fleet coordinator from the
//!    *previous* epoch's observed channel occupancy); a busy sense
//!    fails the attempt and backs off exponentially with deterministic
//!    jitter, so the job keeps holding its buffer slot and IBO pressure
//!    feeds back exactly as the paper's queueing model predicts.
//!
//! Granted transmissions are logged as [`TxRecord`]s in channel slots;
//! the fleet layer (`qz-fleet`) merges all devices' logs in slot order
//! to charge collisions and compute utilization. A standalone
//! simulation without a port installed is entirely unaffected — the
//! gate does not exist and no extra randomness is drawn.
//!
//! Randomness for sensing and jitter comes from a dedicated
//! [`SplitMix64`] stream so channel behaviour never perturbs the
//! simulation's classification draws: an uncontended channel
//! (`p_busy = 0`, non-binding duty budget) reproduces the ungated
//! engine bit for bit.

use qz_types::{SimDuration, SimTime, SplitMix64};

/// Parameters of the shared channel as seen by one device.
#[derive(Debug, Clone, PartialEq)]
pub struct UplinkConfig {
    /// Channel slot length. Transmissions occupy whole slots
    /// (`ceil(latency / slot)`), the granularity at which the fleet
    /// reduction detects collisions.
    pub slot: SimDuration,
    /// Fraction of each duty window the device may spend on air.
    /// Values `>= 1` disable the budget entirely (no regulatory cap).
    pub duty_cycle: f64,
    /// Length of the duty-cycle accounting window. Budgets reset at
    /// window boundaries aligned to `t = 0`.
    pub duty_window: SimDuration,
    /// First busy-sense backoff wait; doubles per consecutive failure.
    pub backoff_base: SimDuration,
    /// Cap on the exponential backoff doubling (`base << max_exp`).
    pub backoff_max_exp: u32,
}

impl Default for UplinkConfig {
    /// LoRa-flavoured defaults: 10 ms slots, 10 % duty cycle over a
    /// 10 s window (a relaxed EU-868-style budget that admits roughly
    /// two full-quality reports per window), 200 ms base backoff
    /// doubling up to 32× (so the capped backoff still fits inside one
    /// duty window — see QZ052). The slot is fine enough that a 5 ms
    /// single-byte report costs one slot rather than ballooning to the
    /// slot quantum, which keeps fleets up to ~100 devices under the
    /// QZ050 worst-case saturation bound.
    fn default() -> UplinkConfig {
        UplinkConfig {
            slot: SimDuration::from_millis(10),
            duty_cycle: 0.10,
            duty_window: SimDuration::from_secs(10),
            backoff_base: SimDuration::from_millis(200),
            backoff_max_exp: 5,
        }
    }
}

impl UplinkConfig {
    /// Number of slots in one duty window.
    pub fn window_slots(&self) -> u64 {
        self.duty_window.as_millis() / self.slot.as_millis()
    }

    /// Time-on-air budget per duty window, in slots. `duty_cycle >= 1`
    /// means unlimited (`u64::MAX`).
    pub fn allowance_slots(&self) -> u64 {
        if self.duty_cycle >= 1.0 {
            return u64::MAX;
        }
        // duty_cycle is clamped to [0, 1) here and window_slots is a
        // slot count, so the product is a non-negative in-range float.
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        {
            (self.duty_cycle.max(0.0) * self.window_slots() as f64).floor() as u64
        }
    }

    /// Whole slots a transmission of the given latency occupies.
    pub fn slots_for(&self, latency: SimDuration) -> u64 {
        latency.as_millis().div_ceil(self.slot.as_millis()).max(1)
    }
}

/// One granted transmission, in channel-slot coordinates. The fleet
/// coordinator merges records from all devices to find collisions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TxRecord {
    /// First slot occupied (`grant_time / slot`).
    pub start_slot: u64,
    /// Number of consecutive slots occupied.
    pub slots: u64,
}

impl TxRecord {
    /// First slot *after* this transmission.
    pub fn end_slot(&self) -> u64 {
        self.start_slot + self.slots
    }
}

/// Outcome of consulting the channel gate before a radio task.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxDecision {
    /// Clear to transmit; `airtime` is the slot-rounded channel time
    /// charged against the duty budget.
    Grant {
        /// Slot-rounded time-on-air charged for this transmission.
        airtime: SimDuration,
    },
    /// Carrier sense found the channel busy: wait this long, re-sense.
    Busy(SimDuration),
    /// Duty budget exhausted: wait until the next window, re-sense.
    DutyCapped(SimDuration),
}

/// Per-device gate onto the shared channel.
///
/// Install one on a [`Simulation`](crate::Simulation) via
/// [`set_uplink`](crate::Simulation::set_uplink); the engine consults
/// it whenever a `Transmit` task is about to start.
#[derive(Debug, Clone)]
pub struct UplinkPort {
    cfg: UplinkConfig,
    rng: SplitMix64,
    p_busy: f64,
    /// Consecutive failed senses for the pending transmission.
    attempts: u32,
    /// Duty window the `used` counter belongs to.
    window_index: u64,
    /// Slots spent on air in the current duty window.
    window_used: u64,
    /// Grants since the last [`drain_log`](UplinkPort::drain_log).
    log: Vec<TxRecord>,
    total_airtime: SimDuration,
}

impl UplinkPort {
    /// A gate with its own deterministic randomness stream.
    ///
    /// # Panics
    ///
    /// Panics if the slot, duty window, or backoff base is zero, or if
    /// the duty window is shorter than one slot.
    pub fn new(cfg: UplinkConfig, seed: u64) -> UplinkPort {
        assert!(!cfg.slot.is_zero(), "uplink slot must be positive");
        assert!(
            cfg.duty_window.as_millis() >= cfg.slot.as_millis(),
            "duty window must hold at least one slot"
        );
        assert!(!cfg.backoff_base.is_zero(), "backoff base must be positive");
        UplinkPort {
            cfg,
            rng: SplitMix64::new(seed),
            p_busy: 0.0,
            attempts: 0,
            window_index: 0,
            window_used: 0,
            log: Vec::new(),
            total_airtime: SimDuration::ZERO,
        }
    }

    /// The channel parameters.
    pub fn config(&self) -> &UplinkConfig {
        &self.cfg
    }

    /// Sets the probability that a carrier sense finds the channel
    /// busy. The fleet coordinator derives it from the other devices'
    /// airtime in the previous epoch; clamped to `[0, 0.98]` so a
    /// saturated fleet still makes (slow) progress.
    pub fn set_busy_probability(&mut self, p: f64) {
        self.p_busy = p.clamp(0.0, 0.98);
    }

    /// Current busy probability (diagnostic).
    pub fn busy_probability(&self) -> f64 {
        self.p_busy
    }

    /// Total slot-rounded time-on-air granted so far.
    pub fn total_airtime(&self) -> SimDuration {
        self.total_airtime
    }

    /// Takes the transmissions granted since the last drain.
    pub fn drain_log(&mut self) -> Vec<TxRecord> {
        core::mem::take(&mut self.log)
    }

    /// Captures the port's evolving state for a simulation snapshot
    /// (the channel config is not state).
    pub fn save_state(&self) -> UplinkState {
        UplinkState {
            rng: self.rng.state(),
            p_busy: self.p_busy,
            attempts: self.attempts,
            window_index: self.window_index,
            window_used: self.window_used,
            log: self.log.clone(),
            total_airtime: self.total_airtime,
        }
    }

    /// Restores state captured by [`UplinkPort::save_state`] into a
    /// port built from the same configuration.
    pub fn restore_state(&mut self, state: &UplinkState) {
        self.rng = SplitMix64::from_state(state.rng);
        self.p_busy = state.p_busy;
        self.attempts = state.attempts;
        self.window_index = state.window_index;
        self.window_used = state.window_used;
        self.log = state.log.clone();
        self.total_airtime = state.total_airtime;
    }

    /// Consults the gate for a transmission of the given latency
    /// starting now. A grant charges the duty budget and logs the
    /// slot range; a refusal tells the caller how long to wait before
    /// re-sensing.
    pub fn sense(&mut self, t: SimTime, latency: SimDuration) -> TxDecision {
        let slots = self.cfg.slots_for(latency);
        let window_ms = self.cfg.duty_window.as_millis();
        let now_ms = t.as_millis();
        let window = now_ms / window_ms;
        if window != self.window_index {
            self.window_index = window;
            self.window_used = 0;
        }
        if self.window_used.saturating_add(slots) > self.cfg.allowance_slots() {
            // Budget exhausted (or the request alone exceeds it —
            // qz-check flags that config, but defer rather than hang).
            let next_window_ms = (window + 1) * window_ms;
            let wait = SimDuration::from_millis((next_window_ms - now_ms).max(1));
            return TxDecision::DutyCapped(wait);
        }
        if self.p_busy > 0.0 && self.rng.chance(self.p_busy) {
            let exp = self.attempts.min(self.cfg.backoff_max_exp);
            let base_ms = (self.cfg.backoff_base.as_millis() << exp).max(1);
            // Uniform jitter in [base, 2·base) de-synchronizes
            // contending devices without a shared clock.
            let wait = SimDuration::from_millis(base_ms + self.rng.next_below(base_ms));
            self.attempts = self.attempts.saturating_add(1);
            return TxDecision::Busy(wait);
        }
        self.attempts = 0;
        self.window_used += slots;
        let airtime = self.cfg.slot * slots;
        self.total_airtime += airtime;
        self.log.push(TxRecord {
            start_slot: now_ms / self.cfg.slot.as_millis(),
            slots,
        });
        TxDecision::Grant { airtime }
    }
}

/// Serializable evolving state of an [`UplinkPort`], captured by
/// [`UplinkPort::save_state`].
#[derive(Debug, Clone, PartialEq)]
pub struct UplinkState {
    /// Raw state word of the port's dedicated randomness stream.
    pub rng: u64,
    /// Carrier-sense busy probability at capture time.
    pub p_busy: f64,
    /// Consecutive failed senses for the pending transmission.
    pub attempts: u32,
    /// Duty window the `window_used` counter belongs to.
    pub window_index: u64,
    /// Slots spent on air in the current duty window.
    pub window_used: u64,
    /// Grants not yet drained by the fleet layer.
    pub log: Vec<TxRecord>,
    /// Total slot-rounded time-on-air granted so far.
    pub total_airtime: SimDuration,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn port(cfg: UplinkConfig) -> UplinkPort {
        UplinkPort::new(cfg, 42)
    }

    #[test]
    fn uncontended_port_grants_without_randomness() {
        let mut p = port(UplinkConfig::default());
        let rng_before = p.rng.clone();
        let d = p.sense(SimTime::from_millis(250), SimDuration::from_millis(400));
        assert_eq!(
            d,
            TxDecision::Grant {
                airtime: SimDuration::from_millis(400)
            }
        );
        assert_eq!(p.rng, rng_before, "p_busy = 0 must not draw");
        assert_eq!(
            p.drain_log(),
            vec![TxRecord {
                start_slot: 25,
                slots: 40
            }]
        );
        assert!(p.drain_log().is_empty(), "drain empties the log");
    }

    #[test]
    fn airtime_rounds_up_to_whole_slots() {
        let cfg = UplinkConfig::default();
        assert_eq!(cfg.slots_for(SimDuration::from_millis(1)), 1);
        assert_eq!(cfg.slots_for(SimDuration::from_millis(10)), 1);
        assert_eq!(cfg.slots_for(SimDuration::from_millis(11)), 2);
        assert_eq!(cfg.window_slots(), 1000);
        assert_eq!(cfg.allowance_slots(), 100);
    }

    #[test]
    fn duty_budget_defers_to_next_window() {
        // 10% of a 10 s window = 100 slots of 10 ms.
        let mut p = port(UplinkConfig::default());
        let tx = SimDuration::from_millis(400); // 40 slots
        assert!(matches!(
            p.sense(SimTime::ZERO, tx),
            TxDecision::Grant { .. }
        ));
        assert!(matches!(
            p.sense(SimTime::from_millis(1_000), tx),
            TxDecision::Grant { .. }
        ));
        // 80 of 100 slots used: a third 40-slot tx must defer to t=10 s.
        match p.sense(SimTime::from_millis(2_000), tx) {
            TxDecision::DutyCapped(wait) => {
                assert_eq!(wait, SimDuration::from_millis(8_000));
            }
            other => panic!("expected duty cap, got {other:?}"),
        }
        // The next window has a fresh budget.
        assert!(matches!(
            p.sense(SimTime::from_millis(10_000), tx),
            TxDecision::Grant { .. }
        ));
    }

    #[test]
    fn duty_cycle_one_is_unlimited() {
        let mut p = port(UplinkConfig {
            duty_cycle: 1.0,
            ..UplinkConfig::default()
        });
        let tx = SimDuration::from_millis(400);
        for i in 0..1_000u64 {
            assert!(
                matches!(
                    p.sense(SimTime::from_millis(i), tx),
                    TxDecision::Grant { .. }
                ),
                "duty >= 1 must never defer"
            );
        }
    }

    #[test]
    fn saturated_channel_backs_off_exponentially() {
        let mut p = port(UplinkConfig::default());
        p.set_busy_probability(1.0); // clamped to 0.98 but chance < 1
        let tx = SimDuration::from_millis(100);
        let mut waits = Vec::new();
        let mut t = SimTime::ZERO;
        while waits.len() < 4 {
            match p.sense(t, tx) {
                TxDecision::Busy(w) => {
                    waits.push(w.as_millis());
                    t += w;
                }
                TxDecision::Grant { .. } => break, // 2% sense success
                TxDecision::DutyCapped(w) => t += w,
            }
        }
        // Each consecutive wait is drawn from [base·2^k, base·2^(k+1));
        // ranges are disjoint, so the sequence is strictly increasing
        // until the doubling cap.
        for (k, w) in waits.iter().enumerate() {
            let lo = 200u64 << k;
            assert!(
                (lo..2 * lo).contains(w),
                "wait {k} = {w} outside [{lo}, {})",
                2 * lo
            );
        }
    }

    #[test]
    fn grant_resets_backoff_and_busy_draws_are_deterministic() {
        let mut a = port(UplinkConfig::default());
        let mut b = port(UplinkConfig::default());
        a.set_busy_probability(0.5);
        b.set_busy_probability(0.5);
        let tx = SimDuration::from_millis(100);
        for i in 0..50u64 {
            let t = SimTime::from_millis(i * 150);
            assert_eq!(a.sense(t, tx), b.sense(t, tx), "same seed, same stream");
        }
    }

    #[test]
    fn state_roundtrip_resumes_the_stream_bit_exactly() {
        let mut a = port(UplinkConfig::default());
        a.set_busy_probability(0.5);
        let tx = SimDuration::from_millis(100);
        for i in 0..20u64 {
            let _ = a.sense(SimTime::from_millis(i * 150), tx);
        }
        let state = a.save_state();
        let mut b = port(UplinkConfig::default());
        b.restore_state(&state);
        for i in 20..60u64 {
            let t = SimTime::from_millis(i * 150);
            assert_eq!(a.sense(t, tx), b.sense(t, tx));
        }
        assert_eq!(a.save_state(), b.save_state());
        assert_eq!(a.drain_log(), b.drain_log());
        assert_eq!(a.total_airtime(), b.total_airtime());
    }

    #[test]
    #[should_panic(expected = "slot must be positive")]
    fn zero_slot_rejected() {
        UplinkPort::new(
            UplinkConfig {
                slot: SimDuration::ZERO,
                ..UplinkConfig::default()
            },
            1,
        );
    }
}
