//! Binds an [`AppSpec`]'s tasks and jobs to simulated behaviours.
//!
//! The Quetzal runtime only knows task *costs*; what a task *does* to an
//! input is application logic. The simulator models the three behaviours
//! the paper's person-detection pipeline needs:
//!
//! - [`TaskBehavior::Compute`] — pure time/energy cost (e.g. JPEG
//!   compression).
//! - [`TaskBehavior::Classify`] — an ML model deciding whether the input
//!   is interesting, with per-quality-option false-negative /
//!   false-positive rates. A negative classification drops the input and
//!   short-circuits the rest of the job; this is how the paper's hardware
//!   experiment models ML ("the main system used the ML models'
//!   misclassification rates to process 'different' inputs", §6.2).
//! - [`TaskBehavior::Transmit`] — a radio report, with per-option quality
//!   (full image = auditable = high quality; single byte = low).
//!
//! Each job routes its surviving input on completion: [`Route::Finish`]
//! frees the buffer slot, [`Route::Forward`] re-inserts the input into
//! another job's queue (the paper's "one job can spawn another job by
//! inserting its input into the device's input buffer").

use core::fmt;
use quetzal::model::{AppSpec, JobId, TaskId};

/// Misclassification rates for one quality level of a classifier.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClassRates {
    /// Probability an *interesting* input is classified negative (and
    /// therefore lost).
    pub false_negative: f64,
    /// Probability an *uninteresting* input is classified positive (and
    /// therefore wastes downstream work and radio bandwidth).
    pub false_positive: f64,
}

impl ClassRates {
    /// Creates a rate pair.
    ///
    /// # Panics
    ///
    /// Panics if either rate is outside `[0, 1]`.
    pub fn new(false_negative: f64, false_positive: f64) -> ClassRates {
        assert!(
            (0.0..=1.0).contains(&false_negative),
            "false-negative rate out of range"
        );
        assert!(
            (0.0..=1.0).contains(&false_positive),
            "false-positive rate out of range"
        );
        ClassRates {
            false_negative,
            false_positive,
        }
    }
}

/// Report quality of a transmit option (paper: full images are auditable
/// by the receiver and count as high quality).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReportQuality {
    /// Full-payload report (e.g. the complete JPEG image).
    High,
    /// Degraded report (e.g. a single "interesting!" byte).
    Low,
}

/// What a task does to the input it processes.
#[derive(Debug, Clone, PartialEq)]
pub enum TaskBehavior {
    /// Pure computation; consumes time and energy only.
    Compute,
    /// Classification with per-option rates (index = degradation option;
    /// must have exactly as many entries as the task has options).
    Classify(Vec<ClassRates>),
    /// Radio report with per-option quality (same indexing rule).
    Transmit(Vec<ReportQuality>),
}

/// Where an input goes after its job completes without dropping it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Route {
    /// The input leaves the buffer.
    Finish,
    /// The input is re-inserted into another job's queue (keeping its
    /// buffer slot and capture timestamp).
    Forward(JobId),
}

/// Errors from validating a [`PipelineSpec`] against an [`AppSpec`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum PipelineError {
    /// A task was given no behaviour, or a behaviour for an unknown task.
    BehaviorCoverage,
    /// A `Classify`/`Transmit` behaviour's per-option list length does
    /// not match the task's option count.
    OptionMismatch {
        /// The offending task.
        task: TaskId,
    },
    /// A route was missing for some job, or given for an unknown job.
    RouteCoverage,
    /// A forward route targets the job itself or an unknown job.
    BadForward {
        /// The offending job.
        job: JobId,
    },
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::BehaviorCoverage => {
                write!(f, "every task needs exactly one behaviour")
            }
            PipelineError::OptionMismatch { task } => {
                write!(
                    f,
                    "behaviour option list for {task} does not match its option count"
                )
            }
            PipelineError::RouteCoverage => write!(f, "every job needs exactly one route"),
            PipelineError::BadForward { job } => {
                write!(f, "{job} forwards to itself or an unknown job")
            }
        }
    }
}

impl std::error::Error for PipelineError {}

/// The validated behaviour binding for a whole application.
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineSpec {
    behaviors: Vec<TaskBehavior>, // indexed by task
    routes: Vec<Route>,           // indexed by job
    entry: JobId,
}

impl PipelineSpec {
    /// Validates behaviours (one per task, in task order) and routes (one
    /// per job, in job order) against the spec. `entry` is the job whose
    /// queue receives fresh captures.
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError`] on any coverage or option-count
    /// mismatch.
    pub fn new(
        spec: &AppSpec,
        entry: JobId,
        behaviors: Vec<TaskBehavior>,
        routes: Vec<Route>,
    ) -> Result<PipelineSpec, PipelineError> {
        if behaviors.len() != spec.tasks().len() {
            return Err(PipelineError::BehaviorCoverage);
        }
        for (i, (behavior, task)) in behaviors.iter().zip(spec.tasks()).enumerate() {
            let expected = task.option_count();
            let got = match behavior {
                TaskBehavior::Compute => expected,
                TaskBehavior::Classify(rates) => rates.len(),
                TaskBehavior::Transmit(quals) => quals.len(),
            };
            if got != expected {
                let task = spec.task_id(i).expect("index within task range");
                return Err(PipelineError::OptionMismatch { task });
            }
        }
        if routes.len() != spec.jobs().len() {
            return Err(PipelineError::RouteCoverage);
        }
        for (j, route) in routes.iter().enumerate() {
            if let Route::Forward(target) = route {
                if target.index() == j || target.index() >= spec.jobs().len() {
                    let job = spec.job_id(j).expect("index within job range");
                    return Err(PipelineError::BadForward { job });
                }
            }
        }
        if entry.index() >= spec.jobs().len() {
            return Err(PipelineError::RouteCoverage);
        }
        Ok(PipelineSpec {
            behaviors,
            routes,
            entry,
        })
    }

    /// The behaviour bound to a task. On the engine's busy path this is
    /// consulted on every task transition, so it stays a plain indexed
    /// load.
    #[inline]
    pub fn behavior(&self, task: TaskId) -> &TaskBehavior {
        &self.behaviors[task.index()]
    }

    /// The route bound to a job.
    #[inline]
    pub fn route(&self, job: JobId) -> Route {
        self.routes[job.index()]
    }

    /// The job whose queue receives fresh captures.
    #[inline]
    pub fn entry_job(&self) -> JobId {
        self.entry
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quetzal::model::{AppSpecBuilder, TaskCost};
    use qz_types::{Seconds, Watts};

    fn cost() -> TaskCost {
        TaskCost::new(Seconds(1.0), Watts(0.01))
    }

    /// ML (2 options) + compress; report job with radio (2 options).
    fn spec() -> (AppSpec, JobId, JobId) {
        let mut b = AppSpecBuilder::new();
        let ml = b
            .degradable_task("ml")
            .option("hi", cost())
            .option("lo", cost())
            .finish()
            .unwrap();
        let compress = b.fixed_task("compress", cost()).unwrap();
        let radio = b
            .degradable_task("radio")
            .option("full", cost())
            .option("byte", cost())
            .finish()
            .unwrap();
        let process = b.job("process", vec![ml, compress]).unwrap();
        let report = b.job("report", vec![radio]).unwrap();
        (b.build().unwrap(), process, report)
    }

    fn behaviors() -> Vec<TaskBehavior> {
        vec![
            TaskBehavior::Classify(vec![
                ClassRates::new(0.05, 0.05),
                ClassRates::new(0.25, 0.2),
            ]),
            TaskBehavior::Compute,
            TaskBehavior::Transmit(vec![ReportQuality::High, ReportQuality::Low]),
        ]
    }

    #[test]
    fn valid_pipeline_builds() {
        let (spec, process, report) = spec();
        let p = PipelineSpec::new(
            &spec,
            process,
            behaviors(),
            vec![Route::Forward(report), Route::Finish],
        )
        .unwrap();
        assert_eq!(p.entry_job(), process);
        assert_eq!(p.route(process), Route::Forward(report));
        assert_eq!(p.route(report), Route::Finish);
        let t0 = spec.task_id(0).unwrap();
        assert!(matches!(p.behavior(t0), TaskBehavior::Classify(_)));
    }

    #[test]
    fn rejects_wrong_behavior_count() {
        let (spec, _, report) = spec();
        let (_, process) = (0, spec.job_id(0).unwrap());
        let err = PipelineSpec::new(
            &spec,
            process,
            behaviors()[..2].to_vec(),
            vec![Route::Forward(report), Route::Finish],
        )
        .unwrap_err();
        assert_eq!(err, PipelineError::BehaviorCoverage);
    }

    #[test]
    fn rejects_option_mismatch() {
        let (spec, _, report) = spec();
        let mut bad = behaviors();
        bad[0] = TaskBehavior::Classify(vec![ClassRates::new(0.05, 0.05)]); // 1 ≠ 2
        let entry = spec.job_id(0).unwrap();
        let err = PipelineSpec::new(
            &spec,
            entry,
            bad,
            vec![Route::Forward(report), Route::Finish],
        )
        .unwrap_err();
        assert!(matches!(err, PipelineError::OptionMismatch { .. }));
    }

    #[test]
    fn rejects_missing_route() {
        let (spec, ..) = spec();
        let entry = spec.job_id(0).unwrap();
        let err = PipelineSpec::new(&spec, entry, behaviors(), vec![Route::Finish]).unwrap_err();
        assert_eq!(err, PipelineError::RouteCoverage);
    }

    #[test]
    fn rejects_self_forward() {
        let (spec, process, _) = spec();
        let err = PipelineSpec::new(
            &spec,
            process,
            behaviors(),
            vec![Route::Forward(process), Route::Finish],
        )
        .unwrap_err();
        assert!(matches!(err, PipelineError::BadForward { .. }));
    }

    #[test]
    // Accessors hand back the constructor arguments verbatim, so strict
    // float comparison is the point.
    #[allow(clippy::float_cmp)]
    fn class_rates_validate() {
        let r = ClassRates::new(0.1, 0.2);
        assert_eq!(r.false_negative, 0.1);
        assert_eq!(r.false_positive, 0.2);
    }

    #[test]
    #[should_panic(expected = "false-negative")]
    fn class_rates_reject_out_of_range() {
        ClassRates::new(1.5, 0.0);
    }

    #[test]
    fn error_display() {
        assert!(PipelineError::BehaviorCoverage
            .to_string()
            .contains("behaviour"));
        assert!(PipelineError::RouteCoverage.to_string().contains("route"));
    }
}
