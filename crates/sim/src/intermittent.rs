//! Intermittent-computing checkpoint policies.
//!
//! The paper's simulator implements just-in-time checkpointing (§6.3,
//! citing Hibernus and QuickRecall); the wider literature it
//! builds on also uses periodic checkpointing (Mementos) and
//! task-boundary atomicity (Alpaca). This module models all three
//! so their impact on IBOs can be compared (`ablate_checkpointing`):
//!
//! - [`CheckpointPolicy::JustInTime`] — a voltage-threshold interrupt
//!   fires one checkpoint right before brownout. No progress is lost;
//!   the cost is one checkpoint per power failure.
//! - [`CheckpointPolicy::Periodic`] — checkpoints every fixed interval
//!   while executing. A power failure loses (re-executes) the progress
//!   made since the last checkpoint.
//! - [`CheckpointPolicy::TaskBoundary`] — state is only consistent at
//!   task boundaries. A power failure replays the interrupted task from
//!   its beginning (tasks are atomic, as in task-based intermittent
//!   programming models).

use qz_types::SimDuration;

/// How the device preserves progress across power failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum CheckpointPolicy {
    /// Checkpoint exactly once, just before brownout (Hibernus-style).
    JustInTime,
    /// Checkpoint every `interval` of active execution (Mementos-style);
    /// progress since the last checkpoint is lost on failure.
    Periodic {
        /// Active-execution time between checkpoints.
        interval: SimDuration,
    },
    /// No mid-task checkpoints: a power failure replays the interrupted
    /// task from its start (Alpaca-style task atomicity).
    TaskBoundary,
}

impl Default for CheckpointPolicy {
    /// The paper's simulator uses JIT checkpointing.
    fn default() -> CheckpointPolicy {
        CheckpointPolicy::JustInTime
    }
}

/// Book-keeping for the active job's recoverable progress under the
/// configured policy.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ProgressKeeper {
    /// The task's remaining latency at the last consistent point.
    snapshot: SimDuration,
    /// Active execution time since the last checkpoint (drives the
    /// periodic policy).
    since_checkpoint: SimDuration,
}

impl ProgressKeeper {
    /// Called when a task starts (or restarts): the consistent point is
    /// the task's full latency.
    pub fn task_started(&mut self, full_latency: SimDuration) {
        self.snapshot = full_latency;
        self.since_checkpoint = SimDuration::ZERO;
    }

    /// Called every tick of active task execution. Returns `true` when a
    /// periodic checkpoint is due (the caller pays the checkpoint energy
    /// and then calls [`ProgressKeeper::checkpointed`]).
    #[must_use]
    pub fn tick(&mut self, policy: CheckpointPolicy) -> bool {
        self.since_checkpoint += SimDuration::TICK;
        matches!(policy, CheckpointPolicy::Periodic { interval } if self.since_checkpoint >= interval)
    }

    /// Bulk equivalent of `d / TICK` consecutive [`ProgressKeeper::tick`]
    /// calls that all returned `false` — used by the fast-forward engine
    /// to advance through spans proven (via
    /// [`ProgressKeeper::ticks_until_periodic_due`]) to contain no due
    /// checkpoint.
    pub fn advance(&mut self, d: SimDuration) {
        self.since_checkpoint += d;
    }

    /// How many future [`ProgressKeeper::tick`] calls return `false`
    /// before one returns `true`: `Some(0)` means the very next tick is
    /// a due periodic checkpoint. `None` for policies that never request
    /// mid-task checkpoints.
    pub fn ticks_until_periodic_due(&self, policy: CheckpointPolicy) -> Option<u64> {
        match policy {
            CheckpointPolicy::Periodic { interval } => Some(
                interval
                    .as_millis()
                    .saturating_sub(self.since_checkpoint.as_millis())
                    .saturating_sub(1),
            ),
            _ => None,
        }
    }

    /// Called when a checkpoint completes: the current remaining latency
    /// becomes the consistent point.
    pub fn checkpointed(&mut self, remaining: SimDuration) {
        self.snapshot = remaining;
        self.since_checkpoint = SimDuration::ZERO;
    }

    /// Captures the keeper's state for a simulation snapshot.
    pub fn save_state(&self) -> ProgressKeeperState {
        ProgressKeeperState {
            snapshot: self.snapshot,
            since_checkpoint: self.since_checkpoint,
        }
    }

    /// Restores state captured by [`ProgressKeeper::save_state`].
    pub fn restore_state(&mut self, state: &ProgressKeeperState) {
        self.snapshot = state.snapshot;
        self.since_checkpoint = state.since_checkpoint;
    }

    /// Called at a power failure: returns the remaining latency the task
    /// resumes with after restore, and the amount of re-execution the
    /// failure cost.
    ///
    /// `remaining` is the task's remaining latency at the instant of the
    /// failure; `full_latency` its total latency.
    pub fn on_power_failure(
        &mut self,
        policy: CheckpointPolicy,
        remaining: SimDuration,
        full_latency: SimDuration,
    ) -> (SimDuration, SimDuration) {
        let resume_at = match policy {
            // The JIT checkpoint captured the instant of failure.
            CheckpointPolicy::JustInTime => remaining,
            // Roll back to the last periodic checkpoint.
            CheckpointPolicy::Periodic { .. } => self.snapshot,
            // Replay the whole task.
            CheckpointPolicy::TaskBoundary => full_latency,
        };
        let lost = resume_at.saturating_sub(remaining);
        self.since_checkpoint = SimDuration::ZERO;
        (resume_at, lost)
    }
}

/// Serializable state of a [`ProgressKeeper`], captured by
/// [`ProgressKeeper::save_state`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ProgressKeeperState {
    /// The task's remaining latency at the last consistent point.
    pub snapshot: SimDuration,
    /// Active execution time since the last checkpoint.
    pub since_checkpoint: SimDuration,
}

#[cfg(test)]
mod tests {
    use super::*;

    const FULL: SimDuration = SimDuration(1000);

    #[test]
    fn jit_loses_nothing() {
        let mut k = ProgressKeeper::default();
        k.task_started(FULL);
        let (resume, lost) =
            k.on_power_failure(CheckpointPolicy::JustInTime, SimDuration(400), FULL);
        assert_eq!(resume, SimDuration(400));
        assert_eq!(lost, SimDuration::ZERO);
    }

    #[test]
    fn task_boundary_replays_everything() {
        let mut k = ProgressKeeper::default();
        k.task_started(FULL);
        let (resume, lost) =
            k.on_power_failure(CheckpointPolicy::TaskBoundary, SimDuration(400), FULL);
        assert_eq!(resume, FULL);
        assert_eq!(lost, SimDuration(600));
    }

    #[test]
    fn periodic_rolls_back_to_snapshot() {
        let policy = CheckpointPolicy::Periodic {
            interval: SimDuration(100),
        };
        let mut k = ProgressKeeper::default();
        k.task_started(FULL);
        // Execute 100 ticks → checkpoint due.
        let mut due = false;
        for _ in 0..100 {
            due = k.tick(policy);
        }
        assert!(due);
        k.checkpointed(SimDuration(900));
        // Execute 50 more ticks, then fail.
        for _ in 0..50 {
            let _ = k.tick(policy);
        }
        let (resume, lost) = k.on_power_failure(policy, SimDuration(850), FULL);
        assert_eq!(resume, SimDuration(900), "rolls back to the checkpoint");
        assert_eq!(lost, SimDuration(50));
    }

    #[test]
    fn periodic_without_any_checkpoint_replays_task() {
        let policy = CheckpointPolicy::Periodic {
            interval: SimDuration(500),
        };
        let mut k = ProgressKeeper::default();
        k.task_started(FULL);
        for _ in 0..100 {
            assert!(!k.tick(policy));
        }
        let (resume, lost) = k.on_power_failure(policy, SimDuration(900), FULL);
        assert_eq!(resume, FULL, "snapshot is the task start");
        assert_eq!(lost, SimDuration(100));
    }

    #[test]
    fn jit_never_asks_for_periodic_checkpoints() {
        let mut k = ProgressKeeper::default();
        k.task_started(FULL);
        for _ in 0..10_000 {
            assert!(!k.tick(CheckpointPolicy::JustInTime));
        }
    }

    #[test]
    fn checkpoint_interval_restarts_after_checkpoint() {
        let policy = CheckpointPolicy::Periodic {
            interval: SimDuration(10),
        };
        let mut k = ProgressKeeper::default();
        k.task_started(FULL);
        for _ in 0..9 {
            assert!(!k.tick(policy));
        }
        assert!(k.tick(policy));
        k.checkpointed(SimDuration(990));
        for _ in 0..9 {
            assert!(!k.tick(policy));
        }
        assert!(k.tick(policy));
    }

    #[test]
    fn state_roundtrip_preserves_checkpoint_clock() {
        let policy = CheckpointPolicy::Periodic {
            interval: SimDuration(100),
        };
        let mut a = ProgressKeeper::default();
        a.task_started(FULL);
        for _ in 0..37 {
            let _ = a.tick(policy);
        }
        let mut b = ProgressKeeper::default();
        b.restore_state(&a.save_state());
        assert_eq!(a, b);
        assert_eq!(
            a.ticks_until_periodic_due(policy),
            b.ticks_until_periodic_due(policy)
        );
    }

    #[test]
    fn default_is_jit() {
        assert_eq!(CheckpointPolicy::default(), CheckpointPolicy::JustInTime);
    }

    #[test]
    fn bulk_advance_matches_ticking() {
        let policy = CheckpointPolicy::Periodic {
            interval: SimDuration(100),
        };
        let mut k = ProgressKeeper::default();
        k.task_started(FULL);
        // 30 single ticks, none due.
        for _ in 0..30 {
            assert!(!k.tick(policy));
        }
        let due = k.ticks_until_periodic_due(policy).unwrap();
        assert_eq!(due, 69, "ticks 31..=99 are quiet; tick 100 is due");
        // Bulk-advance exactly through the quiet ticks…
        k.advance(SimDuration(due));
        assert_eq!(k.ticks_until_periodic_due(policy), Some(0));
        // …and the next real tick reports the checkpoint.
        assert!(k.tick(policy));
        assert!(ProgressKeeper::default()
            .ticks_until_periodic_due(CheckpointPolicy::JustInTime)
            .is_none());
        assert!(ProgressKeeper::default()
            .ticks_until_periodic_due(CheckpointPolicy::TaskBoundary)
            .is_none());
    }
}
