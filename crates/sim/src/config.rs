//! Device cost tables and simulation parameters.

use crate::intermittent::CheckpointPolicy;
use quetzal::model::TaskCost;
use qz_energy::{Harvester, Supercap, SupercapConfig};
use qz_types::{Joules, Seconds, SimDuration, Watts};

/// Per-device cost table for the fixed parts of the sensing pipeline and
/// the platform's operating characteristics.
///
/// Concrete values for the Apollo 4 and MSP430FR5994 live in `qz-app`;
/// the defaults here are the Apollo 4 profile so a bare `DeviceConfig`
/// is immediately usable.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceConfig {
    /// Input-buffer capacity in compressed images (paper: 10).
    pub buffer_capacity: usize,
    /// Fixed capture period (paper: 1 FPS).
    pub capture_period: SimDuration,
    /// Camera capture cost (every frame).
    pub capture: TaskCost,
    /// Pixel-diff prefilter cost (every frame).
    pub diff: TaskCost,
    /// JPEG compression cost (only frames that will be stored; the paper
    /// notes all systems compress before storing).
    pub compress: TaskCost,
    /// Energy of one just-in-time checkpoint (paid when the capacitor
    /// drains to the reserve threshold).
    pub checkpoint_energy: Joules,
    /// Energy of restoring from a checkpoint after recharge.
    pub restore_energy: Joules,
    /// Power drawn while on but idle (awaiting inputs or the next
    /// capture).
    pub sleep_power: Watts,
    /// Leakage while powered off (harvesting continues).
    pub off_leakage: Watts,
    /// Scheduler/degradation-engine invocation cost, paid before each
    /// scheduled job (zero for trivial baselines; derived from the
    /// `qz-hw` MCU cost model for Quetzal).
    pub scheduler_overhead: TaskCost,
    /// Data-dependent execution-time variability: each task execution's
    /// latency is scaled by a uniform factor in `[1-j, 1+j]`. The paper
    /// assumes consistent costs (j = 0); the variable-cost extension is
    /// evaluated with j > 0.
    pub task_jitter: f64,
    /// How progress is preserved across power failures (paper §6.3 uses
    /// just-in-time checkpointing).
    pub checkpoint_policy: CheckpointPolicy,
}

impl Default for DeviceConfig {
    fn default() -> DeviceConfig {
        DeviceConfig {
            buffer_capacity: 10,
            capture_period: SimDuration::from_secs(1),
            capture: TaskCost::new(Seconds(0.050), Watts(0.010)),
            diff: TaskCost::new(Seconds(0.020), Watts(0.005)),
            compress: TaskCost::new(Seconds(0.150), Watts(0.015)),
            checkpoint_energy: Joules(0.5e-3),
            restore_energy: Joules(0.5e-3),
            sleep_power: Watts(50e-6),
            off_leakage: Watts(5e-6),
            scheduler_overhead: TaskCost::new(Seconds(0.001), Watts(0.015)),
            task_jitter: 0.0,
            checkpoint_policy: CheckpointPolicy::JustInTime,
        }
    }
}

impl DeviceConfig {
    /// Capacitor energy reserve that triggers a just-in-time checkpoint:
    /// enough for the checkpoint itself plus a small margin.
    pub fn checkpoint_reserve(&self) -> Joules {
        self.checkpoint_energy * 1.25
    }
}

/// The power-system configuration: storage element plus harvester.
#[derive(Debug, Clone, PartialEq)]
pub struct PowerConfig {
    /// Supercapacitor parameters (paper: 33 mF).
    pub supercap: SupercapConfig,
    /// Harvester cell count (paper primary config: 6).
    pub harvester_cells: u32,
    /// Per-cell datasheet rating.
    pub cell_rating: Watts,
    /// Boost-converter efficiency.
    pub converter_efficiency: f64,
}

impl Default for PowerConfig {
    fn default() -> PowerConfig {
        PowerConfig {
            supercap: SupercapConfig::default(),
            harvester_cells: 6,
            cell_rating: Watts(0.010),
            converter_efficiency: 0.80,
        }
    }
}

impl PowerConfig {
    /// Builds the harvester from this configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (zero cells, bad rating or
    /// efficiency) — configurations are program constants, so this is a
    /// programming error rather than a runtime condition.
    pub fn harvester(&self) -> Harvester {
        Harvester::new(
            self.harvester_cells,
            self.cell_rating,
            self.converter_efficiency,
        )
        .expect("invalid harvester configuration")
    }

    /// Builds the supercapacitor from this configuration.
    ///
    /// # Panics
    ///
    /// Panics if the supercap window is inconsistent (see above).
    pub fn supercap(&self) -> Supercap {
        Supercap::new(self.supercap).expect("invalid supercapacitor configuration")
    }
}

/// Which stepping strategy [`crate::Simulation`] uses.
///
/// Both engines produce byte-identical metrics, telemetry, and observer
/// event streams for the same configuration and seed; fast-forward only
/// changes how quickly the answer arrives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum EngineKind {
    /// The reference fixed-increment loop: every 1 ms tick runs the full
    /// per-tick pipeline.
    Tick,
    /// Event-horizon fast-forward: provably quiescent spans between
    /// events are advanced in bulk, with capacitor threshold crossings
    /// bounded in closed form (`qz-energy`'s bulk integration).
    #[default]
    FastForward,
}

impl EngineKind {
    /// Parses an engine name as accepted by `--engine` and `QZ_ENGINE`:
    /// `tick` (or `reference`) and `fast` (or `fast-forward`, `ff`).
    pub fn parse(name: &str) -> Option<EngineKind> {
        match name.to_ascii_lowercase().as_str() {
            "tick" | "reference" => Some(EngineKind::Tick),
            "fast" | "fast-forward" | "fastforward" | "ff" => Some(EngineKind::FastForward),
            _ => None,
        }
    }

    /// The engine selected by the `QZ_ENGINE` environment variable, if
    /// it is set to a recognized name.
    pub fn from_env() -> Option<EngineKind> {
        std::env::var("QZ_ENGINE")
            .ok()
            .and_then(|v| EngineKind::parse(&v))
    }

    /// Short label for reports and logs.
    pub fn label(self) -> &'static str {
        match self {
            EngineKind::Tick => "tick",
            EngineKind::FastForward => "fast-forward",
        }
    }
}

/// Top-level simulation parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// Device cost table.
    pub device: DeviceConfig,
    /// Power system.
    pub power: PowerConfig,
    /// Extra simulated time after the last event, letting in-flight and
    /// buffered inputs drain.
    pub drain: SimDuration,
    /// Seed for the simulator's stochastic draws (classification
    /// outcomes).
    pub seed: u64,
    /// Stepping strategy (fast-forward by default; `tick` is the
    /// reference loop).
    pub engine: EngineKind,
}

impl Default for SimConfig {
    fn default() -> SimConfig {
        SimConfig {
            device: DeviceConfig::default(),
            power: PowerConfig::default(),
            drain: SimDuration::from_secs(600),
            seed: 0x51_3D,
            engine: EngineKind::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_consistent() {
        let cfg = SimConfig::default();
        assert_eq!(cfg.device.buffer_capacity, 10);
        assert_eq!(cfg.device.capture_period, SimDuration::from_secs(1));
        let h = cfg.power.harvester();
        assert_eq!(h.cells(), 6);
        let c = cfg.power.supercap();
        assert!(c.capacity().value() > 0.0);
    }

    #[test]
    fn checkpoint_reserve_covers_checkpoint() {
        let d = DeviceConfig::default();
        assert!(d.checkpoint_reserve() > d.checkpoint_energy);
    }

    #[test]
    fn engine_names_parse() {
        assert_eq!(EngineKind::parse("tick"), Some(EngineKind::Tick));
        assert_eq!(EngineKind::parse("reference"), Some(EngineKind::Tick));
        assert_eq!(EngineKind::parse("fast"), Some(EngineKind::FastForward));
        assert_eq!(
            EngineKind::parse("FAST-FORWARD"),
            Some(EngineKind::FastForward)
        );
        assert_eq!(EngineKind::parse("ff"), Some(EngineKind::FastForward));
        assert_eq!(EngineKind::parse("warp"), None);
        assert_eq!(EngineKind::default(), EngineKind::FastForward);
        assert_eq!(EngineKind::Tick.label(), "tick");
        assert_eq!(EngineKind::FastForward.label(), "fast-forward");
    }
}
