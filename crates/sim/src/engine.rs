//! The simulation loop: a fixed-increment reference engine plus an
//! event-horizon fast-forward engine that advances provably quiescent
//! spans in bulk (see `DESIGN.md`, "Fast-forward engine").

use crate::buffer::{BufferEntry, InputBuffer, InputBufferState};
use crate::config::{EngineKind, SimConfig};
use crate::fault::{FaultContext, FaultInjector, FaultPhase, InjectorState};
use crate::intermittent::{CheckpointPolicy, ProgressKeeper, ProgressKeeperState};
use crate::metrics::Metrics;
use crate::pipeline::{PipelineError, PipelineSpec, Route, TaskBehavior};
use crate::telemetry::{Recorder, Telemetry, TelemetrySample};
use crate::uplink::{TxDecision, TxRecord, UplinkPort, UplinkState};
use core::fmt;
use quetzal::model::{JobId, TaskCost, TaskId, TaskKey};
use quetzal::runtime::{BufferView, RuntimeState};
use quetzal::Quetzal;
use qz_energy::{PowerSystem, PowerSystemState, StopCondition};
use qz_obs::{EventKind, Observer};
use qz_prof::{HorizonCause, HorizonStats, Phase, PhaseProfiler};
use qz_traces::SensingEnvironment;
use qz_types::{Seconds, SimDuration, SimTime, SplitMix64, Watts};

/// Errors from assembling a [`Simulation`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// The behaviour/route binding did not match the runtime's spec.
    Pipeline(PipelineError),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Pipeline(e) => write!(f, "invalid pipeline: {e}"),
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimError::Pipeline(e) => Some(e),
        }
    }
}

impl From<PipelineError> for SimError {
    fn from(e: PipelineError) -> SimError {
        SimError::Pipeline(e)
    }
}

/// On/off state of the intermittently powered device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DeviceState {
    On,
    Off,
}

/// Phase of an executing job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum JobPhase {
    /// Scheduler/degradation-engine overhead before the first task.
    Overhead,
    /// Executing the task at this index.
    Task(usize),
}

#[derive(Debug, Clone)]
struct ActiveJob {
    job: JobId,
    option: usize,
    entry: BufferEntry,
    phase: JobPhase,
    remaining: SimDuration,
    /// The current task's full (jittered) latency, for replay policies.
    full_latency: SimDuration,
    /// Recoverable-progress bookkeeping for the checkpoint policy.
    keeper: ProgressKeeper,
    executed: Vec<(TaskId, bool)>,
    started_at: SimTime,
    task_started_at: SimTime,
    /// Waiting out an uplink backoff/duty deferral before the task at
    /// `phase` may (re-)attempt to transmit. The radio sleeps while
    /// waiting, so the job draws sleep power, not task power.
    tx_wait: bool,
}

/// Block size of the batched busy-tick kernel: runs of busy ticks in
/// repeating regimes (installed fault injector, scheduler-every-tick
/// crowds) execute in fixed blocks of up to this many ticks with the
/// per-tick invariants hoisted into a per-block prologue. Observables
/// stay byte-identical to the reference loop; see
/// [`Simulation::busy_block`].
const BUSY_BLOCK_TICKS: u64 = 64;

/// One simulated device run: environment + power system + runtime +
/// application pipeline.
///
/// # Examples
///
/// See the crate-level docs and the `quickstart` example; assembling a
/// simulation requires an [`AppSpec`](quetzal::model::AppSpec)-backed
/// runtime and a matching behaviour binding.
#[derive(Debug)]
pub struct Simulation<'a> {
    cfg: SimConfig,
    env: &'a SensingEnvironment,
    runtime: Quetzal,
    pipeline: PipelineSpec,
    power: PowerSystem,
    buffer: InputBuffer,
    state: DeviceState,
    job: Option<ActiveJob>,
    now: SimTime,
    events_end: SimTime,
    horizon: SimTime,
    metrics: Metrics,
    rng: SplitMix64,
    recorder: Option<Recorder>,
    /// Gate onto a shared uplink channel; `None` (the default) leaves
    /// radio tasks completely ungated.
    uplink: Option<UplinkPort>,
    /// When the device last powered down (for `Restore` off-time events).
    off_since: Option<SimTime>,
    /// Cadence of `Snapshot` events while an observer is installed.
    snapshot_every: SimDuration,
    /// Seeded adversary consulted while stepping; `None` (the default)
    /// leaves the engine's behaviour bit-identical to a fault-free build.
    fault: Option<Box<dyn FaultInjector>>,
    /// When a checkpoint last completed (for the mid-checkpoint fault
    /// window).
    last_checkpoint_at: Option<SimTime>,
    done: bool,
    /// Scratch buffer for `try_schedule`'s per-tick runnable list, reused
    /// across invocations so the hot path does not allocate.
    scratch_runnable: Vec<(JobId, Option<Seconds>)>,
    /// Recycled allocation for the next `ActiveJob::executed` list.
    spare_executed: Vec<(TaskId, bool)>,
    /// Wall-clock phase profiler; disabled (zero-storage) by default.
    /// Time flows *out* of the engine only — enabling it changes no
    /// simulated observable (pinned by the `profiler_invisibility`
    /// differential suite).
    prof: PhaseProfiler,
    /// Deterministic fast-forward horizon accounting: which bound won
    /// each quiescent span and which causes forced reference ticks.
    /// Counted in sim state (never wall-clock), kept outside `Metrics`
    /// so every byte-equality contract on `Metrics` is untouched.
    horizon_stats: HorizonStats,
}

/// Serializable state of the executing job, captured inside
/// [`SimState`]. Job and task identities are stored as spec indices so
/// the state can be rebuilt against any runtime sharing the same
/// [`AppSpec`](quetzal::model::AppSpec).
#[derive(Debug, Clone, PartialEq)]
pub struct ActiveJobState {
    /// Spec index of the executing job.
    pub job: usize,
    /// Degradation option the job was scheduled at.
    pub option: usize,
    /// The buffered input being processed.
    pub entry: BufferEntry,
    /// Executing task index; `None` while paying scheduler overhead.
    pub task_index: Option<usize>,
    /// Remaining latency of the current countdown.
    pub remaining: SimDuration,
    /// The current task's full (jittered) latency.
    pub full_latency: SimDuration,
    /// Checkpoint-progress bookkeeping.
    pub keeper: ProgressKeeperState,
    /// Executed flag per task of the job, in spec order.
    pub executed: Vec<bool>,
    /// When the job started.
    pub started_at: SimTime,
    /// When the current task started.
    pub task_started_at: SimTime,
    /// Waiting out an uplink backoff/duty deferral.
    pub tx_wait: bool,
}

/// A bit-exact snapshot of everything a [`Simulation`] evolves while
/// stepping: capacitor and energy totals, the runtime's learned state,
/// buffer contents, the active job, RNG streams, metrics, telemetry,
/// uplink and fault-injector streams, and the engine cursor.
///
/// Configuration (device costs, environment, engine kind, spec) is
/// deliberately *not* captured: [`Simulation::restore_state`] targets a
/// simulation freshly built from the same configuration, and
/// `save → restore → resume` is then byte-identical to stepping
/// straight through — on both engines. Wall-clock observability
/// (profiler, horizon stats) is excluded: it is not part of the
/// deterministic contract.
#[derive(Debug, Clone, PartialEq)]
pub struct SimState {
    /// Engine cursor: current simulation time.
    pub now: SimTime,
    /// `true` if the device was powered on.
    pub on: bool,
    /// Capacitor charge and cumulative energy totals.
    pub power: PowerSystemState,
    /// The runtime's learned state (windows, PID, estimators, RNG-free).
    pub runtime: RuntimeState,
    /// Input-buffer contents.
    pub buffer: InputBufferState,
    /// The executing job, if any.
    pub job: Option<ActiveJobState>,
    /// Raw state word of the engine's jitter/classification stream.
    pub rng: u64,
    /// Metrics accumulated so far.
    pub metrics: Metrics,
    /// Recorded telemetry samples (`None` when recording is disabled).
    pub telemetry: Option<Vec<TelemetrySample>>,
    /// Uplink-gate state (`None` without an installed port).
    pub uplink: Option<UplinkState>,
    /// Fault-injector state (`None` without an installed injector).
    pub injector: Option<InjectorState>,
    /// When the device last powered down.
    pub off_since: Option<SimTime>,
    /// When a checkpoint last completed.
    pub last_checkpoint_at: Option<SimTime>,
    /// Whether the run had already finished.
    pub done: bool,
}

impl SimState {
    /// Equality over every field except the fault-injector words —
    /// the comparison failure bisection uses to find where a faulted
    /// run's *device* state first diverges from its fault-free twin
    /// (their injector states differ by construction).
    pub fn eq_ignoring_injector(&self, other: &SimState) -> bool {
        self.now == other.now
            && self.on == other.on
            && self.power == other.power
            && self.runtime == other.runtime
            && self.buffer == other.buffer
            && self.job == other.job
            && self.rng == other.rng
            && self.metrics == other.metrics
            && self.telemetry == other.telemetry
            && self.uplink == other.uplink
            && self.off_since == other.off_since
            && self.last_checkpoint_at == other.last_checkpoint_at
            && self.done == other.done
    }
}

impl<'a> Simulation<'a> {
    /// Assembles a simulation.
    ///
    /// `behaviors` (one per task, in task order), `routes` (one per job,
    /// in job order) and `entry_job` bind the runtime's spec to simulated
    /// application behaviour.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Pipeline`] if the binding does not match the
    /// runtime's spec.
    pub fn new(
        cfg: SimConfig,
        env: &'a SensingEnvironment,
        runtime: Quetzal,
        entry_job: JobId,
        behaviors: Vec<TaskBehavior>,
        routes: Vec<Route>,
    ) -> Result<Simulation<'a>, SimError> {
        let pipeline = PipelineSpec::new(runtime.spec(), entry_job, behaviors, routes)?;
        let power = PowerSystem::new(cfg.power.supercap(), cfg.power.harvester());
        let buffer = InputBuffer::new(runtime.spec().jobs().len(), cfg.device.buffer_capacity);
        let events_end = env.events().end();
        let horizon = events_end + cfg.drain;
        let rng = SplitMix64::new(cfg.seed);
        Ok(Simulation {
            cfg,
            env,
            runtime,
            pipeline,
            power,
            buffer,
            state: DeviceState::On,
            job: None,
            now: SimTime::ZERO,
            events_end,
            horizon,
            metrics: Metrics::default(),
            rng,
            recorder: None,
            uplink: None,
            off_since: None,
            snapshot_every: SimDuration::from_secs(1),
            fault: None,
            last_checkpoint_at: None,
            done: false,
            scratch_runnable: Vec::new(),
            spare_executed: Vec::new(),
            prof: PhaseProfiler::disabled(),
            horizon_stats: HorizonStats::new(),
        })
    }

    /// Current simulation time.
    pub fn time(&self) -> SimTime {
        self.now
    }

    /// Metrics collected so far.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// The runtime under simulation.
    pub fn runtime(&self) -> &Quetzal {
        &self.runtime
    }

    /// Buffer occupancy right now (queued + in flight) — diagnostic.
    pub fn occupancy(&self) -> usize {
        self.buffer.occupancy()
    }

    /// Stored usable energy right now — diagnostic.
    pub fn stored_energy(&self) -> qz_types::Joules {
        self.power.capacitor().energy()
    }

    /// `true` while the device is powered on — diagnostic.
    pub fn is_on(&self) -> bool {
        self.state == DeviceState::On
    }

    /// The degradation option of the currently executing job, if any —
    /// diagnostic.
    pub fn active_option(&self) -> Option<usize> {
        self.job.as_ref().map(|j| j.option)
    }

    /// Installs a gate onto a shared uplink channel. From now on every
    /// `Transmit` task must pass duty-cycle and carrier-sense checks
    /// before executing; refused attempts wait and retry, holding their
    /// buffer slot (see [`crate::uplink`]).
    pub fn set_uplink(&mut self, port: UplinkPort) {
        self.uplink = Some(port);
    }

    /// The installed uplink gate, if any.
    pub fn uplink(&self) -> Option<&UplinkPort> {
        self.uplink.as_ref()
    }

    /// Installs a seeded fault injector. From now on every tick
    /// consults the adversary for forced power failures, checkpoint
    /// corruption, ADC misreads, clock jitter, input bursts, and uplink
    /// jams (see [`crate::fault`]).
    pub fn set_fault_injector(&mut self, injector: Box<dyn FaultInjector>) {
        self.fault = Some(injector);
    }

    /// Removes the installed fault injector, returning it so harnesses
    /// can recover accumulated statistics.
    pub fn take_fault_injector(&mut self) -> Option<Box<dyn FaultInjector>> {
        self.fault.take()
    }

    /// Snapshot of the engine state the fault hooks see this tick.
    fn fault_context(&self, now: SimTime) -> FaultContext {
        let mut transmitting = false;
        let phase = match (&self.state, &self.job) {
            (DeviceState::Off, _) => FaultPhase::Off,
            (DeviceState::On, None) => FaultPhase::Idle,
            (DeviceState::On, Some(j)) if j.tx_wait => {
                transmitting = true;
                FaultPhase::TxWait
            }
            (DeviceState::On, Some(j)) => match j.phase {
                JobPhase::Overhead => FaultPhase::Overhead,
                JobPhase::Task(index) => {
                    let task = self.runtime.spec().job(j.job).tasks[index];
                    transmitting =
                        matches!(self.pipeline.behavior(task), TaskBehavior::Transmit(_));
                    let full = j.full_latency.as_millis();
                    let progress = if full == 0 {
                        0.0
                    } else {
                        1.0 - j.remaining.as_millis() as f64 / full as f64
                    };
                    FaultPhase::Task { index, progress }
                }
            },
        };
        let just_checkpointed = self
            .last_checkpoint_at
            .is_some_and(|at| now.since(at) <= SimDuration::TICK);
        FaultContext {
            now,
            phase,
            stored: self.power.capacitor().energy(),
            reserve: self.cfg.device.checkpoint_reserve(),
            occupancy: self.buffer.occupancy(),
            capacity: self.buffer.capacity(),
            transmitting,
            just_checkpointed,
        }
    }

    /// Sets the carrier-sense busy probability on the installed gate
    /// (no-op without one). The fleet coordinator calls this between
    /// epochs with the other devices' previous-epoch channel load.
    pub fn set_uplink_busy_probability(&mut self, p: f64) {
        if let Some(port) = self.uplink.as_mut() {
            port.set_busy_probability(p);
        }
    }

    /// Takes the transmissions granted since the last drain (empty
    /// without an uplink gate).
    pub fn drain_tx_log(&mut self) -> Vec<TxRecord> {
        self.uplink
            .as_mut()
            .map(UplinkPort::drain_log)
            .unwrap_or_default()
    }

    /// Whether the run has finished (same condition that makes
    /// [`step`](Simulation::step) return `false`).
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// A conservative lower bound on the next instant this device could
    /// consult its uplink gate (a carrier sense), or `None` when it
    /// provably never senses again.
    ///
    /// The fleet event-horizon scheduler parks a device until this tick.
    /// Everything the device does before its next sense — capture
    /// boundaries, energy flow, job progress — is replayed exactly at
    /// wake by [`step_until`](Simulation::step_until), so the bound only
    /// has to protect the one interaction that reads fleet state: the
    /// carrier-sense `p_busy` probability and its dedicated RNG stream.
    /// Senses happen only when a transmit task starts, which gives the
    /// case analysis:
    ///
    /// - done, or no uplink gate installed: `None` (without a gate the
    ///   engine never senses, and there is nothing to coordinate);
    /// - a fault injector is installed: `Some(now)` — the adversary can
    ///   reshape progress arbitrarily, so never park;
    /// - a job is active (on or off, including a busy-backoff wait):
    ///   the countdown must reach zero first, so the first sense is no
    ///   earlier than `now + remaining − 1 ms`; power failures and
    ///   checkpoint rollbacks only push it later;
    /// - no job but a non-empty buffer: the scheduler may start a
    ///   transmit-bearing job on the very next tick — `Some(now)`;
    /// - idle (no job, empty buffer): the buffer can only refill at a
    ///   capture boundary that falls inside a sensing event, and a job
    ///   scheduled there starts with a scheduler-overhead phase, so no
    ///   sense happens before the first boundary `b ≥ now` with an
    ///   active event. When no such boundary remains the device drains
    ///   without ever sensing again: `None`.
    pub fn next_uplink_due(&self) -> Option<SimTime> {
        if self.done || self.uplink.is_none() {
            return None;
        }
        if self.fault.is_some() {
            return Some(self.now);
        }
        if let Some(job) = &self.job {
            let due = self.now.as_millis() + job.remaining.as_millis().saturating_sub(1);
            return Some(SimTime::from_millis(due));
        }
        if !self.buffer.is_idle() {
            return Some(self.now);
        }
        let period = self.cfg.device.capture_period;
        let events = self.env.events().events();
        let idx = events.partition_point(|e| e.end() <= self.now);
        for event in &events[idx..] {
            let boundary = self.now.max(event.start).next_multiple_of(period);
            if boundary < event.end() {
                return Some(boundary);
            }
        }
        None
    }

    /// Enables periodic telemetry recording at the given interval.
    ///
    /// # Panics
    ///
    /// Panics if `interval` is zero.
    pub fn record_telemetry(&mut self, interval: SimDuration) {
        let mut recorder = Recorder::new(interval);
        // Size the sample log up front (horizon / interval, plus the
        // t=0 sample) so steady-state recording never reallocates.
        let expected = self.horizon.as_millis() / interval.as_millis();
        #[allow(clippy::cast_possible_truncation)]
        recorder
            .telemetry
            .reserve((expected.saturating_add(1)).min(1 << 24) as usize);
        self.recorder = Some(recorder);
    }

    /// Installs a decision-tracing observer on the runtime; the
    /// simulator routes its own transition events (power failures,
    /// restores, checkpoints, buffer admits/discards, job starts,
    /// periodic snapshots) through the same hook, so the sink sees one
    /// interleaved stream.
    pub fn set_observer(&mut self, observer: Box<dyn Observer>) {
        self.runtime.set_observer(observer);
    }

    /// Removes the installed observer (a disabled noop takes its
    /// place), returning it so sinks can be drained.
    pub fn take_observer(&mut self) -> Box<dyn Observer> {
        self.runtime.take_observer()
    }

    /// Changes the cadence of `Snapshot` events (default 1 s).
    ///
    /// # Panics
    ///
    /// Panics if `interval` is zero.
    pub fn snapshot_interval(&mut self, interval: SimDuration) {
        assert!(!interval.is_zero(), "snapshot interval must be positive");
        self.snapshot_every = interval;
    }

    /// The recorded telemetry so far (empty unless
    /// [`Simulation::record_telemetry`] was called).
    pub fn telemetry(&self) -> Option<&Telemetry> {
        self.recorder.as_ref().map(|r| &r.telemetry)
    }

    /// Turns on wall-clock phase profiling (see [`qz_prof`]). Profiling
    /// is a pure side channel: every simulated observable — metrics,
    /// telemetry, events, energy trajectory — stays byte-identical.
    pub fn enable_profiling(&mut self) {
        self.prof = PhaseProfiler::enabled();
    }

    /// Installs a specific profiler (e.g. one pre-seeded by a harness).
    pub fn set_profiler(&mut self, prof: PhaseProfiler) {
        self.prof = prof;
    }

    /// The phase profiler's current aggregate.
    pub fn profiler(&self) -> &PhaseProfiler {
        &self.prof
    }

    /// Removes the profiler (a disabled one takes its place), returning
    /// it so harnesses can merge or render it after the run.
    pub fn take_profiler(&mut self) -> PhaseProfiler {
        std::mem::replace(&mut self.prof, PhaseProfiler::disabled())
    }

    /// Fast-forward horizon accounting so far: which bound won each
    /// quiescent span and which causes forced reference ticks. Empty
    /// under [`EngineKind::Tick`].
    pub fn horizon_stats(&self) -> &HorizonStats {
        &self.horizon_stats
    }

    /// Captures a bit-exact [`SimState`] snapshot of the run so far.
    ///
    /// # Errors
    ///
    /// Fails if an installed fault injector does not support
    /// snapshotting (its [`FaultInjector::save_state`] returns `None`).
    pub fn save_state(&mut self) -> Result<SimState, String> {
        let t0 = self.prof.begin();
        let injector = match self.fault.as_ref() {
            None => None,
            Some(f) => Some(f.save_state().ok_or_else(|| {
                String::from("installed fault injector does not support snapshots")
            })?),
        };
        let job = self.job.as_ref().map(|j| ActiveJobState {
            job: j.job.index(),
            option: j.option,
            entry: j.entry,
            task_index: match j.phase {
                JobPhase::Overhead => None,
                JobPhase::Task(i) => Some(i),
            },
            remaining: j.remaining,
            full_latency: j.full_latency,
            keeper: j.keeper.save_state(),
            executed: j.executed.iter().map(|&(_, ran)| ran).collect(),
            started_at: j.started_at,
            task_started_at: j.task_started_at,
            tx_wait: j.tx_wait,
        });
        let state = SimState {
            now: self.now,
            on: self.state == DeviceState::On,
            power: self.power.save_state(),
            runtime: self.runtime.save_state(),
            buffer: self.buffer.save_state(),
            job,
            rng: self.rng.state(),
            metrics: self.metrics.clone(),
            telemetry: self
                .recorder
                .as_ref()
                .map(|r| r.telemetry.samples().to_vec()),
            uplink: self.uplink.as_ref().map(UplinkPort::save_state),
            injector,
            off_since: self.off_since,
            last_checkpoint_at: self.last_checkpoint_at,
            done: self.done,
        };
        self.prof.end(Phase::SnapSave, t0);
        Ok(state)
    }

    /// Restores a snapshot captured by [`Simulation::save_state`] into
    /// a simulation freshly built from the same configuration (same
    /// spec, device costs, environment, engines, seeds, and the same
    /// telemetry/uplink/fault installations). After a successful
    /// restore, stepping resumes byte-identically to the run the
    /// snapshot was taken from.
    ///
    /// # Errors
    ///
    /// Rejects snapshots whose shape does not match the live
    /// simulation: wrong queue/window/task counts, out-of-range job or
    /// task indices, or a telemetry/uplink/fault installation mismatch.
    /// The simulation state is unspecified after an error — rebuild it
    /// before further use.
    pub fn restore_state(&mut self, state: &SimState) -> Result<(), String> {
        let t0 = self.prof.begin();
        // Fallible shape-checked pieces first.
        self.buffer.restore_state(&state.buffer)?;
        self.runtime.restore_state(&state.runtime)?;
        self.job = match &state.job {
            None => None,
            Some(js) => {
                let job = self
                    .runtime
                    .spec()
                    .job_id(js.job)
                    .ok_or_else(|| format!("active-job index {} out of range", js.job))?;
                let tasks = &self.runtime.spec().job(job).tasks;
                if js.executed.len() != tasks.len() {
                    return Err(format!(
                        "active-job executed-flag count mismatch: snapshot {} vs spec {}",
                        js.executed.len(),
                        tasks.len()
                    ));
                }
                if let Some(i) = js.task_index {
                    if i >= tasks.len() {
                        return Err(format!("active-task index {i} out of range"));
                    }
                }
                let mut keeper = ProgressKeeper::default();
                keeper.restore_state(&js.keeper);
                Some(ActiveJob {
                    job,
                    option: js.option,
                    entry: js.entry,
                    phase: match js.task_index {
                        None => JobPhase::Overhead,
                        Some(i) => JobPhase::Task(i),
                    },
                    remaining: js.remaining,
                    full_latency: js.full_latency,
                    keeper,
                    executed: tasks
                        .iter()
                        .copied()
                        .zip(js.executed.iter().copied())
                        .collect(),
                    started_at: js.started_at,
                    task_started_at: js.task_started_at,
                    tx_wait: js.tx_wait,
                })
            }
        };
        match (self.recorder.as_mut(), &state.telemetry) {
            (Some(rec), Some(samples)) => {
                rec.telemetry = Telemetry::from_samples(samples.clone());
            }
            (None, None) => {}
            (Some(_), None) => {
                return Err(String::from(
                    "telemetry recording is enabled but the snapshot carries no samples",
                ))
            }
            (None, Some(_)) => {
                return Err(String::from(
                    "snapshot carries telemetry but recording is not enabled",
                ))
            }
        }
        match (self.uplink.as_mut(), &state.uplink) {
            (Some(port), Some(s)) => port.restore_state(s),
            (None, None) => {}
            _ => {
                return Err(String::from(
                    "uplink installation does not match the snapshot",
                ))
            }
        }
        match (self.fault.as_mut(), &state.injector) {
            (Some(f), Some(s)) => f.restore_state(s)?,
            (None, None) => {}
            _ => {
                return Err(String::from(
                    "fault-injector installation does not match the snapshot",
                ))
            }
        }
        // Infallible pieces last.
        self.power.restore_state(&state.power);
        self.rng = SplitMix64::from_state(state.rng);
        self.now = state.now;
        self.state = if state.on {
            DeviceState::On
        } else {
            DeviceState::Off
        };
        self.metrics = state.metrics.clone();
        self.off_since = state.off_since;
        self.last_checkpoint_at = state.last_checkpoint_at;
        self.done = state.done;
        self.prof.end(Phase::SnapRestore, t0);
        Ok(())
    }

    /// Runs to completion and returns the final metrics.
    pub fn run(mut self) -> Metrics {
        while self.step() {}
        self.metrics
    }

    /// Runs to completion and returns the metrics together with the
    /// observer installed via [`Simulation::set_observer`] (a disabled
    /// noop if none was installed).
    pub fn run_traced(mut self) -> (Metrics, Box<dyn Observer>) {
        while self.step() {}
        let observer = self.runtime.take_observer();
        (self.metrics, observer)
    }

    /// Runs to completion and returns the metrics together with the
    /// recorded telemetry.
    pub fn run_with_telemetry(mut self) -> (Metrics, Telemetry) {
        while self.step() {}
        let telemetry = self
            .recorder
            .take()
            .map(|r| r.telemetry)
            .unwrap_or_default();
        (self.metrics, telemetry)
    }

    /// Advances the simulation. Under [`EngineKind::Tick`] this is
    /// exactly one 1 ms tick; under [`EngineKind::FastForward`] it is
    /// one tick, one batched block of busy ticks, *or* one
    /// bulk-advanced quiescent span — every observable (metrics,
    /// telemetry, observer events) is identical in all three cases.
    /// Returns `false` once the simulation has finished (events over,
    /// work drained, or horizon reached).
    pub fn step(&mut self) -> bool {
        if self.done {
            return false;
        }
        if self.cfg.engine == EngineKind::FastForward {
            let (span, cause) = self.quiescent_span();
            if span > 0 {
                self.horizon_stats.record_span(cause, span);
                let t0 = self.prof.begin();
                let alive = self.advance_span(span);
                self.prof.end(Phase::SpanAdvance, t0);
                return alive;
            }
            return self.busy_ticks(cause, u64::MAX);
        }
        self.step_tick()
    }

    /// Steps until `limit` (exclusive) or completion, whichever comes
    /// first; returns `false` once the simulation has finished.
    /// Fast-forward spans never cross `limit`, so external barriers
    /// (qz-fleet epoch boundaries) observe the same intermediate states
    /// the tick engine would expose.
    pub fn step_until(&mut self, limit: SimTime) -> bool {
        while !self.done && self.now < limit {
            if self.cfg.engine == EngineKind::FastForward {
                let (raw, cause) = self.quiescent_span();
                let span = raw.min(limit.as_millis().saturating_sub(self.now.as_millis()));
                if span > 0 {
                    self.horizon_stats.record_span(cause, span);
                    let t0 = self.prof.begin();
                    self.advance_span(span);
                    self.prof.end(Phase::SpanAdvance, t0);
                } else {
                    // Busy ticks batch too, but blocks never cross
                    // `limit`: the barrier sees the same intermediate
                    // state the tick engine would expose.
                    let remaining = limit.as_millis() - self.now.as_millis();
                    self.busy_ticks(cause, remaining);
                }
                continue;
            }
            self.step_tick();
        }
        !self.done
    }

    /// How many ticks from `now` are provably *quiescent*: no capture
    /// boundary, telemetry sample, snapshot, scheduler invocation, job
    /// countdown expiry, due periodic checkpoint, fault hook, or
    /// termination check can fire inside the span — only energy flow and
    /// time accounting happen. Such ticks can be advanced in bulk by
    /// [`Simulation::advance_span`] with byte-identical observables.
    /// Returns 0 when the current tick must run the reference path.
    ///
    /// The returned [`HorizonCause`] names the bound that won the argmin
    /// (ties keep the earlier-checked bound), feeding the deterministic
    /// horizon accounting behind `qz profile`'s "why is this run slow"
    /// ranking.
    fn quiescent_span(&self) -> (u64, HorizonCause) {
        // An installed adversary draws from its fault streams every
        // tick, so every tick is a potential fault trigger: the horizon
        // collapses and the reference loop runs (see qz-check QZ070 for
        // the analogous config-induced collapses).
        if self.fault.is_some() {
            return (0, HorizonCause::FaultCollapse);
        }
        let on = self.state == DeviceState::On;
        // A powered-on idle device with queued inputs invokes the
        // scheduler — and its estimator/controller updates — every tick.
        if on && self.job.is_none() && !self.buffer.is_idle() {
            return (0, HorizonCause::BusyScheduler);
        }
        let t = self.now.as_millis();
        // The first tick that must run the reference path. Seeded with
        // the horizon's final tick (it fires the termination check) and
        // pulled closer by every other pending boundary; each strict
        // improvement also takes over the blame for the collapse.
        let mut next_event = self.horizon.as_millis().saturating_sub(1);
        let mut cause = HorizonCause::HorizonEnd;
        let pull = |next_event: &mut u64, cause: &mut HorizonCause, at: u64, c: HorizonCause| {
            if at < *next_event {
                *next_event = at;
                *cause = c;
            }
        };
        if self.job.is_none() && self.buffer.is_idle() {
            // Fully drained: the tick ending at `events_end` terminates.
            pull(
                &mut next_event,
                &mut cause,
                self.events_end.as_millis().saturating_sub(1),
                HorizonCause::EventsEnd,
            );
        }
        if self.now < self.events_end {
            let boundary = self.now.next_multiple_of(self.cfg.device.capture_period);
            if boundary < self.events_end {
                pull(
                    &mut next_event,
                    &mut cause,
                    boundary.as_millis(),
                    HorizonCause::CaptureBoundary,
                );
            }
        }
        if let Some(rec) = &self.recorder {
            pull(
                &mut next_event,
                &mut cause,
                self.now.next_multiple_of(rec.interval).as_millis(),
                HorizonCause::TelemetryDue,
            );
        }
        if self.runtime.observing() {
            pull(
                &mut next_event,
                &mut cause,
                self.now.next_multiple_of(self.snapshot_every).as_millis(),
                HorizonCause::SnapshotDue,
            );
        }
        // Job countdowns only tick while the device is on; while off the
        // job is frozen and only the restore crossing (handled by the
        // bulk integrator's stop condition) can wake it.
        if on {
            if let Some(j) = &self.job {
                // The countdown (task, overhead, or tx backoff) reaches
                // zero — and runs its transition — on tick t + rem − 1.
                pull(
                    &mut next_event,
                    &mut cause,
                    t + j.remaining.as_millis().saturating_sub(1),
                    HorizonCause::JobCountdown,
                );
                if matches!(j.phase, JobPhase::Task(_)) {
                    if let Some(due) = j
                        .keeper
                        .ticks_until_periodic_due(self.cfg.device.checkpoint_policy)
                    {
                        pull(
                            &mut next_event,
                            &mut cause,
                            t + due,
                            HorizonCause::CheckpointDue,
                        );
                    }
                }
            }
        }
        (next_event.saturating_sub(t), cause)
    }

    /// Advances `span` provably-quiescent ticks in bulk. Energy flows
    /// through [`PowerSystem::advance`] one constant-irradiance segment
    /// at a time (bit-identical arithmetic to per-tick stepping), while
    /// time accounting, buffer-occupancy integration, the job countdown,
    /// and the periodic-checkpoint clock advance arithmetically. A
    /// capacitor threshold crossing inside the span runs the very same
    /// transition the reference loop would, on the same tick.
    fn advance_span(&mut self, span: u64) -> bool {
        let occupancy = self.buffer.occupancy() as u64;
        let on = self.state == DeviceState::On;
        let (load, stop) = if on {
            (
                self.current_power(),
                StopCondition::Depleted(self.cfg.device.checkpoint_reserve()),
            )
        } else {
            (self.cfg.device.off_leakage, StopCondition::CanTurnOn)
        };
        let mut left = span;
        let mut crossed = false;
        while left > 0 && !crossed {
            let t = self.now;
            let (irr, segment) = self.env.solar().constant_until(t);
            let ticks = left.min(segment.max(1));
            let out = self.power.advance_profiled(
                irr,
                load,
                SimDuration::TICK,
                ticks,
                stop,
                &mut self.metrics.energy_harvested,
                &mut self.metrics.energy_wasted,
                &mut self.prof,
            );
            if on {
                self.metrics.time_on += SimDuration::TICK * out.ticks;
            } else {
                self.metrics.time_off += SimDuration::TICK * out.ticks;
            }
            self.metrics.occupancy_ms += occupancy * out.ticks;
            // The crossing tick (if any) takes the failure/restore path
            // instead of progressing work, exactly like the reference
            // loop's tick for that instant.
            let progressed = if out.crossed {
                out.ticks - 1
            } else {
                out.ticks
            };
            if on && progressed > 0 {
                if let Some(j) = self.job.as_mut() {
                    j.remaining = j.remaining.saturating_sub(SimDuration::TICK * progressed);
                    if matches!(j.phase, JobPhase::Task(_)) {
                        j.keeper.advance(SimDuration::TICK * progressed);
                    }
                }
            }
            if out.crossed {
                let t_cross = t + SimDuration::TICK * (out.ticks - 1);
                // Events emitted by the transition must carry the
                // crossing tick's timestamp, and `on_power_failure`
                // reads `self.now` for `off_since`.
                self.now = t_cross;
                self.runtime.set_time_ms(t_cross.as_millis());
                if on {
                    if self.power.capacitor().energy() <= self.cfg.device.checkpoint_reserve() {
                        self.on_power_failure();
                    }
                    // Otherwise the tick merely browned out above the
                    // reserve: the reference loop neither fails nor
                    // progresses it, so there is nothing more to do.
                } else {
                    self.power.draw(self.cfg.device.restore_energy);
                    self.metrics.restores += 1;
                    self.state = DeviceState::On;
                    if self.runtime.observing() {
                        let off_ms = self
                            .off_since
                            .take()
                            .map_or(0, |off| t_cross.since(off).as_millis());
                        self.runtime.emit_event(EventKind::Restore { off_ms });
                    }
                    self.off_since = None;
                    self.maybe_corrupt_checkpoint(t_cross);
                }
                crossed = true;
            }
            self.now = t + SimDuration::TICK * out.ticks;
            left -= out.ticks;
        }
        // Quiescent ticks cannot terminate the run by construction, but
        // a crossing can cut the span short right at a boundary — run
        // the reference loop's termination check for the current tick.
        let drained = self.now >= self.events_end && self.job.is_none() && self.buffer.is_idle();
        if self.now >= self.horizon || drained {
            self.finalize();
            return false;
        }
        true
    }

    /// Advances one 1 ms tick of the reference loop.
    fn step_tick(&mut self) -> bool {
        let t0 = self.prof.begin();
        let alive = self.step_tick_inner();
        self.prof.end(Phase::RefTick, t0);
        alive
    }

    fn step_tick_inner(&mut self) -> bool {
        let t = self.now;
        let irr = self.env.solar().irradiance(t);
        // Stamp every event emitted this tick (runtime- and sim-side)
        // with the current device time.
        self.runtime.set_time_ms(t.as_millis());

        // 1. Periodic capture boundary (the camera only senses while the
        //    event period lasts; afterwards every frame would be empty).
        //    The capture path is a dedicated ultra-low-power subsystem
        //    (camera + diff + compress on a hardware timer, as in the
        //    paper's hardware experiment where frames are recorded at
        //    1 FPS regardless of the main pipeline's state), so it runs
        //    even while the main MCU recharges: its energy is drawn
        //    directly and it never occupies MCU time.
        if t < self.events_end && (t % self.cfg.device.capture_period).is_zero() {
            self.on_capture_boundary(t);
        }

        // 2. Load for this tick.
        let load = match self.state {
            DeviceState::Off => self.cfg.device.off_leakage,
            DeviceState::On => self.current_power(),
        };

        // 3. Energy flow.
        let out = self.power.step(irr, load, SimDuration::TICK);
        self.metrics.energy_harvested += out.harvested;
        self.metrics.energy_wasted += out.wasted;

        // 4. Time accounting.
        match self.state {
            DeviceState::On => self.metrics.time_on += SimDuration::TICK,
            DeviceState::Off => self.metrics.time_off += SimDuration::TICK,
        }
        self.metrics.occupancy_ms += self.buffer.occupancy() as u64;

        // One sample serves both telemetry consumers: the legacy
        // recorder and the observer's Snapshot events.
        let recorder_due = self
            .recorder
            .as_ref()
            .is_some_and(|rec| (t % rec.interval).is_zero());
        let snapshot_due = self.runtime.observing() && (t % self.snapshot_every).is_zero();
        if recorder_due || snapshot_due {
            self.emit_samples(t, irr, recorder_due, snapshot_due);
        }

        // 4b. Fault hooks: let the adversary observe the tick and decide
        //     on a forced power failure before normal progress runs.
        let forced_failure = if self.fault.is_some() {
            self.fault_hooks(t)
        } else {
            false
        };

        // 5. Power-state transitions and work progress.
        self.tick_transitions(t, irr, out.brownout, forced_failure);

        self.now = t.tick();

        // 6. Termination: horizon, or everything drained after the last
        //    event.
        let drained = self.now >= self.events_end && self.job.is_none() && self.buffer.is_idle();
        if self.now >= self.horizon || drained {
            self.finalize();
            return false;
        }
        true
    }

    /// Builds this tick's telemetry sample and routes it to the
    /// due consumers (observer `Snapshot` event, legacy recorder).
    /// Shared verbatim by the reference tick and the busy-block kernel
    /// so the emitted bytes cannot diverge between them.
    fn emit_samples(&mut self, t: SimTime, irr: f64, recorder_due: bool, snapshot_due: bool) {
        let t_obs = self.prof.begin();
        let sample = TelemetrySample {
            t,
            irradiance: irr,
            stored: self.power.capacitor().energy(),
            on: self.state == DeviceState::On,
            occupancy: self.buffer.occupancy(),
            lambda: self.runtime.lambda(),
            correction: self.runtime.correction().value(),
            active_option: self.job.as_ref().map(|j| j.option),
            ibo_discards: self.metrics.ibo_discards,
        };
        if snapshot_due {
            self.runtime
                .emit_event(EventKind::Snapshot(sample.to_snapshot()));
        }
        if recorder_due {
            self.recorder
                .as_mut()
                .expect("recorder_due implies recorder")
                .telemetry
                .push(sample);
        }
        self.prof.end(Phase::ObsEmit, t_obs);
    }

    /// Runs the per-tick fault hooks (adversary observation plus the
    /// forced-power-failure decision). Callers must only invoke this
    /// with an injector installed.
    fn fault_hooks(&mut self, t: SimTime) -> bool {
        // The context snapshot needs `&self`, so build it before
        // borrowing the injector mutably.
        let ctx = self.fault_context(t);
        let mut forced_failure = false;
        if let Some(f) = self.fault.as_mut() {
            f.on_tick(&ctx);
            if self.state == DeviceState::On {
                forced_failure = f.force_power_failure(&ctx);
            }
        }
        forced_failure
    }

    /// The reference tick's power-state transition and work-progress
    /// step (step 5): forced failures, natural failures, restores, and
    /// job/scheduler progress. Shared verbatim by the reference tick
    /// and the busy-block kernel.
    fn tick_transitions(&mut self, t: SimTime, irr: f64, brownout: bool, forced_failure: bool) {
        if forced_failure {
            // Adversarial brownout: drain stored energy down to the
            // checkpoint reserve, then take the normal failure path so
            // checkpoint accounting matches a natural failure exactly.
            self.metrics.faults_power += 1;
            if self.runtime.observing() {
                self.runtime.emit_event(EventKind::FaultInjected {
                    fault: "power_failure",
                });
            }
            let excess = self.power.capacitor().energy() - self.cfg.device.checkpoint_reserve();
            if excess.value() > 0.0 {
                self.power.draw(excess);
            }
            self.on_power_failure();
        } else {
            match self.state {
                DeviceState::On => {
                    if self.power.capacitor().energy() <= self.cfg.device.checkpoint_reserve() {
                        self.on_power_failure();
                    } else if !brownout {
                        self.progress(t, irr);
                    }
                }
                DeviceState::Off => {
                    if self.power.capacitor().can_turn_on() {
                        self.power.draw(self.cfg.device.restore_energy);
                        self.metrics.restores += 1;
                        self.state = DeviceState::On;
                        if self.runtime.observing() {
                            let off_ms = self
                                .off_since
                                .take()
                                .map_or(0, |off| t.since(off).as_millis());
                            self.runtime.emit_event(EventKind::Restore { off_ms });
                        }
                        self.off_since = None;
                        self.maybe_corrupt_checkpoint(t);
                    }
                }
            }
        }
    }

    /// Dispatches a run of busy (non-quiescent) ticks: repeating busy
    /// regimes — an installed fault injector, the scheduler-every-tick
    /// crowd — enter the batched [`Simulation::busy_block`] kernel;
    /// one-off boundary events (capture, telemetry, countdown expiry)
    /// run a single reference tick, the busy *tail*. Both paths execute
    /// reference-loop semantics tick for tick; only the dispatch cost
    /// and the profiler attribution differ.
    fn busy_ticks(&mut self, cause: HorizonCause, limit_ticks: u64) -> bool {
        let blockable = matches!(
            cause,
            HorizonCause::FaultCollapse | HorizonCause::BusyScheduler
        );
        if blockable && limit_ticks > 1 {
            let t0 = self.prof.begin();
            let (ticks, alive) = if self.fault.is_some() {
                self.busy_block::<true>(limit_ticks)
            } else {
                self.busy_block::<false>(limit_ticks)
            };
            self.prof.end(Phase::BusyBlock, t0);
            self.horizon_stats.record_busy_block(cause, ticks);
            alive
        } else {
            self.horizon_stats.record_busy_tail(cause);
            let t0 = self.prof.begin();
            let alive = self.step_tick_inner();
            self.prof.end(Phase::BusyTail, t0);
            alive
        }
    }

    /// The batched busy-tick kernel: executes up to
    /// [`BUSY_BLOCK_TICKS`] consecutive reference-semantics ticks with
    /// the per-tick invariants hoisted into a per-block prologue. The
    /// prologue precomputes when the next capture boundary, telemetry
    /// sample, or observer snapshot falls due and ends the block just
    /// before it (a boundary due *now* runs inside the first tick,
    /// exactly like the reference loop), pins the solar segment so the
    /// harvester conversion hoists out of the loop
    /// ([`PowerSystem::step_prepared`]), and monomorphizes over fault
    /// presence. Every tick then runs the same helper sequence as
    /// [`Simulation::step_tick_inner`] on the same values, so
    /// observables are byte-identical by construction.
    ///
    /// Degradation to reference is exact: any in-block event that ends
    /// the repeating busy regime (the scheduler starts a job, the
    /// device powers down, the buffer drains) commits the tick that
    /// caused it and returns to the horizon planner, which re-plans
    /// from that tick.
    fn busy_block<const FAULT: bool>(&mut self, limit_ticks: u64) -> (u64, bool) {
        let t0 = self.now;
        let start_ms = t0.as_millis();
        // --- Prologue: hoist per-tick due-ness into a block end. ---
        let mut end_ms = start_ms.saturating_add(BUSY_BLOCK_TICKS.min(limit_ticks));
        let period = self.cfg.device.capture_period;
        let first_capture = t0 < self.events_end && (t0 % period).is_zero();
        if t0 < self.events_end {
            end_ms = end_ms.min(t0.tick().next_multiple_of(period).as_millis());
        }
        let first_recorder = self
            .recorder
            .as_ref()
            .is_some_and(|rec| (t0 % rec.interval).is_zero());
        if let Some(rec) = &self.recorder {
            end_ms = end_ms.min(t0.tick().next_multiple_of(rec.interval).as_millis());
        }
        let observing = self.runtime.observing();
        let first_snapshot = observing && (t0 % self.snapshot_every).is_zero();
        if observing {
            end_ms = end_ms.min(t0.tick().next_multiple_of(self.snapshot_every).as_millis());
        }
        end_ms = end_ms.min(self.horizon.as_millis());
        // Solar segment: irradiance is constant across the block, so
        // the harvester conversion runs once.
        let (irr, seg) = self.env.solar().constant_until(t0);
        end_ms = end_ms.min(start_ms.saturating_add(seg.max(1)));
        let input_power = self.power.input_power(irr);
        // --- Block body: reference-tick semantics, hoisted checks. ---
        let mut ticks = 0;
        loop {
            let t = self.now;
            self.runtime.set_time_ms(t.as_millis());
            let first = ticks == 0;
            if first && first_capture {
                self.on_capture_boundary(t);
            }
            let load = match self.state {
                DeviceState::Off => self.cfg.device.off_leakage,
                DeviceState::On => self.current_power(),
            };
            let out = self
                .power
                .step_prepared(input_power, load, SimDuration::TICK);
            self.metrics.energy_harvested += out.harvested;
            self.metrics.energy_wasted += out.wasted;
            match self.state {
                DeviceState::On => self.metrics.time_on += SimDuration::TICK,
                DeviceState::Off => self.metrics.time_off += SimDuration::TICK,
            }
            self.metrics.occupancy_ms += self.buffer.occupancy() as u64;
            if first && (first_recorder || first_snapshot) {
                self.emit_samples(t, irr, first_recorder, first_snapshot);
            }
            let forced_failure = if FAULT { self.fault_hooks(t) } else { false };
            self.tick_transitions(t, irr, out.brownout, forced_failure);
            self.now = t.tick();
            ticks += 1;
            let drained =
                self.now >= self.events_end && self.job.is_none() && self.buffer.is_idle();
            if self.now >= self.horizon || drained {
                self.finalize();
                return (ticks, false);
            }
            if self.now.as_millis() >= end_ms {
                break;
            }
            let busy_scheduler =
                self.state == DeviceState::On && self.job.is_none() && !self.buffer.is_idle();
            if !FAULT && !busy_scheduler {
                // The scheduler-every-tick regime ended (a job started,
                // the device powered down, or the buffer drained):
                // commit the prefix and re-plan from this tick.
                break;
            }
        }
        (ticks, true)
    }

    /// Executes one capture-path firing: sense, prefilter, and (for
    /// changed frames) compress + store. Runs on the dedicated capture
    /// subsystem: instantaneous in MCU time, energy drawn directly.
    fn on_capture_boundary(&mut self, t: SimTime) {
        let active = self.env.events().active_at(t);
        let different = active.is_some();
        let interesting = active.is_some_and(|e| e.interesting);
        self.metrics.frames_total += 1;
        if interesting {
            self.metrics.interesting_total += 1;
        }
        // Sense + diff cost, every frame.
        self.power.draw(self.cfg.device.capture.energy());
        self.power.draw(self.cfg.device.diff.energy());
        if !different {
            self.metrics.frames_filtered += 1;
            self.runtime.on_capture(false);
            return;
        }
        // Changed frame: compress, then try to store. λ counts inputs
        // that pass pre-filtering (the queue's *offered* load, §3.1),
        // whether or not the store succeeds.
        self.admit_arrival(t, interesting);

        // Input-burst anomaly: extra changed-but-uninteresting frames
        // the adversary injects at this boundary. Each pays the full
        // capture-path energy and contends for a buffer slot, so the
        // conservation law `arrivals == stored + ibo_discards` holds
        // for burst frames too.
        let burst = self.fault.as_mut().map_or(0, |f| f.extra_burst(t));
        if burst > 0 {
            self.metrics.faults_burst += u64::from(burst);
            if self.runtime.observing() {
                self.runtime.emit_event(EventKind::FaultInjected {
                    fault: "input_burst",
                });
            }
            for _ in 0..burst {
                self.metrics.frames_total += 1;
                self.power.draw(self.cfg.device.capture.energy());
                self.power.draw(self.cfg.device.diff.energy());
                self.admit_arrival(t, false);
            }
        }
    }

    /// Compresses and stores one changed frame, counting the arrival and
    /// the store-or-discard outcome.
    fn admit_arrival(&mut self, t: SimTime, interesting: bool) {
        self.power.draw(self.cfg.device.compress.energy());
        self.metrics.arrivals += 1;
        self.runtime.on_capture(true);
        let entry = BufferEntry {
            captured_at: t,
            interesting,
        };
        if self.buffer.store(self.pipeline.entry_job(), entry) {
            self.metrics.stored += 1;
            if self.runtime.observing() {
                self.runtime.emit_event(EventKind::BufferAdmit {
                    job: self.pipeline.entry_job().index(),
                    occupancy: self.buffer.occupancy(),
                    interesting,
                });
            }
        } else {
            self.metrics.ibo_discards += 1;
            if interesting {
                self.metrics.ibo_interesting += 1;
            }
            if self.state == DeviceState::Off {
                self.metrics.ibo_while_off += 1;
            } else if let Some(j) = &self.job {
                if j.option == 0 {
                    self.metrics.ibo_during_full_job += 1;
                } else {
                    self.metrics.ibo_during_degraded_job += 1;
                }
            }
            if self.runtime.observing() {
                self.runtime.emit_event(EventKind::IboDiscard {
                    occupancy: self.buffer.occupancy(),
                    interesting,
                    device_on: self.state == DeviceState::On,
                    active_option: self.job.as_ref().map(|j| j.option),
                });
            }
        }
    }

    /// Power drawn by whatever the device is doing right now.
    fn current_power(&self) -> Watts {
        if let Some(j) = &self.job {
            if j.tx_wait {
                // Radio backoff: the MCU sleeps until the re-sense.
                return self.cfg.device.sleep_power;
            }
            return match j.phase {
                JobPhase::Overhead => self.cfg.device.scheduler_overhead.p_exe,
                JobPhase::Task(i) => self.task_cost(j.job, i, j.option).p_exe,
            };
        }
        self.cfg.device.sleep_power
    }

    /// The cost of a job's `i`-th task at the job's selected degradation
    /// option (non-degradable tasks always run at their only cost).
    fn task_cost(&self, job: JobId, task_idx: usize, option: usize) -> TaskCost {
        let spec = self.runtime.spec();
        let task = spec.job(job).tasks[task_idx];
        let task_spec = spec.task(task);
        if task_spec.is_degradable() {
            task_spec.cost(option)
        } else {
            task_spec.best_cost()
        }
    }

    /// Advances the active job or schedules new work.
    fn progress(&mut self, t: SimTime, irr: f64) {
        if self.job.is_some() {
            self.progress_job(t);
        } else {
            self.try_schedule(t, irr);
        }
    }

    /// Handles a brownout: under JIT the device spends its reserve on a
    /// checkpoint (no progress lost); under periodic/task-boundary
    /// policies the failure is abrupt and the active task rolls back.
    fn on_power_failure(&mut self) {
        let policy = self.cfg.device.checkpoint_policy;
        self.metrics.power_failures += 1;
        if self.runtime.observing() {
            self.runtime.emit_event(EventKind::PowerFailure {
                checkpointed: matches!(policy, CheckpointPolicy::JustInTime),
            });
        }
        match policy {
            CheckpointPolicy::JustInTime => {
                self.power.draw(self.cfg.device.checkpoint_energy);
                self.metrics.checkpoints += 1;
                self.last_checkpoint_at = Some(self.now);
            }
            CheckpointPolicy::Periodic { .. } | CheckpointPolicy::TaskBoundary => {
                if let Some(j) = self.job.as_mut() {
                    if matches!(j.phase, JobPhase::Task(_)) {
                        let (resume, lost) =
                            j.keeper
                                .on_power_failure(policy, j.remaining, j.full_latency);
                        j.remaining = resume;
                        self.metrics.reexecuted += lost;
                    }
                }
            }
        }
        self.state = DeviceState::Off;
        self.off_since = Some(self.now);
    }

    /// Consults the adversary right after a restore: a corrupted
    /// checkpoint forces the interrupted task to replay from scratch.
    /// Replay-from-start is the safe recovery for idempotent tasks, so
    /// only re-execution time (not application state) is lost.
    fn maybe_corrupt_checkpoint(&mut self, t: SimTime) {
        if self.fault.is_none() {
            return;
        }
        let mid_task = self
            .job
            .as_ref()
            .is_some_and(|j| matches!(j.phase, JobPhase::Task(_)) && !j.tx_wait);
        if !mid_task {
            return;
        }
        let ctx = self.fault_context(t);
        let corrupt = self
            .fault
            .as_mut()
            .expect("fault injector present")
            .corrupt_checkpoint(&ctx);
        if !corrupt {
            return;
        }
        self.metrics.faults_checkpoint += 1;
        if self.runtime.observing() {
            self.runtime.emit_event(EventKind::FaultInjected {
                fault: "checkpoint_corruption",
            });
        }
        let j = self.job.as_mut().expect("mid-task job present");
        let lost = j.full_latency.saturating_sub(j.remaining);
        j.remaining = j.full_latency;
        j.keeper.task_started(j.full_latency);
        self.metrics.reexecuted += lost;
    }

    fn progress_job(&mut self, t: SimTime) {
        let policy = self.cfg.device.checkpoint_policy;
        let j = self.job.as_mut().expect("job present");
        if matches!(j.phase, JobPhase::Task(_)) && j.keeper.tick(policy) {
            // A periodic checkpoint is due: pay for it, snapshot progress.
            let remaining = j.remaining;
            j.keeper.checkpointed(remaining);
            self.power.draw(self.cfg.device.checkpoint_energy);
            self.metrics.checkpoints += 1;
            self.last_checkpoint_at = Some(t);
            if self.runtime.observing() {
                self.runtime.emit_event(EventKind::Checkpoint);
            }
        }
        let j = self.job.as_mut().expect("job present");
        j.remaining = j.remaining.saturating_sub(SimDuration::TICK);
        if !j.remaining.is_zero() {
            return;
        }
        let waiting = j.tx_wait;
        match j.phase {
            JobPhase::Overhead => self.start_task(t, 0),
            JobPhase::Task(i) if waiting => {
                // Backoff elapsed: re-enter the task, which re-senses.
                self.job.as_mut().expect("job present").tx_wait = false;
                self.start_task(t, i);
            }
            JobPhase::Task(i) => self.finish_task(t, i),
        }
    }

    fn start_task(&mut self, t: SimTime, idx: usize) {
        let (job, option) = {
            let j = self.job.as_ref().expect("job present");
            (j.job, j.option)
        };
        let num_tasks = self.runtime.spec().job(job).tasks.len();
        if idx >= num_tasks {
            self.complete_job(t, false);
            return;
        }
        let task = self.runtime.spec().job(job).tasks[idx];
        let is_transmit = matches!(self.pipeline.behavior(task), TaskBehavior::Transmit(_));
        let cost = self.task_cost(job, idx, option);
        // Data-dependent cost variability (DeviceConfig::task_jitter).
        let jitter = self.cfg.device.task_jitter;
        let mut latency = if jitter > 0.0 {
            let factor = (1.0 + self.rng.next_range(-jitter, jitter)).max(0.1);
            cost.t_exe * factor
        } else {
            cost.t_exe
        };
        // Clock jitter: the adversary's timer drift stretches (or
        // shrinks) this task's wall-clock latency.
        if let Some(f) = self.fault.as_mut() {
            if let Some(scale) = f.clock_jitter(t) {
                latency = latency * scale.max(0.05);
                self.metrics.faults_clock += 1;
                if self.runtime.observing() {
                    self.runtime.emit_event(EventKind::FaultInjected {
                        fault: "clock_jitter",
                    });
                }
            }
        }
        let duration = SimDuration::from_seconds_ceil(latency);
        // Uplink jam: the adversary floods the channel, so the transmit
        // attempt parks in a backoff hold exactly as if carrier sense
        // had failed (works with or without a shared-channel gate).
        if is_transmit {
            let jam = self.fault.as_mut().and_then(|f| f.jam_uplink(t));
            if let Some(wait) = jam {
                let wait = wait.max(SimDuration::TICK);
                self.metrics.faults_jam += 1;
                if self.runtime.observing() {
                    self.runtime.emit_event(EventKind::FaultInjected {
                        fault: "uplink_jam",
                    });
                }
                let j = self.job.as_mut().expect("job present");
                j.phase = JobPhase::Task(idx);
                j.tx_wait = true;
                j.remaining = wait;
                j.full_latency = wait;
                j.keeper.task_started(wait);
                return;
            }
        }
        // A transmit task must clear the shared-channel gate first.
        // Refusals park the job in a tx_wait hold (sleep power, buffer
        // slot held — IBO pressure keeps building) and retry at expiry.
        if let Some(port) = self.uplink.as_mut() {
            if is_transmit {
                let t0 = self.prof.begin();
                let decision = port.sense(t, duration);
                self.prof.end(Phase::UplinkSense, t0);
                match decision {
                    TxDecision::Grant { airtime } => {
                        self.metrics.tx_grants += 1;
                        self.metrics.tx_airtime += airtime;
                    }
                    TxDecision::Busy(wait) | TxDecision::DutyCapped(wait) => {
                        match decision {
                            TxDecision::Busy(_) => self.metrics.tx_busy_backoffs += 1,
                            _ => self.metrics.tx_duty_deferrals += 1,
                        }
                        self.metrics.tx_backoff_wait += wait;
                        if self.runtime.observing() {
                            self.runtime.emit_event(EventKind::TxBackoff {
                                wait_ms: wait.as_millis(),
                                duty_capped: matches!(decision, TxDecision::DutyCapped(_)),
                            });
                        }
                        let j = self.job.as_mut().expect("job present");
                        j.phase = JobPhase::Task(idx);
                        j.tx_wait = true;
                        j.remaining = wait;
                        j.full_latency = wait;
                        j.keeper.task_started(wait);
                        return;
                    }
                }
            }
        }
        let j = self.job.as_mut().expect("job present");
        j.phase = JobPhase::Task(idx);
        j.remaining = duration;
        j.full_latency = j.remaining;
        j.keeper.task_started(j.remaining);
        j.task_started_at = t;
        j.executed[idx].1 = true;
    }

    fn finish_task(&mut self, t: SimTime, idx: usize) {
        let (option, task, task_started_at, interesting, captured_at) = {
            let j = self.job.as_ref().expect("job present");
            (
                j.option,
                j.executed[idx].0,
                j.task_started_at,
                j.entry.interesting,
                j.entry.captured_at,
            )
        };
        // Feed the observed per-task S_e2e (includes recharge stalls and
        // capture preemptions) to the estimator.
        let task_spec = self.runtime.spec().task(task);
        // option < MAX_OPTIONS (4), so the cast is exact.
        #[allow(clippy::cast_possible_truncation)]
        let observed_key = TaskKey {
            task,
            option: if task_spec.is_degradable() {
                option as u8
            } else {
                0
            },
        };
        let observed = t.since(task_started_at) + SimDuration::TICK;
        self.runtime
            .observe_task(observed_key, observed.as_seconds());

        match self.pipeline.behavior(task) {
            TaskBehavior::Compute => {}
            TaskBehavior::Classify(rates) => {
                let r = rates[observed_key.option as usize];
                let positive = if interesting {
                    !self.rng.chance(r.false_negative)
                } else {
                    self.rng.chance(r.false_positive)
                };
                if !positive {
                    if interesting {
                        self.metrics.false_negatives += 1;
                    } else {
                        self.metrics.true_negatives += 1;
                    }
                    self.complete_job(t, true);
                    return;
                }
            }
            TaskBehavior::Transmit(quals) => {
                use crate::pipeline::ReportQuality;
                match (interesting, quals[observed_key.option as usize]) {
                    (true, ReportQuality::High) => self.metrics.reports_interesting_high += 1,
                    (true, ReportQuality::Low) => self.metrics.reports_interesting_low += 1,
                    (false, ReportQuality::High) => self.metrics.reports_uninteresting_high += 1,
                    (false, ReportQuality::Low) => self.metrics.reports_uninteresting_low += 1,
                }
                // Capture-to-delivery latency: the fleet-level QoS
                // metric the shared channel pushes around.
                let latency = t.since(captured_at) + SimDuration::TICK;
                self.metrics.delivery_latency_total += latency;
                self.metrics.delivery_latency_max = self.metrics.delivery_latency_max.max(latency);
            }
        }
        self.start_task(t, idx + 1);
    }

    fn complete_job(&mut self, t: SimTime, dropped: bool) {
        let j = self.job.take().expect("job present");
        self.metrics.jobs_by_option[j.option.min(3)] += 1;
        let observed = t.since(j.started_at) + SimDuration::TICK;
        self.runtime
            .on_job_complete(j.job, &j.executed, observed.as_seconds());
        let ActiveJob {
            job,
            entry,
            mut executed,
            ..
        } = j;
        // Recycle the task-list allocation for the next scheduled job.
        executed.clear();
        self.spare_executed = executed;
        if dropped {
            self.buffer.release();
            return;
        }
        match self.pipeline.route(job) {
            Route::Finish => self.buffer.release(),
            Route::Forward(next) => self.buffer.forward(entry, next),
        }
    }

    fn try_schedule(&mut self, t: SimTime, irr: f64) {
        if self.buffer.is_idle() {
            return;
        }
        let spec_jobs = self.runtime.spec().jobs().len();
        // Reuse the scratch allocation across ticks: this is the hottest
        // allocation site in a crowded run.
        let mut runnable = core::mem::take(&mut self.scratch_runnable);
        runnable.clear();
        for i in 0..spec_jobs {
            let id = self.runtime.spec().job_id(i).expect("job index in range");
            let age = self.buffer.oldest(id).map(|cap| t.since(cap).as_seconds());
            runnable.push((id, age));
        }
        let mut p_in = self.power.input_power(irr);
        // ADC misread: the adversary may substitute the P_in reading the
        // scheduler's ratio circuit sees (never the true energy flow).
        if let Some(f) = self.fault.as_mut() {
            if let Some(misread) = f.adc_misread(t, p_in) {
                p_in = Watts(misread.value().max(0.0));
                self.metrics.faults_adc += 1;
                if self.runtime.observing() {
                    self.runtime.emit_event(EventKind::FaultInjected {
                        fault: "adc_misread",
                    });
                }
            }
        }
        let view = BufferView {
            occupancy: self.buffer.occupancy(),
            capacity: self.buffer.capacity(),
        };
        let decision = self.runtime.schedule(&runnable, view, p_in);
        self.scratch_runnable = runnable;
        let Some(decision) = decision else {
            return;
        };
        if decision.ibo_predicted {
            self.metrics.ibo_predictions += 1;
        }
        let entry = self
            .buffer
            .take(decision.job)
            .expect("scheduled job has a queued input");
        if self.runtime.observing() {
            self.runtime.emit_event(EventKind::JobStart {
                job: decision.job.index(),
                option: decision.option,
                occupancy: self.buffer.occupancy(),
            });
        }
        let mut executed = core::mem::take(&mut self.spare_executed);
        executed.clear();
        executed.extend(
            self.runtime
                .spec()
                .job(decision.job)
                .tasks
                .iter()
                .map(|&task| (task, false)),
        );
        let overhead = SimDuration::from_seconds_ceil(self.cfg.device.scheduler_overhead.t_exe);
        let mut active = ActiveJob {
            job: decision.job,
            option: decision.option,
            entry,
            phase: JobPhase::Overhead,
            remaining: overhead,
            full_latency: overhead,
            keeper: ProgressKeeper::default(),
            executed,
            started_at: t,
            task_started_at: t,
            tx_wait: false,
        };
        if overhead.is_zero() {
            // No modeled overhead: enter the first task immediately.
            self.job = Some(active);
            self.start_task(t, 0);
        } else {
            active.phase = JobPhase::Overhead;
            self.job = Some(active);
        }
    }

    fn finalize(&mut self) {
        self.metrics.sim_time = self.now.since(SimTime::ZERO);
        for e in self.buffer.pending() {
            self.metrics.pending += 1;
            if e.interesting {
                self.metrics.pending_interesting += 1;
            }
        }
        if let Some(j) = &self.job {
            self.metrics.pending += 1;
            if j.entry.interesting {
                self.metrics.pending_interesting += 1;
            }
        }
        self.done = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{ClassRates, ReportQuality};
    use quetzal::model::AppSpecBuilder;
    use quetzal::runtime::QuetzalConfig;
    use qz_traces::EnvironmentKind;
    use qz_types::{Seconds, Watts};

    fn cheap(t: f64, p: f64) -> TaskCost {
        TaskCost::new(Seconds(t), Watts(p))
    }

    /// A small person-detection app: ML (2 options) → forward → radio
    /// (2 options).
    fn build_runtime() -> (Quetzal, JobId, JobId) {
        let mut b = AppSpecBuilder::new();
        let ml = b
            .degradable_task("ml")
            .option("hi", cheap(1.0, 0.020))
            .option("lo", cheap(0.1, 0.015))
            .finish()
            .unwrap();
        let radio = b
            .degradable_task("radio")
            .option("full", cheap(0.8, 0.200))
            .option("byte", cheap(0.05, 0.200))
            .finish()
            .unwrap();
        let process = b.job("process", vec![ml]).unwrap();
        let report = b.job("report", vec![radio]).unwrap();
        let spec = b.build().unwrap();
        let qz = Quetzal::new(spec, QuetzalConfig::default()).unwrap();
        (qz, process, report)
    }

    fn behaviors(fn_hi: f64) -> Vec<TaskBehavior> {
        behaviors2(fn_hi, 0.25)
    }

    fn behaviors2(fn_hi: f64, fn_lo: f64) -> Vec<TaskBehavior> {
        vec![
            TaskBehavior::Classify(vec![
                ClassRates::new(fn_hi, 0.05),
                ClassRates::new(fn_lo, 0.20),
            ]),
            TaskBehavior::Transmit(vec![ReportQuality::High, ReportQuality::Low]),
        ]
    }

    fn sim<'a>(env: &'a SensingEnvironment, fn_hi: f64) -> Simulation<'a> {
        let (qz, process, report) = build_runtime();
        Simulation::new(
            SimConfig::default(),
            env,
            qz,
            process,
            behaviors(fn_hi),
            vec![Route::Forward(report), Route::Finish],
        )
        .unwrap()
    }

    /// How many carrier senses the run has performed so far (every
    /// sense ends in exactly one of these three outcomes).
    fn sense_count(m: &Metrics) -> u64 {
        m.tx_grants + m.tx_busy_backoffs + m.tx_duty_deferrals
    }

    #[test]
    fn next_uplink_due_is_none_without_a_gate() {
        let env = SensingEnvironment::generate(EnvironmentKind::Crowded, 6, 11);
        let s = sim(&env, 0.05);
        assert_eq!(s.next_uplink_due(), None, "no gate, nothing to bound");
    }

    #[test]
    fn idle_device_due_is_the_first_active_capture_boundary() {
        let env = SensingEnvironment::generate(EnvironmentKind::LessCrowded, 6, 11);
        let mut s = sim(&env, 0.05);
        s.set_uplink(crate::uplink::UplinkPort::new(
            crate::uplink::UplinkConfig::default(),
            7,
        ));
        // Fresh device: idle buffer, no job. The bound must be the first
        // capture boundary inside a sensing event.
        let period = SimConfig::default().device.capture_period;
        let expected = env
            .events()
            .events()
            .iter()
            .find_map(|e| {
                let b = e.start.next_multiple_of(period);
                (b < e.end()).then_some(b)
            })
            .expect("generated trace has an alignable event");
        assert_eq!(s.next_uplink_due(), Some(expected));
    }

    #[test]
    fn drained_device_is_never_due_again() {
        let env = SensingEnvironment::generate(EnvironmentKind::LessCrowded, 4, 3);
        let mut s = sim(&env, 0.05);
        s.set_uplink(crate::uplink::UplinkPort::new(
            crate::uplink::UplinkConfig::default(),
            7,
        ));
        while s.step() {}
        assert_eq!(s.next_uplink_due(), None, "done devices never sense");
    }

    #[test]
    fn next_uplink_due_lower_bounds_every_sense() {
        // Soundness sweep: step a contended run one tick at a time and
        // check that whenever a sense happens, the bound computed just
        // before the tick had already reached the current time — i.e.
        // a fleet scheduler parking the device until the bound can
        // never skip over a sense.
        let env = SensingEnvironment::generate(EnvironmentKind::Crowded, 10, 5);
        let mut s = sim(&env, 0.05);
        s.set_uplink(crate::uplink::UplinkPort::new(
            crate::uplink::UplinkConfig::default(),
            9,
        ));
        s.set_uplink_busy_probability(0.4);
        let mut senses = 0u64;
        loop {
            let t = s.time();
            let due = s.next_uplink_due();
            let alive = s.step();
            let now_senses = sense_count(s.metrics());
            if now_senses > senses {
                let due = due.expect("a sense happened while parked forever");
                assert!(
                    due <= t,
                    "sense at t={t:?} but the bound just before was {due:?}"
                );
            }
            senses = now_senses;
            if !alive {
                break;
            }
        }
        assert!(senses > 0, "contended run must sense at least once");
    }

    #[test]
    fn runs_to_completion_and_counts_frames() {
        let env = SensingEnvironment::generate(EnvironmentKind::LessCrowded, 10, 7);
        let m = sim(&env, 0.0).run();
        assert!(m.frames_total > 0);
        assert_eq!(
            m.frames_total,
            m.frames_missed_off + m.frames_filtered + m.arrivals + in_progress_frames(&m),
            "every frame is missed, filtered, or arrives"
        );
        assert!(m.sim_time.as_millis() > 0);
    }

    /// Frames whose capture pipeline was still running at the end.
    fn in_progress_frames(m: &Metrics) -> u64 {
        m.frames_total - m.frames_missed_off - m.frames_filtered - m.arrivals
    }

    #[test]
    fn conservation_of_interesting_inputs() {
        let env = SensingEnvironment::generate(EnvironmentKind::Crowded, 30, 3);
        let m = sim(&env, 0.05).run();
        // Every interesting frame is accounted for exactly once.
        let accounted = m.interesting_missed_off
            + m.ibo_interesting
            + m.false_negatives
            + m.reports_interesting_high
            + m.reports_interesting_low
            + m.pending_interesting;
        assert!(
            accounted <= m.interesting_total,
            "accounted {accounted} > total {}",
            m.interesting_total
        );
        // Allow a small in-flight remainder (capture pipeline mid-frame).
        assert!(
            m.interesting_total - accounted <= 2,
            "unaccounted interesting frames"
        );
    }

    #[test]
    fn perfect_classifier_has_no_false_negatives() {
        // Both ML quality levels are perfect here: no input can be lost
        // to misclassification, regardless of degradation decisions.
        let env = SensingEnvironment::generate(EnvironmentKind::LessCrowded, 20, 9);
        let (qz, process, report) = build_runtime();
        let m = Simulation::new(
            SimConfig::default(),
            &env,
            qz,
            process,
            behaviors2(0.0, 0.0),
            vec![Route::Forward(report), Route::Finish],
        )
        .unwrap()
        .run();
        assert_eq!(m.false_negatives, 0);
    }

    #[test]
    fn conservation_of_stored_inputs() {
        let env = SensingEnvironment::generate(EnvironmentKind::Crowded, 30, 5);
        let m = sim(&env, 0.05).run();
        assert_eq!(m.arrivals, m.stored + m.ibo_discards);
    }

    #[test]
    fn reports_match_positive_classifications() {
        let env = SensingEnvironment::generate(EnvironmentKind::LessCrowded, 30, 11);
        let m = sim(&env, 0.05).run();
        // Stored = dropped-by-classifier + reported + pending (+ in-flight ≤1).
        let processed = m.false_negatives + m.true_negatives + m.total_reports();
        assert!(processed + m.pending <= m.stored + 1);
    }

    #[test]
    fn deterministic_given_seed() {
        let env = SensingEnvironment::generate(EnvironmentKind::Crowded, 15, 21);
        let a = sim(&env, 0.05).run();
        let b = sim(&env, 0.05).run();
        assert_eq!(a, b);
    }

    #[test]
    fn device_checkpoints_under_darkness() {
        // Near-zero harvest: the device should run out of energy and
        // checkpoint at least once while processing.
        let mut env = SensingEnvironment::generate(EnvironmentKind::Crowded, 20, 2);
        let dark = qz_traces::SolarTrace::constant(0.02);
        env = override_solar(env, dark);
        let m = sim(&env, 0.05).run();
        assert!(m.checkpoints > 0, "expected power failures in darkness");
        assert!(m.time_off.as_millis() > 0);
    }

    /// Rebuilds the environment with a different solar trace (helper
    /// until `SensingEnvironment` grows a builder for this).
    fn override_solar(env: SensingEnvironment, solar: qz_traces::SolarTrace) -> SensingEnvironment {
        SensingEnvironment::with_parts(env.kind(), env.events().clone(), solar)
    }

    #[test]
    fn tiny_buffer_overflows_under_load() {
        let env = SensingEnvironment::generate(EnvironmentKind::MoreCrowded, 20, 4);
        let (qz, process, report) = build_runtime();
        let mut cfg = SimConfig::default();
        cfg.device.buffer_capacity = 2;
        let m = Simulation::new(
            cfg,
            &env,
            qz,
            process,
            behaviors(0.05),
            vec![Route::Forward(report), Route::Finish],
        )
        .unwrap()
        .run();
        assert!(
            m.ibo_discards > 0,
            "a 2-slot buffer must overflow in MoreCrowded"
        );
    }

    #[test]
    fn telemetry_records_at_interval() {
        let env = SensingEnvironment::generate(EnvironmentKind::LessCrowded, 5, 8);
        let mut s = sim(&env, 0.05);
        s.record_telemetry(SimDuration::from_secs(1));
        for _ in 0..5_000 {
            if !s.step() {
                break;
            }
        }
        let t = s.telemetry().expect("recording enabled");
        assert!(t.len() >= 4, "roughly one sample per second: {}", t.len());
        let mut csv = Vec::new();
        t.write_csv(&mut csv).unwrap();
        assert!(csv.len() > 50);
    }

    #[test]
    fn checkpoint_policies_alter_reexecution() {
        // Under darkness, the task-boundary policy must re-execute work
        // that JIT checkpointing preserves.
        let mut env = SensingEnvironment::generate(EnvironmentKind::Crowded, 20, 2);
        env = override_solar(env, qz_traces::SolarTrace::constant(0.02));
        let (qz, process, report) = build_runtime();
        let mut cfg = SimConfig::default();
        cfg.device.checkpoint_policy = crate::CheckpointPolicy::TaskBoundary;
        let m = Simulation::new(
            cfg,
            &env,
            qz,
            process,
            behaviors(0.05),
            vec![Route::Forward(report), Route::Finish],
        )
        .unwrap()
        .run();
        assert!(m.power_failures > 0);
        assert!(
            m.reexecuted.as_millis() > 0,
            "task-boundary must lose progress across failures"
        );

        let jit = sim(&env, 0.05).run();
        assert_eq!(jit.reexecuted.as_millis(), 0, "JIT never re-executes");
    }

    #[test]
    fn traced_run_agrees_with_metrics() {
        let env = SensingEnvironment::generate(EnvironmentKind::MoreCrowded, 20, 4);
        let (qz, process, report) = build_runtime();
        let mut cfg = SimConfig::default();
        cfg.device.buffer_capacity = 2;
        let mut s = Simulation::new(
            cfg,
            &env,
            qz,
            process,
            behaviors(0.05),
            vec![Route::Forward(report), Route::Finish],
        )
        .unwrap();
        s.set_observer(Box::new(qz_obs::RecordingObserver::new()));
        let (m, mut obs) = s.run_traced();
        let events = qz_obs::take_recorded(obs.as_mut()).expect("recording sink");
        let count = |name: &str| events.iter().filter(|e| e.kind.name() == name).count() as u64;
        assert!(m.ibo_discards > 0, "scenario must overflow");
        assert_eq!(count("ibo_discard"), m.ibo_discards);
        assert_eq!(count("buffer_admit"), m.stored);
        assert_eq!(count("restore"), m.restores);
        assert_eq!(count("power_failure"), m.power_failures);
        assert!(count("scheduler_pick") > 0);
        assert_eq!(count("scheduler_pick"), count("ibo_decision"));
        // Timestamps are monotonic.
        assert!(events.windows(2).all(|w| w[0].t_ms <= w[1].t_ms));
    }

    #[test]
    fn observer_does_not_perturb_results() {
        let env = SensingEnvironment::generate(EnvironmentKind::Crowded, 15, 21);
        let baseline = sim(&env, 0.05).run();
        let mut traced = sim(&env, 0.05);
        traced.set_observer(Box::new(qz_obs::RecordingObserver::new()));
        let (m, _) = traced.run_traced();
        assert_eq!(m, baseline, "tracing must be observation-only");
    }

    fn sim_with_engine<'a>(env: &'a SensingEnvironment, engine: EngineKind) -> Simulation<'a> {
        let (qz, process, report) = build_runtime();
        let cfg = SimConfig {
            engine,
            ..SimConfig::default()
        };
        Simulation::new(
            cfg,
            env,
            qz,
            process,
            behaviors(0.05),
            vec![Route::Forward(report), Route::Finish],
        )
        .unwrap()
    }

    #[test]
    fn fast_forward_matches_tick_engine_exactly() {
        for (kind, events, seed) in [
            (EnvironmentKind::LessCrowded, 10, 7),
            (EnvironmentKind::Crowded, 20, 3),
            (EnvironmentKind::Short, 15, 11),
        ] {
            let env = SensingEnvironment::generate(kind, events, seed);
            let mut fast = sim_with_engine(&env, EngineKind::FastForward);
            let mut tick = sim_with_engine(&env, EngineKind::Tick);
            fast.record_telemetry(SimDuration::from_secs(1));
            tick.record_telemetry(SimDuration::from_secs(1));
            let (mf, tf) = fast.run_with_telemetry();
            let (mt, tt) = tick.run_with_telemetry();
            assert_eq!(mf, mt, "{kind:?} metrics diverge");
            assert_eq!(tf, tt, "{kind:?} telemetry diverges");
        }
    }

    #[test]
    fn fast_forward_matches_tick_under_darkness() {
        // Exercise the Off → restore crossing path repeatedly.
        let mut env = SensingEnvironment::generate(EnvironmentKind::Crowded, 20, 2);
        env = override_solar(env, qz_traces::SolarTrace::constant(0.02));
        let mf = sim_with_engine(&env, EngineKind::FastForward).run();
        let mt = sim_with_engine(&env, EngineKind::Tick).run();
        assert!(mf.restores > 0, "darkness must force power cycles");
        assert_eq!(mf, mt);
    }

    #[test]
    fn step_until_stops_at_the_barrier() {
        let env = SensingEnvironment::generate(EnvironmentKind::LessCrowded, 10, 7);
        let mut s = sim_with_engine(&env, EngineKind::FastForward);
        let barrier = SimTime::from_millis(12_345);
        assert!(s.step_until(barrier));
        assert_eq!(s.time(), barrier, "spans must not overshoot the barrier");
        // Interleaved barriers reproduce the single-run result exactly.
        let mut chunked = sim_with_engine(&env, EngineKind::FastForward);
        let mut at = SimTime::ZERO;
        while !chunked.is_done() {
            at += SimDuration::from_millis(7_001);
            chunked.step_until(at);
        }
        let whole = sim_with_engine(&env, EngineKind::FastForward).run();
        assert_eq!(chunked.metrics(), &whole);
    }

    #[test]
    fn step_api_reports_time() {
        let env = SensingEnvironment::generate(EnvironmentKind::LessCrowded, 3, 6);
        let mut s = sim(&env, 0.0);
        assert_eq!(s.time(), SimTime::ZERO);
        assert!(s.step());
        assert_eq!(s.time(), SimTime::from_millis(1));
        assert_eq!(s.metrics().frames_total, 1);
        assert!(s.runtime().spec().jobs().len() == 2);
    }

    #[test]
    fn save_restore_resume_is_bit_exact_on_both_engines() {
        let env = SensingEnvironment::generate(EnvironmentKind::Crowded, 20, 3);
        for engine in [EngineKind::Tick, EngineKind::FastForward] {
            // Straight-through reference run.
            let mut straight = sim_with_engine(&env, engine);
            straight.record_telemetry(SimDuration::from_secs(1));
            let (m_ref, t_ref) = straight.run_with_telemetry();

            // Run to an arbitrary mid point, snapshot, resume in place.
            let mut a = sim_with_engine(&env, engine);
            a.record_telemetry(SimDuration::from_secs(1));
            a.step_until(SimTime::from_millis(31_337));
            let snap = a.save_state().unwrap();
            let (m_a, t_a) = a.run_with_telemetry();
            assert_eq!(m_a, m_ref, "{engine:?}: suffix-after-save diverged");
            assert_eq!(t_a, t_ref);

            // Restore into a freshly built twin and run the suffix.
            let mut b = sim_with_engine(&env, engine);
            b.record_telemetry(SimDuration::from_secs(1));
            b.restore_state(&snap).unwrap();
            assert_eq!(b.time(), SimTime::from_millis(31_337));
            let (m_b, t_b) = b.run_with_telemetry();
            assert_eq!(m_b, m_ref, "{engine:?}: restored run diverged");
            assert_eq!(t_b, t_ref, "{engine:?}: restored telemetry diverged");
        }
    }

    #[test]
    fn snapshot_roundtrips_through_a_restored_twin() {
        // save → restore → save again must reproduce the identical state,
        // including an active job when one is in flight.
        let env = SensingEnvironment::generate(EnvironmentKind::MoreCrowded, 20, 4);
        let mut a = sim(&env, 0.05);
        let mut saw_active = false;
        for _ in 0..200_000 {
            if !a.step() {
                break;
            }
            if a.active_option().is_some() {
                saw_active = true;
                break;
            }
        }
        assert!(saw_active, "scenario must reach an active job");
        let snap = a.save_state().unwrap();
        assert!(snap.job.is_some(), "snapshot captures the active job");
        let mut b = sim(&env, 0.05);
        b.restore_state(&snap).unwrap();
        assert_eq!(b.save_state().unwrap(), snap);
        // And the twins step in lockstep from here.
        for _ in 0..10_000 {
            let more = a.step();
            assert_eq!(more, b.step());
            if !more {
                break;
            }
        }
        assert!(a
            .save_state()
            .unwrap()
            .eq_ignoring_injector(&b.save_state().unwrap()));
        assert_eq!(a.metrics(), b.metrics());
    }

    #[test]
    fn restore_rejects_mismatched_snapshots() {
        let env = SensingEnvironment::generate(EnvironmentKind::MoreCrowded, 20, 4);
        let mut a = sim(&env, 0.05);
        while a.active_option().is_none() && a.step() {}
        let snap = a.save_state().unwrap();
        let js = snap.job.clone().expect("active job");

        // Out-of-range job index.
        let mut bad = snap.clone();
        bad.job = Some(ActiveJobState {
            job: 99,
            ..js.clone()
        });
        assert!(sim(&env, 0.05)
            .restore_state(&bad)
            .unwrap_err()
            .contains("job index"));

        // Out-of-range task index.
        let mut bad = snap.clone();
        bad.job = Some(ActiveJobState {
            task_index: Some(99),
            ..js.clone()
        });
        assert!(sim(&env, 0.05)
            .restore_state(&bad)
            .unwrap_err()
            .contains("task index"));

        // Executed-flag shape mismatch.
        let mut bad = snap.clone();
        bad.job = Some(ActiveJobState {
            executed: vec![false; 7],
            ..js
        });
        assert!(sim(&env, 0.05)
            .restore_state(&bad)
            .unwrap_err()
            .contains("executed-flag"));

        // Telemetry present in the snapshot but recording disabled live.
        let mut bad = snap.clone();
        bad.telemetry = Some(Vec::new());
        assert!(sim(&env, 0.05)
            .restore_state(&bad)
            .unwrap_err()
            .contains("telemetry"));

        // Uplink installed live but absent from the snapshot.
        let mut live = sim(&env, 0.05);
        live.set_uplink(UplinkPort::new(crate::uplink::UplinkConfig::default(), 9));
        assert!(live.restore_state(&snap).unwrap_err().contains("uplink"));
    }

    #[test]
    fn save_fails_under_a_snapshot_blind_injector() {
        #[derive(Debug)]
        struct Blind;
        impl FaultInjector for Blind {}
        let env = SensingEnvironment::generate(EnvironmentKind::LessCrowded, 5, 8);
        let mut s = sim(&env, 0.05);
        s.set_fault_injector(Box::new(Blind));
        s.step();
        assert!(s
            .save_state()
            .unwrap_err()
            .contains("does not support snapshots"));
    }

    #[test]
    fn restore_with_uplink_resumes_the_channel_stream() {
        let env = SensingEnvironment::generate(EnvironmentKind::Crowded, 20, 3);
        let build = || {
            let mut s = sim(&env, 0.05);
            s.set_uplink(UplinkPort::new(crate::uplink::UplinkConfig::default(), 9));
            s.set_uplink_busy_probability(0.4);
            s
        };
        let mut reference = build();
        while reference.step() {}
        let m_ref = reference.metrics().clone();

        let mut a = build();
        a.step_until(SimTime::from_millis(40_007));
        let snap = a.save_state().unwrap();
        assert!(snap.uplink.is_some());
        let mut b = build();
        b.restore_state(&snap).unwrap();
        while b.step() {}
        assert_eq!(b.metrics(), &m_ref, "uplink stream must resume bit-exactly");
    }
}
