//! The shared input buffer with per-job queues.
//!
//! All buffered inputs live in one memory pool of fixed capacity (the
//! paper's Apollo 4 configuration holds 10 compressed images). Each input
//! is tagged with the job that will process it next, forming one FIFO
//! queue per job over the shared pool. An input occupies a buffer slot
//! from the moment it is stored until its final job completes (including
//! while a job is actively processing it).

use quetzal::JobId;
use qz_types::SimTime;
use std::collections::VecDeque;

/// One buffered input (a compressed frame) awaiting processing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BufferEntry {
    /// When the frame was captured.
    pub captured_at: SimTime,
    /// Ground-truth interestingness of the event the frame witnessed.
    pub interesting: bool,
}

/// The shared input buffer.
#[derive(Debug, Clone)]
pub struct InputBuffer {
    queues: Vec<VecDeque<BufferEntry>>,
    capacity: usize,
    /// Slots held by entries popped for active processing but not yet
    /// released.
    in_flight: usize,
    /// Cached total of queued + in-flight slots, maintained by every
    /// mutation so the per-tick `occupancy`/`is_idle` reads are O(1)
    /// instead of scanning all queues.
    occupied: usize,
}

impl InputBuffer {
    /// Creates a buffer with one queue per job and a total slot capacity.
    /// Use `usize::MAX` for an "infinite" (Ideal-baseline) buffer.
    ///
    /// # Panics
    ///
    /// Panics if `num_jobs` is zero or `capacity` is zero.
    pub fn new(num_jobs: usize, capacity: usize) -> InputBuffer {
        assert!(num_jobs > 0, "need at least one job queue");
        assert!(capacity > 0, "buffer capacity must be positive");
        InputBuffer {
            queues: vec![VecDeque::new(); num_jobs],
            capacity,
            in_flight: 0,
            occupied: 0,
        }
    }

    /// Total slot capacity.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Occupied slots: queued entries plus any in-flight entry.
    #[inline]
    pub fn occupancy(&self) -> usize {
        debug_assert_eq!(
            self.occupied,
            self.queues.iter().map(VecDeque::len).sum::<usize>() + self.in_flight,
            "cached occupancy out of sync"
        );
        self.occupied
    }

    /// Queued entries awaiting a specific job.
    pub fn queue_len(&self, job: JobId) -> usize {
        self.queues[job.index()].len()
    }

    /// `true` if every queue is empty and nothing is in flight.
    #[inline]
    pub fn is_idle(&self) -> bool {
        self.occupancy() == 0
    }

    /// `true` if a new entry cannot be stored.
    #[inline]
    pub fn is_full(&self) -> bool {
        self.occupancy() >= self.capacity
    }

    /// Stores a fresh capture into `job`'s queue.
    ///
    /// Returns `false` — an input buffer overflow — when the buffer is
    /// full; the entry is lost.
    #[must_use]
    pub fn store(&mut self, job: JobId, entry: BufferEntry) -> bool {
        if self.is_full() {
            return false;
        }
        self.queues[job.index()].push_back(entry);
        self.occupied += 1;
        true
    }

    /// The capture time of the oldest input queued for `job`. Read for
    /// every job on every scheduling round — every tick in the busy
    /// kernel's scheduler regime — so it must stay an O(1) front peek.
    #[inline]
    pub fn oldest(&self, job: JobId) -> Option<SimTime> {
        self.queues[job.index()].front().map(|e| e.captured_at)
    }

    /// Pops the oldest input for `job` for processing. The entry's slot
    /// stays occupied (in flight) until [`InputBuffer::release`] or
    /// [`InputBuffer::forward`].
    pub fn take(&mut self, job: JobId) -> Option<BufferEntry> {
        let entry = self.queues[job.index()].pop_front()?;
        self.in_flight += 1;
        Some(entry)
    }

    /// Releases an in-flight entry's slot (its processing finished and
    /// the input leaves the buffer).
    ///
    /// # Panics
    ///
    /// Panics if nothing is in flight.
    pub fn release(&mut self) {
        assert!(self.in_flight > 0, "release without a matching take");
        self.in_flight -= 1;
        self.occupied -= 1;
    }

    /// Moves an in-flight entry to another job's queue (the input needs
    /// further processing; it keeps its buffer slot and capture time).
    ///
    /// # Panics
    ///
    /// Panics if nothing is in flight.
    pub fn forward(&mut self, entry: BufferEntry, to: JobId) {
        assert!(self.in_flight > 0, "forward without a matching take");
        self.in_flight -= 1;
        self.queues[to.index()].push_back(entry);
    }

    /// Iterates the queued entries of every job (for end-of-run
    /// accounting of pending inputs).
    pub fn pending(&self) -> impl Iterator<Item = &BufferEntry> {
        self.queues.iter().flatten()
    }

    /// Captures the buffer's evolving contents for a simulation
    /// snapshot (capacity is config, not state).
    pub fn save_state(&self) -> InputBufferState {
        InputBufferState {
            queues: self
                .queues
                .iter()
                .map(|q| q.iter().copied().collect())
                .collect(),
            in_flight: self.in_flight,
        }
    }

    /// Restores contents captured by [`InputBuffer::save_state`] into a
    /// buffer built from the same configuration.
    ///
    /// # Errors
    ///
    /// Rejects a snapshot whose queue count differs from the live
    /// buffer's, or whose total occupancy exceeds the live capacity.
    pub fn restore_state(&mut self, state: &InputBufferState) -> Result<(), String> {
        if state.queues.len() != self.queues.len() {
            return Err(format!(
                "buffer queue count mismatch: snapshot {} vs live {}",
                state.queues.len(),
                self.queues.len()
            ));
        }
        let occupied = state.queues.iter().map(Vec::len).sum::<usize>() + state.in_flight;
        if occupied > self.capacity {
            return Err(format!(
                "snapshot occupancy {occupied} exceeds buffer capacity {}",
                self.capacity
            ));
        }
        for (live, snap) in self.queues.iter_mut().zip(&state.queues) {
            live.clear();
            live.extend(snap.iter().copied());
        }
        self.in_flight = state.in_flight;
        self.occupied = occupied;
        Ok(())
    }
}

/// Serializable evolving contents of an [`InputBuffer`], captured by
/// [`InputBuffer::save_state`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InputBufferState {
    /// Queued entries per job, in FIFO order.
    pub queues: Vec<Vec<BufferEntry>>,
    /// Slots held by entries popped for processing but not released.
    pub in_flight: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn job(i: u8) -> JobId {
        // JobId's field is crate-private to quetzal; construct through a
        // tiny spec instead.
        use quetzal::model::{AppSpecBuilder, TaskCost};
        use qz_types::{Seconds, Watts};
        let mut b = AppSpecBuilder::new();
        let t = b
            .fixed_task("t", TaskCost::new(Seconds(1.0), Watts(0.01)))
            .unwrap();
        let j0 = b.job("j0", vec![t]).unwrap();
        let j1 = b.job("j1", vec![t]).unwrap();
        let j2 = b.job("j2", vec![t]).unwrap();
        [j0, j1, j2][i as usize]
    }

    fn entry(ms: u64) -> BufferEntry {
        BufferEntry {
            captured_at: SimTime::from_millis(ms),
            interesting: false,
        }
    }

    #[test]
    fn store_and_overflow() {
        let mut b = InputBuffer::new(2, 2);
        assert!(b.store(job(0), entry(1)));
        assert!(b.store(job(1), entry(2)));
        assert!(b.is_full());
        assert!(!b.store(job(0), entry(3)), "third store must overflow");
        assert_eq!(b.occupancy(), 2);
    }

    #[test]
    fn fifo_order_per_queue() {
        let mut b = InputBuffer::new(1, 10);
        b.store(job(0), entry(5)).then_some(()).unwrap();
        assert!(b.store(job(0), entry(7)));
        assert_eq!(b.oldest(job(0)), Some(SimTime::from_millis(5)));
        let e = b.take(job(0)).unwrap();
        assert_eq!(e.captured_at, SimTime::from_millis(5));
        assert_eq!(b.oldest(job(0)), Some(SimTime::from_millis(7)));
    }

    #[test]
    fn in_flight_entry_occupies_slot() {
        let mut b = InputBuffer::new(1, 2);
        assert!(b.store(job(0), entry(1)));
        assert!(b.store(job(0), entry(2)));
        let _e = b.take(job(0)).unwrap();
        assert_eq!(b.occupancy(), 2, "processing does not free the slot");
        assert!(b.is_full());
        b.release();
        assert_eq!(b.occupancy(), 1);
        assert!(!b.is_full());
    }

    #[test]
    fn forward_keeps_slot_and_capture_time() {
        let mut b = InputBuffer::new(2, 2);
        assert!(b.store(job(0), entry(3)));
        let e = b.take(job(0)).unwrap();
        b.forward(e, job(1));
        assert_eq!(b.occupancy(), 1);
        assert_eq!(b.queue_len(job(1)), 1);
        assert_eq!(b.oldest(job(1)), Some(SimTime::from_millis(3)));
    }

    #[test]
    fn idle_detection() {
        let mut b = InputBuffer::new(2, 4);
        assert!(b.is_idle());
        assert!(b.store(job(1), entry(1)));
        assert!(!b.is_idle());
        let e = b.take(job(1)).unwrap();
        assert!(!b.is_idle(), "in-flight work is not idle");
        b.forward(e, job(0));
        assert!(!b.is_idle());
        let _ = b.take(job(0)).unwrap();
        b.release();
        assert!(b.is_idle());
    }

    #[test]
    fn pending_iterates_all_queues() {
        let mut b = InputBuffer::new(3, 10);
        assert!(b.store(job(0), entry(1)));
        assert!(b.store(job(2), entry(2)));
        assert_eq!(b.pending().count(), 2);
    }

    #[test]
    fn infinite_capacity_never_overflows() {
        let mut b = InputBuffer::new(1, usize::MAX);
        for i in 0..10_000 {
            assert!(b.store(job(0), entry(i)));
        }
        assert!(!b.is_full());
    }

    #[test]
    fn state_roundtrip_preserves_queues_and_in_flight() {
        let mut b = InputBuffer::new(3, 5);
        assert!(b.store(job(0), entry(1)));
        assert!(b.store(job(1), entry(2)));
        assert!(b.store(job(1), entry(3)));
        let _ = b.take(job(1)).unwrap();
        let state = b.save_state();
        let mut fresh = InputBuffer::new(3, 5);
        fresh.restore_state(&state).unwrap();
        assert_eq!(fresh.occupancy(), b.occupancy());
        assert_eq!(fresh.queue_len(job(1)), 1);
        assert_eq!(fresh.oldest(job(1)), Some(SimTime::from_millis(3)));
        assert_eq!(fresh.save_state(), state);
        // The restored in-flight slot releases normally.
        fresh.release();
        assert_eq!(fresh.occupancy(), 2);
    }

    #[test]
    fn restore_rejects_mismatched_shape() {
        let mut b = InputBuffer::new(2, 5);
        assert!(b.store(job(0), entry(1)));
        let state = b.save_state();
        assert!(InputBuffer::new(3, 5).restore_state(&state).is_err());
        let mut full = InputBuffer::new(2, 10);
        for i in 0..10 {
            assert!(full.store(job(0), entry(i)));
        }
        assert!(InputBuffer::new(2, 5)
            .restore_state(&full.save_state())
            .is_err());
    }

    #[test]
    #[should_panic(expected = "release without")]
    fn release_without_take_panics() {
        InputBuffer::new(1, 1).release();
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        InputBuffer::new(1, 0);
    }

    proptest! {
        #[test]
        fn occupancy_never_exceeds_capacity(
            ops in proptest::collection::vec((0u8..3, any::<bool>()), 1..200)
        ) {
            let mut b = InputBuffer::new(3, 5);
            let mut held: Vec<BufferEntry> = Vec::new();
            for (q, is_store) in ops {
                if is_store {
                    let _ = b.store(job(q), entry(q as u64));
                } else if let Some(e) = b.take(job(q)) {
                    held.push(e);
                }
                // Return one held entry occasionally to exercise release.
                if held.len() > 2 {
                    held.pop();
                    b.release();
                }
                prop_assert!(b.occupancy() <= 5);
            }
        }
    }
}
