//! Everything the evaluation counts.

use qz_types::{Joules, SimDuration};

/// Counters collected over one simulation run.
///
/// The paper's headline metric is **interesting inputs discarded** —
/// decomposed into losses to input buffer overflows (IBOs), ML false
/// negatives, and frames the device never captured because it was
/// powered off. Radio reports are split by ground truth (interesting /
/// uninteresting, i.e. true/false positives) and quality (full image /
/// single byte).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Metrics {
    // --- Capture ---
    /// Frames the periodic capture schedule attempted.
    pub frames_total: u64,
    /// Frames captured during an interesting event (ground truth).
    pub interesting_total: u64,
    /// Frames missed because the device was off (or mid-capture).
    pub frames_missed_off: u64,
    /// Interesting frames among the missed ones.
    pub interesting_missed_off: u64,
    /// Captured frames discarded by the pixel-diff prefilter (unchanged).
    pub frames_filtered: u64,
    /// Captured frames that passed pre-filtering ("different") and
    /// therefore arrived at the input buffer.
    pub arrivals: u64,

    // --- Buffering ---
    /// Arrivals successfully stored.
    pub stored: u64,
    /// Arrivals lost to input buffer overflows.
    pub ibo_discards: u64,
    /// Interesting arrivals lost to IBOs.
    pub ibo_interesting: u64,
    /// IBO discards that happened while the device was powered off.
    pub ibo_while_off: u64,
    /// IBO discards while a highest-quality job was executing.
    pub ibo_during_full_job: u64,
    /// IBO discards while a degraded job was executing.
    pub ibo_during_degraded_job: u64,

    // --- Classification ---
    /// Interesting inputs misclassified negative (and lost).
    pub false_negatives: u64,
    /// Uninteresting inputs correctly discarded.
    pub true_negatives: u64,

    // --- Reporting ---
    /// Interesting inputs reported at high quality.
    pub reports_interesting_high: u64,
    /// Interesting inputs reported at low quality.
    pub reports_interesting_low: u64,
    /// Uninteresting inputs reported at high quality (false positives).
    pub reports_uninteresting_high: u64,
    /// Uninteresting inputs reported at low quality (false positives).
    pub reports_uninteresting_low: u64,

    // --- Uplink (zero unless an `UplinkPort` is installed, except the
    // --- delivery-latency pair which every run records) ---
    /// Channel grants: transmissions that passed the gate.
    pub tx_grants: u64,
    /// Carrier senses that found the channel busy (each cost a backoff).
    pub tx_busy_backoffs: u64,
    /// Transmissions deferred because the duty-cycle budget was spent.
    pub tx_duty_deferrals: u64,
    /// Total time spent waiting out backoffs and duty deferrals.
    pub tx_backoff_wait: SimDuration,
    /// Slot-rounded time-on-air across all granted transmissions.
    pub tx_airtime: SimDuration,
    /// Sum over reports of capture-to-delivery latency (divide by
    /// [`total_reports`](Metrics::total_reports) for the mean).
    pub delivery_latency_total: SimDuration,
    /// Worst capture-to-delivery latency over all reports.
    pub delivery_latency_max: SimDuration,

    // --- Execution ---
    /// Jobs completed, indexed by the degradation option they ran at
    /// (index 0 = highest quality).
    pub jobs_by_option: [u64; 4],
    /// Scheduler decisions that predicted an imminent IBO.
    pub ibo_predictions: u64,
    /// Checkpoint operations taken (one per power failure under the JIT
    /// policy; every interval under the periodic policy).
    pub checkpoints: u64,
    /// Power failures (brownouts that turned the device off).
    pub power_failures: u64,
    /// Restores after recharging.
    pub restores: u64,
    /// Execution time lost to re-execution after power failures (zero
    /// under JIT checkpointing; positive under periodic or task-boundary
    /// policies).
    pub reexecuted: SimDuration,

    // --- Time & energy ---
    /// Time spent powered on.
    pub time_on: SimDuration,
    /// Time spent powered off recharging.
    pub time_off: SimDuration,
    /// Total simulated time.
    pub sim_time: SimDuration,
    /// Sum over ticks of the buffer occupancy (slots × ms) — divide by
    /// `sim_time` for the time-averaged occupancy, the `E[N]` that
    /// queueing theory predicts.
    pub occupancy_ms: u64,
    /// Energy accepted into storage.
    pub energy_harvested: Joules,
    /// Harvested energy wasted on a full capacitor.
    pub energy_wasted: Joules,

    // --- Fault injection (zero unless a `FaultInjector` is installed) ---
    /// Forced power failures injected by the fault layer.
    pub faults_power: u64,
    /// Checkpoint corruptions injected on restore (each forces a
    /// from-scratch task replay).
    pub faults_checkpoint: u64,
    /// ADC misreads substituted for the scheduler's `P_in` reading.
    pub faults_adc: u64,
    /// Clock-jitter perturbations applied to task latencies.
    pub faults_clock: u64,
    /// Anomalous burst frames injected at capture boundaries.
    pub faults_burst: u64,
    /// Uplink jams that parked a transmit attempt in backoff.
    pub faults_jam: u64,

    // --- End-of-run state ---
    /// Inputs still buffered when the simulation ended.
    pub pending: u64,
    /// Interesting inputs among the pending ones.
    pub pending_interesting: u64,
}

impl Metrics {
    /// Total interesting inputs lost: missed at capture, lost to IBOs, or
    /// misclassified. (Pending inputs are *not* counted as lost; they are
    /// reported separately.)
    pub fn interesting_discarded(&self) -> u64 {
        self.interesting_missed_off + self.ibo_interesting + self.false_negatives
    }

    /// Interesting inputs discarded as a fraction of all interesting
    /// inputs the environment produced. Returns 0 when there were none.
    pub fn interesting_discarded_fraction(&self) -> f64 {
        if self.interesting_total == 0 {
            0.0
        } else {
            self.interesting_discarded() as f64 / self.interesting_total as f64
        }
    }

    /// Interesting inputs successfully reported (any quality).
    pub fn interesting_reported(&self) -> u64 {
        self.reports_interesting_high + self.reports_interesting_low
    }

    /// All radio reports sent (any ground truth, any quality).
    pub fn total_reports(&self) -> u64 {
        self.reports_interesting_high
            + self.reports_interesting_low
            + self.reports_uninteresting_high
            + self.reports_uninteresting_low
    }

    /// Fraction of interesting reports sent at high quality (0 when no
    /// interesting reports were sent).
    pub fn high_quality_fraction(&self) -> f64 {
        let total = self.interesting_reported();
        if total == 0 {
            0.0
        } else {
            self.reports_interesting_high as f64 / total as f64
        }
    }

    /// Jobs that ran degraded (any option other than the highest
    /// quality).
    pub fn degraded_jobs(&self) -> u64 {
        self.jobs_by_option.iter().skip(1).sum()
    }

    /// All jobs completed.
    pub fn total_jobs(&self) -> u64 {
        self.jobs_by_option.iter().sum()
    }

    /// All injected faults, across every fault class.
    pub fn faults_total(&self) -> u64 {
        self.faults_power
            + self.faults_checkpoint
            + self.faults_adc
            + self.faults_clock
            + self.faults_burst
            + self.faults_jam
    }

    /// Mean capture-to-delivery latency over all reports, seconds
    /// (0 when nothing was reported).
    pub fn mean_delivery_latency_s(&self) -> f64 {
        let n = self.total_reports();
        if n == 0 {
            0.0
        } else {
            self.delivery_latency_total.as_seconds().0 / n as f64
        }
    }

    /// Time-averaged buffer occupancy `E[N]` (slots).
    pub fn mean_occupancy(&self) -> f64 {
        let t = self.sim_time.as_millis();
        if t == 0 {
            0.0
        } else {
            self.occupancy_ms as f64 / t as f64
        }
    }

    /// Fraction of simulated time spent powered off recharging.
    pub fn off_fraction(&self) -> f64 {
        let total = self.sim_time.as_millis();
        if total == 0 {
            0.0
        } else {
            self.time_off.as_millis() as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_metrics() {
        let m = Metrics {
            interesting_total: 100,
            interesting_missed_off: 5,
            ibo_interesting: 20,
            false_negatives: 10,
            reports_interesting_high: 40,
            reports_interesting_low: 20,
            reports_uninteresting_high: 3,
            reports_uninteresting_low: 2,
            jobs_by_option: [50, 30, 0, 0],
            time_off: SimDuration::from_secs(25),
            sim_time: SimDuration::from_secs(100),
            ..Metrics::default()
        };
        assert_eq!(m.interesting_discarded(), 35);
        assert!((m.interesting_discarded_fraction() - 0.35).abs() < 1e-12);
        assert_eq!(m.interesting_reported(), 60);
        assert_eq!(m.total_reports(), 65);
        assert!((m.high_quality_fraction() - 40.0 / 60.0).abs() < 1e-12);
        assert_eq!(m.degraded_jobs(), 30);
        assert_eq!(m.total_jobs(), 80);
        assert!((m.off_fraction() - 0.25).abs() < 1e-12);
    }

    #[test]
    // Zero-denominator fractions are defined as the 0.0 literal, so
    // strict float comparison is the point.
    #[allow(clippy::float_cmp)]
    fn zero_denominators_are_safe() {
        let m = Metrics::default();
        assert_eq!(m.interesting_discarded_fraction(), 0.0);
        assert_eq!(m.high_quality_fraction(), 0.0);
        assert_eq!(m.off_fraction(), 0.0);
    }
}
