//! Workspace determinism source lint (`qz lint-src`).
//!
//! The simulator's reproducibility contract — same seed, same bytes —
//! only holds while no sim-facing crate sneaks in a source of
//! nondeterminism. This module walks crate sources (comments and
//! string literals stripped) for the hazard patterns that have bitten
//! similar codebases: hash collections with randomized iteration
//! order, wall-clock reads, thread identity, and parallel-iterator
//! reductions with unordered combining.
//!
//! Findings are suppressed by an allowlist file of
//! `path-substring:pattern` lines (empty pattern = any), so deliberate
//! uses (a wall-clock profiler, a host-side dedup set) stay documented
//! in one place.

use std::fs;
use std::path::{Path, PathBuf};

/// Hazard patterns searched for, with a short rationale each.
pub const PATTERNS: &[(&str, &str)] = &[
    ("HashMap", "iteration order is randomized per process"),
    ("HashSet", "iteration order is randomized per process"),
    ("RandomState", "per-process random hasher seed"),
    ("Instant::now", "wall-clock read"),
    ("SystemTime", "wall-clock read"),
    ("thread::current", "thread identity is scheduling-dependent"),
    ("par_iter", "parallel reduction order is nondeterministic"),
    (
        "into_par_iter",
        "parallel reduction order is nondeterministic",
    ),
    ("rayon", "parallel reduction order is nondeterministic"),
];

/// One hazard occurrence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Path relative to the workspace root, `/`-separated.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// The matched pattern.
    pub pattern: &'static str,
    /// Why the pattern is a hazard.
    pub rationale: &'static str,
}

/// Parsed allowlist: `path-substring:pattern` entries.
#[derive(Debug, Clone, Default)]
pub struct Allowlist {
    entries: Vec<(String, String)>,
}

impl Allowlist {
    /// Parses allowlist text: one `path-substring:pattern` per line,
    /// `#` comments, blank lines ignored. An empty pattern allows every
    /// pattern under the path substring.
    pub fn parse(text: &str) -> Allowlist {
        let mut entries = Vec::new();
        for line in text.lines() {
            let line = line.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let (path, pattern) = match line.split_once(':') {
                Some((p, pat)) => (p.trim(), pat.trim()),
                None => (line, ""),
            };
            entries.push((path.to_string(), pattern.to_string()));
        }
        Allowlist { entries }
    }

    /// Loads an allowlist file; a missing file is an empty allowlist.
    pub fn load(path: &Path) -> Allowlist {
        match fs::read_to_string(path) {
            Ok(text) => Allowlist::parse(&text),
            Err(_) => Allowlist::default(),
        }
    }

    /// `true` when the finding is covered by an entry.
    pub fn allows(&self, finding: &Finding) -> bool {
        self.entries.iter().any(|(path, pattern)| {
            finding.path.contains(path.as_str())
                && (pattern.is_empty() || pattern == finding.pattern)
        })
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when no entries are present.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Strips comments and string/char literals from Rust source, keeping
/// line structure (every removed character becomes a space, newlines
/// survive) so findings keep their line numbers.
pub fn strip_code(src: &str) -> String {
    let b: Vec<char> = src.chars().collect();
    let mut out = String::with_capacity(src.len());
    let mut i = 0;
    while i < b.len() {
        let c = b[i];
        match c {
            '/' if i + 1 < b.len() && b[i + 1] == '/' => {
                while i < b.len() && b[i] != '\n' {
                    out.push(' ');
                    i += 1;
                }
            }
            '/' if i + 1 < b.len() && b[i + 1] == '*' => {
                // Block comments nest in Rust.
                let mut depth = 1;
                out.push_str("  ");
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == '/' && i + 1 < b.len() && b[i + 1] == '*' {
                        depth += 1;
                        out.push_str("  ");
                        i += 2;
                    } else if b[i] == '*' && i + 1 < b.len() && b[i + 1] == '/' {
                        depth -= 1;
                        out.push_str("  ");
                        i += 2;
                    } else {
                        out.push(if b[i] == '\n' { '\n' } else { ' ' });
                        i += 1;
                    }
                }
            }
            'r' if i + 1 < b.len() && (b[i + 1] == '"' || b[i + 1] == '#') => {
                // Possible raw string r"..." / r#"..."#.
                let mut j = i + 1;
                let mut hashes = 0;
                while j < b.len() && b[j] == '#' {
                    hashes += 1;
                    j += 1;
                }
                if j < b.len() && b[j] == '"' {
                    // Consume through the matching closer.
                    out.push(' '); // the 'r'
                    for _ in 0..hashes + 1 {
                        out.push(' ');
                    }
                    i = j + 1;
                    'raw: while i < b.len() {
                        if b[i] == '"' {
                            let mut k = i + 1;
                            let mut seen = 0;
                            while k < b.len() && seen < hashes && b[k] == '#' {
                                seen += 1;
                                k += 1;
                            }
                            if seen == hashes {
                                for _ in i..k {
                                    out.push(' ');
                                }
                                i = k;
                                break 'raw;
                            }
                        }
                        out.push(if b[i] == '\n' { '\n' } else { ' ' });
                        i += 1;
                    }
                } else {
                    out.push('r');
                    i += 1;
                }
            }
            '"' => {
                out.push(' ');
                i += 1;
                while i < b.len() {
                    if b[i] == '\\' && i + 1 < b.len() {
                        out.push_str("  ");
                        i += 2;
                        continue;
                    }
                    let done = b[i] == '"';
                    out.push(if b[i] == '\n' { '\n' } else { ' ' });
                    i += 1;
                    if done {
                        break;
                    }
                }
            }
            '\'' => {
                // Char literal vs lifetime: a literal is 'x' or '\...'.
                let is_char = if i + 1 < b.len() && b[i + 1] == '\\' {
                    true
                } else {
                    i + 2 < b.len() && b[i + 2] == '\''
                };
                if is_char {
                    out.push(' ');
                    i += 1;
                    while i < b.len() {
                        if b[i] == '\\' && i + 1 < b.len() {
                            out.push_str("  ");
                            i += 2;
                            continue;
                        }
                        let done = b[i] == '\'';
                        out.push(' ');
                        i += 1;
                        if done {
                            break;
                        }
                    }
                } else {
                    out.push('\'');
                    i += 1;
                }
            }
            _ => {
                out.push(c);
                i += 1;
            }
        }
    }
    out
}

fn is_ident(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

/// Scans one stripped source line for hazard patterns.
fn scan_line(line: &str, path: &str, lineno: usize, out: &mut Vec<Finding>) {
    for &(pattern, rationale) in PATTERNS {
        let mut from = 0;
        while let Some(pos) = line[from..].find(pattern) {
            let at = from + pos;
            let before_ok = at == 0 || !is_ident(line[..at].chars().next_back().unwrap_or(' '));
            let after = line[at + pattern.len()..].chars().next().unwrap_or(' ');
            // `::` continuation counts as part of the match site (e.g.
            // `HashMap::new`), not as a different identifier.
            if before_ok && !is_ident(after) {
                out.push(Finding {
                    path: path.to_string(),
                    line: lineno,
                    pattern,
                    rationale,
                });
            }
            from = at + pattern.len();
        }
    }
}

fn rust_files_under(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    let mut paths: Vec<PathBuf> = entries.filter_map(|e| e.ok().map(|e| e.path())).collect();
    // Deterministic walk order: the lint's own output must not depend
    // on directory-entry order.
    paths.sort();
    for p in paths {
        if p.is_dir() {
            rust_files_under(&p, out);
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
}

/// Scans every `crates/*/src` tree under `root` and returns findings
/// not covered by the allowlist, in deterministic (path, line) order.
pub fn scan_workspace(root: &Path, allow: &Allowlist) -> Vec<Finding> {
    let crates_dir = root.join("crates");
    let mut files = Vec::new();
    let Ok(entries) = fs::read_dir(&crates_dir) else {
        return Vec::new();
    };
    let mut crate_dirs: Vec<PathBuf> = entries.filter_map(|e| e.ok().map(|e| e.path())).collect();
    crate_dirs.sort();
    for c in crate_dirs {
        rust_files_under(&c.join("src"), &mut files);
    }
    let mut findings = Vec::new();
    for file in files {
        let Ok(src) = fs::read_to_string(&file) else {
            continue;
        };
        let rel = file
            .strip_prefix(root)
            .unwrap_or(&file)
            .to_string_lossy()
            .replace('\\', "/");
        let stripped = strip_code(&src);
        for (idx, line) in stripped.lines().enumerate() {
            scan_line(line, &rel, idx + 1, &mut findings);
        }
    }
    findings.retain(|f| !allow.allows(f));
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_hazards_in_plain_code() {
        let src = "use std::collections::HashMap;\nlet t = Instant::now();\n";
        let mut out = Vec::new();
        for (i, line) in strip_code(src).lines().enumerate() {
            scan_line(line, "x.rs", i + 1, &mut out);
        }
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].pattern, "HashMap");
        assert_eq!(out[0].line, 1);
        assert_eq!(out[1].pattern, "Instant::now");
        assert_eq!(out[1].line, 2);
    }

    #[test]
    fn comments_and_strings_do_not_match() {
        let src =
            "// HashMap here\n/* SystemTime */\nlet s = \"rayon\";\nlet r = r#\"par_iter\"#;\n";
        let mut out = Vec::new();
        for (i, line) in strip_code(src).lines().enumerate() {
            scan_line(line, "x.rs", i + 1, &mut out);
        }
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn word_boundaries_are_respected() {
        let src = "struct MyHashMapLike;\nlet no_rayons = 1;\n";
        let mut out = Vec::new();
        for (i, line) in strip_code(src).lines().enumerate() {
            scan_line(line, "x.rs", i + 1, &mut out);
        }
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn lifetimes_do_not_derail_the_stripper() {
        let src = "fn f<'a>(x: &'a str) -> &'a str { x }\nlet c = 'h';\nlet h = HashSet::new();\n";
        let mut out = Vec::new();
        for (i, line) in strip_code(src).lines().enumerate() {
            scan_line(line, "x.rs", i + 1, &mut out);
        }
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].pattern, "HashSet");
        assert_eq!(out[0].line, 3);
    }

    #[test]
    fn stripping_preserves_line_numbers() {
        let src = "a\n/* multi\nline\ncomment */\nSystemTime\n";
        let stripped = strip_code(src);
        assert_eq!(stripped.lines().count(), src.lines().count());
        let mut out = Vec::new();
        for (i, line) in stripped.lines().enumerate() {
            scan_line(line, "x.rs", i + 1, &mut out);
        }
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].line, 5);
    }

    #[test]
    fn allowlist_suppresses_by_path_and_pattern() {
        let allow = Allowlist::parse(
            "# deliberate uses\ncheck/src/lib.rs:HashSet\nprof/src: Instant::now\nshim\n",
        );
        let f = |path: &str, pattern: &'static str| Finding {
            path: path.to_string(),
            line: 1,
            pattern,
            rationale: "",
        };
        assert!(allow.allows(&f("crates/check/src/lib.rs", "HashSet")));
        assert!(!allow.allows(&f("crates/check/src/lib.rs", "HashMap")));
        assert!(allow.allows(&f("crates/prof/src/wall.rs", "Instant::now")));
        assert!(allow.allows(&f("crates/proptest-shim/src/lib.rs", "rayon")));
        assert!(!allow.allows(&f("crates/sim/src/engine.rs", "HashMap")));
    }
}
