//! Interval (box) domains for the abstract interpreter.
//!
//! Energy intervals keep their endpoints in Q16.16 fixed point,
//! denominated in **millijoules** — the same fixed-point format the
//! MCU-side service estimator uses ([`qz_types::Q16`]). All conversions
//! from `f64` round *outward* (lower bounds toward −∞, upper bounds
//! toward +∞), so every interval operation over-approximates the real
//! arithmetic it abstracts: soundness never hinges on float rounding
//! direction.

use qz_types::Q16;

/// One Q16.16 step (≈ 15 nJ when the unit is millijoules).
const ULP: f64 = 1.0 / 65536.0;

/// Converts millijoules to Q16.16, rounding toward −∞ (for lower bounds).
///
/// Values outside the representable range saturate to `Q16::MIN`/`MAX`,
/// which only ever *widens* the interval.
pub fn q16_floor(mj: f64) -> Q16 {
    let scaled = (mj / ULP).floor();
    if scaled <= f64::from(i32::MIN) {
        Q16::MIN
    } else if scaled >= f64::from(i32::MAX) {
        Q16::MAX
    } else {
        // Bounds-checked against i32's range just above.
        #[allow(clippy::cast_possible_truncation)]
        Q16::from_bits(scaled as i32)
    }
}

/// Converts millijoules to Q16.16, rounding toward +∞ (for upper bounds).
pub fn q16_ceil(mj: f64) -> Q16 {
    let scaled = (mj / ULP).ceil();
    if scaled <= f64::from(i32::MIN) {
        Q16::MIN
    } else if scaled >= f64::from(i32::MAX) {
        Q16::MAX
    } else {
        // Bounds-checked against i32's range just above.
        #[allow(clippy::cast_possible_truncation)]
        Q16::from_bits(scaled as i32)
    }
}

/// A closed interval `[lo, hi]` of Q16.16 millijoules.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EnergyInterval {
    /// Lower bound (inclusive), Q16.16 mJ.
    pub lo: Q16,
    /// Upper bound (inclusive), Q16.16 mJ.
    pub hi: Q16,
}

impl EnergyInterval {
    /// The exact singleton `[v, v]` (outward-rounded to Q16.16).
    pub fn point(mj: f64) -> EnergyInterval {
        EnergyInterval {
            lo: q16_floor(mj),
            hi: q16_ceil(mj),
        }
    }

    /// Builds `[lo, hi]` from millijoule floats, rounding outward.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` (after rounding this cannot happen for
    /// `lo <= hi` inputs).
    pub fn new(lo_mj: f64, hi_mj: f64) -> EnergyInterval {
        let iv = EnergyInterval {
            lo: q16_floor(lo_mj),
            hi: q16_ceil(hi_mj),
        };
        assert!(iv.lo <= iv.hi, "inverted interval [{lo_mj}, {hi_mj}]");
        iv
    }

    /// Lower bound in millijoules.
    pub fn lo_mj(self) -> f64 {
        self.lo.to_f64()
    }

    /// Upper bound in millijoules.
    pub fn hi_mj(self) -> f64 {
        self.hi.to_f64()
    }

    /// `true` when `mj` lies inside the interval (with one outward ULP
    /// of slack, absorbing the f64→Q16 conversion of the query point).
    pub fn contains_mj(self, mj: f64) -> bool {
        mj >= self.lo_mj() - ULP && mj <= self.hi_mj() + ULP
    }

    /// `true` when `self` is entirely inside `other` (subsumption).
    pub fn subsumed_by(self, other: EnergyInterval) -> bool {
        self.lo >= other.lo && self.hi <= other.hi
    }

    /// Smallest interval containing both (the join).
    pub fn hull(self, other: EnergyInterval) -> EnergyInterval {
        EnergyInterval {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
    }

    /// Standard interval widening against the previous iterate: any
    /// bound that moved jumps to the supplied extreme, guaranteeing the
    /// fixpoint loop terminates.
    pub fn widen(self, previous: EnergyInterval, extreme: EnergyInterval) -> EnergyInterval {
        EnergyInterval {
            lo: if self.lo < previous.lo {
                extreme.lo
            } else {
                self.lo
            },
            hi: if self.hi > previous.hi {
                extreme.hi
            } else {
                self.hi
            },
        }
    }

    /// Clamps both bounds into `[floor, cap]` (the physical range of a
    /// supercapacitor's usable energy).
    pub fn clamp(self, floor: Q16, cap: Q16) -> EnergyInterval {
        EnergyInterval {
            lo: self.lo.max(floor).min(cap),
            hi: self.hi.max(floor).min(cap),
        }
    }
}

/// A closed interval over *fractional* buffer occupancy.
///
/// The interpreter tracks occupancy with real-valued bounds so a
/// service floor of e.g. 1/0.92 inputs per window accumulates across
/// windows without per-window floor() losses. Discretization is paid
/// once, at read time: the true integer occupancy satisfies
/// `ceil(lo) - 1 <= occ <= floor(hi) + 1` (see [`OccInterval::lo_int`]
/// / [`OccInterval::hi_int`]), because a work-conserving busy period
/// retires at least `floor(T / t_max)` and at most `ceil(T / t_min)`
/// inputs in time `T`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OccInterval {
    /// Fractional lower bound.
    pub lo: f64,
    /// Fractional upper bound.
    pub hi: f64,
}

impl OccInterval {
    /// The exact singleton.
    pub fn point(occ: f64) -> OccInterval {
        OccInterval { lo: occ, hi: occ }
    }

    /// Integer lower bound on true occupancy (discretization slack
    /// applied).
    pub fn lo_int(self) -> usize {
        let v = (self.lo.ceil() - 1.0).max(0.0);
        // Non-negative and far below 2^52 after the max(0) clamp.
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        {
            v as usize
        }
    }

    /// Integer upper bound on true occupancy (discretization slack
    /// applied); saturates at `cap` when finite.
    pub fn hi_int(self, cap: usize) -> usize {
        if self.hi >= 1e15 {
            return cap;
        }
        let v = (self.hi.floor() + 1.0).max(0.0);
        // Non-negative and far below 2^52 after the 1e15 guard.
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let v = v as usize;
        v.min(cap)
    }

    /// `true` when a concrete integer occupancy is inside the interval
    /// (with discretization slack).
    pub fn contains(self, occ: usize) -> bool {
        // Occupancies are tiny (buffer capacities), well inside f64.
        #[allow(clippy::cast_precision_loss)]
        let occ = occ as f64;
        occ >= self.lo.ceil() - 1.0 && occ <= self.hi.floor() + 1.0
    }

    /// `true` when `self` is entirely inside `other`.
    pub fn subsumed_by(self, other: OccInterval) -> bool {
        self.lo >= other.lo && self.hi <= other.hi
    }

    /// Smallest interval containing both.
    pub fn hull(self, other: OccInterval) -> OccInterval {
        OccInterval {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
    }

    /// Widening: moved bounds jump to the extremes `[0, cap]`.
    pub fn widen(self, previous: OccInterval, cap: f64) -> OccInterval {
        OccInterval {
            lo: if self.lo < previous.lo { 0.0 } else { self.lo },
            hi: if self.hi > previous.hi { cap } else { self.hi },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outward_rounding_brackets_the_value() {
        for v in [0.0, 0.1, 1.0 / 3.0, 126.225, -5.5, 1e-9] {
            assert!(q16_floor(v).to_f64() <= v, "floor({v})");
            assert!(q16_ceil(v).to_f64() >= v, "ceil({v})");
            assert!(q16_ceil(v).to_f64() - q16_floor(v).to_f64() <= 2.0 * ULP);
        }
    }

    #[test]
    fn q16_conversion_saturates() {
        assert_eq!(q16_floor(-1e12), Q16::MIN);
        assert_eq!(q16_ceil(1e12), Q16::MAX);
    }

    #[test]
    fn point_interval_contains_its_value() {
        let iv = EnergyInterval::point(33.333_333);
        assert!(iv.contains_mj(33.333_333));
        assert!(!iv.contains_mj(34.0));
    }

    #[test]
    fn hull_and_subsumption() {
        let a = EnergyInterval::new(1.0, 2.0);
        let b = EnergyInterval::new(1.5, 3.0);
        let h = a.hull(b);
        assert!(a.subsumed_by(h));
        assert!(b.subsumed_by(h));
        assert!(!h.subsumed_by(a));
    }

    #[test]
    fn widening_jumps_moved_bounds_to_extremes() {
        let extreme = EnergyInterval::new(0.0, 100.0);
        let prev = EnergyInterval::new(10.0, 20.0);
        let grown = EnergyInterval::new(9.0, 25.0);
        let w = grown.widen(prev, extreme);
        assert_eq!(w.lo, extreme.lo);
        assert_eq!(w.hi, extreme.hi);
        // A stable iterate is untouched.
        let stable = EnergyInterval::new(11.0, 19.0);
        assert_eq!(stable.widen(prev, extreme), stable);
    }

    #[test]
    fn clamp_respects_physical_range() {
        let iv = EnergyInterval::new(-5.0, 500.0);
        let c = iv.clamp(q16_floor(0.0), q16_ceil(126.225));
        assert!(c.lo_mj() >= 0.0);
        assert!(c.hi_mj() <= 126.226);
    }

    #[test]
    fn occ_discretization_slack() {
        let iv = OccInterval { lo: 2.4, hi: 4.6 };
        assert_eq!(iv.lo_int(), 2);
        assert_eq!(iv.hi_int(10), 5);
        assert!(iv.contains(2));
        assert!(iv.contains(5));
        assert!(!iv.contains(7));
    }

    #[test]
    fn occ_hi_int_saturates_at_capacity() {
        let iv = OccInterval { lo: 0.0, hi: 1e16 };
        assert_eq!(iv.hi_int(10), 10);
    }

    #[test]
    fn occ_widening() {
        let prev = OccInterval { lo: 1.0, hi: 2.0 };
        let grown = OccInterval { lo: 0.5, hi: 3.0 };
        let w = grown.widen(prev, 10.0);
        assert!((w.lo - 0.0).abs() < f64::EPSILON);
        assert!((w.hi - 10.0).abs() < f64::EPSILON);
    }
}
