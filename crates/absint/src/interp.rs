//! The abstract interpreter: a window-by-window transfer function over
//! the box domain, plus verdicts and the directed counterexample search.
//!
//! # Abstraction
//!
//! The concrete system is `qz_sim::Simulation`: a 1 ms-tick state
//! machine over (stored energy, buffer occupancy, device on/off,
//! scheduler state). The interpreter abstracts it one *capture window*
//! at a time — the window starting at `t = k·P` covers `[k·P, (k+1)·P)`
//! where `P` is the capture period — because arrivals, frame costs and
//! the paper's service-rate reasoning all live on that grid.
//!
//! The abstract state is a box:
//!
//! - `e`  — stored energy, Q16.16 millijoules ([`EnergyInterval`]). The
//!   lower bound may go negative (physically the capacitor floors at
//!   zero, so a negative bound is trivially sound); keeping the raw
//!   arithmetic value avoids the clamp-at-zero timing unsoundness where
//!   an early over-deduction would be forgotten and the adversary could
//!   re-spend it later.
//! - `occ` — buffer occupancy, fractional bounds ([`OccInterval`]),
//!   discretized only at read time.
//! - `slack_mj` — the greedy-spend *service budget*: an upper bound on
//!   the service energy any feasible trajectory can still spend. Each
//!   arrival credits `e_input_hi`; each guarded window debits the
//!   greedy spend. Whenever the capacitor provably refills (the charge
//!   clamp binds on the lower bound) the budget re-anchors to the
//!   backlog bound `occ_hi · e_input_hi`, which is independently sound.
//! - `head_owed_ms` — the *head-work allowance*: before the drain floor
//!   may credit a single completion, the scheduler must be granted time
//!   to finish every buffered input's non-final pipeline stages. The
//!   scheduler is work-conserving but free to interleave stages across
//!   inputs (SJF can run input 2's classifier before input 1's radio),
//!   so inputs release slots only after up to `occ_hi · t_head_hi` of
//!   head work plus one interrupted-stage replay. The allowance is
//!   charged from the occupancy bound whenever a *drain run* — a
//!   maximal sequence of guarded, arrival-free windows — begins, and
//!   consumed before completions are credited at `1/t_input_hi`.
//!
//! # The guard
//!
//! A window is *guarded* when the lower energy bound survives the
//! worst-case window drain with margin above the checkpoint reserve and
//! starts above the turn-on threshold. Guarded windows provably have no
//! power failure, so the device is on throughout, the work-conserving
//! scheduler drains the buffer during arrival-free windows (after the
//! head allowance), and per-input spend is bounded by the budget.
//! Unguarded windows drop the floor, spend at the raw rate cap (replays
//! under non-JIT policies may exceed the backlog budget), and pay
//! restart-cycle overhead. Windows *with* arrivals never credit the
//! occupancy upper bound: completions during them only help.

use crate::envelope::HarvestEnvelope;
use crate::interval::{q16_ceil, q16_floor, EnergyInterval, OccInterval};
use crate::model::AbsModel;
use qz_traces::EventTrace;
use qz_types::{SimTime, Q16};

/// Guard margin in millijoules, absorbing intra-window ordering effects
/// (the frame cost lands at the boundary, drains interleave with
/// harvest at tick granularity).
pub const GUARD_MARGIN_MJ: f64 = 0.25;

/// Drain-tail windows stepped exactly before widening kicks in.
const WIDEN_DELAY: usize = 4;

/// Abstract state at a window boundary (sampled *before* the boundary
/// tick runs, matching `Simulation::step_until(t)`).
#[derive(Debug, Clone)]
pub struct AbsState {
    /// Stored energy bounds, mJ.
    pub e: EnergyInterval,
    /// Buffer occupancy bounds (fractional).
    pub occ: OccInterval,
    /// Remaining greedy-spend service budget, mJ.
    pub slack_mj: f64,
    /// Outstanding head-work allowance for the live drain run, ms.
    pub head_owed_ms: f64,
    /// Whether a drain run (guarded, arrival-free windows) is live —
    /// the head allowance was charged and not invalidated since.
    drain_live: bool,
}

impl AbsState {
    /// The initial concrete state, abstracted exactly: capacitor full,
    /// buffer empty, no backlog credit.
    pub fn initial(model: &AbsModel) -> AbsState {
        AbsState {
            e: EnergyInterval::point(model.init_mj),
            occ: OccInterval::point(0.0),
            slack_mj: 0.0,
            head_owed_ms: 0.0,
            drain_live: false,
        }
    }

    fn subsumed_by(&self, other: &AbsState) -> bool {
        // A dead drain run recharges the (maximal) allowance on its
        // next window, so it over-approximates any live run; a live run
        // subsumes only a live run with no larger an allowance left.
        let drain_ok = !other.drain_live
            || (self.drain_live && other.head_owed_ms + 1e-9 >= self.head_owed_ms);
        self.e.subsumed_by(other.e)
            && self.occ.subsumed_by(other.occ)
            && self.slack_mj <= other.slack_mj + 1e-9
            && drain_ok
    }

    fn widen(&self, previous: &AbsState, model: &AbsModel) -> AbsState {
        let extreme = EnergyInterval {
            lo: Q16::MIN,
            hi: q16_ceil(model.cap_mj),
        };
        AbsState {
            e: self.e.widen(previous.e, extreme),
            occ: self.occ.widen(previous.occ, occ_cap(model)),
            slack_mj: if self.slack_mj > previous.slack_mj {
                occ_cap(model).min(1e9) * model.e_input_hi_mj
            } else {
                self.slack_mj
            },
            head_owed_ms: if self.head_owed_ms > previous.head_owed_ms {
                occ_cap(model).min(1e9) * model.t_head_hi_ms + model.t_input_hi_ms
            } else {
                self.head_owed_ms
            },
            // `false` is the conservative pole: the next drain window
            // recharges the full allowance.
            drain_live: self.drain_live && previous.drain_live,
        }
    }
}

fn occ_cap(model: &AbsModel) -> f64 {
    if model.buffer_capacity == usize::MAX {
        f64::INFINITY
    } else {
        // Buffer capacities are small CLI knobs, far below 2^52.
        #[allow(clippy::cast_precision_loss)]
        {
            model.buffer_capacity as f64
        }
    }
}

/// Per-window outcome flags.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowFlags {
    /// The window was guarded (provably failure-free).
    pub guard_ok: bool,
    /// An arriving input may have found the buffer full.
    pub overflow_possible: bool,
    /// A restart-thrash energy stall may have begun here.
    pub stall_possible: bool,
}

/// One step of the transfer function over the window starting at
/// `t`. `frame` says whether the capture boundary fires (it stops at
/// the end of the event trace); `arrival` whether a changed frame
/// arrives; `irr` is the envelope's irradiance band over the window.
pub fn step_window(
    model: &AbsModel,
    st: &mut AbsState,
    frame: bool,
    arrival: bool,
    irr: (f64, f64),
) -> WindowFlags {
    let p_s = to_f64_ms(model.capture_period_ms) / 1e3;
    let p_ms = to_f64_ms(model.capture_period_ms);
    let cap_occ = occ_cap(model);

    // 1. Frame cost at the boundary: capture + diff every frame,
    //    compress on changed (arriving) frames even when discarded.
    let fe = if frame {
        model.frame_mj + if arrival { model.compress_mj } else { 0.0 }
    } else {
        0.0
    };

    // 2. Arrival admission. The event schedule is exact, so both bounds
    //    move together; the store clamps at capacity.
    let overflow_possible =
        arrival && st.occ.hi_int(model.buffer_capacity) >= model.buffer_capacity;
    let a = if arrival { 1.0 } else { 0.0 };
    let occ_arr = OccInterval {
        lo: (st.occ.lo + a).min(cap_occ),
        hi: (st.occ.hi + a).min(cap_occ),
    };
    if arrival {
        st.slack_mj += model.e_input_hi_mj;
    }

    // 3. The service budget for this window: remaining credit, capped
    //    by the backlog bound (an in-flight input's remaining spend is
    //    below e_input_hi and it still occupies a slot, so the product
    //    bounds every feasible trajectory's remaining service energy).
    let backlog_bound = to_occ_f64(occ_arr.hi_int(model.buffer_capacity)) * model.e_input_hi_mj;
    let wb = st.slack_mj.min(backlog_bound).max(0.0);

    // 4. Harvest band over the window.
    let (p_lo_mw, p_hi_mw) = model.harvest_bounds_mw(irr.0, irr.1);
    let in_lo = p_lo_mw * p_s;
    let in_hi = p_hi_mw * p_s;

    // 5. Periodic checkpoints tax active execution; active time within
    //    a window is at most the window itself.
    let periodic_tax = match model.policy {
        qz_sim::CheckpointPolicy::Periodic { interval } => {
            let iv = interval.as_seconds().value().max(1e-3);
            model.ckpt_mj * (p_s / iv + 1.0)
        }
        _ => 0.0,
    };

    // 6. The guard: worst-case drain (greedy spend included) keeps the
    //    lower bound above the reserve, and the window starts at or
    //    above turn-on so the device is on (or restores immediately).
    let rate_cap = model.p_exe_hi_mw * p_s;
    let spend_budget = rate_cap.min(wb);
    let guard_drain = fe
        + (model.sleep_mw + model.leak_mw) * p_s
        + spend_budget
        + periodic_tax
        + model.restore_mj;
    let guard_ok = st.e.lo_mj() >= model.turn_on_mj
        && st.e.lo_mj() - guard_drain > model.reserve_mj + GUARD_MARGIN_MJ;

    // 7. Stall flag: only unguarded windows can power-fail, only
    //    pending work replays, and only non-JIT policies lose progress.
    let work_possible = arrival || occ_arr.hi_int(model.buffer_capacity) > 0;
    let stall_possible = !guard_ok && work_possible && model.stall_possible_at(p_lo_mw);

    // 8. Service bounds. The drain floor applies only to guarded,
    //    arrival-free windows of a work-conserving system: the device
    //    is provably on, nothing new arrives, so after the head-work
    //    allowance (every buffered input's non-final stages plus one
    //    interrupted-stage replay, chargeable because the scheduler may
    //    interleave stages across inputs without releasing a slot) the
    //    buffer drains at 1/t_input_hi. Arrival windows never credit
    //    the upper bound — completions during them only help. The
    //    service ceiling applies always (the device may be on and
    //    retiring inputs at the fastest rate).
    let mut s_min = 0.0;
    if guard_ok && !arrival && model.work_conserving {
        if !st.drain_live {
            st.head_owed_ms = occ_arr.hi * model.t_head_hi_ms + model.t_input_hi_ms;
            st.drain_live = true;
        }
        let usable = (p_ms - st.head_owed_ms).max(0.0);
        st.head_owed_ms = (st.head_owed_ms - p_ms).max(0.0);
        s_min = usable / model.t_input_hi_ms;
    } else {
        st.drain_live = false;
    }
    let s_max = p_ms / model.t_input_lo_ms;
    let occ_new = OccInterval {
        lo: (occ_arr.lo - s_max).max(0.0),
        hi: (occ_arr.hi - s_min).max(0.0),
    };

    // 9. Energy spend for the lower bound. Guarded windows spend the
    //    greedy budget (and debit it); unguarded windows may replay
    //    lost progress, so the budget is neither trusted nor debited —
    //    the raw rate cap applies, plus restart-cycle overhead (each
    //    off→on cycle recovers `cycle_gap` of charge and pays a restore,
    //    JIT additionally a checkpoint per failure).
    let (spend_hi, cycle_tax) = if guard_ok {
        st.slack_mj = (st.slack_mj - spend_budget).max(0.0);
        (spend_budget, 0.0)
    } else {
        let per_cycle = model.restore_mj
            + match model.policy {
                qz_sim::CheckpointPolicy::JustInTime => model.ckpt_mj,
                _ => 0.0,
            };
        let tax = if model.cycle_gap_mj > 1e-9 {
            per_cycle * (1.0 + (in_hi / model.cycle_gap_mj).ceil())
        } else {
            f64::INFINITY
        };
        (rate_cap, tax)
    };

    // 10. Energy transfer, outward-rounded. The charge clamp commutes
    //     with the bounds (min is monotone); when it binds on the lower
    //     bound the capacitor provably refilled, so the spend budget
    //     re-anchors to the backlog bound.
    let cap = model.cap_mj;
    let d_max = fe
        + (model.sleep_mw.max(model.off_mw) + model.leak_mw) * p_s
        + spend_hi
        + periodic_tax
        + model.restore_mj
        + cycle_tax;
    let d_min = fe + model.sleep_mw.min(model.off_mw) * p_s;
    let charged_lo = st.e.lo_mj() + in_lo;
    if charged_lo >= cap {
        st.slack_mj = st.slack_mj.min(backlog_bound);
    }
    let e_lo = charged_lo.min(cap) - d_max;
    let e_hi = (st.e.hi_mj() + in_hi - d_min).min(cap).max(e_lo);
    st.e = EnergyInterval {
        lo: q16_floor(e_lo),
        hi: q16_ceil(e_hi),
    };
    st.occ = occ_new;

    WindowFlags {
        guard_ok,
        overflow_possible,
        stall_possible,
    }
}

fn to_f64_ms(ms: u64) -> f64 {
    // Capture periods are seconds-scale; far below 2^52 ms.
    #[allow(clippy::cast_precision_loss)]
    {
        ms as f64
    }
}

fn to_occ_f64(occ: usize) -> f64 {
    if occ == usize::MAX {
        return f64::INFINITY;
    }
    #[allow(clippy::cast_precision_loss)]
    {
        occ as f64
    }
}

/// State snapshot at one window start.
#[derive(Debug, Clone)]
pub struct WindowRecord {
    /// Window start time (a capture boundary).
    pub t: SimTime,
    /// Energy bounds before the boundary tick.
    pub e: EnergyInterval,
    /// Occupancy bounds before the boundary tick.
    pub occ: OccInterval,
    /// Flags produced by stepping this window.
    pub flags: WindowFlags,
}

/// Result of interpreting a full run (event phase + drain tail).
#[derive(Debug, Clone)]
pub struct AbsRun {
    /// Per-window records, in time order, up to the drain fixpoint.
    pub windows: Vec<WindowRecord>,
    /// Window starts where an overflow is possible.
    pub overflow_at: Vec<SimTime>,
    /// Window starts where a restart-thrash stall is possible.
    pub stall_at: Vec<SimTime>,
    /// Time at which the drain tail reached a stable (post-widening)
    /// state, if it did before the horizon.
    pub drain_fixpoint: Option<SimTime>,
    /// Final abstract state (the fixpoint hull, when one was reached).
    pub final_state: AbsState,
}

/// Runs the interpreter over an exact event schedule under a harvest
/// envelope, then over the drain tail of `drain_ms` (no frames, no
/// arrivals) with widening to a fixpoint.
pub fn interpret(
    model: &AbsModel,
    env: &HarvestEnvelope,
    events: &EventTrace,
    drain_ms: u64,
) -> AbsRun {
    let p_ms = model.capture_period_ms;
    let events_end = events.end();
    let mut st = AbsState::initial(model);
    let mut windows = Vec::new();
    let mut overflow_at = Vec::new();
    let mut stall_at = Vec::new();

    // Event phase: one window per capture boundary.
    let mut t_ms = 0u64;
    while t_ms < events_end.as_millis() {
        let t = SimTime::from_millis(t_ms);
        let arrival = events.active_at(t).is_some();
        let irr = env.bounds_over(t, p_ms);
        let before = st.clone();
        let flags = step_window(model, &mut st, true, arrival, irr);
        windows.push(WindowRecord {
            t,
            e: before.e,
            occ: before.occ,
            flags,
        });
        if flags.overflow_possible {
            overflow_at.push(t);
        }
        if flags.stall_possible {
            stall_at.push(t);
        }
        t_ms += p_ms;
    }

    // Drain tail: constant conditions (hull of the whole envelope, no
    // frames). Step a few windows exactly, then widen; once the state
    // is a post-fixpoint (stepping it stays inside it), every remaining
    // window repeats the same flags and the loop stops early.
    let horizon = events_end.as_millis() + drain_ms;
    let irr = env.global_bounds();
    let mut drain_fixpoint = None;
    let mut drain_steps = 0usize;
    while t_ms < horizon {
        let t = SimTime::from_millis(t_ms);
        let before = st.clone();
        let flags = step_window(model, &mut st, false, false, irr);
        if drain_steps >= WIDEN_DELAY {
            st = st.widen(&before, model);
            let mut probe = st.clone();
            let probe_flags = step_window(model, &mut probe, false, false, irr);
            if probe.subsumed_by(&st) {
                // Invariant found: the remaining windows all carry
                // `probe_flags`. Record one representative.
                if probe_flags.stall_possible {
                    stall_at.push(t);
                }
                windows.push(WindowRecord {
                    t,
                    e: before.e,
                    occ: before.occ,
                    flags: probe_flags,
                });
                drain_fixpoint = Some(t);
                break;
            }
        }
        windows.push(WindowRecord {
            t,
            e: before.e,
            occ: before.occ,
            flags,
        });
        if flags.stall_possible {
            stall_at.push(t);
        }
        drain_steps += 1;
        t_ms += p_ms;
    }

    AbsRun {
        windows,
        overflow_at,
        stall_at,
        drain_fixpoint,
        final_state: st,
    }
}

/// The two properties `qz verify` decides.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Property {
    /// "No input-buffer overflow": no arriving frame is ever discarded.
    Overflow,
    /// "No energy stall": no restart-thrash livelock where interrupted
    /// work replays forever without completing.
    Stall,
}

impl Property {
    /// Stable lower-case token for CLI/JSON output.
    pub fn token(self) -> &'static str {
        match self {
            Property::Overflow => "overflow",
            Property::Stall => "stall",
        }
    }
}

/// Which realized solar trace a concrete (counterexample) run uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolarMode {
    /// The seeded realization itself.
    Trace,
    /// The envelope's lower corner ([`HarvestEnvelope::floor_trace`]).
    Floor,
    /// The envelope's upper corner ([`HarvestEnvelope::ceil_trace`]).
    Ceil,
}

impl SolarMode {
    /// Stable token, also accepted by `qz run --solar`.
    pub fn token(self) -> &'static str {
        match self {
            SolarMode::Trace => "trace",
            SolarMode::Floor => "floor",
            SolarMode::Ceil => "ceil",
        }
    }

    /// Parses a `--solar` token.
    pub fn parse(s: &str) -> Option<SolarMode> {
        match s {
            "trace" => Some(SolarMode::Trace),
            "floor" => Some(SolarMode::Floor),
            "ceil" => Some(SolarMode::Ceil),
            _ => None,
        }
    }
}

/// What a directed concrete run observed (a `Metrics` digest).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConcreteObservation {
    /// Frames discarded by input-buffer overflow.
    pub ibo_discards: u64,
    /// Power failures over the run.
    pub power_failures: u64,
    /// Reports delivered (all interest/quality classes).
    pub reports: u64,
    /// Inputs that passed pre-filtering.
    pub arrivals: u64,
}

impl ConcreteObservation {
    /// Digests a finished run's metrics.
    pub fn from_metrics(m: &qz_sim::Metrics) -> ConcreteObservation {
        ConcreteObservation {
            ibo_discards: m.ibo_discards,
            power_failures: m.power_failures,
            reports: m.reports_interesting_high
                + m.reports_interesting_low
                + m.reports_uninteresting_high
                + m.reports_uninteresting_low,
            arrivals: m.arrivals,
        }
    }

    /// `true` when the observation is a concrete witness of the
    /// property's violation.
    pub fn witnesses(&self, prop: Property) -> bool {
        match prop {
            Property::Overflow => self.ibo_discards > 0,
            // Work arrived, the device power-failed, and not one report
            // ever landed: the pipeline replayed without completing —
            // the same operational stall the qz-fault oracle pins.
            Property::Stall => self.power_failures > 0 && self.reports == 0 && self.arrivals > 0,
        }
    }
}

/// Verification verdict for one property.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// The abstract run excludes every violation: holds for every
    /// harvest realization inside the envelope.
    Proven,
    /// A directed concrete run violated the property.
    Refuted {
        /// Which corner of the envelope witnessed it.
        mode: SolarMode,
    },
    /// The abstraction flags a possible violation but no directed run
    /// confirmed it: unreachable under the envelope so far.
    Unknown {
        /// Human-readable description of the first blocking interval.
        blocking: String,
    },
}

impl Verdict {
    /// Stable upper-case token for CLI/JSON output.
    pub fn token(&self) -> &'static str {
        match self {
            Verdict::Proven => "PROVEN",
            Verdict::Refuted { .. } => "REFUTED",
            Verdict::Unknown { .. } => "UNKNOWN",
        }
    }

    /// `true` for [`Verdict::Proven`].
    pub fn is_proven(&self) -> bool {
        matches!(self, Verdict::Proven)
    }
}

/// Decides one property from an abstract run, driving a directed
/// concrete search through `concrete` when the abstraction flags a
/// possible violation. `concrete` runs the realized simulation under
/// the given solar mode and digests its metrics; returning `None`
/// skips that candidate.
pub fn decide<F>(run: &AbsRun, prop: Property, mut concrete: F) -> Verdict
where
    F: FnMut(SolarMode) -> Option<ConcreteObservation>,
{
    let flagged = match prop {
        Property::Overflow => &run.overflow_at,
        Property::Stall => &run.stall_at,
    };
    let Some(&first) = flagged.first() else {
        return Verdict::Proven;
    };
    // The violating abstract corner is lowest-harvest for both
    // properties (less service, more failures), so the floor corner
    // leads the search.
    for mode in [SolarMode::Floor, SolarMode::Trace, SolarMode::Ceil] {
        if let Some(obs) = concrete(mode) {
            if obs.witnesses(prop) {
                return Verdict::Refuted { mode };
            }
        }
    }
    let record = run
        .windows
        .iter()
        .find(|w| w.t == first)
        .expect("flagged window has a record");
    Verdict::Unknown {
        blocking: format!(
            "first flagged window t={}s: energy in [{:.3}, {:.3}] mJ, occupancy in [{}, {}]; \
             directed search (floor/trace/ceil corners) found no witness",
            first.as_millis() / 1000,
            record.e.lo_mj(),
            record.e.hi_mj(),
            record.occ.lo_int(),
            record.occ.hi_int(usize::MAX),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::AbsModel;
    use quetzal::model::{AppSpec, AppSpecBuilder, TaskCost};
    use qz_sim::{CheckpointPolicy, DeviceConfig, PowerConfig};
    use qz_traces::{Event, EventTrace, SolarTrace};
    use qz_types::{Seconds, SimDuration, Watts};

    fn spec() -> AppSpec {
        let mut b = AppSpecBuilder::new();
        let ml = b
            .degradable_task("ml")
            .option("high", TaskCost::new(Seconds(0.5), Watts(0.005)))
            .option("low", TaskCost::new(Seconds(0.05), Watts(0.004)))
            .finish()
            .expect("ml task");
        let tx = b
            .fixed_task("tx", TaskCost::new(Seconds(0.4), Watts(0.050)))
            .expect("tx task");
        b.job("process", vec![ml]).expect("process job");
        b.job("report", vec![tx]).expect("report job");
        b.build().expect("valid spec")
    }

    fn model() -> AbsModel {
        AbsModel::new(&spec(), &DeviceConfig::default(), &PowerConfig::default())
    }

    fn burst_events(n: u64) -> EventTrace {
        // One n-second event starting at t=10s: n arrivals.
        EventTrace::from_events(vec![Event {
            start: SimTime::from_secs(10),
            duration: SimDuration::from_secs(n),
            interesting: true,
        }])
    }

    #[test]
    fn initial_state_is_full_and_empty() {
        let m = model();
        let st = AbsState::initial(&m);
        assert!(st.e.contains_mj(m.init_mj));
        assert!(st.occ.contains(0));
    }

    #[test]
    fn strong_harvest_proves_a_small_burst() {
        let m = model();
        let env = HarvestEnvelope::from_trace(&SolarTrace::constant(0.55), 60);
        let run = interpret(&m, &env, &burst_events(6), 120_000);
        assert!(run.overflow_at.is_empty(), "overflow flagged: {run:?}");
        assert!(run.stall_at.is_empty());
        // Energy bounds never leave the physical range by more than
        // the drain tail's pessimism.
        for w in &run.windows {
            assert!(w.e.hi_mj() <= m.cap_mj + 0.01);
        }
    }

    #[test]
    fn zero_harvest_eventually_drops_the_guard() {
        let m = model();
        let env = HarvestEnvelope::from_trace(&SolarTrace::constant(0.0), 60);
        let run = interpret(&m, &env, &burst_events(200), 60_000);
        assert!(run.windows.iter().any(|w| !w.flags.guard_ok));
    }

    #[test]
    fn full_buffer_without_service_flags_overflow() {
        let device = DeviceConfig {
            buffer_capacity: 2,
            ..DeviceConfig::default()
        };
        let m = AbsModel::new(&spec(), &device, &PowerConfig::default());
        // No harvest: the guard fails once the capacitor drains, the
        // service floor vanishes, and sustained arrivals must overflow.
        let env = HarvestEnvelope::from_trace(&SolarTrace::constant(0.0), 60);
        let run = interpret(&m, &env, &burst_events(600), 0);
        assert!(!run.overflow_at.is_empty());
    }

    #[test]
    fn stall_flags_need_a_non_jit_policy() {
        let env = HarvestEnvelope::from_trace(&SolarTrace::constant(0.02), 60);
        let mut power = PowerConfig::default();
        power.supercap.capacitance = qz_types::Farads(1e-3);

        let jit = AbsModel::new(&spec(), &DeviceConfig::default(), &power);
        let run = interpret(&jit, &env, &burst_events(60), 30_000);
        assert!(run.stall_at.is_empty());

        let device = DeviceConfig {
            checkpoint_policy: CheckpointPolicy::TaskBoundary,
            ..DeviceConfig::default()
        };
        let tb = AbsModel::new(&spec(), &device, &power);
        let run = interpret(&tb, &env, &burst_events(60), 30_000);
        assert!(!run.stall_at.is_empty());
    }

    #[test]
    fn drain_tail_reaches_a_fixpoint() {
        let m = model();
        let env = HarvestEnvelope::from_trace(&SolarTrace::constant(0.55), 60);
        let run = interpret(&m, &env, &burst_events(3), 1_200_000);
        assert!(run.drain_fixpoint.is_some(), "no fixpoint: {run:?}");
        // The fixpoint cut the 1200-window tail short.
        assert!(run.windows.len() < 100);
    }

    #[test]
    fn decide_proves_without_flags() {
        let m = model();
        let env = HarvestEnvelope::from_trace(&SolarTrace::constant(0.55), 60);
        let run = interpret(&m, &env, &burst_events(6), 120_000);
        let v = decide(&run, Property::Overflow, |_| {
            panic!("no concrete run needed for a proof")
        });
        assert!(v.is_proven());
    }

    #[test]
    fn decide_refutes_on_a_concrete_witness() {
        let device = DeviceConfig {
            buffer_capacity: 2,
            ..DeviceConfig::default()
        };
        let m = AbsModel::new(&spec(), &device, &PowerConfig::default());
        let env = HarvestEnvelope::from_trace(&SolarTrace::constant(0.0), 60);
        let run = interpret(&m, &env, &burst_events(600), 0);
        let v = decide(&run, Property::Overflow, |mode| {
            assert_eq!(mode, SolarMode::Floor, "floor corner leads the search");
            Some(ConcreteObservation {
                ibo_discards: 5,
                power_failures: 0,
                reports: 10,
                arrivals: 600,
            })
        });
        assert_eq!(
            v,
            Verdict::Refuted {
                mode: SolarMode::Floor
            }
        );
    }

    #[test]
    fn decide_reports_unknown_with_a_blocking_interval() {
        let device = DeviceConfig {
            buffer_capacity: 2,
            ..DeviceConfig::default()
        };
        let m = AbsModel::new(&spec(), &device, &PowerConfig::default());
        let env = HarvestEnvelope::from_trace(&SolarTrace::constant(0.0), 60);
        let run = interpret(&m, &env, &burst_events(600), 0);
        let mut calls = 0;
        let v = decide(&run, Property::Overflow, |_| {
            calls += 1;
            Some(ConcreteObservation {
                ibo_discards: 0,
                power_failures: 0,
                reports: 600,
                arrivals: 600,
            })
        });
        assert_eq!(calls, 3, "all three corners tried");
        match v {
            Verdict::Unknown { blocking } => {
                assert!(blocking.contains("flagged window"), "{blocking}");
            }
            other => panic!("expected Unknown, got {other:?}"),
        }
    }
}
