//! Precomputed sound bounds on the concrete transition system.
//!
//! [`AbsModel`] digests an application spec plus the device and power
//! configuration into the per-window constants the interpreter needs:
//! frame costs, per-input service-time and service-energy bounds,
//! harvest bounds, and the checkpoint-policy replay geometry. Every
//! bound is derived from the same numbers `qz_sim::Simulation` runs on,
//! which is what the containment proptest in
//! `tests/absint_soundness.rs` holds it to.

use quetzal::model::{AppSpec, TaskCost, TaskKind};
use qz_sim::{CheckpointPolicy, DeviceConfig, PowerConfig};
use qz_types::{Seconds, SimDuration};

/// Milliseconds the engine can spend between a job finishing and the
/// next scheduler invocation picking up follow-on work (state-machine
/// transitions happen on 1 ms tick boundaries; one tick to observe the
/// completed job, one to enter scheduler overhead, one to start the
/// task).
const SCHED_GAP_MS: f64 = 3.0;

/// Sound per-window constants for one (spec, device, power) config.
#[derive(Debug, Clone)]
pub struct AbsModel {
    /// Usable capacitor capacity, mJ.
    pub cap_mj: f64,
    /// Initial stored energy (from `v_init`), mJ.
    pub init_mj: f64,
    /// JIT-checkpoint reserve threshold, mJ.
    pub reserve_mj: f64,
    /// Energy of one checkpoint, mJ.
    pub ckpt_mj: f64,
    /// Energy of one restore, mJ.
    pub restore_mj: f64,
    /// Stored energy at which the device turns back on, mJ.
    pub turn_on_mj: f64,
    /// Per-frame capture + diff energy (every capture boundary), mJ.
    pub frame_mj: f64,
    /// Compression energy (stored frames only), mJ.
    pub compress_mj: f64,
    /// Idle draw while on, mW.
    pub sleep_mw: f64,
    /// Leakage while off, mW.
    pub off_mw: f64,
    /// Supercap self-discharge, mW.
    pub leak_mw: f64,
    /// Highest instantaneous execution power over every task, the
    /// scheduler overhead, and sleep, mW.
    pub p_exe_hi_mw: f64,
    /// Worst-case full-pipeline service energy for one input
    /// (scheduler overhead + every job at its most expensive option), mJ.
    pub e_input_hi_mj: f64,
    /// Worst-case full-pipeline service *time* for one input, ms
    /// (includes jitter stretch and scheduler-gap slack).
    pub t_input_hi_ms: f64,
    /// Best-case time to retire one input, ms (cheapest job at its
    /// cheapest option, jitter shrink, no gaps).
    pub t_input_lo_ms: f64,
    /// Upper bound on the *head* work of one input, ms: everything up
    /// to but excluding its final (slot-releasing) pipeline stage. The
    /// scheduler may interleave head stages across inputs, absorbing
    /// this much service per buffered input without releasing a single
    /// slot, so the drain floor must pre-pay it. Computed as
    /// `t_input_hi − t_input_lo` because `t_input_lo` (the cheapest
    /// whole job) lower-bounds the unknown final stage.
    pub t_head_hi_ms: f64,
    /// Buffer capacity (`usize::MAX` = unbounded/ideal).
    pub buffer_capacity: usize,
    /// Capture period, ms.
    pub capture_period_ms: u64,
    /// Checkpoint policy (decides replay atomicity).
    pub policy: CheckpointPolicy,
    /// Largest atomic-replay energy deficit geometry: per task, the
    /// `(p_exe_mw, t_atomic_s)` pairs with `t_atomic > 0`.
    pub replay_units: Vec<(f64, f64)>,
    /// The harvesting front-end (for band-to-power conversion; handles
    /// both flat and curve-based converter efficiency).
    pub harvester: qz_energy::Harvester,
    /// Charging power at full sun, mW.
    pub harvest_ceiling_mw: f64,
    /// Minimum energy the capacitor must recover between two restore
    /// events (`turn_on − reserve`), mJ. Non-positive means restart
    /// thrash cannot be bounded and the interpreter assumes the worst.
    pub cycle_gap_mj: f64,
    /// Whether the service floor may be applied (work-conserving
    /// scheduling, no uplink gate, zero task jitter handled via the
    /// stretch factors). Callers that install tx gating must clear it.
    pub work_conserving: bool,
}

fn cost_energy_mj(c: &TaskCost) -> f64 {
    c.energy().value() * 1e3
}

fn task_bounds(spec: &AppSpec) -> (Vec<(f64, f64, f64, f64)>, f64) {
    // Per task: (e_hi_mj, t_hi_s, e_lo_mj, t_lo_s) over its options,
    // plus the global max execution power in mW.
    let mut per_task = Vec::new();
    let mut p_hi = 0.0f64;
    for task in spec.tasks() {
        let mut e_hi = 0.0f64;
        let mut t_hi = 0.0f64;
        let mut e_lo = f64::INFINITY;
        let mut t_lo = f64::INFINITY;
        let costs: Vec<TaskCost> = match &task.kind {
            TaskKind::Fixed(c) => vec![*c],
            TaskKind::Degradable(options) => options.iter().map(|o| o.cost).collect(),
        };
        for c in costs {
            e_hi = e_hi.max(cost_energy_mj(&c));
            t_hi = t_hi.max(c.t_exe.value());
            e_lo = e_lo.min(cost_energy_mj(&c));
            t_lo = t_lo.min(c.t_exe.value());
            p_hi = p_hi.max(c.p_exe.value() * 1e3);
        }
        per_task.push((e_hi, t_hi, e_lo, t_lo));
    }
    (per_task, p_hi)
}

impl AbsModel {
    /// Builds the model from the exact configs a simulation would use.
    pub fn new(spec: &AppSpec, device: &DeviceConfig, power: &PowerConfig) -> AbsModel {
        let cap = power.supercap();
        let cap_mj = cap.capacity().value() * 1e3;
        let init_mj = cap.energy().value() * 1e3;
        let reserve_mj = device.checkpoint_reserve().value() * 1e3;
        let turn_on_mj = cap.turn_on_energy().value() * 1e3;
        let harvester = power.harvester();

        let (per_task, mut p_exe_hi_mw) = task_bounds(spec);
        p_exe_hi_mw = p_exe_hi_mw
            .max(device.scheduler_overhead.p_exe.value() * 1e3)
            .max(device.sleep_power.value() * 1e3);

        let jitter = device.task_jitter.clamp(0.0, 1.0);
        let stretch = 1.0 + jitter;
        let shrink = (1.0 - jitter).max(0.0);
        let oh_t_ms = ceil_ms(device.scheduler_overhead.t_exe);
        let oh_e_mj = cost_energy_mj(&device.scheduler_overhead);

        // Worst case: every job in the spec runs for this input, each
        // task at its most expensive/slowest option.
        let mut e_input_hi_mj = 0.0;
        let mut t_input_hi_ms = 0.0;
        // Best case: the cheapest single job retires the input (e.g. a
        // negative classification short-circuits the report job).
        let mut t_input_lo_ms = f64::INFINITY;
        for job in spec.jobs() {
            let mut job_e = oh_e_mj;
            let mut job_t_hi = oh_t_ms;
            let mut job_t_lo = floor_ms(device.scheduler_overhead.t_exe);
            for &task in &job.tasks {
                let (e_hi, t_hi, _e_lo, t_lo) = per_task[task.index()];
                job_e += e_hi;
                job_t_hi += ceil_ms(Seconds(t_hi * stretch));
                job_t_lo += floor_ms(Seconds(t_lo * shrink));
            }
            e_input_hi_mj += job_e;
            t_input_hi_ms += job_t_hi + SCHED_GAP_MS;
            t_input_lo_ms = t_input_lo_ms.min(job_t_lo.max(1.0));
        }

        // Atomic-replay geometry by checkpoint policy.
        let mut replay_units = Vec::new();
        for task in spec.tasks() {
            let costs: Vec<TaskCost> = match &task.kind {
                TaskKind::Fixed(c) => vec![*c],
                TaskKind::Degradable(options) => options.iter().map(|o| o.cost).collect(),
            };
            for c in costs {
                let t_atomic = match device.checkpoint_policy {
                    CheckpointPolicy::JustInTime => 0.0,
                    CheckpointPolicy::Periodic { interval } => {
                        (c.t_exe.value() * stretch).min(interval.as_seconds().value())
                    }
                    // TaskBoundary, and conservatively any future
                    // policy: a failure replays the whole task.
                    _ => c.t_exe.value() * stretch,
                };
                if t_atomic > 0.0 {
                    replay_units.push((c.p_exe.value() * 1e3, t_atomic));
                }
            }
        }

        AbsModel {
            cap_mj,
            init_mj,
            reserve_mj,
            ckpt_mj: device.checkpoint_energy.value() * 1e3,
            restore_mj: device.restore_energy.value() * 1e3,
            turn_on_mj,
            frame_mj: cost_energy_mj(&device.capture) + cost_energy_mj(&device.diff),
            compress_mj: cost_energy_mj(&device.compress),
            sleep_mw: device.sleep_power.value() * 1e3,
            off_mw: device.off_leakage.value() * 1e3,
            leak_mw: cap.config().leakage.value() * 1e3,
            p_exe_hi_mw,
            e_input_hi_mj,
            t_input_hi_ms,
            t_input_lo_ms,
            t_head_hi_ms: (t_input_hi_ms - t_input_lo_ms).max(0.0),
            buffer_capacity: device.buffer_capacity,
            capture_period_ms: device.capture_period.as_millis().max(1),
            policy: device.checkpoint_policy,
            replay_units,
            harvest_ceiling_mw: harvester.output(1.0).value() * 1e3,
            harvester,
            cycle_gap_mj: turn_on_mj - reserve_mj,
            work_conserving: true,
        }
    }

    /// Harvest power bounds in mW for an irradiance band (knot-aware
    /// when the converter has an efficiency curve).
    pub fn harvest_bounds_mw(&self, irr_lo: f64, irr_hi: f64) -> (f64, f64) {
        let (lo, hi) = self.harvester.output_bounds(irr_lo, irr_hi);
        (lo.value() * 1e3, hi.value() * 1e3)
    }

    /// The per-restart-attempt energy budget under restart thrash: a
    /// powered-off device restores the moment it recharges to `v_on`
    /// and (work pending) immediately re-attempts the task, so each
    /// attempt runs on `turn_on − reserve − restore` plus whatever it
    /// harvests.
    pub fn attempt_budget_mj(&self) -> f64 {
        (self.turn_on_mj - self.reserve_mj - self.restore_mj).max(0.0)
    }

    /// `true` when some replay unit cannot complete within the
    /// per-attempt budget at harvest power `p_in_mw` — the restart-
    /// thrash (energy stall) condition for non-JIT policies.
    pub fn stall_possible_at(&self, p_in_mw: f64) -> bool {
        let budget = self.attempt_budget_mj();
        self.replay_units
            .iter()
            .any(|&(p_exe, t_atomic)| (p_exe - p_in_mw) * t_atomic > budget)
    }

    /// `true` when every replay unit completes per attempt even at zero
    /// harvest — no energy stall under any envelope.
    pub fn stall_impossible(&self) -> bool {
        !self.stall_possible_at(0.0)
    }
}

fn ceil_ms(s: Seconds) -> f64 {
    SimDuration::from_seconds_ceil(s).as_millis() as f64
}

fn floor_ms(s: Seconds) -> f64 {
    (s.value() * 1e3).floor().max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use quetzal::model::AppSpecBuilder;
    use qz_types::{Seconds, Watts};

    fn spec() -> AppSpec {
        let mut b = AppSpecBuilder::new();
        let ml = b
            .degradable_task("ml")
            .option("high", TaskCost::new(Seconds(0.5), Watts(0.005)))
            .option("low", TaskCost::new(Seconds(0.05), Watts(0.004)))
            .finish()
            .expect("ml task");
        let tx = b
            .fixed_task("tx", TaskCost::new(Seconds(0.4), Watts(0.050)))
            .expect("tx task");
        b.job("process", vec![ml]).expect("process job");
        b.job("report", vec![tx]).expect("report job");
        b.build().expect("valid spec")
    }

    #[test]
    fn model_digests_the_default_config() {
        let m = AbsModel::new(&spec(), &DeviceConfig::default(), &PowerConfig::default());
        assert!((m.cap_mj - 126.225).abs() < 1e-6);
        assert!((m.init_mj - m.cap_mj).abs() < 1e-6, "starts full");
        assert!((m.harvest_ceiling_mw - 48.0).abs() < 1e-6);
        // 0.5 s × 5 mW + oh, plus 0.4 s × 50 mW + oh.
        assert!(m.e_input_hi_mj > 22.0 && m.e_input_hi_mj < 24.0);
        assert!(m.t_input_hi_ms > 900.0 && m.t_input_hi_ms < 1000.0);
        assert!(m.t_input_lo_ms >= 1.0 && m.t_input_lo_ms < 100.0);
        assert!((m.p_exe_hi_mw - 50.0).abs() < 1e-9);
    }

    #[test]
    fn jit_policy_has_no_replay_units() {
        let m = AbsModel::new(&spec(), &DeviceConfig::default(), &PowerConfig::default());
        assert!(m.replay_units.is_empty());
        assert!(m.stall_impossible());
    }

    #[test]
    fn task_boundary_replay_units_cover_every_option() {
        let device = DeviceConfig {
            checkpoint_policy: CheckpointPolicy::TaskBoundary,
            ..DeviceConfig::default()
        };
        let m = AbsModel::new(&spec(), &device, &PowerConfig::default());
        assert_eq!(m.replay_units.len(), 3); // two ml options + tx
    }

    #[test]
    fn starved_capacitor_trips_the_stall_condition() {
        // 1 mF capacitor: the turn-on band holds ~91 µJ, below the
        // Apollo 4 checkpoint reserve — attempts can never complete.
        let device = DeviceConfig {
            checkpoint_policy: CheckpointPolicy::TaskBoundary,
            ..DeviceConfig::default()
        };
        let mut power = PowerConfig::default();
        power.supercap.capacitance = qz_types::Farads(1e-3);
        let m = AbsModel::new(&spec(), &device, &power);
        assert!((m.attempt_budget_mj() - 0.0).abs() < f64::EPSILON);
        assert!(m.stall_possible_at(m.harvest_ceiling_mw));
        assert!(!m.stall_impossible());
    }

    #[test]
    fn periodic_policy_clips_the_atomic_unit() {
        let device = DeviceConfig {
            checkpoint_policy: CheckpointPolicy::Periodic {
                interval: SimDuration::from_millis(100),
            },
            ..DeviceConfig::default()
        };
        let m = AbsModel::new(&spec(), &device, &PowerConfig::default());
        for &(_, t) in &m.replay_units {
            assert!(t <= 0.1 + 1e-9);
        }
    }
}
