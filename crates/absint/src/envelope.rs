//! Harvest envelopes: per-segment irradiance bounds over a solar trace.
//!
//! The abstract interpreter is parameterised by an *envelope* — a
//! piecewise-constant `[min, max]` band of irradiance fractions — rather
//! than one realized trace. Any trace whose every sample lies inside the
//! band is *covered*: verdicts proven under the envelope hold for every
//! covered realization. The two band edges are themselves valid traces
//! (the floor/ceil corner traces), which is what the directed
//! counterexample search simulates.

use qz_traces::SolarTrace;
use qz_types::SimTime;

/// A piecewise-constant irradiance band at a fixed segment length.
///
/// Like [`SolarTrace`], lookups past the end wrap cyclically, so the
/// envelope covers arbitrarily long simulations of its source trace.
#[derive(Debug, Clone, PartialEq)]
pub struct HarvestEnvelope {
    /// Segment length in seconds (≥ 1).
    segment_secs: u64,
    /// Per-segment `(min, max)` irradiance fractions in `[0, 1]`.
    segments: Vec<(f32, f32)>,
}

impl HarvestEnvelope {
    /// Builds the envelope of a realized trace: per segment of
    /// `segment_secs` seconds, the min/max of the trace's 1 Hz samples.
    ///
    /// # Panics
    ///
    /// Panics if `segment_secs == 0`.
    pub fn from_trace(trace: &SolarTrace, segment_secs: u64) -> HarvestEnvelope {
        assert!(segment_secs > 0, "segment length must be at least 1 s");
        let samples = trace.samples();
        let mut segments = Vec::new();
        // segment_secs fits usize on every supported platform.
        #[allow(clippy::cast_possible_truncation)]
        let step = segment_secs as usize;
        let mut i = 0;
        while i < samples.len() {
            let end = (i + step).min(samples.len());
            let mut lo = f32::INFINITY;
            let mut hi = f32::NEG_INFINITY;
            for &s in &samples[i..end] {
                lo = lo.min(s);
                hi = hi.max(s);
            }
            segments.push((lo, hi));
            i = end;
        }
        HarvestEnvelope {
            segment_secs,
            segments,
        }
    }

    /// The universal envelope: irradiance anywhere in `[0, 1]` forever.
    /// This is what backs the environment-free `qz check` verdicts.
    pub fn universal() -> HarvestEnvelope {
        HarvestEnvelope {
            segment_secs: 1,
            segments: vec![(0.0, 1.0)],
        }
    }

    /// Segment length in seconds.
    pub fn segment_secs(&self) -> u64 {
        self.segment_secs
    }

    /// Number of segments before the envelope wraps.
    pub fn len(&self) -> usize {
        self.segments.len()
    }

    /// `true` when the envelope has no segments (never constructible via
    /// the public constructors; present for API completeness).
    pub fn is_empty(&self) -> bool {
        self.segments.is_empty()
    }

    /// Duration covered before wrapping, in milliseconds.
    pub fn duration_ms(&self) -> u64 {
        self.segments.len() as u64 * self.segment_secs * 1000
    }

    /// Irradiance bounds at one instant.
    pub fn bounds_at(&self, t: SimTime) -> (f64, f64) {
        let seg_ms = self.segment_secs * 1000;
        let idx = (t.as_millis() % self.duration_ms()) / seg_ms;
        // Segment count fits usize (it indexes a Vec).
        #[allow(clippy::cast_possible_truncation)]
        let (lo, hi) = self.segments[idx as usize];
        (f64::from(lo), f64::from(hi))
    }

    /// Irradiance bounds over the half-open span `[t, t + dur_ms)`:
    /// the hull of every segment the span overlaps (wrapping).
    pub fn bounds_over(&self, t: SimTime, dur_ms: u64) -> (f64, f64) {
        let seg_ms = self.segment_secs * 1000;
        let total = self.duration_ms();
        if dur_ms >= total {
            return self.global_bounds();
        }
        let start = t.as_millis() % total;
        let end = start + dur_ms.max(1) - 1; // inclusive last instant
        let first = start / seg_ms;
        let last = end / seg_ms;
        let n = self.segments.len() as u64;
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for seg in first..=last {
            // Segment count fits usize (it indexes a Vec).
            #[allow(clippy::cast_possible_truncation)]
            let (slo, shi) = self.segments[(seg % n) as usize];
            lo = lo.min(f64::from(slo));
            hi = hi.max(f64::from(shi));
        }
        (lo, hi)
    }

    /// The hull over every segment.
    pub fn global_bounds(&self) -> (f64, f64) {
        let mut lo = f32::INFINITY;
        let mut hi = f32::NEG_INFINITY;
        for &(slo, shi) in &self.segments {
            lo = lo.min(slo);
            hi = hi.max(shi);
        }
        (f64::from(lo), f64::from(hi))
    }

    /// The lower corner trace: per-second samples pinned to each
    /// segment's minimum. Covered by the envelope by construction.
    pub fn floor_trace(&self) -> SolarTrace {
        self.corner(|(lo, _)| lo)
    }

    /// The upper corner trace: per-second samples pinned to each
    /// segment's maximum. Covered by the envelope by construction.
    pub fn ceil_trace(&self) -> SolarTrace {
        self.corner(|(_, hi)| hi)
    }

    fn corner(&self, pick: fn(&(f32, f32)) -> &f32) -> SolarTrace {
        let mut samples = Vec::new();
        for seg in &self.segments {
            // segment_secs is small (a CLI knob, seconds-scale).
            #[allow(clippy::cast_possible_truncation)]
            let n = self.segment_secs as usize;
            samples.extend(std::iter::repeat_n(*pick(seg), n));
        }
        SolarTrace::from_samples(samples)
    }

    /// `true` when every sample of `trace` lies inside the band at its
    /// own timestamp (with `tol` slack for f32 rounding).
    pub fn covers(&self, trace: &SolarTrace, tol: f64) -> bool {
        trace.samples().iter().enumerate().all(|(sec, &s)| {
            let (lo, hi) = self.bounds_at(SimTime::from_secs(sec as u64));
            f64::from(s) >= lo - tol && f64::from(s) <= hi + tol
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp_trace() -> SolarTrace {
        // 120 s ramp 0.0 → ~0.99.
        // Sample count is tiny; precision loss is irrelevant here.
        #[allow(clippy::cast_precision_loss)]
        SolarTrace::from_samples((0..120).map(|i| i as f32 / 120.0).collect())
    }

    #[test]
    fn segments_bracket_their_samples() {
        let t = ramp_trace();
        let env = HarvestEnvelope::from_trace(&t, 60);
        assert_eq!(env.len(), 2);
        let (lo, hi) = env.bounds_at(SimTime::from_secs(10));
        assert!(lo <= 0.0 + 1e-6 && hi >= 59.0 / 120.0 - 1e-6);
        assert!(env.covers(&t, 1e-6));
    }

    #[test]
    fn corner_traces_are_covered() {
        let t = ramp_trace();
        let env = HarvestEnvelope::from_trace(&t, 30);
        assert!(env.covers(&env.floor_trace(), 1e-6));
        assert!(env.covers(&env.ceil_trace(), 1e-6));
    }

    #[test]
    fn corner_traces_bracket_the_source() {
        let t = ramp_trace();
        let env = HarvestEnvelope::from_trace(&t, 30);
        let floor = env.floor_trace();
        let ceil = env.ceil_trace();
        for sec in 0..120u64 {
            let at = SimTime::from_secs(sec);
            assert!(floor.irradiance(at) <= t.irradiance(at) + 1e-6);
            assert!(ceil.irradiance(at) >= t.irradiance(at) - 1e-6);
        }
    }

    #[test]
    fn span_bounds_hull_overlapped_segments() {
        let t = ramp_trace();
        let env = HarvestEnvelope::from_trace(&t, 60);
        // A span straddling both segments sees the global hull.
        let (lo, hi) = env.bounds_over(SimTime::from_secs(59), 2000);
        let (glo, ghi) = env.global_bounds();
        assert!((lo - glo).abs() < 1e-6);
        assert!((hi - ghi).abs() < 1e-6);
        // A span inside one segment sees only that segment.
        let (lo1, hi1) = env.bounds_over(SimTime::from_secs(0), 1000);
        assert!(lo1 <= 1e-6 && hi1 <= 0.5);
    }

    #[test]
    fn wrapping_matches_trace_semantics() {
        let t = ramp_trace();
        let env = HarvestEnvelope::from_trace(&t, 60);
        let (lo, hi) = env.bounds_at(SimTime::from_secs(130)); // wraps to 10 s
        let (lo2, hi2) = env.bounds_at(SimTime::from_secs(10));
        assert!((lo - lo2).abs() < 1e-9 && (hi - hi2).abs() < 1e-9);
    }

    #[test]
    fn universal_envelope_is_total() {
        let env = HarvestEnvelope::universal();
        let (lo, hi) = env.bounds_over(SimTime::from_secs(1_000_000), 86_400_000);
        assert!((lo - 0.0).abs() < 1e-9 && (hi - 1.0).abs() < 1e-9);
        assert!(env.covers(&SolarTrace::constant(0.7), 0.0));
    }
}
