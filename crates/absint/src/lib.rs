//! Sound abstract interpretation of the energy/buffer transition
//! system, plus the workspace determinism source lint.
//!
//! # What this crate proves
//!
//! `qz verify` (built on this crate) decides two safety properties of
//! one `(system, device, environment, seed)` configuration, for *every*
//! harvest realization inside a [`HarvestEnvelope`] rather than just
//! the one realized solar trace:
//!
//! - **No input-buffer overflow** — no arriving frame is ever dropped.
//! - **No energy stall** — no restart-thrash livelock where a non-JIT
//!   checkpoint policy replays interrupted work forever.
//!
//! The interpreter ([`interpret`]) steps a box domain — energy interval
//! in Q16.16 millijoules, fractional occupancy interval, greedy-spend
//! service budget — one capture window at a time, with widening to a
//! fixpoint over the post-events drain tail. Soundness is pinned two
//! ways by `tests/absint_soundness.rs`: a containment proptest (every
//! concrete trajectory stays inside the abstract boxes at every capture
//! boundary, for both simulation engines) and verdict fidelity (every
//! REFUTED verdict carries a concrete witness; every PROVEN config
//! simulates clean across the proptest corpus).
//!
//! When the abstraction flags a possible violation, [`decide`] drives a
//! directed concrete search over the envelope's corner traces and the
//! realized trace; only a confirmed violation yields
//! [`Verdict::Refuted`], otherwise the result is [`Verdict::Unknown`]
//! with the blocking interval.
//!
//! The [`lint`] module is unrelated machinery that rides along for
//! `qz lint-src`: a comment/string-stripping scan of workspace sources
//! for nondeterminism hazards, with an allowlist file.

pub mod envelope;
pub mod interp;
pub mod interval;
pub mod lint;
pub mod model;

pub use envelope::HarvestEnvelope;
pub use interp::{
    decide, interpret, step_window, AbsRun, AbsState, ConcreteObservation, Property, SolarMode,
    Verdict, WindowFlags, WindowRecord,
};
pub use interval::{EnergyInterval, OccInterval};
pub use lint::{scan_workspace, Allowlist, Finding};
pub use model::AbsModel;
