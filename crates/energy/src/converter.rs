//! Input-power-dependent boost-converter efficiency.
//!
//! A real harvesting front-end (e.g. the BQ25504 the paper uses) is not
//! a constant-efficiency block: at microwatt inputs the converter's own
//! quiescent draw dominates and efficiency collapses, while near its
//! design point it converts at 80–90 %. [`EfficiencyCurve`] models this
//! as a piecewise-linear map from harvested input power to conversion
//! efficiency, and [`crate::Harvester::with_curve`] applies it in place
//! of the flat default.

use qz_types::Watts;

/// A piecewise-linear efficiency curve over input power.
///
/// Between points the efficiency is linearly interpolated; below the
/// first point and above the last it is clamped to the end values.
///
/// # Examples
///
/// ```
/// use qz_energy::EfficiencyCurve;
/// use qz_types::Watts;
///
/// let curve = EfficiencyCurve::bq25504_like();
/// assert!(curve.at(Watts(50e-6)) < 0.5);  // microwatt input: poor
/// assert!(curve.at(Watts(10e-3)) > 0.75); // design point: good
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct EfficiencyCurve {
    /// `(input power, efficiency)` points, strictly increasing in power.
    points: Vec<(Watts, f64)>,
}

impl EfficiencyCurve {
    /// Builds a curve from `(input power, efficiency)` points.
    ///
    /// # Panics
    ///
    /// Panics if `points` is empty, powers are not strictly increasing,
    /// or an efficiency is outside `(0, 1]`.
    pub fn new(points: Vec<(Watts, f64)>) -> EfficiencyCurve {
        assert!(
            !points.is_empty(),
            "efficiency curve needs at least one point"
        );
        for pair in points.windows(2) {
            assert!(
                pair[0].0 < pair[1].0,
                "curve powers must be strictly increasing"
            );
        }
        for &(p, eff) in &points {
            assert!(
                p.value() >= 0.0 && p.value().is_finite(),
                "curve powers must be finite"
            );
            assert!(eff > 0.0 && eff <= 1.0, "efficiency must be in (0, 1]");
        }
        EfficiencyCurve { points }
    }

    /// A flat curve (constant efficiency at every input power).
    pub fn flat(efficiency: f64) -> EfficiencyCurve {
        EfficiencyCurve::new(vec![(Watts::ZERO, efficiency)])
    }

    /// A BQ25504-shaped default: collapsing below ~100 µW, ~80 % at the
    /// mW-scale design point, slightly declining at tens of mW.
    pub fn bq25504_like() -> EfficiencyCurve {
        EfficiencyCurve::new(vec![
            (Watts(10e-6), 0.20),
            (Watts(100e-6), 0.55),
            (Watts(1e-3), 0.75),
            (Watts(5e-3), 0.82),
            (Watts(20e-3), 0.80),
            (Watts(60e-3), 0.76),
        ])
    }

    /// The curve's `(input power, efficiency)` points, strictly
    /// increasing in power. Interval analyses (e.g. the abstract
    /// interpreter's harvest bounds) evaluate the output at these knots
    /// in addition to range corners, because `power × efficiency` is
    /// only piecewise-monotone.
    pub fn points(&self) -> &[(Watts, f64)] {
        &self.points
    }

    /// Efficiency at the given input power.
    pub fn at(&self, input: Watts) -> f64 {
        let p = input.value();
        let first = self.points.first().expect("validated non-empty");
        if p <= first.0.value() {
            return first.1;
        }
        let last = self.points.last().expect("validated non-empty");
        if p >= last.0.value() {
            return last.1;
        }
        for pair in self.points.windows(2) {
            let (p0, e0) = (pair[0].0.value(), pair[0].1);
            let (p1, e1) = (pair[1].0.value(), pair[1].1);
            if p >= p0 && p <= p1 {
                let t = (p - p0) / (p1 - p0);
                return e0 + t * (e1 - e0);
            }
        }
        last.1
    }
}

#[cfg(test)]
// Flat/clamped efficiency curves return their stored endpoints
// verbatim, so strict float comparison is the point.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn flat_curve_is_constant() {
        let c = EfficiencyCurve::flat(0.8);
        for p in [0.0, 1e-6, 1e-3, 1.0] {
            assert_eq!(c.at(Watts(p)), 0.8);
        }
    }

    #[test]
    fn interpolates_between_points() {
        let c = EfficiencyCurve::new(vec![(Watts(0.0), 0.2), (Watts(1.0), 0.8)]);
        assert!((c.at(Watts(0.5)) - 0.5).abs() < 1e-12);
        assert!((c.at(Watts(0.25)) - 0.35).abs() < 1e-12);
    }

    #[test]
    fn clamps_outside_range() {
        let c = EfficiencyCurve::new(vec![(Watts(0.001), 0.5), (Watts(0.01), 0.8)]);
        assert_eq!(c.at(Watts(1e-6)), 0.5);
        assert_eq!(c.at(Watts(1.0)), 0.8);
    }

    #[test]
    fn bq25504_shape() {
        let c = EfficiencyCurve::bq25504_like();
        assert!(c.at(Watts(10e-6)) < 0.3);
        assert!(c.at(Watts(5e-3)) > 0.8);
        assert!(c.at(Watts(60e-3)) < c.at(Watts(5e-3)));
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn rejects_unsorted_points() {
        EfficiencyCurve::new(vec![(Watts(1.0), 0.5), (Watts(0.5), 0.6)]);
    }

    #[test]
    #[should_panic(expected = "at least one point")]
    fn rejects_empty() {
        EfficiencyCurve::new(vec![]);
    }

    #[test]
    #[should_panic(expected = "efficiency must be in")]
    fn rejects_bad_efficiency() {
        EfficiencyCurve::new(vec![(Watts(0.0), 1.5)]);
    }

    proptest! {
        #[test]
        fn always_within_point_bounds(p in 0.0f64..1.0) {
            let c = EfficiencyCurve::bq25504_like();
            let e = c.at(Watts(p));
            prop_assert!((0.2..=0.82).contains(&e));
        }

        #[test]
        fn monotone_segments_interpolate_monotonically(a in 0.0f64..0.06, b in 0.0f64..0.06) {
            // The bq curve rises to 5 mW then falls slightly; check
            // monotone rise below the peak.
            let c = EfficiencyCurve::bq25504_like();
            let (lo, hi) = if a < b { (a, b) } else { (b, a) };
            if hi <= 0.005 {
                prop_assert!(c.at(Watts(lo)) <= c.at(Watts(hi)) + 1e-12);
            }
        }
    }
}
