//! Supercapacitor energy-storage model.

use core::fmt;
use qz_types::{Farads, Joules, Volts};

/// Configuration for a [`Supercap`].
///
/// The defaults model the paper's hardware experiment: a 33 mF BestCap
/// supercapacitor behind a BQ25504 with a 3.3 V regulator rail, a 1.8 V
/// minimum operating voltage, and turn-on / turn-off hysteresis so the
/// device does not chatter around the brownout threshold.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SupercapConfig {
    /// Capacitance of the storage element.
    pub capacitance: Farads,
    /// Maximum voltage the charger allows on the capacitor.
    pub v_max: Volts,
    /// Voltage below which the device cannot execute (brownout).
    pub v_off: Volts,
    /// Voltage the capacitor must reach before a powered-off device
    /// restarts (hysteresis; must be ≥ `v_off`).
    pub v_on: Volts,
    /// Initial capacitor voltage.
    pub v_init: Volts,
    /// Self-discharge (leakage) power, drained continuously by
    /// [`crate::PowerSystem::step`]. Defaults to zero; real
    /// supercapacitors leak a few microwatts.
    pub leakage: qz_types::Watts,
}

impl Default for SupercapConfig {
    fn default() -> SupercapConfig {
        SupercapConfig {
            capacitance: Farads(0.033),
            v_max: Volts(3.3),
            v_off: Volts(1.8),
            v_on: Volts(1.85),
            v_init: Volts(3.3),
            leakage: qz_types::Watts::ZERO,
        }
    }
}

/// Errors from validating a [`SupercapConfig`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum SupercapError {
    /// Capacitance was zero, negative, or non-finite.
    InvalidCapacitance,
    /// The voltage window is inconsistent (requires
    /// `0 ≤ v_off ≤ v_on ≤ v_max` and `v_off ≤ v_init ≤ v_max`,
    /// all finite).
    InvalidVoltageWindow,
}

impl fmt::Display for SupercapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SupercapError::InvalidCapacitance => {
                write!(f, "capacitance must be positive and finite")
            }
            SupercapError::InvalidVoltageWindow => {
                write!(f, "voltage window must satisfy 0 <= v_off <= v_on <= v_max and v_off <= v_init <= v_max")
            }
        }
    }
}

impl std::error::Error for SupercapError {}

/// A supercapacitor with an operating voltage window.
///
/// Stored energy is tracked relative to the brownout voltage `v_off`: the
/// device can only use charge above that threshold, so `energy() == 0`
/// means "the device must stop executing", and
/// `energy() == capacity()` means "the capacitor is full".
///
/// The physics is the ideal capacitor law `E = ½·C·(V² − V_off²)`; ESR and
/// leakage are deliberately omitted — the paper notes Quetzal is agnostic
/// of power-system details such as ESR because it measures power directly
/// (§8, discussion of Culpeo).
#[derive(Debug, Clone, PartialEq)]
pub struct Supercap {
    config: SupercapConfig,
    /// Usable energy above `v_off`, in joules.
    energy: Joules,
}

impl Supercap {
    /// Creates a supercapacitor from a validated configuration.
    ///
    /// # Errors
    ///
    /// Returns [`SupercapError`] if the capacitance is non-positive or the
    /// voltage window is inconsistent.
    pub fn new(config: SupercapConfig) -> Result<Supercap, SupercapError> {
        let SupercapConfig {
            capacitance,
            v_max,
            v_off,
            v_on,
            v_init,
            leakage,
        } = config;
        if !(leakage.value().is_finite() && leakage.value() >= 0.0) {
            return Err(SupercapError::InvalidCapacitance);
        }
        if !(capacitance.value().is_finite() && capacitance.value() > 0.0) {
            return Err(SupercapError::InvalidCapacitance);
        }
        let vs = [v_max, v_off, v_on, v_init];
        if vs.iter().any(|v| !v.value().is_finite() || v.value() < 0.0)
            || v_off > v_on
            || v_on > v_max
            || v_init < v_off
            || v_init > v_max
        {
            return Err(SupercapError::InvalidVoltageWindow);
        }
        let mut cap = Supercap {
            config,
            energy: Joules::ZERO,
        };
        cap.energy = cap.energy_between(v_off, v_init);
        Ok(cap)
    }

    /// The configuration this capacitor was built from.
    #[inline]
    pub fn config(&self) -> &SupercapConfig {
        &self.config
    }

    /// Usable stored energy (above the brownout voltage).
    #[inline]
    pub fn energy(&self) -> Joules {
        self.energy
    }

    /// Total usable capacity: energy between `v_off` and `v_max`.
    #[inline]
    pub fn capacity(&self) -> Joules {
        self.energy_between(self.config.v_off, self.config.v_max)
    }

    /// Remaining room before the capacitor is full.
    #[inline]
    pub fn headroom(&self) -> Joules {
        (self.capacity() - self.energy).max(Joules::ZERO)
    }

    /// Current capacitor voltage, derived from stored energy.
    pub fn voltage(&self) -> Volts {
        let v_off = self.config.v_off.value();
        let c = self.config.capacitance.value();
        Volts((v_off * v_off + 2.0 * self.energy.value() / c).sqrt())
    }

    /// `true` once the capacitor has recharged past the turn-on threshold.
    #[inline]
    pub fn can_turn_on(&self) -> bool {
        self.voltage() >= self.config.v_on - Volts(1e-9)
    }

    /// `true` when the capacitor has drained to (or below) the brownout
    /// threshold and an executing device must stop.
    #[inline]
    pub fn must_turn_off(&self) -> bool {
        self.energy.value() <= 0.0
    }

    /// Stored energy at which [`Supercap::can_turn_on`] flips true, from
    /// the ideal-capacitor law `½·C·(v_on² − v_off²)` (including
    /// `can_turn_on`'s 1 nV hysteresis slack). Exposed for closed-form
    /// threshold-crossing estimates; the authoritative per-tick check
    /// remains [`Supercap::can_turn_on`].
    pub fn turn_on_energy(&self) -> Joules {
        let v_on = (self.config.v_on - Volts(1e-9)).value();
        let v_off = self.config.v_off.value();
        Joules((0.5 * self.config.capacitance.value() * (v_on * v_on - v_off * v_off)).max(0.0))
    }

    /// Adds harvested energy, clamping at the full capacity.
    ///
    /// Returns the energy actually accepted; the remainder is wasted
    /// (harvesting into a full capacitor), which the caller may want to
    /// account as lost harvest.
    pub fn charge(&mut self, amount: Joules) -> Joules {
        debug_assert!(amount.value() >= 0.0, "charge amount must be non-negative");
        let accepted = amount.min(self.headroom());
        self.energy += accepted;
        accepted
    }

    /// Draws energy for execution.
    ///
    /// Returns the energy actually supplied. If the request exceeds the
    /// stored energy, everything available is supplied and the capacitor
    /// is left empty — the device browns out (`must_turn_off` becomes
    /// `true`).
    pub fn discharge(&mut self, amount: Joules) -> Joules {
        debug_assert!(
            amount.value() >= 0.0,
            "discharge amount must be non-negative"
        );
        let supplied = amount.min(self.energy);
        self.energy -= supplied;
        if self.energy.value() < 0.0 {
            self.energy = Joules::ZERO;
        }
        supplied
    }

    /// Overwrites the stored energy directly. Crate-internal escape
    /// hatch for [`crate::PowerSystem`]'s sprint loop, which mirrors
    /// the charge/discharge arithmetic on hoisted `f64` locals and
    /// writes the result back; all invariants (`0 ≤ energy ≤ capacity`
    /// up to per-op rounding) are the caller's responsibility.
    #[inline]
    pub(crate) fn set_energy_raw(&mut self, energy: Joules) {
        self.energy = energy;
    }

    /// Energy stored between two voltages: `½·C·(v_hi² − v_lo²)`.
    fn energy_between(&self, v_lo: Volts, v_hi: Volts) -> Joules {
        let c = self.config.capacitance.value();
        Joules(0.5 * c * (v_hi.value() * v_hi.value() - v_lo.value() * v_lo.value()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn cap() -> Supercap {
        Supercap::new(SupercapConfig::default()).unwrap()
    }

    #[test]
    fn default_config_is_valid_and_full() {
        let c = cap();
        assert!((c.voltage().value() - 3.3).abs() < 1e-9);
        assert!((c.energy().value() - c.capacity().value()).abs() < 1e-12);
        // ½·0.033·(3.3² − 1.8²) = 0.1262 J usable
        assert!((c.capacity().value() - 0.126225).abs() < 1e-6);
    }

    #[test]
    fn rejects_bad_capacitance() {
        let cfg = SupercapConfig {
            capacitance: Farads(0.0),
            ..SupercapConfig::default()
        };
        assert_eq!(Supercap::new(cfg), Err(SupercapError::InvalidCapacitance));
        let cfg = SupercapConfig {
            capacitance: Farads(f64::NAN),
            ..SupercapConfig::default()
        };
        assert_eq!(Supercap::new(cfg), Err(SupercapError::InvalidCapacitance));
    }

    #[test]
    fn rejects_bad_voltage_window() {
        let cfg = SupercapConfig {
            v_on: Volts(1.0), // below v_off
            ..SupercapConfig::default()
        };
        assert_eq!(Supercap::new(cfg), Err(SupercapError::InvalidVoltageWindow));

        let cfg = SupercapConfig {
            v_init: Volts(0.5), // below v_off
            ..SupercapConfig::default()
        };
        assert_eq!(Supercap::new(cfg), Err(SupercapError::InvalidVoltageWindow));

        let cfg = SupercapConfig {
            v_max: Volts(2.0), // below v_on
            ..SupercapConfig::default()
        };
        assert_eq!(Supercap::new(cfg), Err(SupercapError::InvalidVoltageWindow));
    }

    #[test]
    fn discharge_then_charge_roundtrip() {
        let mut c = cap();
        let drawn = c.discharge(Joules(0.05));
        assert_eq!(drawn, Joules(0.05));
        assert!((c.energy().value() - (c.capacity().value() - 0.05)).abs() < 1e-12);
        let accepted = c.charge(Joules(0.05));
        assert!((accepted.value() - 0.05).abs() < 1e-12);
        assert!((c.energy().value() - c.capacity().value()).abs() < 1e-12);
    }

    #[test]
    fn overdraw_empties_and_browns_out() {
        let mut c = cap();
        let supplied = c.discharge(Joules(10.0));
        assert!((supplied.value() - c.capacity().value()).abs() < 1e-12);
        assert_eq!(c.energy(), Joules::ZERO);
        assert!(c.must_turn_off());
        assert!((c.voltage().value() - 1.8).abs() < 1e-9);
    }

    #[test]
    fn overcharge_is_clamped_and_reported() {
        let mut c = cap();
        c.discharge(Joules(0.01));
        let accepted = c.charge(Joules(1.0));
        assert!((accepted.value() - 0.01).abs() < 1e-12);
        assert!((c.energy().value() - c.capacity().value()).abs() < 1e-12);
    }

    #[test]
    fn hysteresis_thresholds() {
        let mut c = cap();
        // Drain to empty: cannot turn on until v_on reached.
        c.discharge(Joules(1.0));
        assert!(!c.can_turn_on());
        // Charge until just below v_on.
        let e_on = 0.5 * 0.033 * (1.85f64 * 1.85 - 1.8 * 1.8);
        c.charge(Joules(e_on - 1e-6));
        assert!(!c.can_turn_on());
        c.charge(Joules(2e-6));
        assert!(c.can_turn_on());
    }

    #[test]
    fn voltage_tracks_energy() {
        let mut c = cap();
        c.discharge(c.capacity() * 0.5);
        let v = c.voltage().value();
        let expect = (1.8f64 * 1.8 + 2.0 * (c.capacity().value() * 0.5) / 0.033).sqrt();
        assert!((v - expect).abs() < 1e-9);
    }

    proptest! {
        #[test]
        fn energy_always_within_bounds(ops in proptest::collection::vec((0.0f64..0.2, any::<bool>()), 1..200)) {
            let mut c = cap();
            for (amt, is_charge) in ops {
                if is_charge { c.charge(Joules(amt)); } else { c.discharge(Joules(amt)); }
                prop_assert!(c.energy().value() >= 0.0);
                prop_assert!(c.energy().value() <= c.capacity().value() + 1e-12);
                let v = c.voltage().value();
                prop_assert!((1.8 - 1e-9..=3.3 + 1e-9).contains(&v));
            }
        }

        #[test]
        fn conservation_under_charge(amt in 0.0f64..1.0) {
            let mut c = cap();
            c.discharge(Joules(0.1));
            let before = c.energy().value();
            let accepted = c.charge(Joules(amt)).value();
            prop_assert!((c.energy().value() - (before + accepted)).abs() < 1e-12);
            prop_assert!(accepted <= amt + 1e-15);
        }

        #[test]
        fn conservation_under_discharge(amt in 0.0f64..1.0) {
            let mut c = cap();
            let before = c.energy().value();
            let supplied = c.discharge(Joules(amt)).value();
            prop_assert!((c.energy().value() - (before - supplied)).abs() < 1e-12);
            prop_assert!(supplied <= amt + 1e-15);
        }
    }
}
