//! Energy-storage and harvester front-end models for energy-harvesting
//! device simulation.
//!
//! An energy-harvesting device (Quetzal paper, §2.1) stores harvested
//! energy in a small supercapacitor and operates from it. This crate
//! models that power system:
//!
//! - [`Supercap`] — a supercapacitor with an operating voltage window and
//!   turn-on / turn-off hysteresis, the element the device charges into and
//!   executes out of.
//! - [`Harvester`] — the harvesting front-end (solar cells + boost
//!   converter, like the paper's 6 × IXYS cells into a BQ25504): scales an
//!   environmental irradiance fraction into charging power.
//! - [`PowerSystem`] — the two combined, with per-tick step accounting
//!   (harvest in, load out, waste when full, brownout when empty).
//!
//! # Examples
//!
//! ```
//! use qz_energy::{Harvester, PowerSystem, Supercap, SupercapConfig};
//! use qz_types::{SimDuration, Watts};
//!
//! let cap = Supercap::new(SupercapConfig::default()).unwrap();
//! let harvester = Harvester::new(6, Watts(0.010), 0.80).unwrap();
//! let mut sys = PowerSystem::new(cap, harvester);
//!
//! // One second of full sun with a 5 mW load.
//! for _ in 0..1000 {
//!     sys.step(1.0, Watts(0.005), SimDuration::TICK);
//! }
//! assert!(sys.capacitor().energy().value() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod capacitor;
mod converter;
mod harvester;
mod system;

pub use capacitor::{Supercap, SupercapConfig, SupercapError};
pub use converter::EfficiencyCurve;
pub use harvester::{Harvester, HarvesterError};
pub use system::{BulkOutcome, PowerSystem, PowerSystemState, StepOutcome, StopCondition};
