//! Harvesting front-end: solar cells + boost converter.

use core::fmt;
use qz_types::Watts;

/// Errors from validating a [`Harvester`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum HarvesterError {
    /// Cell count was zero.
    NoCells,
    /// Per-cell rating was zero, negative, or non-finite.
    InvalidCellRating,
    /// Converter efficiency was outside `(0, 1]`.
    InvalidEfficiency,
}

impl fmt::Display for HarvesterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HarvesterError::NoCells => write!(f, "harvester needs at least one cell"),
            HarvesterError::InvalidCellRating => {
                write!(f, "per-cell rating must be positive and finite")
            }
            HarvesterError::InvalidEfficiency => {
                write!(f, "converter efficiency must be in (0, 1]")
            }
        }
    }
}

impl std::error::Error for HarvesterError {}

/// A solar harvesting front-end.
///
/// Models the paper's setup of N identical cells (6 × IXYS SM700K10L in
/// the primary experiments, swept 2–10 in Fig. 14) feeding a boost
/// converter (BQ25504). The environment supplies an *irradiance fraction*
/// in `[0, 1]` — the fraction of each cell's rated power currently
/// available — and the harvester converts it to charging power:
///
/// `P_charge = irradiance × cells × cell_rating × efficiency`
///
/// The *datasheet maximum* (`cells × cell_rating`, pre-efficiency) is
/// exposed separately because the Protean/Zygarde baselines set their
/// degradation thresholds as fixed fractions of it (§6.1, "ZGO").
#[derive(Debug, Clone, PartialEq)]
pub struct Harvester {
    cells: u32,
    cell_rating: Watts,
    efficiency: f64,
    /// Optional input-power-dependent efficiency (overrides the flat
    /// `efficiency` when present).
    curve: Option<crate::EfficiencyCurve>,
}

impl Harvester {
    /// Creates a harvester with `cells` identical cells of `cell_rating`
    /// peak output each, behind a converter of the given `efficiency`.
    ///
    /// # Errors
    ///
    /// Returns [`HarvesterError`] if `cells == 0`, the rating is not a
    /// positive finite power, or the efficiency is outside `(0, 1]`.
    pub fn new(
        cells: u32,
        cell_rating: Watts,
        efficiency: f64,
    ) -> Result<Harvester, HarvesterError> {
        if cells == 0 {
            return Err(HarvesterError::NoCells);
        }
        if !(cell_rating.value().is_finite() && cell_rating.value() > 0.0) {
            return Err(HarvesterError::InvalidCellRating);
        }
        if !(efficiency > 0.0 && efficiency <= 1.0) {
            return Err(HarvesterError::InvalidEfficiency);
        }
        Ok(Harvester {
            cells,
            cell_rating,
            efficiency,
            curve: None,
        })
    }

    /// Replaces the flat efficiency with an input-power-dependent curve
    /// (see [`crate::EfficiencyCurve`]). The raw panel output
    /// (`irradiance × datasheet max`) selects the operating point.
    pub fn with_curve(mut self, curve: crate::EfficiencyCurve) -> Harvester {
        self.curve = Some(curve);
        self
    }

    /// Number of cells.
    #[inline]
    pub fn cells(&self) -> u32 {
        self.cells
    }

    /// Peak rated output of one cell (datasheet value, pre-converter).
    #[inline]
    pub fn cell_rating(&self) -> Watts {
        self.cell_rating
    }

    /// Converter efficiency in `(0, 1]`.
    #[inline]
    pub fn efficiency(&self) -> f64 {
        self.efficiency
    }

    /// The datasheet maximum harvest: `cells × cell_rating`, before
    /// converter losses. Protean/Zygarde-style baselines threshold against
    /// fractions of this value.
    #[inline]
    pub fn datasheet_max(&self) -> Watts {
        self.cell_rating * self.cells as f64
    }

    /// Charging power delivered into storage for a given irradiance
    /// fraction (clamped into `[0, 1]`).
    #[inline]
    pub fn output(&self, irradiance: f64) -> Watts {
        let raw = self.datasheet_max() * irradiance.clamp(0.0, 1.0);
        let eff = match &self.curve {
            Some(curve) => curve.at(raw),
            None => self.efficiency,
        };
        raw * eff
    }

    /// Tight bounds on [`Harvester::output`] over an irradiance band:
    /// the `(min, max)` charging power over every irradiance in
    /// `[irr_lo, irr_hi]` (clamped into `[0, 1]`).
    ///
    /// With a flat efficiency the output is linear in irradiance and
    /// the corners are exact. With an [`crate::EfficiencyCurve`] the
    /// output `raw × eff(raw)` is piecewise-quadratic, so the bounds
    /// also evaluate every curve knot inside the band and each
    /// quadratic piece's interior extremum.
    pub fn output_bounds(&self, irr_lo: f64, irr_hi: f64) -> (Watts, Watts) {
        let lo = irr_lo.clamp(0.0, 1.0);
        let hi = irr_hi.clamp(0.0, 1.0).max(lo);
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        let mut consider = |irr: f64| {
            let out = self.output(irr).value();
            min = min.min(out);
            max = max.max(out);
        };
        consider(lo);
        consider(hi);
        if let Some(curve) = &self.curve {
            let dmax = self.datasheet_max().value();
            let raw_lo = dmax * lo;
            let raw_hi = dmax * hi;
            let knots = curve.points();
            for pair in knots.windows(2) {
                let (p0, e0) = (pair[0].0.value(), pair[0].1);
                let (p1, e1) = (pair[1].0.value(), pair[1].1);
                // out(raw) = raw·(e0 + b·(raw − p0)) on [p0, p1]; its
                // interior extremum sits where the derivative is zero.
                let b = (e1 - e0) / (p1 - p0);
                if b.abs() > f64::EPSILON {
                    let vertex = (b * p0 - e0) / (2.0 * b);
                    if vertex > p0 && vertex < p1 && vertex > raw_lo && vertex < raw_hi {
                        consider(vertex / dmax);
                    }
                }
            }
            for &(p, _) in knots {
                let raw = p.value();
                if raw > raw_lo && raw < raw_hi {
                    consider(raw / dmax);
                }
            }
        }
        (Watts(min), Watts(max))
    }

    /// Returns a copy of this harvester with a different cell count
    /// (used by the Fig. 14 cell-count sweep).
    ///
    /// # Errors
    ///
    /// Returns [`HarvesterError::NoCells`] if `cells == 0`.
    pub fn with_cells(&self, cells: u32) -> Result<Harvester, HarvesterError> {
        let mut h = Harvester::new(cells, self.cell_rating, self.efficiency)?;
        h.curve = self.curve.clone();
        Ok(h)
    }
}

#[cfg(test)]
// Accessors hand back the constructor arguments verbatim, so strict
// float comparison is the point.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn h() -> Harvester {
        Harvester::new(6, Watts(0.010), 0.80).unwrap()
    }

    #[test]
    fn validation() {
        assert_eq!(
            Harvester::new(0, Watts(0.01), 0.8),
            Err(HarvesterError::NoCells)
        );
        assert_eq!(
            Harvester::new(6, Watts(0.0), 0.8),
            Err(HarvesterError::InvalidCellRating)
        );
        assert_eq!(
            Harvester::new(6, Watts(f64::INFINITY), 0.8),
            Err(HarvesterError::InvalidCellRating)
        );
        assert_eq!(
            Harvester::new(6, Watts(0.01), 0.0),
            Err(HarvesterError::InvalidEfficiency)
        );
        assert_eq!(
            Harvester::new(6, Watts(0.01), 1.5),
            Err(HarvesterError::InvalidEfficiency)
        );
        assert!(Harvester::new(6, Watts(0.01), 1.0).is_ok());
    }

    #[test]
    fn datasheet_max_scales_with_cells() {
        assert!((h().datasheet_max().value() - 0.060).abs() < 1e-12);
        let h10 = h().with_cells(10).unwrap();
        assert!((h10.datasheet_max().value() - 0.100).abs() < 1e-12);
    }

    #[test]
    fn output_at_full_sun() {
        // 6 cells × 10 mW × 0.8 = 48 mW
        assert!((h().output(1.0).value() - 0.048).abs() < 1e-12);
    }

    #[test]
    fn output_clamps_irradiance() {
        assert_eq!(h().output(-0.5), Watts::ZERO);
        assert_eq!(h().output(2.0), h().output(1.0));
    }

    #[test]
    fn curve_overrides_flat_efficiency() {
        use crate::EfficiencyCurve;
        let h = h().with_curve(EfficiencyCurve::bq25504_like());
        // At deep low irradiance the curve's efficiency collapses well
        // below the flat 0.8.
        let raw_low = 0.002; // 0.12 mW raw
        assert!(h.output(raw_low).value() < 0.12e-3 * 0.6);
        // Near the design point it's close to the flat value.
        let full = h.output(1.0).value();
        assert!(full > 0.060 * 0.7 && full < 0.060 * 0.85, "full={full}");
        // with_cells preserves the curve.
        let h2 = h.with_cells(3).unwrap();
        assert!(h2.output(0.002).value() < h2.datasheet_max().value() * 0.002 * 0.6);
    }

    #[test]
    fn accessors() {
        let h = h();
        assert_eq!(h.cells(), 6);
        assert_eq!(h.cell_rating(), Watts(0.010));
        assert_eq!(h.efficiency(), 0.80);
    }

    #[test]
    fn output_bounds_flat_are_the_corners() {
        let h = h();
        let (lo, hi) = h.output_bounds(0.2, 0.7);
        assert!((lo.value() - h.output(0.2).value()).abs() < 1e-15);
        assert!((hi.value() - h.output(0.7).value()).abs() < 1e-15);
    }

    proptest! {
        #[test]
        fn output_bounds_bracket_samples(a in 0.0f64..1.0, b in 0.0f64..1.0, s in 0.0f64..1.0) {
            use crate::EfficiencyCurve;
            let h = h().with_curve(EfficiencyCurve::bq25504_like());
            let (lo, hi) = (a.min(b), a.max(b));
            let (out_lo, out_hi) = h.output_bounds(lo, hi);
            let irr = lo + s * (hi - lo);
            let out = h.output(irr).value();
            prop_assert!(out >= out_lo.value() - 1e-12, "{out} < {}", out_lo.value());
            prop_assert!(out <= out_hi.value() + 1e-12, "{out} > {}", out_hi.value());
        }

        #[test]
        fn output_monotone_in_irradiance(a in 0.0f64..1.0, b in 0.0f64..1.0) {
            let h = h();
            if a <= b {
                prop_assert!(h.output(a).value() <= h.output(b).value() + 1e-15);
            } else {
                prop_assert!(h.output(b).value() <= h.output(a).value() + 1e-15);
            }
        }

        #[test]
        fn output_never_exceeds_converted_max(irr in -2.0f64..3.0) {
            let h = h();
            let out = h.output(irr).value();
            prop_assert!(out >= 0.0);
            prop_assert!(out <= h.datasheet_max().value() * h.efficiency() + 1e-15);
        }
    }
}
