//! Combined power system: harvester charging a supercapacitor under load.

use crate::{Harvester, Supercap};
use qz_types::{Joules, SimDuration, Watts};

/// Accounting for one simulation step of the power system.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct StepOutcome {
    /// Charging power the harvester produced this step (post-converter).
    pub input_power: Watts,
    /// Harvested energy accepted into storage.
    pub harvested: Joules,
    /// Harvested energy wasted because storage was full.
    pub wasted: Joules,
    /// Energy actually supplied to the load.
    pub supplied: Joules,
    /// `true` if the load's demand could not be fully met — the capacitor
    /// drained to the brownout threshold during this step.
    pub brownout: bool,
}

/// A harvester charging a supercapacitor that powers a load.
///
/// This is the per-tick energy accounting engine the device simulator
/// steps: each tick, harvested energy flows into the capacitor and the
/// executing load draws out of it. Harvesting continues while the device
/// is off (that is exactly the recharge phase on the critical path of
/// `S_e2e`, Eq. 1 of the paper).
#[derive(Debug, Clone, PartialEq)]
pub struct PowerSystem {
    capacitor: Supercap,
    harvester: Harvester,
    /// Lifetime totals, useful for energy-budget sanity checks.
    total_harvested: Joules,
    total_wasted: Joules,
    total_supplied: Joules,
}

impl PowerSystem {
    /// Combines a storage element and a harvester.
    pub fn new(capacitor: Supercap, harvester: Harvester) -> PowerSystem {
        PowerSystem {
            capacitor,
            harvester,
            total_harvested: Joules::ZERO,
            total_wasted: Joules::ZERO,
            total_supplied: Joules::ZERO,
        }
    }

    /// The storage element.
    #[inline]
    pub fn capacitor(&self) -> &Supercap {
        &self.capacitor
    }

    /// The harvesting front-end.
    #[inline]
    pub fn harvester(&self) -> &Harvester {
        &self.harvester
    }

    /// Instantaneous input power for an irradiance fraction — what
    /// Quetzal's measurement circuit reads as `P_in`.
    #[inline]
    pub fn input_power(&self, irradiance: f64) -> Watts {
        self.harvester.output(irradiance)
    }

    /// Advances the power system by `dt`: harvests at the given irradiance
    /// and draws `load` power out of storage.
    ///
    /// Charge is added before the draw within the step, which models a
    /// device that can run directly off harvest when input power exceeds
    /// load power (zero net discharge).
    pub fn step(&mut self, irradiance: f64, load: Watts, dt: SimDuration) -> StepOutcome {
        debug_assert!(load.value() >= 0.0, "load must be non-negative");
        let input_power = self.harvester.output(irradiance);
        let offered = input_power * dt.as_seconds();
        let harvested = self.capacitor.charge(offered);
        let wasted = offered - harvested;

        // Self-discharge, independent of the load.
        let leak = self.capacitor.config().leakage * dt.as_seconds();
        if leak.value() > 0.0 {
            self.capacitor.discharge(leak);
        }

        let demand = load * dt.as_seconds();
        let supplied = self.capacitor.discharge(demand);
        let brownout = supplied.value() + 1e-18 < demand.value();

        self.total_harvested += harvested;
        self.total_wasted += wasted;
        self.total_supplied += supplied;

        StepOutcome {
            input_power,
            harvested,
            wasted,
            supplied,
            brownout,
        }
    }

    /// Draws a one-shot energy amount from storage (e.g. a checkpoint or
    /// restore operation), outside the per-tick load accounting.
    ///
    /// Returns the energy actually supplied (less than `amount` if the
    /// capacitor ran dry).
    pub fn draw(&mut self, amount: Joules) -> Joules {
        let supplied = self.capacitor.discharge(amount);
        self.total_supplied += supplied;
        supplied
    }

    /// Lifetime energy accepted into storage.
    #[inline]
    pub fn total_harvested(&self) -> Joules {
        self.total_harvested
    }

    /// Lifetime harvested energy wasted on a full capacitor.
    #[inline]
    pub fn total_wasted(&self) -> Joules {
        self.total_wasted
    }

    /// Lifetime energy supplied to the load.
    #[inline]
    pub fn total_supplied(&self) -> Joules {
        self.total_supplied
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SupercapConfig;
    use proptest::prelude::*;
    use qz_types::Volts;

    fn sys() -> PowerSystem {
        PowerSystem::new(
            Supercap::new(SupercapConfig::default()).unwrap(),
            Harvester::new(6, Watts(0.010), 0.80).unwrap(),
        )
    }

    fn sys_starting_empty() -> PowerSystem {
        let cfg = SupercapConfig {
            v_init: Volts(1.8),
            ..SupercapConfig::default()
        };
        PowerSystem::new(
            Supercap::new(cfg).unwrap(),
            Harvester::new(6, Watts(0.010), 0.80).unwrap(),
        )
    }

    #[test]
    fn charges_under_sun_no_load() {
        let mut s = sys_starting_empty();
        let out = s.step(1.0, Watts::ZERO, SimDuration::from_secs(1));
        // 48 mW for 1 s = 48 mJ
        assert!((out.harvested.value() - 0.048).abs() < 1e-12);
        assert!(!out.brownout);
        assert!((s.capacitor().energy().value() - 0.048).abs() < 1e-12);
    }

    #[test]
    fn full_capacitor_wastes_harvest() {
        let mut s = sys(); // starts full
        let out = s.step(1.0, Watts::ZERO, SimDuration::from_secs(1));
        assert_eq!(out.harvested, Joules::ZERO);
        assert!((out.wasted.value() - 0.048).abs() < 1e-12);
    }

    #[test]
    fn load_exceeding_storage_browns_out() {
        let mut s = sys_starting_empty();
        let out = s.step(0.0, Watts(1.0), SimDuration::from_secs(1));
        assert!(out.brownout);
        assert_eq!(out.supplied, Joules::ZERO);
    }

    #[test]
    fn harvest_covers_load_when_input_exceeds_draw() {
        let mut s = sys_starting_empty();
        // charge a little first
        s.step(1.0, Watts::ZERO, SimDuration::from_secs(1));
        let before = s.capacitor().energy();
        // 48 mW in, 10 mW out → net charge
        let out = s.step(1.0, Watts(0.010), SimDuration::from_secs(1));
        assert!(!out.brownout);
        assert!(s.capacitor().energy() > before);
    }

    #[test]
    fn input_power_matches_harvester() {
        let s = sys();
        assert_eq!(s.input_power(0.5), s.harvester().output(0.5));
    }

    #[test]
    fn leakage_drains_idle_capacitor() {
        let cfg = SupercapConfig {
            leakage: Watts(10e-6),
            ..SupercapConfig::default()
        };
        let mut s = PowerSystem::new(
            Supercap::new(cfg).unwrap(),
            Harvester::new(6, Watts(0.010), 0.80).unwrap(),
        );
        let before = s.capacitor().energy();
        for _ in 0..1000 {
            s.step(0.0, Watts::ZERO, SimDuration::TICK); // 1 s dark, idle
        }
        let drained = before - s.capacitor().energy();
        assert!(
            (drained.value() - 10e-6).abs() < 1e-9,
            "drained {}",
            drained
        );
    }

    #[test]
    fn lifetime_totals_accumulate() {
        let mut s = sys_starting_empty();
        for _ in 0..10 {
            s.step(1.0, Watts(0.005), SimDuration::from_secs(1));
        }
        assert!(s.total_harvested().value() > 0.0);
        assert!(s.total_supplied().value() > 0.0);
        assert!((s.total_supplied().value() - 0.05 * 10.0 * 0.1).abs() < 1.0); // sanity
    }

    proptest! {
        #[test]
        fn energy_is_conserved(
            steps in proptest::collection::vec((0.0f64..1.0, 0.0f64..0.5), 1..100)
        ) {
            let mut s = sys_starting_empty();
            let mut ledger = 0.0; // harvested − supplied should equal stored
            for (irr, load_w) in steps {
                let out = s.step(irr, Watts(load_w), SimDuration::from_millis(100));
                ledger += out.harvested.value() - out.supplied.value();
                // per-step conservation: offered = harvested + wasted
                let offered = out.input_power.value() * 0.1;
                prop_assert!((out.harvested.value() + out.wasted.value() - offered).abs() < 1e-12);
            }
            prop_assert!((s.capacitor().energy().value() - ledger).abs() < 1e-9);
        }

        #[test]
        fn supplied_never_exceeds_demand(irr in 0.0f64..1.0, load_w in 0.0f64..2.0) {
            let mut s = sys();
            let out = s.step(irr, Watts(load_w), SimDuration::TICK);
            prop_assert!(out.supplied.value() <= load_w * 0.001 + 1e-15);
        }
    }
}
